//! Quickstart: factorize a sparse system end-to-end on the simulated GPU
//! and solve it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gplu::prelude::*;
use gplu::sparse::gen::random::random_dominant;
use gplu::sparse::verify::{check_solution, residual_probe};

fn main() {
    // 1. A sparse, diagonally dominant system A x = b.
    let n = 2000;
    let a = random_dominant(n, 6.0, 42);
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
    let b = a.spmv(&x_true);
    println!(
        "matrix: {} x {}, {} nonzeros ({:.1}/row)",
        n,
        n,
        a.nnz(),
        a.density()
    );

    // 2. A simulated Tesla V100 whose device memory cannot hold the
    //    symbolic-factorization intermediates (6 words x n per source
    //    row), so the pipeline must run out-of-core — the paper's setting.
    let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
    println!(
        "device: {} ({} MiB), intermediates would need {} MiB",
        gpu.config().name,
        gpu.mem.capacity() >> 20,
        (24 * (n as u64) * (n as u64)) >> 20,
    );

    // 3. The end-to-end pipeline: pre-process -> out-of-core symbolic ->
    //    GPU levelization -> numeric factorization.
    let f = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("factorization");
    println!("\nphases: {}", f.report.summary());
    println!(
        "fill-in: {} new entries ({}x growth), {} levels (widest {})",
        f.report.new_fill_ins,
        f.report.fill_nnz / a.nnz().max(1),
        f.report.n_levels,
        f.report.max_level_width,
    );

    // 4. Verify and solve.
    let residual = residual_probe(&f.preprocessed, &f.lu, 4);
    println!("\nfactor residual (probe): {residual:.2e}");
    let x = f.solve(&b).expect("solve");
    assert!(check_solution(&a, &x, &b, 1e-8), "solution check failed");
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("solution max error vs known x: {err:.2e}");
    println!("\nsimulated end-to-end time: {}", f.report.total());
}
