//! The numeric-format switch (Section 3.4): when does the pipeline leave
//! the dense-column format for sorted CSC with binary search?
//!
//! Sweeps the matrix size against a fixed simulated device and prints the
//! dense-format column limit `M = L/(n·sizeof)`, the criterion
//! `n > L/(TB_max·sizeof)`, and the measured numeric times of both
//! formats — locating the crossover the paper's Figure 8 sits beyond.
//!
//! ```sh
//! cargo run --release --example format_switch
//! ```

use gplu::numeric::{factorize_gpu_dense, factorize_gpu_sparse};
use gplu::prelude::*;
use gplu::schedule::{levelize_cpu, DepGraph};
use gplu::sparse::convert::csr_to_csc;
use gplu::sparse::gen::planar::{planar, PlanarParams};
use gplu::sparse::pivot::repair_diagonal;
use gplu::symbolic::symbolic_cpu;

fn main() {
    // Fixed device: memory chosen so mid-sized planar matrices cross the
    // paper's format criterion.
    let device_mem: u64 = 7 << 20;
    println!(
        "device memory L = {} MiB, TB_max = 160, float data",
        device_mem >> 20
    );
    println!(
        "switch criterion: n > L/(TB_max*4) = {}\n",
        device_mem / (160 * 4)
    );

    println!(
        "{:>6}  {:>9}  {:>6}  {:>8}  {:>10}  {:>10}  {:>7}  {:>6}",
        "n", "fill", "M", "switch?", "dense", "sparse", "speedup", "probes"
    );
    for side in [48usize, 64, 88, 100, 106] {
        let n = side * side;
        let raw = planar(&PlanarParams {
            side,
            tri_prob: 0.2,
            missing_diag_fraction: 0.4,
            seed: 5,
        });
        // The paper's Table 4 treatment: repair zero diagonals with 1000.
        let (a, _) = repair_diagonal(&raw, 1000.0);

        let pre = gplu::core::preprocess(
            &a,
            &gplu::core::PreprocessOptions::default(),
            &CostModel::default(),
        )
        .expect("preprocess");
        let sym = symbolic_cpu(&pre.matrix, &CostModel::default());
        let pattern = csr_to_csc(&sym.result.filled);
        let levels =
            levelize_cpu(&DepGraph::build(&sym.result.filled), &CostModel::default()).levels;

        let cfg = GpuConfig::v100().with_memory(device_mem);
        // The paper's criterion is evaluated on the memory left after the
        // resident factor — the quantity the dense buffers actually share.
        let free_after_factor = device_mem.saturating_sub(pattern.nnz() as u64 * 8);
        let switch = cfg
            .clone()
            .with_memory(free_after_factor)
            .should_use_sparse_format(n);

        let gpu = Gpu::new(cfg.clone());
        let dense = factorize_gpu_dense(&gpu, &pattern, &levels);
        let gpu = Gpu::new(cfg);
        let sparse = match factorize_gpu_sparse(&gpu, &pattern, &levels) {
            Ok(s) => s,
            Err(e) => {
                println!(
                    "{n:>6}  {:>9}  even the CSC factor exceeds this device: {e}",
                    pattern.nnz()
                );
                continue;
            }
        };

        match dense {
            Ok(d) => {
                println!(
                    "{:>6}  {:>9}  {:>6}  {:>8}  {:>10}  {:>10}  {:>6.2}x  {:>6}",
                    n,
                    pattern.nnz(),
                    d.m_limit.unwrap_or(0),
                    if switch { "sparse" } else { "dense" },
                    format!("{}", d.time),
                    format!("{}", sparse.time),
                    d.time.ratio(sparse.time),
                    sparse.probes >> 10,
                );
            }
            Err(e) => {
                println!(
                    "{:>6}  {:>9}  {:>6}  {:>8}  {:>10}  {:>10}  {:>7}  {:>6}",
                    n,
                    pattern.nnz(),
                    "-",
                    "sparse",
                    format!("OOM: {e}"),
                    format!("{}", sparse.time),
                    "-",
                    sparse.probes >> 10,
                );
            }
        }
    }
    println!("\nBelow the criterion, dense wins or ties (direct indexing, enough blocks);");
    println!("beyond it, M starves the device and binary-search CSC pulls ahead — Figure 8.");
}
