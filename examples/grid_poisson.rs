//! Direct solution of a 2-D Poisson problem — the FEM/mesh side of the
//! paper's Table 2 suite (inline_1, bmw*, s3dk* are all mesh stiffness
//! matrices).
//!
//! Discretizes −Δu = f on a square grid with the 5-point stencil, factors
//! the system on the simulated GPU, and checks the solution against a
//! manufactured analytic field. Also contrasts the RCM and AMD orderings'
//! fill — the pre-processing knob the pipeline exposes.
//!
//! ```sh
//! cargo run --release --example grid_poisson
//! ```

use gplu::prelude::*;
use gplu::sparse::convert::coo_to_csr;
use gplu::sparse::ordering::OrderingKind;
use gplu::sparse::Coo;

/// 5-point Laplacian on a `side x side` grid (Dirichlet boundary folded in).
fn poisson(side: usize) -> gplu::sparse::Csr {
    let n = side * side;
    let idx = |x: usize, y: usize| y * side + x;
    let mut coo = Coo::new(n, n);
    for y in 0..side {
        for x in 0..side {
            let u = idx(x, y);
            coo.push(u, u, 4.0);
            if x > 0 {
                coo.push(u, idx(x - 1, y), -1.0);
            }
            if x + 1 < side {
                coo.push(u, idx(x + 1, y), -1.0);
            }
            if y > 0 {
                coo.push(u, idx(x, y - 1), -1.0);
            }
            if y + 1 < side {
                coo.push(u, idx(x, y + 1), -1.0);
            }
        }
    }
    coo_to_csr(&coo)
}

fn main() {
    let side = 48;
    let n = side * side;
    let a = poisson(side);
    println!("Poisson {side}x{side}: n = {n}, nnz = {}", a.nnz());

    // Manufactured solution: u(x, y) = sin(pi x) sin(pi y) on the unit
    // square; b = A u (discrete consistency, so the check is exact up to
    // solver roundoff).
    let h = 1.0 / (side + 1) as f64;
    let u_true: Vec<f64> = (0..n)
        .map(|k| {
            let (x, y) = ((k % side + 1) as f64 * h, (k / side + 1) as f64 * h);
            (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin()
        })
        .collect();
    let b = a.spmv(&u_true);

    for (name, kind) in [("RCM", OrderingKind::Rcm), ("AMD", OrderingKind::MinDegree)] {
        let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(n, a.nnz()));
        let opts = LuOptions::default().with_ordering(kind);
        let f = LuFactorization::compute(&gpu, &a, &opts).expect("factorization");
        let x = f.solve(&b).expect("solve");
        let err = x
            .iter()
            .zip(&u_true)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{name:>4}: fill {:>8} (+{:>8}), {:>4} levels, simulated {:>10}, max err {err:.2e}",
            f.report.fill_nnz,
            f.report.new_fill_ins,
            f.report.n_levels,
            format!("{}", f.report.total()),
        );
        assert!(err < 1e-9, "{name}: solve inaccurate");
    }
    println!("\nBoth orderings solve identically; fill (and thus numeric work) differs —");
    println!("the pre-processing choice the paper inherits from the direct-solver canon.");
}
