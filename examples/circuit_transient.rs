//! Circuit transient simulation — the application that motivates the
//! paper (SPICE-style solvers factor the same circuit matrix thousands of
//! times as device operating points move).
//!
//! The key property this exercises: the symbolic factorization (and the
//! level schedule) depend only on the *pattern*, so they run **once** —
//! captured in a [`RefactorPlan`] — and each timestep re-runs only the
//! value scatter plus the numeric kernels on the fixed pattern. The trace
//! proves it: warm steps emit no `phase.symbolic` or `phase.levelize`
//! spans at all.
//!
//! ```sh
//! cargo run --release --example circuit_transient
//! ```

use gplu::prelude::*;
use gplu::sparse::gen::circuit::{circuit, CircuitParams};
use gplu::sparse::verify::check_solution;
use gplu::trace::Recorder;

fn main() {
    // A post-layout circuit-style conductance matrix.
    let n = 1500;
    let a = circuit(&CircuitParams {
        n,
        nnz_per_row: 8.0,
        seed: 7,
        ..Default::default()
    });
    println!(
        "circuit matrix: n = {n}, nnz = {} ({:.1}/row)",
        a.nnz(),
        a.density()
    );

    // Cold factorization ONCE: preprocess + symbolic + levelize + numeric.
    let opts = LuOptions::default();
    let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(n, a.nnz()));
    let cold = LuFactorization::compute(&gpu, &a, &opts).expect("cold factorization");
    let cold_time = cold.report.total();
    println!(
        "cold factorization: fill {} nnz, {} levels — simulated {cold_time}",
        cold.lu.nnz(),
        cold.report.n_levels,
    );

    // Capture every pattern-only artifact (permutations, filled pattern,
    // level schedule, pivot index, value-scatter maps) into the plan.
    let plan = cold.refactor_plan(&a, &opts).expect("refactor plan");

    // Transient loop: the matrix values drift (device conductances change
    // with the operating point), the PATTERN stays fixed, and only the
    // warm path runs: value scatter + numeric kernels.
    let timesteps = 10;
    let mut warm_total = SimTime::ZERO;
    for step in 0..timesteps {
        // Perturb the values on the fixed pattern (keep dominance).
        let mut a_step = a.clone();
        let drift = 1.0 + 0.02 * step as f64;
        for v in a_step.vals.iter_mut() {
            *v *= drift;
        }

        let rec = Recorder::new();
        let gpu_step = Gpu::new(GpuConfig::v100_symbolic_profile(n, a.nnz()));
        let f = plan
            .refactorize_traced(&gpu_step, &a_step, &rec)
            .expect("warm refactorization");
        warm_total += f.report.total();

        // The trace is the proof that warm steps skip the pattern phases.
        let events = rec.into_events();
        assert!(
            !events
                .iter()
                .any(|e| e.name == "phase.symbolic" || e.name == "phase.levelize"),
            "step {step}: a warm step must not re-run symbolic/levelize"
        );

        // Solve for the node voltages at this step and verify against the
        // drifted matrix in the original ordering.
        let b: Vec<f64> = (0..n)
            .map(|i| if i % 97 == 0 { 1e-3 } else { 0.0 })
            .collect();
        let x = f.solve(&b).expect("solve");
        assert!(
            check_solution(&a_step, &x, &b, 1e-8),
            "step {step}: solve check failed"
        );
    }
    let per_step = warm_total / timesteps as f64;
    println!(
        "{timesteps} transient steps on the warm path: simulated {warm_total} total \
         ({per_step} per step — {:.1}x faster than the {cold_time} cold factorization)",
        cold_time.as_ns() / per_step.as_ns(),
    );
    assert!(
        per_step < cold_time,
        "warm refactorization must beat the cold pipeline"
    );
}
