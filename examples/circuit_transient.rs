//! Circuit transient simulation — the application that motivates the
//! paper (SPICE-style solvers factor the same circuit matrix thousands of
//! times as device operating points move).
//!
//! The key property this exercises: the symbolic factorization (and the
//! level schedule) depend only on the *pattern*, so they run **once**;
//! each timestep then re-runs only the numeric phase on updated values —
//! which is why accelerating numeric factorization (and keeping the whole
//! pipeline on the GPU) matters so much for circuit simulation.
//!
//! ```sh
//! cargo run --release --example circuit_transient
//! ```

use gplu::numeric::factorize_gpu_sparse;
use gplu::prelude::*;
use gplu::schedule::{levelize_gpu, DepGraph};
use gplu::sparse::convert::csr_to_csc;
use gplu::sparse::gen::circuit::{circuit, CircuitParams};
use gplu::sparse::triangular::solve_lu;
use gplu::sparse::verify::check_solution;
use gplu::symbolic::symbolic_ooc_dynamic;

fn main() {
    // A post-layout circuit-style conductance matrix.
    let n = 1500;
    let a = circuit(&CircuitParams {
        n,
        nnz_per_row: 8.0,
        seed: 7,
        ..Default::default()
    });
    println!(
        "circuit matrix: n = {n}, nnz = {} ({:.1}/row)",
        a.nnz(),
        a.density()
    );

    let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(n, a.nnz()));

    // Pre-process + symbolic + levelize ONCE (pattern-only work).
    let pre = gplu::core::preprocess(&a, &gplu::core::PreprocessOptions::default(), gpu.cost())
        .expect("preprocess");
    let sym = symbolic_ooc_dynamic(&gpu, &pre.matrix).expect("symbolic");
    let dep = DepGraph::build(&sym.result.filled);
    let lvl = levelize_gpu(&gpu, &dep).expect("levelize");
    let setup_time = gpu.now();
    println!(
        "one-time setup: fill {} (+{}), {} levels — simulated {}",
        sym.result.fill_nnz(),
        sym.result.new_fill_ins(&pre.matrix),
        lvl.levels.n_levels(),
        setup_time,
    );

    // Transient loop: the matrix values drift (device conductances change
    // with the operating point), the PATTERN stays fixed, and only the
    // numeric phase re-runs.
    let timesteps = 10;
    let pattern = csr_to_csc(&sym.result.filled);
    let mut numeric_total = SimTime::ZERO;
    for step in 0..timesteps {
        // Perturb the values on the fixed pattern (keep dominance).
        let mut current = pattern.clone();
        let drift = 1.0 + 0.02 * step as f64;
        for v in current.vals.iter_mut() {
            *v *= drift;
        }

        let t0 = gpu.now();
        let out = factorize_gpu_sparse(&gpu, &current, &lvl.levels).expect("numeric");
        numeric_total += gpu.now() - t0;

        // Solve for the node voltages at this step.
        let b: Vec<f64> = (0..n)
            .map(|i| if i % 97 == 0 { 1e-3 } else { 0.0 })
            .collect();
        let b_perm = pre.p_row.permute_vec(&b);
        let y = solve_lu(&out.lu, &b_perm).expect("solve");
        let x: Vec<f64> = (0..n).map(|i| y[pre.p_col.apply(i)]).collect();

        // Verify against the drifted matrix in original ordering.
        let mut a_step = a.clone();
        for v in a_step.vals.iter_mut() {
            *v *= drift;
        }
        assert!(
            check_solution(&a_step, &x, &b, 1e-8),
            "step {step}: solve check failed"
        );
    }
    println!(
        "{timesteps} transient steps: numeric-only re-factorization, simulated {} total \
         ({} per step — vs {} one-time setup)",
        numeric_total,
        numeric_total / timesteps as f64,
        setup_time,
    );
}
