//! Out-of-core machinery, made visible: the same matrix factorized on
//! simulated devices of shrinking memory, showing how the chunk size and
//! iteration count adapt (Algorithm 3's `chunk_size = L / (c·n)`), the
//! dynamic two-part split (Algorithm 4), and the unified-memory
//! alternative's fault behaviour.
//!
//! ```sh
//! cargo run --release --example out_of_core_demo
//! ```

use gplu::prelude::*;
use gplu::sparse::gen::random::banded_dominant;
use gplu::symbolic::{symbolic_ooc, symbolic_ooc_dynamic, symbolic_um, UmMode};

fn main() {
    let n = 3000;
    let a = banded_dominant(n, 8, 11);
    let state_bytes = 24 * (n as u64) * (n as u64);
    println!(
        "matrix: n = {n}, nnz = {}; full symbolic state would need {} MiB\n",
        a.nnz(),
        state_bytes >> 20
    );

    // The pre-processing the pipeline would run (kept identical across
    // devices so only memory varies).
    let pre = gplu::core::preprocess(
        &a,
        &gplu::core::PreprocessOptions::default(),
        &CostModel::default(),
    )
    .expect("preprocess");

    println!(
        "{:>10}  {:>6}  {:>6}  {:>10}  {:>12}",
        "device", "chunk", "iters", "time", "h2d+d2h"
    );
    for shrink in [4u64, 8, 16, 64, 256] {
        let mem = (state_bytes / shrink).max(1 << 20);
        let gpu = Gpu::new(GpuConfig::v100().with_memory(mem));
        match symbolic_ooc(&gpu, &pre.matrix) {
            Ok(out) => {
                println!(
                    "{:>7}MiB  {:>6}  {:>6}  {:>10}  {:>9}KiB",
                    mem >> 20,
                    out.chunk_size,
                    out.num_iterations,
                    format!("{}", out.time),
                    (out.stats.h2d_bytes + out.stats.d2h_bytes) >> 10,
                );
            }
            Err(e) => println!("{:>7}MiB  device too small: {e}", mem >> 20),
        }
    }

    // Algorithm 4's split on the same matrix.
    let gpu = Gpu::new(GpuConfig::v100().with_memory(state_bytes / 16));
    let dyn_out = symbolic_ooc_dynamic(&gpu, &pre.matrix).expect("dynamic");
    println!(
        "\ndynamic split: n1 = {} of {n} rows, queue cap {}, chunks {} / {} (part1/part2), \
         {} overflows",
        dyn_out.split.n1,
        dyn_out.split.frontier_cap,
        dyn_out.split.chunk1,
        dyn_out.split.chunk2,
        dyn_out.overflows,
    );

    // The unified-memory road not taken.
    for (name, mode) in [
        ("UM on-demand", UmMode::NoPrefetch),
        ("UM prefetch", UmMode::Prefetch),
    ] {
        let gpu = Gpu::new(GpuConfig::v100().with_memory(state_bytes / 16));
        let out = symbolic_um(&gpu, &pre.matrix, mode).expect("um");
        println!(
            "{name:>13}: {} ({} fault groups, {:.0}% of time servicing faults)",
            out.time,
            out.fault_groups,
            out.fault_time_fraction * 100.0,
        );
    }
    println!("\nExplicit chunking needs no page faults at all — the paper's Table 3 story.");
}
