//! # gplu
//!
//! End-to-end sparse LU factorization for large matrices on (simulated)
//! GPUs — a Rust reproduction of *"End-to-End LU Factorization of Large
//! Matrices on GPUs"* (Xia, Agrawal, Jiang, Ramnath — PPoPP 2023).
//!
//! This façade crate re-exports the workspace:
//!
//! * [`core`] — the end-to-end pipeline ([`core::LuFactorization`]),
//! * [`sparse`] — matrix formats, I/O, generators, orderings, solves,
//! * [`sim`] — the discrete-cost GPU simulator substrate,
//! * [`symbolic`] / [`schedule`] / [`numeric`] — the three phases,
//! * [`baseline`] — the paper's comparison pipelines (modified GLU 3.0,
//!   unified memory).
//!
//! ## Quickstart
//!
//! ```
//! use gplu::prelude::*;
//!
//! // A diagonally dominant sparse system.
//! let a = gplu::sparse::gen::random::random_dominant(1000, 5.0, 42);
//! let b = a.spmv(&vec![1.0; 1000]);
//!
//! // A simulated V100 whose memory cannot hold the symbolic
//! // intermediates (forcing the paper's out-of-core path).
//! let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
//!
//! let f = LuFactorization::compute(&gpu, &a, &LuOptions::default()).unwrap();
//! let x = f.solve(&b).unwrap();
//! assert!(gplu::sparse::verify::check_solution(&a, &x, &b, 1e-8));
//! ```
//!
//! See `examples/` for runnable scenarios and DESIGN.md / EXPERIMENTS.md
//! for the paper-reproduction map.

pub use gplu_baseline as baseline;
pub use gplu_checkpoint as checkpoint;
pub use gplu_core as core;
pub use gplu_numeric as numeric;
pub use gplu_schedule as schedule;
pub use gplu_server as server;
pub use gplu_sim as sim;
pub use gplu_sparse as sparse;
pub use gplu_symbolic as symbolic;
pub use gplu_trace as trace;

/// The types most programs need.
pub mod prelude {
    pub use gplu_core::{
        CheckpointOptions, GpluError, LuFactorization, LuOptions, NumericFormat, PhaseReport,
        PivotPolicy, RefactorPlan, ResidualGate, SymbolicEngine,
    };
    pub use gplu_server::{JobKind, JobSpec, ServiceConfig, SolverService};
    pub use gplu_sim::{CostModel, DeviceFleet, FaultPlan, Gpu, GpuConfig, SimTime};
    pub use gplu_sparse::{Csc, Csr, Permutation};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let a = crate::sparse::gen::random::random_dominant(100, 4.0, 1);
        let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
        let f = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("pipeline ok");
        assert!(f.report.total() > SimTime::ZERO);
    }
}
