//! # gplu-numeric
//!
//! Numeric LU factorization on the (simulated) GPU — the phase where the
//! paper's third contribution lives: removing the dense-format memory
//! limit by switching to sorted CSC with binary-search access
//! (Section 3.4, Algorithm 6).
//!
//! ## Algorithm
//!
//! The factorization consumes the filled pattern `As` from the symbolic
//! phase and the level schedule from levelization. Columns within a level
//! are factorized concurrently, one thread block per column. The paper's
//! hybrid column-based right-looking updates (Algorithm 2) are applied
//! here **re-associated per target column** (a left-looking gather): when
//! column `j` is processed, it pulls every update
//! `As(i,j) -= As(i,t) · As(t,j)` from its already-final dependency
//! columns `t` (ascending), then divides its sub-diagonal by the pivot.
//! This computes bit-for-bit the same factors with the same dependency
//! structure and the same flop count — and it preserves exactly the
//! contrast the paper studies:
//!
//! * **dense format** ([`dense`]): each active column scatters into an
//!   `O(n)` dense buffer, so row accesses are direct — but only
//!   `M = L_free / (n·sizeof)` buffers fit on the device, capping
//!   concurrency below `TB_max` for huge matrices (Table 4),
//! * **sparse format** ([`sparse`]): no buffers; every row access is the
//!   binary search of Algorithm 6 (our [`gplu_sparse::Csc::find_in_col`])
//!   with its `log(col_nnz)` probe cost, but all `TB_max` blocks run,
//! * **merge format** ([`merge`]): sorted CSC like [`sparse`], but update
//!   targets are located by a two-pointer merge-join of the (sorted)
//!   source segment and destination column — `O(nnz)` total instead of
//!   `O(nnz · log nnz)`, with no probe surcharge,
//! * **blocked format** ([`blocked`]): sorted CSC with merge-join access,
//!   plus a post-symbolic blocking pass that groups adjacent columns with
//!   near-identical filled patterns into irregular supernode blocks whose
//!   updates are priced as tiled BLAS-3 traffic.
//!
//! All access patterns share one kernel core,
//! [`outcome::process_column`], parameterized by
//! [`outcome::AccessDiscipline`]; per-factorization pivot/segment
//! positions are precomputed once in an [`outcome::PivotCache`].
//!
//! The engines themselves implement one interface: the
//! [`engine::NumericEngine`] trait owns only the per-level kernel and its
//! counters, while [`engine::run_levels`] owns the level-loop scaffolding
//! they all share (device staging, level classification, launch/tail-launch
//! accounting, trace spans, resume cuts, checkpoint hooks). The sequential
//! reference ([`seq`]) is the host-side instantiation of the same kernel
//! core, which is why all five agree bit-for-bit.
//!
//! GLU 3.0's three level types (Section 2.2) are classified in [`modes`]
//! and map to block/thread shapes per level.
//!
//! Values are held in an atomic-f64 store ([`values::ValueStore`]) so
//! concurrent blocks can functionally write their own columns while
//! reading finished ones — the level barrier provides the happens-before.

pub mod blocked;
pub mod dense;
pub mod engine;
pub mod error;
pub mod fleet;
pub mod merge;
pub mod modes;
pub mod outcome;
pub mod pivoting;
pub mod resume;
pub mod seq;
pub mod sparse;
pub mod trisolve;
pub mod values;

pub use blocked::{
    factorize_gpu_blocked, factorize_gpu_blocked_run, factorize_gpu_blocked_run_cached,
    factorize_gpu_blocked_traced, BlockPlan, DEFAULT_BLOCK_THRESHOLD, TILE_WIDTH,
};
pub use dense::{
    factorize_gpu_dense, factorize_gpu_dense_run, factorize_gpu_dense_run_cached,
    factorize_gpu_dense_traced,
};
pub use engine::{run_levels, EngineCounters, LevelRun, NumericEngine};
pub use error::NumericError;
pub use fleet::{
    factorize_fleet_blocked, factorize_fleet_dense, factorize_fleet_merge, factorize_fleet_sparse,
    run_levels_fleet, FleetNumericOutcome,
};
pub use merge::{
    factorize_gpu_merge, factorize_gpu_merge_run, factorize_gpu_merge_run_cached,
    factorize_gpu_merge_traced,
};
pub use modes::{classify_level, classify_level_cached, classify_schedule, LevelType, ModeMix};
pub use outcome::{AccessDiscipline, NumericOutcome, PivotCache, PivotRule};
pub use pivoting::{discover_pivots, PivotDiscovery, PivotPolicy, DEFAULT_PIVOT_TAU};
pub use resume::{LevelHook, LevelProgress, NumericResume};
pub use seq::{factorize_seq, factorize_seq_rule};
pub use sparse::{
    factorize_gpu_sparse, factorize_gpu_sparse_forced, factorize_gpu_sparse_run,
    factorize_gpu_sparse_run_cached, factorize_gpu_sparse_traced,
};
pub use trisolve::{
    solve_gpu, solve_gpu_batch, solve_gpu_batch_traced, solve_gpu_traced, BatchSolveOutcome,
    TriSolveOutcome, TriSolvePlan,
};
