//! Level-type classification — GLU 3.0's three kernel modes (paper
//! Section 2.2).
//!
//! Parallelism changes shape across the level schedule:
//! * **Type A** (early levels): many independent columns, few updates
//!   each — a thread block per column with a warp per update source,
//! * **Type B** (transition): many columns *and* many updates — a full
//!   1024-thread block per column,
//! * **Type C** (late levels): a handful of columns with huge update
//!   lists — the whole device cooperates on each column, striping its
//!   update rows across many blocks.

use crate::outcome::PivotCache;
use gplu_schedule::Levels;
use gplu_sparse::Csc;

/// The three GLU 3.0 kernel modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelType {
    /// Many columns, few sub-columns: block per column, warp-grained.
    A,
    /// Transitional: block per column, all threads on the update lists.
    B,
    /// Few columns, many sub-columns: multiple blocks cooperate per
    /// column.
    C,
}

impl LevelType {
    /// The mode letter as a static string (telemetry attribute value).
    pub fn letter(self) -> &'static str {
        match self {
            LevelType::A => "A",
            LevelType::B => "B",
            LevelType::C => "C",
        }
    }
}

/// Column count below which a level is "narrow" (type C candidate).
pub const NARROW_LEVEL: usize = 32;
/// Average update-source count above which columns are "heavy".
pub const HEAVY_DEPS: f64 = 24.0;

/// Classifies one level given the filled matrix and its columns.
///
/// The decision mirrors GLU 3.0: early levels have many columns whose
/// dependency lists are short (A); late levels have few, heavy columns
/// (C); everything in between is B.
pub fn classify_level(lu: &Csc, columns: &[gplu_sparse::Idx]) -> LevelType {
    classify_deps(
        columns.len(),
        columns.iter().map(|&j| {
            let j = j as usize;
            // Dependencies = entries above the diagonal of column j.
            (lu.lower_bound_after(j, j) - lu.col_ptr[j]) as u64
        }),
    )
}

/// As [`classify_level`], but with the above-diagonal counts served by the
/// [`PivotCache`] — no binary searches, so classifying the whole schedule
/// is `O(n)` instead of `O(n log nnz)`.
pub fn classify_level_cached(
    lu: &Csc,
    cache: &PivotCache,
    columns: &[gplu_sparse::Idx],
) -> LevelType {
    classify_deps(
        columns.len(),
        columns.iter().map(|&j| {
            let j = j as usize;
            (cache.lower_start(j) - lu.col_ptr[j]) as u64
        }),
    )
}

fn classify_deps(width: usize, deps: impl Iterator<Item = u64>) -> LevelType {
    if width == 0 {
        return LevelType::A;
    }
    let total_deps: u64 = deps.sum();
    let avg_deps = total_deps as f64 / width as f64;
    if width < NARROW_LEVEL && avg_deps >= HEAVY_DEPS {
        LevelType::C
    } else if avg_deps < HEAVY_DEPS {
        LevelType::A
    } else {
        LevelType::B
    }
}

/// Thread-block shape for a level type: `(threads_per_block, stripes)`.
/// `stripes` is the number of blocks cooperating on one column (type C's
/// row-striping); 1 otherwise.
pub fn launch_shape(t: LevelType) -> (usize, usize) {
    match t {
        LevelType::A => (256, 1),
        LevelType::B => (1024, 1),
        LevelType::C => (1024, 64),
    }
}

/// Statistics of a schedule's level types (for reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeMix {
    /// Levels classified A.
    pub a: usize,
    /// Levels classified B.
    pub b: usize,
    /// Levels classified C.
    pub c: usize,
}

/// Classifies every level of a schedule.
pub fn classify_schedule(lu: &Csc, levels: &Levels) -> (Vec<LevelType>, ModeMix) {
    let mut mix = ModeMix::default();
    let types: Vec<LevelType> = levels
        .groups
        .iter()
        .map(|cols| {
            let t = classify_level(lu, cols);
            match t {
                LevelType::A => mix.a += 1,
                LevelType::B => mix.b += 1,
                LevelType::C => mix.c += 1,
            }
            t
        })
        .collect();
    (types, mix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sparse::convert::coo_to_csc;
    use gplu_sparse::Coo;

    /// Column with `deps` entries above the diagonal at column `j = deps`.
    fn column_with_deps(n: usize, deps: usize) -> Csc {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        for t in 0..deps {
            coo.push(t, deps, 1.0);
        }
        coo_to_csc(&coo)
    }

    #[test]
    fn wide_light_level_is_type_a() {
        let lu = column_with_deps(64, 2);
        let cols: Vec<_> = (0..64u32).collect();
        assert_eq!(classify_level(&lu, &cols), LevelType::A);
    }

    #[test]
    fn narrow_heavy_level_is_type_c() {
        let lu = column_with_deps(64, 40);
        assert_eq!(classify_level(&lu, &[40]), LevelType::C);
    }

    #[test]
    fn wide_heavy_level_is_type_b() {
        // Many columns, all heavy: craft 40 columns each with 30 deps.
        let n = 80;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        for j in 40..n {
            for t in 0..30 {
                coo.push(t, j, 1.0);
            }
        }
        let lu = coo_to_csc(&coo);
        let cols: Vec<_> = (40..80u32).collect();
        assert_eq!(classify_level(&lu, &cols), LevelType::B);
    }

    #[test]
    fn shapes_are_sane() {
        assert_eq!(launch_shape(LevelType::A).1, 1);
        assert_eq!(launch_shape(LevelType::C).1, 64);
        assert!(launch_shape(LevelType::A).0 < launch_shape(LevelType::B).0);
    }

    #[test]
    fn empty_level_defaults_a() {
        let lu = column_with_deps(4, 1);
        assert_eq!(classify_level(&lu, &[]), LevelType::A);
    }

    #[test]
    fn cached_classification_agrees() {
        for &(n, deps) in &[(64usize, 2usize), (64, 40), (32, 10)] {
            let lu = column_with_deps(n, deps);
            let cache = PivotCache::build(&lu);
            let wide: Vec<_> = (0..n as u32).collect();
            let narrow = [deps as u32];
            for cols in [&wide[..], &narrow[..], &[][..]] {
                assert_eq!(
                    classify_level_cached(&lu, &cache, cols),
                    classify_level(&lu, cols)
                );
            }
        }
    }
}
