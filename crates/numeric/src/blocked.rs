//! Structure-aware **blocked** GPU numeric factorization — irregular
//! supernode blocks updated with tiled BLAS-3 kernels.
//!
//! LU fill makes the trailing columns of a sparse factor progressively
//! denser, and columns that are adjacent in the (fill-reducing) ordering
//! tend to acquire near-identical sub-diagonal patterns — the classic
//! supernode effect. A post-symbolic blocking pass ([`BlockPlan::detect`])
//! scans the filled pattern once and greedily groups adjacent columns
//! whose sub-diagonal row sets match above a Jaccard-similarity threshold
//! into irregular blocks of width ≤ [`TILE_WIDTH`].
//!
//! Columns inside a block share (almost) one source tile: their updates
//! read the same dependency segments and write row-sets that coincide, so
//! the hot update loop becomes a `TILE_WIDTH × TILE_WIDTH`-tiled dense
//! block update. The cost model prices block-member columns at the
//! pipelined GEMM rate ([`gplu_sim::CostModel::gemm_flop_ns`], ~3× the
//! streamed flop rate) with tile-granular traffic
//! ([`gplu_sim::CostModel::tiled_mem_bytes`]: the shared tile is fetched
//! once per block, not once per column). Singleton columns are priced
//! exactly like the merge engine — a plan with zero blocks degenerates to
//! the merge engine bit-for-bit *and* cost-for-cost.
//!
//! Correctness is inherited, not re-proven: every column still runs the
//! shared kernel core ([`crate::outcome::process_column`], merge
//! discipline) under the unchanged level schedule, so the arithmetic
//! order — and therefore every bit of the factor — is identical to the
//! merge/sequential engines. Blocking changes only what the simulator
//! charges for it.

use crate::engine::{run_levels, EngineCounters, LevelRun, NumericEngine};
use crate::error::NumericError;
use crate::outcome::{
    process_column_with, AccessDiscipline, NumericOutcome, PivotCache, PivotRule,
};
use crate::resume::{LevelHook, NumericResume};
use gplu_schedule::Levels;
use gplu_sim::{BlockCtx, Gpu, SimError};
use gplu_sparse::Csc;
use gplu_trace::{AttrValue, TraceSink, NOOP};
use std::cmp::Ordering as CmpOrdering;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Side of the square dense update tile (and the width cap of a supernode
/// block): a `TILE_WIDTH × TILE_WIDTH` tile per thread block, the shape of
/// the classic shared-memory GEMM kernel.
pub const TILE_WIDTH: usize = 32;

/// Default Jaccard-similarity threshold for chaining adjacent columns into
/// a block. Empirically (BENCH_blocked_numeric.json): high enough that
/// circuit/random patterns stay unblocked, low enough that the near-dense
/// trailing columns of planar/mesh fills chain up.
pub const DEFAULT_BLOCK_THRESHOLD: f64 = 0.6;

/// The blocking plan: which adjacent column runs form irregular supernode
/// blocks. Pattern-only (like the [`PivotCache`]), so a refactorization
/// service captures it once per pattern and replays it warm without
/// re-scanning.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlan {
    /// Supernode blocks as `(first column, width)`, width ≥ 2, columns
    /// adjacent, ascending and non-overlapping.
    blocks: Vec<(u32, u32)>,
    /// Column → its block id, or `u32::MAX` for singletons.
    block_of: Vec<u32>,
    /// The similarity threshold the plan was detected with.
    pub threshold: f64,
}

impl BlockPlan {
    /// Scans the filled pattern once, greedily chaining adjacent columns
    /// whose sub-diagonal row sets have Jaccard similarity ≥ `threshold`
    /// into blocks of width ≤ [`TILE_WIDTH`].
    ///
    /// The comparison for a candidate pair `(j, j+1)` restricts column `j`
    /// to rows strictly below `j+1` — the rows the two columns could share
    /// as BLAS-3 update targets. One merged walk over the two sorted row
    /// lists, `O(nnz)` over the whole pattern.
    pub fn detect(pattern: &Csc, cache: &PivotCache, threshold: f64) -> BlockPlan {
        let n = pattern.n_cols();
        let mut block_of = vec![u32::MAX; n];
        let mut blocks = Vec::new();
        let mut j = 0usize;
        while j < n {
            let mut w = 1usize;
            while j + w < n
                && w < TILE_WIDTH
                && pair_similarity(pattern, cache, j + w - 1, j + w) >= threshold
            {
                w += 1;
            }
            if w >= 2 {
                let id = blocks.len() as u32;
                blocks.push((j as u32, w as u32));
                for b in &mut block_of[j..j + w] {
                    *b = id;
                }
            }
            j += w;
        }
        BlockPlan {
            blocks,
            block_of,
            threshold,
        }
    }

    /// Number of supernode blocks (width ≥ 2) found.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of columns the plan covers.
    pub fn n_cols(&self) -> usize {
        self.block_of.len()
    }

    /// Columns that are members of some block.
    pub fn blocked_cols(&self) -> usize {
        self.blocks.iter().map(|&(_, w)| w as usize).sum()
    }

    /// Width of the block containing `col` (1 for singletons).
    #[inline]
    pub fn width_of(&self, col: usize) -> u32 {
        match self.block_of[col] {
            u32::MAX => 1,
            id => self.blocks[id as usize].1,
        }
    }

    /// Block id of `col`, if it is a block member.
    #[inline]
    pub fn block_id(&self, col: usize) -> Option<u32> {
        let id = self.block_of[col];
        (id != u32::MAX).then_some(id)
    }

    /// Mean supernode width: columns per group, counting every singleton
    /// as a group of one. 1.0 when nothing blocked; approaches
    /// [`TILE_WIDTH`] as the pattern goes dense.
    pub fn mean_width(&self) -> f64 {
        let groups = self.n_cols() - self.blocked_cols() + self.blocks.len();
        if groups == 0 {
            1.0
        } else {
            self.n_cols() as f64 / groups as f64
        }
    }

    /// Approximate heap footprint, for cache budget accounting.
    pub fn approx_bytes(&self) -> u64 {
        (self.block_of.len() * 4 + self.blocks.len() * 8 + 16) as u64
    }
}

/// Jaccard similarity of the sub-diagonal row sets of adjacent columns
/// `j` and `k = j + 1`, with column `j` restricted to rows strictly below
/// `k`. Both row lists are sorted, so one forward merge walk suffices.
fn pair_similarity(pattern: &Csc, cache: &PivotCache, j: usize, k: usize) -> f64 {
    debug_assert_eq!(k, j + 1);
    let a = &pattern.row_idx[cache.lower_start(j)..pattern.col_ptr[j + 1]];
    let b = &pattern.row_idx[cache.lower_start(k)..pattern.col_ptr[k + 1]];
    // Drop column j's rows at or above k (at most the single row k, since
    // everything here is already > j).
    let a = &a[a.partition_point(|&r| (r as usize) <= k)..];
    if a.is_empty() && b.is_empty() {
        // Two trailing columns with no sub-diagonal at all: identical.
        return 1.0;
    }
    let (mut ia, mut ib, mut inter) = (0usize, 0usize, 0usize);
    while ia < a.len() && ib < b.len() {
        match a[ia].cmp(&b[ib]) {
            CmpOrdering::Less => ia += 1,
            CmpOrdering::Greater => ib += 1,
            CmpOrdering::Equal => {
                inter += 1;
                ia += 1;
                ib += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Number of `TILE_WIDTH × TILE_WIDTH` tiles a block-member column's
/// `items` update stream occupies (at least one).
fn gemm_tiles_of(items: u64) -> u64 {
    items.div_ceil((TILE_WIDTH * TILE_WIDTH) as u64).max(1)
}

/// The blocked numeric engine: merge-join arithmetic, BLAS-3 pricing for
/// supernode-member columns.
pub(crate) struct BlockedEngine<'p> {
    plan: &'p BlockPlan,
    steps: AtomicU64,
    tiles: AtomicU64,
}

impl<'p> BlockedEngine<'p> {
    pub(crate) fn new(plan: &'p BlockPlan) -> BlockedEngine<'p> {
        BlockedEngine {
            plan,
            steps: AtomicU64::new(0),
            tiles: AtomicU64::new(0),
        }
    }
}

impl NumericEngine for BlockedEngine<'_> {
    fn kernel_name(&self) -> &'static str {
        "numeric_blocked"
    }

    fn seed(&mut self, resume: &NumericResume) {
        self.steps.store(resume.merge_steps, Ordering::Relaxed);
        self.tiles.store(resume.gemm_tiles, Ordering::Relaxed);
    }

    fn run_level(&self, run: &LevelRun<'_>) -> Result<(), SimError> {
        let stripes = run.stripes;
        let kernel = |b: usize, ctx: &mut BlockCtx| {
            let col = run.cols[b / stripes] as usize;
            let stripe = b % stripes;
            let items = run.items_of[b / stripes];
            let width = self.plan.width_of(col) as u64;
            if width >= 2 {
                // Supernode member: the update is a tiled dense block
                // update. Flops run at the pipelined GEMM rate, and the
                // source tile is fetched once per block rather than once
                // per column, so the column's share of the traffic is the
                // stream divided by the block width.
                ctx.bulk_gemm(3, items / stripes as u64);
                ctx.mem(run.gpu.cost().tiled_mem_bytes(items, width) / stripes as u64);
            } else {
                // Singleton: exactly the merge engine's streaming price.
                ctx.bulk_flops(3, items / stripes as u64);
                ctx.mem(items * 8 / stripes as u64);
            }
            if stripe == 0 {
                if width >= 2 {
                    self.tiles
                        .fetch_add(gemm_tiles_of(items), Ordering::Relaxed);
                }
                match process_column_with(
                    run.pattern,
                    run.vals,
                    col,
                    AccessDiscipline::Merge,
                    run.cache,
                    run.rule,
                ) {
                    Ok((c, perturb)) => {
                        self.steps.fetch_add(c.merge_steps, Ordering::Relaxed);
                        if let Some(delta) = perturb {
                            run.perturbs.lock().push((col, delta));
                        }
                    }
                    Err(e) => {
                        run.error.lock().get_or_insert(e);
                    }
                }
            }
        };
        run.launch(self.kernel_name(), &kernel)
    }

    fn counters(&self) -> EngineCounters {
        EngineCounters {
            merge_steps: self.steps.load(Ordering::Relaxed),
            gemm_tiles: self.tiles.load(Ordering::Relaxed),
            ..EngineCounters::default()
        }
    }

    fn level_attrs(
        &self,
        run: &LevelRun<'_>,
        delta: &EngineCounters,
        attrs: &mut Vec<(&'static str, AttrValue)>,
    ) {
        let ids: HashSet<u32> = run
            .cols
            .iter()
            .filter_map(|&j| self.plan.block_id(j as usize))
            .collect();
        let mean = run
            .cols
            .iter()
            .map(|&j| self.plan.width_of(j as usize) as f64)
            .sum::<f64>()
            / run.cols.len().max(1) as f64;
        attrs.push(("merge_steps", delta.merge_steps.into()));
        attrs.push(("blocks", ids.len().into()));
        attrs.push(("mean_block_width", mean.into()));
        attrs.push(("gemm_tiles", delta.gemm_tiles.into()));
    }
}

/// Factorizes the filled matrix with the blocked engine, detecting the
/// blocking plan at `threshold` first.
pub fn factorize_gpu_blocked(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    threshold: f64,
) -> Result<NumericOutcome, NumericError> {
    let cache = PivotCache::build(pattern);
    let plan = BlockPlan::detect(pattern, &cache, threshold);
    factorize_gpu_blocked_traced(gpu, pattern, levels, &plan, &NOOP)
}

/// [`factorize_gpu_blocked`] with a precomputed [`BlockPlan`] and
/// telemetry: each `numeric.level` span-end carries the level's width,
/// mode, merge steps, distinct blocks touched, mean block width, and
/// BLAS-3 tiles executed.
pub fn factorize_gpu_blocked_traced(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    plan: &BlockPlan,
    trace: &dyn TraceSink,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_blocked_run(gpu, pattern, levels, plan, trace, None, None)
}

/// Full-control entry point: [`factorize_gpu_blocked_traced`] plus optional
/// level-granular resume state and a per-level checkpoint hook.
pub fn factorize_gpu_blocked_run(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    plan: &BlockPlan,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    hook: Option<&mut LevelHook<'_>>,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_blocked_run_cached(
        gpu,
        pattern,
        levels,
        plan,
        trace,
        resume,
        hook,
        None,
        PivotRule::Exact,
    )
}

/// [`factorize_gpu_blocked_run`] with an optional prebuilt [`PivotCache`].
/// As with the other sorted-CSC engines, a supplied cache marks the run as
/// a captured-schedule replay: levels after the kick-off are tail-launched
/// device-side (Algorithm 5). The [`BlockPlan`] is pattern-only, so warm
/// refactorizations replay both artifacts without re-scanning.
#[allow(clippy::too_many_arguments)]
pub fn factorize_gpu_blocked_run_cached(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    plan: &BlockPlan,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    hook: Option<&mut LevelHook<'_>>,
    pivot: Option<&PivotCache>,
    rule: PivotRule,
) -> Result<NumericOutcome, NumericError> {
    let mut engine = BlockedEngine::new(plan);
    run_levels(
        &mut engine,
        gpu,
        pattern,
        levels,
        trace,
        resume,
        hook,
        pivot,
        rule,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::factorize_gpu_merge;
    use gplu_schedule::{levelize_cpu, DepGraph};
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::convert::csr_to_csc;
    use gplu_sparse::gen::planar::{planar, PlanarParams};
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::pivot::repair_diagonal;
    use gplu_sparse::verify::residual_probe;
    use gplu_symbolic::symbolic_cpu;

    fn setup(a: &gplu_sparse::Csr) -> (Csc, Levels) {
        let sym = symbolic_cpu(a, &CostModel::default());
        let g = DepGraph::build(&sym.result.filled);
        let levels = levelize_cpu(&g, &CostModel::default()).levels;
        (csr_to_csc(&sym.result.filled), levels)
    }

    #[test]
    fn plan_respects_width_cap_and_adjacency() {
        let a = random_dominant(200, 5.0, 11);
        let (pattern, _) = setup(&a);
        let cache = PivotCache::build(&pattern);
        let plan = BlockPlan::detect(&pattern, &cache, 0.3);
        let mut prev_end = 0u32;
        for &(start, w) in &plan.blocks {
            assert!(w >= 2, "blocks are at least two columns wide");
            assert!(w as usize <= TILE_WIDTH, "width capped at TILE_WIDTH");
            assert!(start >= prev_end, "blocks ascend without overlap");
            prev_end = start + w;
            for c in start..start + w {
                assert_eq!(
                    plan.block_id(c as usize),
                    Some(plan.block_of[start as usize])
                );
                assert_eq!(plan.width_of(c as usize), w);
            }
        }
        assert!(plan.mean_width() >= 1.0);
    }

    #[test]
    fn impossible_threshold_finds_zero_blocks() {
        let a = random_dominant(150, 4.0, 12);
        let (pattern, _) = setup(&a);
        let cache = PivotCache::build(&pattern);
        let plan = BlockPlan::detect(&pattern, &cache, f64::INFINITY);
        assert_eq!(plan.n_blocks(), 0);
        assert_eq!(plan.blocked_cols(), 0);
        assert_eq!(plan.mean_width(), 1.0);
        assert!((0..150).all(|c| plan.width_of(c) == 1));
    }

    #[test]
    fn dense_fill_produces_wide_blocks() {
        // Planar (delaunay-class) fill densifies the trailing columns, so
        // a moderate threshold must find real supernodes there.
        let (a, _) = repair_diagonal(&planar(&PlanarParams::for_target(900, 5.0, 13)), 1000.0);
        let (pattern, _) = setup(&a);
        let cache = PivotCache::build(&pattern);
        let plan = BlockPlan::detect(&pattern, &cache, DEFAULT_BLOCK_THRESHOLD);
        assert!(plan.n_blocks() > 0, "planar fill must block");
        assert!(
            plan.mean_width() > 1.1,
            "mean width {} too small",
            plan.mean_width()
        );
    }

    #[test]
    fn matches_merge_engine_bitwise() {
        let (a, _) = repair_diagonal(&planar(&PlanarParams::for_target(600, 5.0, 14)), 1000.0);
        let (pattern, levels) = setup(&a);
        let blocked = factorize_gpu_blocked(
            &Gpu::new(GpuConfig::v100()),
            &pattern,
            &levels,
            DEFAULT_BLOCK_THRESHOLD,
        )
        .expect("blocked ok");
        let merge =
            factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("merge ok");
        assert_eq!(
            blocked.lu.vals, merge.lu.vals,
            "identical update order ⇒ identical bits"
        );
        assert!(blocked.gemm_tiles > 0, "planar fill must execute tiles");
        assert!(residual_probe(&a, &blocked.lu, 3) < 1e-10);
    }

    #[test]
    fn zero_block_plan_degenerates_to_merge_exactly() {
        let a = banded_dominant(300, 5, 15);
        let (pattern, levels) = setup(&a);
        let blocked = factorize_gpu_blocked(
            &Gpu::new(GpuConfig::v100()),
            &pattern,
            &levels,
            f64::INFINITY,
        )
        .expect("blocked ok");
        let merge =
            factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("merge ok");
        assert_eq!(blocked.lu.vals, merge.lu.vals);
        assert_eq!(blocked.merge_steps, merge.merge_steps);
        assert_eq!(blocked.gemm_tiles, 0);
        assert_eq!(
            blocked.time, merge.time,
            "with zero blocks every column is priced as merge"
        );
    }

    #[test]
    fn beats_merge_on_dense_fill() {
        // The headline: on a dense-fill (delaunay-class) pattern the
        // BLAS-3 pricing must win simulated time over pure streaming.
        let (a, _) = repair_diagonal(&planar(&PlanarParams::for_target(2000, 5.0, 16)), 1000.0);
        let (pattern, levels) = setup(&a);
        let blocked = factorize_gpu_blocked(
            &Gpu::new(GpuConfig::v100()),
            &pattern,
            &levels,
            DEFAULT_BLOCK_THRESHOLD,
        )
        .expect("blocked ok");
        let merge =
            factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("merge ok");
        assert!(
            blocked.time < merge.time,
            "blocked {} must beat merge {} on dense fill",
            blocked.time,
            merge.time
        );
    }

    #[test]
    fn frees_device_memory() {
        let a = random_dominant(64, 3.0, 17);
        let (pattern, levels) = setup(&a);
        let gpu = Gpu::new(GpuConfig::v100());
        factorize_gpu_blocked(&gpu, &pattern, &levels, DEFAULT_BLOCK_THRESHOLD).expect("ok");
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn singular_pivot_is_typed() {
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let (pattern, levels) = setup(&a);
        let err = factorize_gpu_blocked(
            &Gpu::new(GpuConfig::v100()),
            &pattern,
            &levels,
            DEFAULT_BLOCK_THRESHOLD,
        )
        .unwrap_err();
        assert!(
            matches!(err, crate::NumericError::SingularPivot { col: 1, .. }),
            "want SingularPivot in column 1, got {err}"
        );
    }
}
