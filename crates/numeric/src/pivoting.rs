//! Pivot policies and the host-side threshold-pivot discovery pre-pass.
//!
//! The level-scheduled GPU engines cannot pivot at runtime: swapping rows
//! mid-factorization would invalidate the level schedule (and with it the
//! cross-engine bit-identity contract), which is why the GLU family —
//! and this reproduction — push stability handling out of the numeric
//! kernels. This module supplies the two policies that close the gap for
//! ill-conditioned traffic:
//!
//! * **Static perturbation** acts *inside* the engines, at the one point
//!   where it is order-independent: a column's pivot value is final before
//!   its division step, so clamping `|pivot| < threshold` there
//!   ([`crate::outcome::PivotRule::Perturb`]) is deterministic and
//!   identical across all five engines. The applied deltas are reported in
//!   [`crate::NumericOutcome::perturbations`] so the caller can mirror
//!   them into the input diagonal (the factors exactly factor the bumped
//!   matrix) and judge the result with a residual gate.
//!
//! * **Threshold pivoting** runs *before* the engines as a sequential
//!   host pre-pass ([`discover_pivots`]): a Gilbert–Peierls left-looking
//!   factorization with threshold partial pivoting over the preprocessed
//!   matrix, producing a row permutation. The engines then factorize the
//!   permuted matrix with no pivoting at all — same artifacts, same level
//!   schedule discipline, bit-identical across engines. When the chosen
//!   pivot order deviates from the natural diagonal the predicted fill
//!   pattern no longer covers the factorization; the symbolic expansion
//!   pass (gplu-symbolic) repairs the pattern before levelization.
//!
//! The discovery pass performs the same eliminations the engines will
//! (dependency columns ascending, one subtract per target), so the pivot
//! values it inspects are the values the engines will divide by — if
//! discovery succeeds, the engines will not trip a zero pivot on the
//! permuted system.

use gplu_sparse::convert::csr_to_csc;
use gplu_sparse::{Csr, Idx, SparseError};

/// Default threshold-pivoting relative tolerance: a diagonal pivot is kept
/// unless it is smaller than `tau` times the largest candidate in its
/// column. `0.1` is the classical partial-threshold compromise (markowitz
/// solvers ship the same default): strong enough to cap element growth,
/// loose enough to keep the natural diagonal — and the predicted fill
/// pattern — on well-conditioned traffic.
pub const DEFAULT_PIVOT_TAU: f64 = 0.1;

/// How the factorization handles small or zero pivots.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PivotPolicy {
    /// No pivoting (the paper's convention): a zero pivot is a typed
    /// error, optionally patched by `--repair-singular`.
    #[default]
    NoPivot,
    /// Static perturbation: pivots with magnitude below `threshold` are
    /// clamped to `±threshold` at division time, inside the engines.
    Static {
        /// The magnitude floor below which pivots are clamped.
        threshold: f64,
    },
    /// Threshold partial pivoting: a host pre-pass picks a row
    /// permutation keeping the diagonal pivot only when
    /// `|pivot| ≥ tau · max|candidate|`, and the engines factorize the
    /// permuted system.
    Threshold {
        /// Relative pivot tolerance in `(0, 1]`; `1.0` is full partial
        /// pivoting.
        tau: f64,
    },
}

impl PivotPolicy {
    /// Short stable name for telemetry, recovery events and reports.
    pub fn name(&self) -> &'static str {
        match self {
            PivotPolicy::NoPivot => "none",
            PivotPolicy::Static { .. } => "static",
            PivotPolicy::Threshold { .. } => "threshold",
        }
    }
}

/// Result of the threshold-pivot discovery pre-pass.
#[derive(Debug, Clone)]
pub struct PivotDiscovery {
    /// Forward row map: original (preprocessed) row → pivot position.
    /// Feed to `Permutation::from_forward` to permute the matrix.
    pub pinv: Vec<Idx>,
    /// Number of columns whose chosen pivot row differs from the natural
    /// diagonal. Zero means the permutation is the identity and every
    /// downstream artifact is unchanged — the no-swap fast path.
    pub swaps: usize,
    /// Elimination flops the pass performed, for host-cost pricing.
    pub flops: u64,
}

/// Runs Gilbert–Peierls left-looking LU with threshold partial pivoting
/// over `a` (the preprocessed matrix) and returns the row permutation it
/// chose. `tau ∈ (0, 1]`: the natural diagonal row is kept whenever
/// `|x_jj| ≥ tau · max|x_candidates|`, so on diagonally dominant traffic
/// the result is the identity and `swaps == 0`.
///
/// Errors with [`SparseError::ZeroPivot`] when a column has no usable
/// pivot at all (exact numerical singularity) — no permutation can save
/// such a matrix, and the caller's recovery ladder takes over.
pub fn discover_pivots(a: &Csr, tau: f64) -> Result<PivotDiscovery, SparseError> {
    let n = a.n_rows();
    let acsc = csr_to_csc(a);
    // perm[t] = original row assigned to pivot position t.
    let mut perm = vec![usize::MAX; n];
    let mut pinv = vec![usize::MAX; n];
    // L columns by pivot position: (original row, multiplier), rows
    // unassigned at build time.
    let mut lcols: Vec<Vec<(Idx, f64)>> = vec![Vec::new(); n];
    // Dense accumulator for the active column + occupancy worklist.
    let mut x = vec![0.0f64; n];
    let mut in_col = vec![false; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut swaps = 0usize;
    let mut flops = 0u64;

    for j in 0..n {
        for (i, v) in acsc.col_iter(j) {
            x[i] = v;
            if !in_col[i] {
                in_col[i] = true;
                touched.push(i);
            }
        }
        // Left-looking elimination in ascending pivot order — the same
        // update order (and the same arithmetic) the engines apply.
        for t in 0..j {
            let u_tj = x[perm[t]];
            if u_tj == 0.0 {
                continue;
            }
            for &(i, lv) in &lcols[t] {
                let i = i as usize;
                if !in_col[i] {
                    in_col[i] = true;
                    touched.push(i);
                }
                x[i] -= lv * u_tj;
                flops += 1;
            }
        }
        // Pivot selection among rows not yet assigned to earlier pivots.
        let mut best = usize::MAX;
        let mut best_mag = 0.0f64;
        for &i in &touched {
            if pinv[i] == usize::MAX {
                let m = x[i].abs();
                if m > best_mag || (m == best_mag && m > 0.0 && i < best) {
                    best_mag = m;
                    best = i;
                }
            }
        }
        if best == usize::MAX || best_mag == 0.0 || !best_mag.is_finite() {
            return Err(SparseError::ZeroPivot { col: j });
        }
        // Keep the natural diagonal when it clears the threshold — that
        // preserves the predicted fill pattern; otherwise swap to the
        // largest candidate.
        let diag_ok = pinv[j] == usize::MAX && x[j].abs() >= tau * best_mag && x[j] != 0.0;
        let chosen = if diag_ok { j } else { best };
        if chosen != j {
            swaps += 1;
        }
        perm[j] = chosen;
        pinv[chosen] = j;
        let piv = x[chosen];
        let mut lcol = Vec::new();
        for &i in &touched {
            if pinv[i] == usize::MAX && x[i] != 0.0 {
                lcol.push((i as Idx, x[i] / piv));
                flops += 1;
            }
        }
        lcols[j] = lcol;
        for &i in &touched {
            x[i] = 0.0;
            in_col[i] = false;
        }
        touched.clear();
    }

    Ok(PivotDiscovery {
        pinv: pinv.iter().map(|&p| p as Idx).collect(),
        swaps,
        flops: flops + n as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sparse::convert::coo_to_csr;
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::perm::permute_csr;
    use gplu_sparse::{Coo, Permutation};

    #[test]
    fn dominant_matrix_needs_no_swaps() {
        for seed in [1, 2, 3] {
            let a = random_dominant(120, 4.0, seed);
            let d = discover_pivots(&a, DEFAULT_PIVOT_TAU).expect("dominant factorizes");
            assert_eq!(d.swaps, 0, "seed {seed}: dominant diagonal must hold");
            for (r, &p) in d.pinv.iter().enumerate() {
                assert_eq!(p as usize, r, "identity pinv");
            }
            assert!(d.flops > 0);
        }
    }

    #[test]
    fn tiny_diagonal_forces_a_swap() {
        // [[eps, 1], [1, 1]]: the natural pivot eps fails tau=0.1 against
        // candidate 1.0, so rows must swap.
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1e-14);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(1, 1, 1.0);
        let a = coo_to_csr(&coo);
        let d = discover_pivots(&a, DEFAULT_PIVOT_TAU).expect("pivotable");
        // A transposition deviates from the natural diagonal in both of
        // its columns, so it counts as two swaps.
        assert_eq!(d.swaps, 2);
        assert_eq!(d.pinv, vec![1, 0], "rows exchanged");
    }

    #[test]
    fn exact_cancellation_survives_via_swap() {
        // [[1,1],[1,1]] has U(1,1) = 0 without pivoting — the matrix is
        // genuinely singular, so even discovery must reject it.
        let mut coo = Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = coo_to_csr(&coo);
        assert!(matches!(
            discover_pivots(&a, DEFAULT_PIVOT_TAU),
            Err(SparseError::ZeroPivot { col: 1 })
        ));

        // But [[1,1,0],[1,1,1],[0,1,1]] is nonsingular and only needs the
        // swap: column 1 cancels on the diagonal yet row 2 offers 1.0.
        let mut coo = Coo::new(3, 3);
        for (i, j, v) in [
            (0, 0, 1.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 1.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 2, 1.0),
        ] {
            coo.push(i, j, v);
        }
        let a = coo_to_csr(&coo);
        let d = discover_pivots(&a, DEFAULT_PIVOT_TAU).expect("swap saves it");
        assert!(d.swaps > 0);
    }

    #[test]
    fn permuted_system_factorizes_without_pivoting() {
        // The permutation discovery returns must make plain no-pivot LU
        // succeed on the permuted matrix (oracle: dense LU).
        let mut coo = Coo::new(4, 4);
        for (i, j, v) in [
            (0, 0, 1e-13),
            (0, 1, 2.0),
            (0, 3, 1.0),
            (1, 0, 3.0),
            (1, 1, 1.0),
            (1, 2, 0.5),
            (2, 1, 1.0),
            (2, 2, 4.0),
            (3, 0, 1.0),
            (3, 3, 2.0),
        ] {
            coo.push(i, j, v);
        }
        let a = coo_to_csr(&coo);
        let d = discover_pivots(&a, DEFAULT_PIVOT_TAU).expect("pivotable");
        assert!(d.swaps > 0);
        let p = Permutation::from_forward(d.pinv.clone()).expect("bijection");
        let b = permute_csr(&a, &p, &Permutation::identity(4));
        let dense = gplu_sparse::convert::csr_to_dense(&b);
        dense
            .lu_no_pivot()
            .expect("permuted system is factorizable");
    }

    #[test]
    fn full_partial_pivoting_at_tau_one() {
        let a = banded_dominant(60, 3, 9);
        // tau = 1.0 keeps the diagonal only when it ties the max — the
        // dominant diagonal always does.
        let d = discover_pivots(&a, 1.0).expect("ok");
        assert_eq!(d.swaps, 0);
    }
}
