//! Shared value storage for concurrent column factorization.
//!
//! Columns within a level are factorized by concurrent blocks (rayon
//! tasks). Each block writes only the entries of *its own* column, and
//! reads entries of columns finished in earlier levels; the level barrier
//! orders those accesses. [`ValueStore`] makes that pattern safe without
//! locks by holding the CSC value array as relaxed-atomic `f64` bits.

use std::sync::atomic::{AtomicU64, Ordering};

/// A `Vec<f64>` with relaxed atomic access.
#[derive(Debug)]
pub struct ValueStore {
    bits: Vec<AtomicU64>,
}

impl ValueStore {
    /// Builds the store from initial values.
    pub fn new(vals: &[f64]) -> Self {
        ValueStore {
            bits: vals.iter().map(|v| AtomicU64::new(v.to_bits())).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Reads entry `k`.
    #[inline]
    pub fn get(&self, k: usize) -> f64 {
        f64::from_bits(self.bits[k].load(Ordering::Relaxed))
    }

    /// Writes entry `k`.
    #[inline]
    pub fn set(&self, k: usize, v: f64) {
        self.bits[k].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `delta` to entry `k` (CAS loop) — used where
    /// *different* blocks accumulate into shared entries, e.g. the
    /// level-parallel triangular solve's right-hand-side updates.
    #[inline]
    pub fn fetch_add(&self, k: usize, delta: f64) {
        let cell = &self.bits[k];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Extracts the final values.
    pub fn into_vec(self) -> Vec<f64> {
        self.bits
            .into_iter()
            .map(|b| f64::from_bits(b.into_inner()))
            .collect()
    }

    /// Copies the current values (for diagnostics mid-run).
    pub fn snapshot(&self) -> Vec<f64> {
        self.bits
            .iter()
            .map(|b| f64::from_bits(b.load(Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let s = ValueStore::new(&[1.5, -2.25, 0.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(1), -2.25);
        s.set(1, 7.0);
        assert_eq!(s.get(1), 7.0);
        assert_eq!(s.into_vec(), vec![1.5, 7.0, 0.0]);
    }

    #[test]
    fn preserves_special_values() {
        let s = ValueStore::new(&[f64::NEG_INFINITY, -0.0]);
        assert_eq!(s.get(0), f64::NEG_INFINITY);
        assert!(s.get(1) == 0.0 && s.get(1).is_sign_negative());
    }

    #[test]
    fn concurrent_disjoint_writes() {
        use rayon::prelude::*;
        let s = ValueStore::new(&vec![0.0; 1000]);
        (0..1000usize)
            .into_par_iter()
            .for_each(|k| s.set(k, k as f64));
        let v = s.into_vec();
        assert!((0..1000).all(|k| v[k] == k as f64));
    }
}
