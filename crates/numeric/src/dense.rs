//! Dense-format GPU numeric factorization — the GLU 3.0 discipline the
//! paper's Section 3.4 starts from, and the baseline of Figure 8.
//!
//! Every concurrently active column owns an `O(n)` dense buffer on the
//! device, giving direct row indexing — but only
//! `M = L_free / (n · sizeof(dtype))` buffers fit. When a level is wider
//! than `M`, it is processed in `⌈width/M⌉` sequential batches, each a
//! separate kernel launch whose concurrency is capped at `M`; every column
//! additionally pays the buffer traffic (clear + scatter + gather) that
//! the sparse format avoids. For the huge matrices of Table 4, `M` drops
//! below `TB_max` and the device runs block-starved — the deficiency the
//! binary-search CSC format removes.
//!
//! The level-loop scaffolding lives in [`crate::engine::run_levels`]; this
//! module contributes only the [`DenseEngine`] kernel and its M-capped
//! batching.

use crate::engine::{run_levels, EngineCounters, LevelRun, NumericEngine};
use crate::error::NumericError;
use crate::outcome::{
    process_column_with, AccessDiscipline, NumericOutcome, PivotCache, PivotRule,
};
use crate::resume::{LevelHook, NumericResume};
use gplu_schedule::Levels;
use gplu_sim::{BlockCtx, Gpu, SimError};
use gplu_sparse::Csc;
use gplu_trace::{AttrValue, TraceSink, NOOP};
use std::sync::atomic::{AtomicU64, Ordering};

/// The dense-column numeric engine: direct row indexing into `O(n)`
/// scatter buffers, with concurrency capped at the paper's `M`.
pub(crate) struct DenseEngine {
    m_limit: usize,
    col_bytes: u64,
    batches: AtomicU64,
}

impl DenseEngine {
    pub(crate) fn new() -> DenseEngine {
        DenseEngine {
            m_limit: 0,
            col_bytes: 0,
            batches: AtomicU64::new(0),
        }
    }
}

impl NumericEngine for DenseEngine {
    fn kernel_name(&self) -> &'static str {
        "numeric_dense"
    }

    fn seed(&mut self, resume: &NumericResume) {
        self.batches.store(resume.batches, Ordering::Relaxed);
    }

    // Every M-capped batch allocates and frees its dense column buffers —
    // host work between launches — so even warm runs keep host launches.
    // (This is one reason the refactorization path prefers sorted CSC.)
    fn device_replay(&self) -> bool {
        false
    }

    fn begin(&mut self, gpu: &Gpu, pattern: &Csc) -> Result<(), NumericError> {
        // The paper's M: how many O(n) dense buffers fit in what remains
        // after the CSC structure and level numbers are resident.
        self.col_bytes = pattern.n_cols() as u64 * gpu.config().data_bytes;
        self.m_limit = (gpu.mem.free_bytes() / self.col_bytes) as usize;
        if self.m_limit == 0 {
            return Err(NumericError::Sim(SimError::OutOfMemory {
                requested: self.col_bytes,
                free: gpu.mem.free_bytes(),
                capacity: gpu.mem.capacity(),
            }));
        }
        Ok(())
    }

    fn run_level(&self, run: &LevelRun<'_>) -> Result<(), SimError> {
        let n = run.pattern.n_cols();
        let stripes = run.stripes;
        let m = self.m_limit.max(1);
        // Level split into batches of at most M concurrent dense buffers.
        for (chunk, batch) in run.cols.chunks(m).enumerate() {
            self.batches.fetch_add(1, Ordering::Relaxed);
            let base = chunk * m;
            let buffers = run.gpu.mem.alloc(batch.len() as u64 * self.col_bytes)?;
            run.gpu.launch_capped(
                self.kernel_name(),
                batch.len() * stripes,
                run.threads,
                self.m_limit,
                &|b: usize, ctx: &mut BlockCtx| {
                    let col = batch[b / stripes] as usize;
                    let stripe = b % stripes;
                    // Each column's work (updates + scatter/gather + the O(n)
                    // dense-buffer traffic the paper charges per column) is
                    // split across its cooperating stripes; stripe 0 performs
                    // the functional arithmetic, co-stripes charge their share
                    // of the cost from the structure alone. Right-looking
                    // execution has no per-target dependency chain, so a
                    // column costs a few block-wide steps plus its share of
                    // the (structured, flop-rate) update stream.
                    let items = run.items_of[base + b / stripes];
                    let nnz_col = (run.pattern.col_ptr[col + 1] - run.pattern.col_ptr[col]) as u64;
                    // Structured update stream at the flop rate…
                    ctx.bulk_flops(3, (items + 2 * nnz_col) / stripes as u64);
                    // …plus the O(n) dense-buffer traffic (clear + scatter +
                    // gather of an `n`-length vector): uncoalesced
                    // read-modify-write, charged at the irregular rate — the
                    // per-column tax the sparse format avoids entirely.
                    ctx.work(4 * n as u64 / stripes as u64);
                    ctx.mem((items * 8 + 4 * n as u64) / stripes as u64);
                    if stripe == 0 {
                        match process_column_with(
                            run.pattern,
                            run.vals,
                            col,
                            AccessDiscipline::Dense,
                            run.cache,
                            run.rule,
                        ) {
                            Ok((_, Some(delta))) => {
                                run.perturbs.lock().push((col, delta));
                            }
                            Ok(_) => {}
                            Err(e) => {
                                run.error.lock().get_or_insert(e);
                            }
                        }
                    }
                },
            )?;
            run.gpu.mem.free(buffers)?;
        }
        Ok(())
    }

    fn counters(&self) -> EngineCounters {
        EngineCounters {
            batches: self.batches.load(Ordering::Relaxed),
            ..EngineCounters::default()
        }
    }

    fn level_attrs(
        &self,
        _run: &LevelRun<'_>,
        delta: &EngineCounters,
        attrs: &mut Vec<(&'static str, AttrValue)>,
    ) {
        attrs.push(("batches", delta.batches.into()));
    }

    fn finish(&self, out: &mut NumericOutcome) {
        out.m_limit = Some(self.m_limit);
    }
}

/// Factorizes the filled matrix in the dense-column format.
///
/// `pattern` must carry the complete fill pattern with `A`'s values (the
/// symbolic result converted to CSC); `levels` the schedule for its
/// dependency graph.
pub fn factorize_gpu_dense(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_dense_traced(gpu, pattern, levels, &NOOP)
}

/// [`factorize_gpu_dense`] with telemetry: one `numeric.level` span per
/// schedule level; the end event carries the level's width, its A/B/C mode
/// classification, and the number of M-capped batches it took.
pub fn factorize_gpu_dense_traced(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_dense_run(gpu, pattern, levels, trace, None, None)
}

/// Full-control entry point: [`factorize_gpu_dense_traced`] plus optional
/// level-granular resume state and a per-level checkpoint hook.
pub fn factorize_gpu_dense_run(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    hook: Option<&mut LevelHook<'_>>,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_dense_run_cached(
        gpu,
        pattern,
        levels,
        trace,
        resume,
        hook,
        None,
        PivotRule::Exact,
    )
}

/// [`factorize_gpu_dense_run`] with an optional prebuilt [`PivotCache`]
/// (the pattern-keyed refactorization fast path: the cache is pattern-only,
/// so a service factorizing the same pattern repeatedly builds it once).
///
/// Unlike the sorted-CSC engines, the dense format cannot replay a
/// captured schedule device-side: every M-capped batch allocates and frees
/// its dense column buffers, which is host work between launches — so even
/// warm runs keep host launches here. (This is one reason the
/// refactorization path prefers the merge format.)
#[allow(clippy::too_many_arguments)]
pub fn factorize_gpu_dense_run_cached(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    hook: Option<&mut LevelHook<'_>>,
    pivot: Option<&PivotCache>,
    rule: PivotRule,
) -> Result<NumericOutcome, NumericError> {
    let mut engine = DenseEngine::new();
    run_levels(
        &mut engine,
        gpu,
        pattern,
        levels,
        trace,
        resume,
        hook,
        pivot,
        rule,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_schedule::{levelize_cpu, DepGraph};
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::convert::csr_to_csc;
    use gplu_sparse::gen::random::random_dominant;
    use gplu_sparse::verify::residual_probe;
    use gplu_symbolic::symbolic_cpu;

    fn setup(a: &gplu_sparse::Csr) -> (Csc, Levels) {
        let sym = symbolic_cpu(a, &CostModel::default());
        let g = DepGraph::build(&sym.result.filled);
        let levels = levelize_cpu(&g, &CostModel::default()).levels;
        (csr_to_csc(&sym.result.filled), levels)
    }

    #[test]
    fn matches_sequential_factorization() {
        let a = random_dominant(80, 4.0, 71);
        let (pattern, levels) = setup(&a);
        let gpu = Gpu::new(GpuConfig::v100());
        let out = factorize_gpu_dense(&gpu, &pattern, &levels).expect("factorizes");

        let mut seq = pattern.clone();
        crate::seq::factorize_seq(&mut seq).expect("seq ok");
        for (k, (&want, &got)) in seq.vals.iter().zip(&out.lu.vals).enumerate() {
            assert!((want - got).abs() < 1e-12, "value {k}: {want} vs {got}");
        }
        assert!(residual_probe(&a, &out.lu, 3) < 1e-10);
    }

    #[test]
    fn m_limit_caps_concurrency_and_batches() {
        // Random sparsity ⇒ wide levels (hundreds of independent columns),
        // so a single-digit M must split them into many batches.
        let a = random_dominant(256, 3.0, 72);
        let (pattern, levels) = setup(&a);
        // Tiny device: CSC + levels + ~8 dense buffers.
        let csc_bytes = ((256 + 1) as u64 + 2 * pattern.nnz() as u64) * 4;
        let mem = csc_bytes + 256 * 4 + 8 * 256 * 4 + 512;
        let gpu = Gpu::new(GpuConfig::v100().with_memory(mem));
        let out = factorize_gpu_dense(&gpu, &pattern, &levels).expect("factorizes");
        let m = out.m_limit.expect("dense reports M");
        assert!(m <= 9, "M should be ~8, got {m}");
        assert!(
            out.batches as usize > levels.n_levels(),
            "narrow M must split wide levels into batches"
        );
    }

    #[test]
    fn block_starved_device_is_slower() {
        let a = random_dominant(512, 4.0, 73);
        let (pattern, levels) = setup(&a);
        let roomy = Gpu::new(GpuConfig::v100());
        let fast = factorize_gpu_dense(&roomy, &pattern, &levels).expect("ok");
        let csc_bytes = ((512 + 1) as u64 + 2 * pattern.nnz() as u64) * 4;
        let tight =
            Gpu::new(GpuConfig::v100().with_memory(csc_bytes + 512 * 4 + 4 * 512 * 4 + 512));
        let slow = factorize_gpu_dense(&tight, &pattern, &levels).expect("ok");
        assert!(slow.time > fast.time, "M-starvation must cost time");
    }

    #[test]
    fn frees_device_memory() {
        let a = random_dominant(64, 3.0, 74);
        let (pattern, levels) = setup(&a);
        let gpu = Gpu::new(GpuConfig::v100());
        factorize_gpu_dense(&gpu, &pattern, &levels).expect("ok");
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn zero_pivot_surfaces_as_error() {
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let (pattern, levels) = setup(&a);
        let gpu = Gpu::new(GpuConfig::v100());
        let err = factorize_gpu_dense(&gpu, &pattern, &levels).unwrap_err();
        assert!(
            matches!(err, NumericError::SingularPivot { col: 1, .. }),
            "want SingularPivot in column 1, got {err}"
        );
    }
}
