//! Dense-format GPU numeric factorization — the GLU 3.0 discipline the
//! paper's Section 3.4 starts from, and the baseline of Figure 8.
//!
//! Every concurrently active column owns an `O(n)` dense buffer on the
//! device, giving direct row indexing — but only
//! `M = L_free / (n · sizeof(dtype))` buffers fit. When a level is wider
//! than `M`, it is processed in `⌈width/M⌉` sequential batches, each a
//! separate kernel launch whose concurrency is capped at `M`; every column
//! additionally pays the buffer traffic (clear + scatter + gather) that
//! the sparse format avoids. For the huge matrices of Table 4, `M` drops
//! below `TB_max` and the device runs block-starved — the deficiency the
//! binary-search CSC format removes.

use crate::error::NumericError;
use crate::modes::{classify_level_cached, launch_shape, LevelType, ModeMix};
use crate::outcome::{
    column_cost_estimate_cached, process_column, AccessDiscipline, NumericOutcome, PivotCache,
};
use crate::resume::{LevelHook, LevelProgress, NumericResume};
use crate::values::ValueStore;
use gplu_schedule::Levels;
use gplu_sim::{BlockCtx, Gpu, SimError};
use gplu_sparse::{Csc, SparseError};
use gplu_trace::{TraceSink, NOOP};
use parking_lot::Mutex;

/// Factorizes the filled matrix in the dense-column format.
///
/// `pattern` must carry the complete fill pattern with `A`'s values (the
/// symbolic result converted to CSC); `levels` the schedule for its
/// dependency graph.
pub fn factorize_gpu_dense(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_dense_traced(gpu, pattern, levels, &NOOP)
}

/// [`factorize_gpu_dense`] with telemetry: one `numeric.level` span per
/// schedule level; the end event carries the level's width, its A/B/C mode
/// classification, and the number of M-capped batches it took.
pub fn factorize_gpu_dense_traced(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_dense_run(gpu, pattern, levels, trace, None, None)
}

/// Full-control entry point: [`factorize_gpu_dense_traced`] plus optional
/// level-granular resume state and a per-level checkpoint hook.
pub fn factorize_gpu_dense_run(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    hook: Option<&mut LevelHook<'_>>,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_dense_run_cached(gpu, pattern, levels, trace, resume, hook, None)
}

/// [`factorize_gpu_dense_run`] with an optional prebuilt [`PivotCache`]
/// (the pattern-keyed refactorization fast path: the cache is pattern-only,
/// so a service factorizing the same pattern repeatedly builds it once).
///
/// Unlike the sorted-CSC engines, the dense format cannot replay a
/// captured schedule device-side: every M-capped batch allocates and frees
/// its dense column buffers, which is host work between launches — so even
/// warm runs keep host launches here. (This is one reason the
/// refactorization path prefers the merge format.)
#[allow(clippy::too_many_arguments)]
pub fn factorize_gpu_dense_run_cached(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    mut hook: Option<&mut LevelHook<'_>>,
    pivot: Option<&PivotCache>,
) -> Result<NumericOutcome, NumericError> {
    let n = pattern.n_cols();
    let before = gpu.stats();

    // Resident: the CSC structure + values (float) + level numbers.
    let csc_bytes = ((n + 1) as u64 + 2 * pattern.nnz() as u64) * 4;
    let csc_dev = gpu.mem.alloc(csc_bytes)?;
    gpu.h2d(csc_bytes);
    let lvl_dev = gpu.mem.alloc(n as u64 * 4)?;

    // The paper's M: how many O(n) dense buffers fit in what remains.
    let col_bytes = n as u64 * gpu.config().data_bytes;
    let m_limit = (gpu.mem.free_bytes() / col_bytes) as usize;
    if m_limit == 0 {
        return Err(NumericError::Sim(SimError::OutOfMemory {
            requested: col_bytes,
            free: gpu.mem.free_bytes(),
            capacity: gpu.mem.capacity(),
        }));
    }

    if let Some(r) = resume {
        r.check(pattern.nnz(), levels.groups.len())
            .map_err(NumericError::Input)?;
    }
    let start_level = resume.map_or(0, |r| r.start_level);
    let vals = match resume {
        Some(r) => ValueStore::new(&r.vals),
        None => ValueStore::new(&pattern.vals),
    };
    let cache_storage;
    let cache = match pivot {
        Some(c) => c,
        None => {
            cache_storage = PivotCache::build(pattern);
            &cache_storage
        }
    };
    let mut mix = resume.map_or_else(ModeMix::default, |r| r.mode_mix);
    let mut batches = resume.map_or(0u64, |r| r.batches);
    let error: Mutex<Option<SparseError>> = Mutex::new(None);

    for (li, cols) in levels.groups.iter().enumerate() {
        if li < start_level {
            continue; // already durable in the resumed value store
        }
        let t = classify_level_cached(pattern, cache, cols);
        match t {
            LevelType::A => mix.a += 1,
            LevelType::B => mix.b += 1,
            LevelType::C => mix.c += 1,
        }
        let (threads, stripes) = launch_shape(t);
        let batches_before = batches;
        trace.span_begin(
            "numeric.level",
            "level",
            gpu.now().as_ns(),
            &[("level", li.into()), ("width", cols.len().into())],
        );
        // Level split into batches of at most M concurrent dense buffers.
        for batch in cols.chunks(m_limit.max(1)) {
            batches += 1;
            // Hoisted: one structural cost estimate per column, shared by
            // all of its cooperating stripes.
            let items_of: Vec<u64> = batch
                .iter()
                .map(|&j| column_cost_estimate_cached(pattern, cache, j as usize).1)
                .collect();
            let buffers = gpu.mem.alloc(batch.len() as u64 * col_bytes)?;
            gpu.launch_capped(
                "numeric_dense",
                batch.len() * stripes,
                threads,
                m_limit,
                &|b: usize, ctx: &mut BlockCtx| {
                    let col = batch[b / stripes] as usize;
                    let stripe = b % stripes;
                    // Each column's work (updates + scatter/gather + the O(n)
                    // dense-buffer traffic the paper charges per column) is
                    // split across its cooperating stripes; stripe 0 performs
                    // the functional arithmetic, co-stripes charge their share
                    // of the cost from the structure alone. Right-looking
                    // execution has no per-target dependency chain, so a
                    // column costs a few block-wide steps plus its share of
                    // the (structured, flop-rate) update stream.
                    let items = items_of[b / stripes];
                    let nnz_col = (pattern.col_ptr[col + 1] - pattern.col_ptr[col]) as u64;
                    // Structured update stream at the flop rate…
                    ctx.bulk_flops(3, (items + 2 * nnz_col) / stripes as u64);
                    // …plus the O(n) dense-buffer traffic (clear + scatter +
                    // gather of an `n`-length vector): uncoalesced
                    // read-modify-write, charged at the irregular rate — the
                    // per-column tax the sparse format avoids entirely.
                    ctx.work(4 * n as u64 / stripes as u64);
                    ctx.mem((items * 8 + 4 * n as u64) / stripes as u64);
                    if stripe == 0 {
                        if let Err(e) =
                            process_column(pattern, &vals, col, AccessDiscipline::Dense, cache)
                        {
                            error.lock().get_or_insert(e);
                        }
                    }
                },
            )?;
            gpu.mem.free(buffers)?;
        }
        trace.span_end(
            "numeric.level",
            "level",
            gpu.now().as_ns(),
            &[
                ("level", li.into()),
                ("width", cols.len().into()),
                ("mode", t.letter().into()),
                ("batches", (batches - batches_before).into()),
            ],
        );
        if let Some(e) = error.lock().take() {
            return Err(NumericError::from_sparse_at_level(e, li));
        }
        if let Some(h) = hook.as_mut() {
            h(&LevelProgress {
                level: li,
                n_levels: levels.groups.len(),
                vals: &vals,
                mode_mix: mix,
                probes: 0,
                merge_steps: 0,
                batches,
            })?;
        }
    }

    gpu.mem.free(lvl_dev)?;
    gpu.d2h(pattern.nnz() as u64 * 4); // factored values back to host
    gpu.mem.free(csc_dev)?;

    let lu = Csc::from_parts_unchecked(
        pattern.n_rows(),
        n,
        pattern.col_ptr.clone(),
        pattern.row_idx.clone(),
        vals.into_vec(),
    );
    let stats = gpu.stats().since(&before);
    Ok(NumericOutcome {
        lu,
        time: stats.now,
        stats,
        mode_mix: mix,
        m_limit: Some(m_limit),
        batches,
        probes: 0,
        merge_steps: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_schedule::{levelize_cpu, DepGraph};
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::convert::csr_to_csc;
    use gplu_sparse::gen::random::random_dominant;
    use gplu_sparse::verify::residual_probe;
    use gplu_symbolic::symbolic_cpu;

    fn setup(a: &gplu_sparse::Csr) -> (Csc, Levels) {
        let sym = symbolic_cpu(a, &CostModel::default());
        let g = DepGraph::build(&sym.result.filled);
        let levels = levelize_cpu(&g, &CostModel::default()).levels;
        (csr_to_csc(&sym.result.filled), levels)
    }

    #[test]
    fn matches_sequential_factorization() {
        let a = random_dominant(80, 4.0, 71);
        let (pattern, levels) = setup(&a);
        let gpu = Gpu::new(GpuConfig::v100());
        let out = factorize_gpu_dense(&gpu, &pattern, &levels).expect("factorizes");

        let mut seq = pattern.clone();
        crate::seq::factorize_seq(&mut seq).expect("seq ok");
        for (k, (&want, &got)) in seq.vals.iter().zip(&out.lu.vals).enumerate() {
            assert!((want - got).abs() < 1e-12, "value {k}: {want} vs {got}");
        }
        assert!(residual_probe(&a, &out.lu, 3) < 1e-10);
    }

    #[test]
    fn m_limit_caps_concurrency_and_batches() {
        // Random sparsity ⇒ wide levels (hundreds of independent columns),
        // so a single-digit M must split them into many batches.
        let a = random_dominant(256, 3.0, 72);
        let (pattern, levels) = setup(&a);
        // Tiny device: CSC + levels + ~8 dense buffers.
        let csc_bytes = ((256 + 1) as u64 + 2 * pattern.nnz() as u64) * 4;
        let mem = csc_bytes + 256 * 4 + 8 * 256 * 4 + 512;
        let gpu = Gpu::new(GpuConfig::v100().with_memory(mem));
        let out = factorize_gpu_dense(&gpu, &pattern, &levels).expect("factorizes");
        let m = out.m_limit.expect("dense reports M");
        assert!(m <= 9, "M should be ~8, got {m}");
        assert!(
            out.batches as usize > levels.n_levels(),
            "narrow M must split wide levels into batches"
        );
    }

    #[test]
    fn block_starved_device_is_slower() {
        let a = random_dominant(512, 4.0, 73);
        let (pattern, levels) = setup(&a);
        let roomy = Gpu::new(GpuConfig::v100());
        let fast = factorize_gpu_dense(&roomy, &pattern, &levels).expect("ok");
        let csc_bytes = ((512 + 1) as u64 + 2 * pattern.nnz() as u64) * 4;
        let tight =
            Gpu::new(GpuConfig::v100().with_memory(csc_bytes + 512 * 4 + 4 * 512 * 4 + 512));
        let slow = factorize_gpu_dense(&tight, &pattern, &levels).expect("ok");
        assert!(slow.time > fast.time, "M-starvation must cost time");
    }

    #[test]
    fn frees_device_memory() {
        let a = random_dominant(64, 3.0, 74);
        let (pattern, levels) = setup(&a);
        let gpu = Gpu::new(GpuConfig::v100());
        factorize_gpu_dense(&gpu, &pattern, &levels).expect("ok");
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn zero_pivot_surfaces_as_error() {
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let (pattern, levels) = setup(&a);
        let gpu = Gpu::new(GpuConfig::v100());
        let err = factorize_gpu_dense(&gpu, &pattern, &levels).unwrap_err();
        assert!(
            matches!(err, NumericError::SingularPivot { col: 1, .. }),
            "want SingularPivot in column 1, got {err}"
        );
    }
}
