//! Sequential numeric factorization — the exact-arithmetic reference the
//! GPU variants are verified against.
//!
//! This is the host-side instantiation of the unified engine interface:
//! it runs the *same* kernel core as every GPU engine
//! ([`crate::outcome::process_column`], merge discipline) one column at a
//! time in column order — exactly the serialization every level schedule
//! reduces to. The update order inside a column (dependency columns
//! ascending, then division) is therefore byte-for-byte what the parallel
//! engines apply, so results are bit-identical across all engines by
//! construction rather than by parallel-to-sequential transliteration.

use crate::outcome::{process_column_with, AccessDiscipline, PivotCache, PivotRule};
use crate::values::ValueStore;
use gplu_sparse::{Csc, SparseError};

/// Factorizes the filled matrix sequentially: on return `lu` holds the
/// combined factor (unit-diagonal `L` strictly below, `U` on and above the
/// diagonal).
///
/// `lu` must carry the *complete* fill pattern (from symbolic
/// factorization) — a missing fill position would silently drop an update,
/// which is why the symbolic phase must precede this one.
pub fn factorize_seq(lu: &mut Csc) -> Result<(), SparseError> {
    factorize_seq_rule(lu, PivotRule::Exact).map(|_| ())
}

/// [`factorize_seq`] under an explicit engine-level [`PivotRule`]; returns
/// the static-perturbation deltas applied, as `(col, delta)` in column
/// order. The reference for verifying that every GPU engine applies the
/// same rule at the same point.
pub fn factorize_seq_rule(lu: &mut Csc, rule: PivotRule) -> Result<Vec<(usize, f64)>, SparseError> {
    let cache = PivotCache::build(lu);
    let vals = ValueStore::new(&lu.vals);
    let mut perturbs = Vec::new();
    for j in 0..lu.n_cols() {
        let (_, perturb) =
            process_column_with(lu, &vals, j, AccessDiscipline::Merge, &cache, rule)?;
        if let Some(delta) = perturb {
            perturbs.push((j, delta));
        }
    }
    lu.vals = vals.into_vec();
    Ok(perturbs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sim::CostModel;
    use gplu_sparse::convert::{csr_to_csc, csr_to_dense};
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::verify::{residual_dense, residual_probe};
    use gplu_symbolic::symbolic_cpu;

    fn filled_csc(a: &gplu_sparse::Csr) -> Csc {
        csr_to_csc(&symbolic_cpu(a, &CostModel::default()).result.filled)
    }

    #[test]
    fn matches_dense_oracle() {
        let a = random_dominant(30, 4.0, 51);
        let mut lu = filled_csc(&a);
        factorize_seq(&mut lu).expect("factorizes");
        let dense_lu = csr_to_dense(&a).lu_no_pivot().expect("oracle factorizes");
        // Compare entrywise at the sparse positions.
        for j in 0..30 {
            for (i, v) in lu.col_iter(j) {
                assert!(
                    (v - dense_lu[(i, j)]).abs() < 1e-10,
                    "entry ({i},{j}): sparse {v} vs dense {}",
                    dense_lu[(i, j)]
                );
            }
        }
    }

    #[test]
    fn residual_is_small() {
        let a = banded_dominant(200, 4, 52);
        let mut lu = filled_csc(&a);
        factorize_seq(&mut lu).expect("factorizes");
        assert!(residual_probe(&a, &lu, 4) < 1e-10);
    }

    #[test]
    fn residual_dense_on_small_case() {
        let a = random_dominant(16, 3.0, 53);
        let mut lu = filled_csc(&a);
        factorize_seq(&mut lu).expect("factorizes");
        assert!(residual_dense(&a, &lu) < 1e-11);
    }

    #[test]
    fn rejects_zero_pivot() {
        // A matrix engineered to hit an exact zero pivot: [[1,1],[1,1]]
        // gives U(1,1) = 1 - 1*1 = 0.
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let mut lu = filled_csc(&a);
        assert!(matches!(
            factorize_seq(&mut lu),
            Err(SparseError::ZeroPivot { col: 1 })
        ));
    }

    #[test]
    fn identity_factorizes_to_itself() {
        let a = gplu_sparse::Csr::identity(5);
        let mut lu = filled_csc(&a);
        factorize_seq(&mut lu).expect("factorizes");
        for j in 0..5 {
            assert_eq!(lu.get(j, j), Some(1.0));
        }
    }
}
