//! Sequential numeric factorization — the exact-arithmetic reference the
//! GPU variants are verified against, and the functional core they share.
//!
//! Operates in place on the CSC value array of the filled matrix. The
//! update order (dependency columns ascending, then division) is byte-for-
//! byte the order the parallel versions apply per column, so results are
//! bit-identical across all engines.

use gplu_sparse::{Csc, SparseError};

/// Factorizes the filled matrix sequentially: on return `lu` holds the
/// combined factor (unit-diagonal `L` strictly below, `U` on and above the
/// diagonal).
///
/// `lu` must carry the *complete* fill pattern (from symbolic
/// factorization) — a missing fill position would silently drop an update,
/// which is why the symbolic phase must precede this one.
pub fn factorize_seq(lu: &mut Csc) -> Result<(), SparseError> {
    let n = lu.n_cols();
    for j in 0..n {
        factorize_column_seq(lu, j)?;
    }
    Ok(())
}

/// Processes one column (gather updates from finished columns, then
/// divide) — the per-column work every engine performs.
fn factorize_column_seq(lu: &mut Csc, j: usize) -> Result<(), SparseError> {
    let (start, end) = (lu.col_ptr[j], lu.col_ptr[j + 1]);
    // Dependency columns: entries of column j strictly above the diagonal
    // (the U part), ascending — each must already be final.
    for k in start..end {
        let t = lu.row_idx[k] as usize;
        if t >= j {
            break;
        }
        let u_tj = lu.vals[k];
        if u_tj == 0.0 {
            continue;
        }
        // As(i, j) -= As(i, t) * As(t, j) for every i > t in column t.
        let t_lower = lu.lower_bound_after(t, t);
        let t_end = lu.col_ptr[t + 1];
        // Merge the L part of column t into column j's tail: both row
        // lists ascend, so a two-pointer merge touches each entry once.
        let mut dst = k + 1;
        for src in t_lower..t_end {
            let i = lu.row_idx[src];
            while dst < end && lu.row_idx[dst] < i {
                dst += 1;
            }
            // A row present in L(:, t) but absent in column j would be a
            // symbolic-phase bug: Theorem 1 closes the pattern over
            // exactly these (i, t, j) paths.
            debug_assert!(
                dst < end && lu.row_idx[dst] == i,
                "missing fill position ({i}, {j})"
            );
            if dst < end && lu.row_idx[dst] == i {
                lu.vals[dst] -= lu.vals[src] * u_tj;
                dst += 1;
            }
        }
    }
    // Division: As(i, j) /= As(j, j) for i > j.
    let (diag_pos, _) = lu.find_in_col(j, j);
    let diag_pos = diag_pos.ok_or(SparseError::ZeroDiagonal { row: j })?;
    let pivot = lu.vals[diag_pos];
    if pivot == 0.0 || !pivot.is_finite() {
        return Err(SparseError::ZeroPivot { col: j });
    }
    for k in (diag_pos + 1)..end {
        lu.vals[k] /= pivot;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sim::CostModel;
    use gplu_sparse::convert::{csr_to_csc, csr_to_dense};
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::verify::{residual_dense, residual_probe};
    use gplu_symbolic::symbolic_cpu;

    fn filled_csc(a: &gplu_sparse::Csr) -> Csc {
        csr_to_csc(&symbolic_cpu(a, &CostModel::default()).result.filled)
    }

    #[test]
    fn matches_dense_oracle() {
        let a = random_dominant(30, 4.0, 51);
        let mut lu = filled_csc(&a);
        factorize_seq(&mut lu).expect("factorizes");
        let dense_lu = csr_to_dense(&a).lu_no_pivot().expect("oracle factorizes");
        // Compare entrywise at the sparse positions.
        for j in 0..30 {
            for (i, v) in lu.col_iter(j) {
                assert!(
                    (v - dense_lu[(i, j)]).abs() < 1e-10,
                    "entry ({i},{j}): sparse {v} vs dense {}",
                    dense_lu[(i, j)]
                );
            }
        }
    }

    #[test]
    fn residual_is_small() {
        let a = banded_dominant(200, 4, 52);
        let mut lu = filled_csc(&a);
        factorize_seq(&mut lu).expect("factorizes");
        assert!(residual_probe(&a, &lu, 4) < 1e-10);
    }

    #[test]
    fn residual_dense_on_small_case() {
        let a = random_dominant(16, 3.0, 53);
        let mut lu = filled_csc(&a);
        factorize_seq(&mut lu).expect("factorizes");
        assert!(residual_dense(&a, &lu) < 1e-11);
    }

    #[test]
    fn rejects_zero_pivot() {
        // A matrix engineered to hit an exact zero pivot: [[1,1],[1,1]]
        // gives U(1,1) = 1 - 1*1 = 0.
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let mut lu = filled_csc(&a);
        assert!(matches!(
            factorize_seq(&mut lu),
            Err(SparseError::ZeroPivot { col: 1 })
        ));
    }

    #[test]
    fn identity_factorizes_to_itself() {
        let a = gplu_sparse::Csr::identity(5);
        let mut lu = filled_csc(&a);
        factorize_seq(&mut lu).expect("factorizes");
        for j in 0..5 {
            assert_eq!(lu.get(j, j), Some(1.0));
        }
    }
}
