//! The fleet numeric driver: level-partitioned factorization across a
//! [`DeviceFleet`].
//!
//! Within one schedule level every column depends only on columns of
//! *earlier* levels, so a level's columns can be computed anywhere — the
//! split changes which device pays for which column, never the values.
//! [`run_levels_fleet`] partitions each level's columns into contiguous
//! per-device chunks, runs the same [`NumericEngine`] kernels the
//! single-device driver runs, then prices the **boundary-column
//! all-gather** at the level barrier (every device must see the level's
//! updated column values before the next level starts) on the fleet's
//! NVLink interconnect. Values live in one shared host-side
//! [`ValueStore`] — the simulator separates functional execution from
//! pricing — which is what makes fleet results bit-identical to the
//! single-device run for every engine and device count.
//!
//! A device failure (injected OOM or launch fault) marks the device dead
//! and reshards its chunk onto the survivors; column recomputation is
//! idempotent, so the retry is safe. Injected crashes stay terminal, as
//! everywhere else in the pipeline.
//!
//! The fleet path is a cold end-to-end run: level-granular resume and
//! the captured-schedule replay fast path remain single-device features.

use crate::blocked::{BlockPlan, BlockedEngine};
use crate::dense::DenseEngine;
use crate::engine::{LevelRun, NumericEngine};
use crate::error::NumericError;
use crate::merge::MergeEngine;
use crate::modes::{launch_shape, ModeMix};
use crate::outcome::{column_cost_estimate_cached, NumericOutcome, PivotCache, PivotRule};
use crate::sparse::SparseEngine;
use crate::values::ValueStore;
use gplu_schedule::Levels;
use gplu_sim::{split_even, DeviceAlloc, DeviceFleet, SimError, SimTime};
use gplu_sparse::{Csc, Idx, SparseError};
use gplu_trace::TraceSink;
use parking_lot::Mutex;

/// Outcome of a fleet numeric run: the ordinary [`NumericOutcome`]
/// (bit-identical factors, makespan time) plus fleet accounting.
#[derive(Debug, Clone)]
pub struct FleetNumericOutcome {
    /// The factors and counters, as the single-device driver reports them.
    pub outcome: NumericOutcome,
    /// Per-device simulated time spent in this phase, indexed by device
    /// ordinal.
    pub per_device: Vec<SimTime>,
    /// Devices that died during this phase (their chunks were resharded).
    pub died: Vec<usize>,
    /// Columns re-run on survivors after device deaths.
    pub resharded_cols: usize,
}

/// Runs `engine` over the level schedule sharded across the live devices
/// of `fleet`. See the module docs for the partitioning and exchange
/// discipline.
pub fn run_levels_fleet<E: NumericEngine>(
    engine: &mut E,
    fleet: &DeviceFleet,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    rule: PivotRule,
) -> Result<FleetNumericOutcome, NumericError> {
    let n = pattern.n_cols();
    let before: Vec<_> = fleet.devices().iter().map(|g| g.stats()).collect();
    let mut died: Vec<usize> = Vec::new();
    let mut resharded_cols = 0usize;

    // Stage the CSC structure + values + level numbers on every live
    // device (each holds a full copy, the GSoFa layout the symbolic
    // fleet also uses). A device that cannot even stage is dead on
    // arrival for this phase.
    let csc_bytes = ((n + 1) as u64 + 2 * pattern.nnz() as u64) * 4;
    let mut arenas: Vec<Option<(DeviceAlloc, DeviceAlloc)>> = Vec::new();
    for d in 0..fleet.len() {
        arenas.push(None);
        if fleet.is_dead(d) {
            continue;
        }
        let gpu = fleet.device(d);
        let staged = gpu.mem.alloc(csc_bytes).and_then(|csc_dev| {
            gpu.h2d(csc_bytes);
            match gpu.mem.alloc(n as u64 * 4) {
                Ok(lvl_dev) => Ok((csc_dev, lvl_dev)),
                Err(e) => {
                    let _ = gpu.mem.free(csc_dev);
                    Err(e)
                }
            }
        });
        match staged {
            Ok(pair) => arenas[d] = Some(pair),
            Err(e @ SimError::Crashed { .. }) => return Err(e.into()),
            Err(_) => {
                fleet.mark_dead(d);
                died.push(d);
            }
        }
    }
    let alive = fleet.alive();
    let Some(&lead) = alive.first() else {
        return Err(NumericError::Sim(SimError::BadLaunch(
            "no live devices in fleet".into(),
        )));
    };
    engine.begin(fleet.device(lead), pattern)?;

    let vals = ValueStore::new(&pattern.vals);
    let cache = PivotCache::build(pattern);
    let mut mix = ModeMix::default();
    let error: Mutex<Option<SparseError>> = Mutex::new(None);
    let perturbs: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());

    for (li, cols) in levels.groups.iter().enumerate() {
        let t = engine.classify(pattern, &cache, cols);
        match t {
            crate::modes::LevelType::A => mix.a += 1,
            crate::modes::LevelType::B => mix.b += 1,
            crate::modes::LevelType::C => mix.c += 1,
        }
        let (threads, stripes) = launch_shape(t);
        trace.span_begin(
            "numeric.level",
            "level",
            fleet.makespan().as_ns(),
            &[
                ("level", li.into()),
                ("width", cols.len().into()),
                ("devices", fleet.n_alive().into()),
            ],
        );
        let items_of: Vec<u64> = cols
            .iter()
            .map(|&j| column_cost_estimate_cached(pattern, &cache, j as usize).1)
            .collect();

        // Contiguous per-device column chunks; `gather_bytes[d]` collects
        // the value bytes device d actually produced this level (reshards
        // shift bytes to the survivors that did the work).
        let mut gather_bytes = vec![0u64; fleet.len()];
        let owners = fleet.alive();
        let mut pending: Vec<(usize, Vec<usize>)> = {
            let ranges = split_even(cols.len(), owners.len());
            owners
                .iter()
                .zip(ranges)
                .map(|(&d, r)| (d, r.collect::<Vec<usize>>()))
                .collect()
        };
        let mut last_err: Option<SimError> = None;
        while !pending.is_empty() {
            let mut failed_idx: Vec<usize> = Vec::new();
            for (d, idx) in pending.drain(..) {
                if idx.is_empty() {
                    continue;
                }
                let gpu = fleet.device(d);
                let chunk_cols: Vec<Idx> = idx.iter().map(|&i| cols[i]).collect();
                let chunk_items: Vec<u64> = idx.iter().map(|&i| items_of[i]).collect();
                let run = LevelRun {
                    gpu,
                    pattern,
                    cache: &cache,
                    vals: &vals,
                    error: &error,
                    level: li,
                    cols: &chunk_cols,
                    mode: t,
                    threads,
                    stripes,
                    items_of: &chunk_items,
                    rule,
                    perturbs: &perturbs,
                    tail_launch: false,
                };
                match engine.run_level(&run) {
                    Ok(()) => {
                        gather_bytes[d] += chunk_cols
                            .iter()
                            .map(|&j| {
                                let j = j as usize;
                                (pattern.col_ptr[j + 1] - pattern.col_ptr[j]) as u64 * 8
                            })
                            .sum::<u64>();
                    }
                    Err(e @ SimError::Crashed { .. }) => return Err(e.into()),
                    Err(e) => {
                        if let Some((csc_dev, lvl_dev)) = arenas[d].take() {
                            let _ = fleet.device(d).mem.free(lvl_dev);
                            let _ = fleet.device(d).mem.free(csc_dev);
                        }
                        fleet.mark_dead(d);
                        died.push(d);
                        failed_idx.extend(idx);
                        last_err = Some(e);
                    }
                }
            }
            if failed_idx.is_empty() {
                break;
            }
            let survivors = fleet.alive();
            if survivors.is_empty() {
                return Err(NumericError::Sim(last_err.unwrap_or(SimError::BadLaunch(
                    "every fleet device died during numeric".into(),
                ))));
            }
            resharded_cols += failed_idx.len();
            let mut shards: Vec<(usize, Vec<usize>)> =
                survivors.iter().map(|&d| (d, Vec::new())).collect();
            for (i, ci) in failed_idx.into_iter().enumerate() {
                shards[i % survivors.len()].1.push(ci);
            }
            pending = shards;
        }

        // Level barrier: all-gather the level's updated columns so every
        // device enters the next level with the full value state.
        fleet.all_gather(&gather_bytes);
        trace.span_end(
            "numeric.level",
            "level",
            fleet.makespan().as_ns(),
            &[
                ("level", li.into()),
                ("width", cols.len().into()),
                ("mode", t.letter().into()),
                ("devices", fleet.n_alive().into()),
            ],
        );
        if let Some(e) = error.lock().take() {
            return Err(NumericError::from_sparse_at_level(e, li));
        }
    }

    // Tear down the arenas; one device ships the (identical) factored
    // values back to the host.
    for (d, arena) in arenas.iter_mut().enumerate() {
        if let Some((csc_dev, lvl_dev)) = arena.take() {
            let gpu = fleet.device(d);
            gpu.mem.free(lvl_dev)?;
            gpu.mem.free(csc_dev)?;
        }
    }
    let ship = fleet.alive().first().copied().unwrap_or(lead);
    fleet.device(ship).d2h(pattern.nnz() as u64 * 4);
    fleet.barrier();

    let lu = Csc::from_parts_unchecked(
        pattern.n_rows(),
        n,
        pattern.col_ptr.clone(),
        pattern.row_idx.clone(),
        vals.into_vec(),
    );
    let per_device: Vec<SimTime> = fleet
        .devices()
        .iter()
        .zip(&before)
        .map(|(g, b)| g.stats().since(b).now)
        .collect();
    let makespan = fleet
        .alive()
        .iter()
        .map(|&d| per_device[d])
        .fold(SimTime::ZERO, SimTime::max);
    let stats = fleet.device(ship).stats().since(&before[ship]);
    let c = engine.counters();
    let mut perturbations = perturbs.into_inner();
    perturbations.sort_unstable_by_key(|&(col, _)| col);
    // A chunk that partially ran before its device died records its
    // perturbations twice when the survivor re-runs it; the recomputed
    // deltas are identical, so dedup by column.
    perturbations.dedup_by_key(|&mut (col, _)| col);
    let mut out = NumericOutcome {
        lu,
        time: makespan,
        stats,
        mode_mix: mix,
        m_limit: None,
        batches: c.batches,
        probes: c.probes,
        merge_steps: c.merge_steps,
        gemm_tiles: c.gemm_tiles,
        perturbations,
    };
    engine.finish(&mut out);
    Ok(FleetNumericOutcome {
        outcome: out,
        per_device,
        died,
        resharded_cols,
    })
}

/// Merge-join engine across a fleet (the production numeric path).
pub fn factorize_fleet_merge(
    fleet: &DeviceFleet,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    rule: PivotRule,
) -> Result<FleetNumericOutcome, NumericError> {
    let mut engine = MergeEngine::new();
    run_levels_fleet(&mut engine, fleet, pattern, levels, trace, rule)
}

/// Binary-search engine across a fleet.
pub fn factorize_fleet_sparse(
    fleet: &DeviceFleet,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    rule: PivotRule,
) -> Result<FleetNumericOutcome, NumericError> {
    let mut engine = SparseEngine::new(None);
    run_levels_fleet(&mut engine, fleet, pattern, levels, trace, rule)
}

/// Dense-column engine across a fleet.
pub fn factorize_fleet_dense(
    fleet: &DeviceFleet,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    rule: PivotRule,
) -> Result<FleetNumericOutcome, NumericError> {
    let mut engine = DenseEngine::new();
    run_levels_fleet(&mut engine, fleet, pattern, levels, trace, rule)
}

/// Supernode-blocked engine across a fleet.
pub fn factorize_fleet_blocked(
    fleet: &DeviceFleet,
    pattern: &Csc,
    levels: &Levels,
    plan: &BlockPlan,
    trace: &dyn TraceSink,
    rule: PivotRule,
) -> Result<FleetNumericOutcome, NumericError> {
    let mut engine = BlockedEngine::new(plan);
    run_levels_fleet(&mut engine, fleet, pattern, levels, trace, rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::factorize_gpu_merge;
    use gplu_schedule::{levelize_cpu, DepGraph};
    use gplu_sim::{CostModel, Gpu, GpuConfig};
    use gplu_sparse::convert::csr_to_csc;
    use gplu_sparse::gen::random::banded_dominant;
    use gplu_symbolic::symbolic_cpu;
    use gplu_trace::NOOP;

    /// `blocks` independent banded chains: every schedule level is
    /// `blocks` wide, so a fleet actually has columns to split.
    fn block_banded(blocks: usize, m: usize, band: usize, seed: u64) -> gplu_sparse::Csr {
        let n = blocks * m;
        let mut coo = gplu_sparse::Coo::new(n, n);
        for b in 0..blocks {
            let base = b * m;
            let block = banded_dominant(m, band, seed.wrapping_add(b as u64));
            for i in 0..m {
                for (j, v) in block.row_iter(i) {
                    coo.push(base + i, base + j, v);
                }
            }
        }
        gplu_sparse::gen::assemble_dominant(coo, 1.0)
    }

    fn setup(blocks: usize, m: usize, band: usize, seed: u64) -> (Csc, Levels) {
        let a = block_banded(blocks, m, band, seed);
        let sym = symbolic_cpu(&a, &CostModel::default());
        let g = DepGraph::build(&sym.result.filled);
        let levels = levelize_cpu(&g, &CostModel::default()).levels;
        (csr_to_csc(&sym.result.filled), levels)
    }

    fn fleet(_pattern: &Csc, k: usize) -> DeviceFleet {
        DeviceFleet::new(k, GpuConfig::v100())
    }

    #[test]
    fn fleet_matches_single_device_bits_for_every_engine_and_count() {
        let (pattern, levels) = setup(10, 50, 4, 71);
        let single_gpu = Gpu::new(GpuConfig::v100());
        let single = factorize_gpu_merge(&single_gpu, &pattern, &levels).expect("single");
        let plan = BlockPlan::detect(&pattern, &PivotCache::build(&pattern), 0.5);
        for k in [1, 2, 4, 8] {
            let runs: Vec<(&str, FleetNumericOutcome)> = vec![
                (
                    "merge",
                    factorize_fleet_merge(
                        &fleet(&pattern, k),
                        &pattern,
                        &levels,
                        &NOOP,
                        PivotRule::Exact,
                    )
                    .expect("merge"),
                ),
                (
                    "sparse",
                    factorize_fleet_sparse(
                        &fleet(&pattern, k),
                        &pattern,
                        &levels,
                        &NOOP,
                        PivotRule::Exact,
                    )
                    .expect("sparse"),
                ),
                (
                    "dense",
                    factorize_fleet_dense(
                        &fleet(&pattern, k),
                        &pattern,
                        &levels,
                        &NOOP,
                        PivotRule::Exact,
                    )
                    .expect("dense"),
                ),
                (
                    "blocked",
                    factorize_fleet_blocked(
                        &fleet(&pattern, k),
                        &pattern,
                        &levels,
                        &plan,
                        &NOOP,
                        PivotRule::Exact,
                    )
                    .expect("blocked"),
                ),
            ];
            for (name, out) in runs {
                assert_eq!(
                    single.lu.vals, out.outcome.lu.vals,
                    "{name} k={k} must be bit-identical"
                );
                assert!(out.died.is_empty());
            }
        }
    }

    #[test]
    fn fleet_scaling_reduces_makespan_and_prices_exchange() {
        // Wide levels (2048 chains) so a single device is wave-limited, and
        // scaled launch/interconnect latencies so per-level compute — the
        // part the fleet actually divides — dominates the fixed overheads,
        // as it does at production matrix sizes.
        let (pattern, levels) = setup(2048, 10, 6, 72);
        let cost = CostModel::default().scaled_latencies(10);
        let f1 = DeviceFleet::with_cost(1, GpuConfig::v100(), cost.clone());
        let one =
            factorize_fleet_merge(&f1, &pattern, &levels, &NOOP, PivotRule::Exact).expect("k=1");
        let f4 = DeviceFleet::with_cost(4, GpuConfig::v100(), cost);
        let four =
            factorize_fleet_merge(&f4, &pattern, &levels, &NOOP, PivotRule::Exact).expect("k=4");
        assert!(
            four.outcome.time.as_ns() < one.outcome.time.as_ns(),
            "4 devices {} must beat 1 device {}",
            four.outcome.time,
            one.outcome.time
        );
        assert_eq!(f1.stats().interconnect.exchanges, 0);
        let ic = f4.stats().interconnect;
        assert!(ic.exchanges > 0, "level barriers must price the exchange");
        assert!(ic.bytes > 0);
    }

    #[test]
    fn dead_device_reshards_mid_phase_bit_identically() {
        let (pattern, levels) = setup(8, 50, 4, 73);
        let single_gpu = Gpu::new(GpuConfig::v100());
        let single = factorize_gpu_merge(&single_gpu, &pattern, &levels).expect("single");
        // Device 1 loses its launch path after 3 successful level chunks.
        let plans =
            gplu_sim::FaultPlan::parse_fleet("dev=1:badlaunch:numeric_merge=4:persistent", 4)
                .expect("plans");
        let f = DeviceFleet::with_fault_plans(4, GpuConfig::v100(), CostModel::default(), &plans);
        let out = factorize_fleet_merge(&f, &pattern, &levels, &NOOP, PivotRule::Exact)
            .expect("fleet survives");
        assert_eq!(out.died, vec![1]);
        assert!(out.resharded_cols > 0);
        assert_eq!(f.n_alive(), 3);
        assert_eq!(single.lu.vals, out.outcome.lu.vals, "bit-identical");
    }
}
