//! Shared outcome type, the per-column functional kernel core, and the
//! per-factorization pivot-position cache.

use crate::modes::ModeMix;
use crate::values::ValueStore;
use gplu_sim::{GpuStatsSnapshot, SimTime};
use gplu_sparse::{Csc, SparseError};

/// Result of a GPU numeric factorization.
#[derive(Debug, Clone)]
pub struct NumericOutcome {
    /// The combined factor (unit-diagonal `L` strictly below the diagonal,
    /// `U` on and above) on the filled pattern.
    pub lu: Csc,
    /// Simulated time of the numeric phase.
    pub time: SimTime,
    /// GPU statistics delta.
    pub stats: GpuStatsSnapshot,
    /// How many levels ran in each kernel mode.
    pub mode_mix: ModeMix,
    /// Dense format only: the `M = L_free/(n·sizeof)` concurrency limit.
    pub m_limit: Option<usize>,
    /// Dense format only: total batched kernel launches (levels split into
    /// `⌈width/M⌉` batches).
    pub batches: u64,
    /// Binary-search format only: total probes (Algorithm 6).
    pub probes: u64,
    /// Merge format only: total two-pointer advances of the destination
    /// cursor (the streaming analog of `probes`).
    pub merge_steps: u64,
    /// Blocked format only: total BLAS-3 update tiles executed by the
    /// supernode block kernels.
    pub gemm_tiles: u64,
    /// Static-pivoting deltas applied at division time, as
    /// `(col, delta)` sorted by column — empty unless the run used
    /// [`PivotRule::Perturb`] and a pivot actually fell below the floor.
    /// The factors exactly factor the input with each `a_jj` bumped by
    /// its delta, so callers mirror these into the matrix before any
    /// residual check.
    pub perturbations: Vec<(usize, f64)>,
}

/// How a numeric kernel locates the update targets inside a destination
/// column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDiscipline {
    /// Dense per-column buffers (GLU 3.0): each target row indexes an
    /// `O(n)` scatter buffer directly. Functionally realized here as an
    /// ascending merge, which touches the same positions once each.
    Dense,
    /// Sorted CSC with per-element binary search — the paper's
    /// Algorithm 6. Every located target pays `log2(nnz_col)` probes.
    BinarySearch,
    /// Sorted CSC with a two-pointer merge-join of the source segment and
    /// the destination column. Both sides are sorted by row, so one
    /// forward walk locates every target: `O(nnz_t + nnz_j)` per update
    /// instead of `O(nnz_t · log nnz_j)`, and no probe surcharge.
    Merge,
}

/// Per-factorization cache of the two structural positions every engine
/// otherwise re-derives over and over: for each column `j`, the position
/// of the diagonal entry `(j, j)` and the first strictly-sub-diagonal
/// position `lower_bound_after(j, j)`.
///
/// Built once per factorization in `O(nnz)`; afterwards the per-column
/// pivot lookup and the per-dependency source-segment start are `O(1)`
/// array reads instead of binary searches. (The binary-search *update*
/// probes of Algorithm 6 are unaffected — those locate fill positions in
/// the destination column, which this cache cannot know.)
#[derive(Debug, Clone)]
pub struct PivotCache {
    /// Position of `(j, j)` in column `j`'s index range, or `usize::MAX`
    /// when the diagonal is structurally absent.
    diag_pos: Vec<usize>,
    /// `lower_bound_after(j, j)`: first position in column `j` whose row
    /// exceeds `j`.
    lower_start: Vec<usize>,
}

impl PivotCache {
    /// Scans the pattern once and records both positions for every column.
    pub fn build(pattern: &Csc) -> PivotCache {
        let n = pattern.n_cols();
        let mut diag_pos = vec![usize::MAX; n];
        let mut lower_start = vec![0usize; n];
        for j in 0..n {
            let lb = pattern.lower_bound_after(j, j);
            lower_start[j] = lb;
            if lb > pattern.col_ptr[j] && pattern.row_idx[lb - 1] as usize == j {
                diag_pos[j] = lb - 1;
            }
        }
        PivotCache {
            diag_pos,
            lower_start,
        }
    }

    /// Position of the diagonal entry of column `j`, if present.
    #[inline]
    pub fn diag(&self, j: usize) -> Option<usize> {
        let p = self.diag_pos[j];
        (p != usize::MAX).then_some(p)
    }

    /// First position in column `j` whose row index exceeds `j` (the start
    /// of the `L` segment).
    #[inline]
    pub fn lower_start(&self, j: usize) -> usize {
        self.lower_start[j]
    }

    /// Number of columns covered.
    pub fn len(&self) -> usize {
        self.diag_pos.len()
    }

    /// True when built for an empty pattern.
    pub fn is_empty(&self) -> bool {
        self.diag_pos.is_empty()
    }
}

/// Engine-level pivot handling, derived from the pipeline's
/// `PivotPolicy` and threaded through [`crate::engine::run_levels`] into
/// every kernel core call.
///
/// Only the *static* policy acts at this layer: a column's pivot value is
/// final before its division step (the level barrier guarantees every
/// update has been applied), so clamping a tiny pivot at division time is
/// deterministic, independent of the access discipline, and identical
/// across all five engines — the bit-identity contract survives.
/// Threshold pivoting, by contrast, is a host-side *pre-pass*
/// ([`crate::pivoting::discover_pivots`]) that permutes the artifacts
/// before any engine runs; at this layer it looks like [`PivotRule::Exact`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PivotRule {
    /// Reject zero/non-finite pivots with [`SparseError::ZeroPivot`]
    /// (the historical behavior; also what threshold-pivoted runs use).
    #[default]
    Exact,
    /// Static perturbation: a pivot with `|pivot| < threshold` is replaced
    /// by `±threshold` (keeping its sign; `+threshold` for an exact zero)
    /// before the division. Equivalent to bumping the input diagonal
    /// `a_jj` by the same delta, so the factors exactly factor the
    /// perturbed matrix.
    Perturb {
        /// The magnitude floor below which pivots are clamped.
        threshold: f64,
    },
}

impl PivotRule {
    /// Applies the rule to a finished pivot value: returns the value to
    /// divide by and the delta added to it (`None` when untouched).
    #[inline]
    pub fn apply(self, pivot: f64) -> (f64, Option<f64>) {
        match self {
            PivotRule::Exact => (pivot, None),
            PivotRule::Perturb { threshold } => {
                if pivot.is_finite() && pivot.abs() < threshold {
                    let clamped = if pivot == 0.0 {
                        threshold
                    } else {
                        pivot.signum() * threshold
                    };
                    (clamped, Some(clamped - pivot))
                } else {
                    (pivot, None)
                }
            }
        }
    }
}

/// Operation counts of one column's factorization, for cost charging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColCosts {
    /// Dependency columns consumed (update steps).
    pub deps: u64,
    /// Multiply–add items applied.
    pub items: u64,
    /// Binary-search probes (binary-search access only).
    pub probes: u64,
    /// Destination-cursor advances (merge access only).
    pub merge_steps: u64,
    /// Entries of the column (scatter/gather volume for the dense format).
    pub nnz: u64,
}

/// Factorizes column `j` against finished columns, reading and writing
/// through the atomic [`ValueStore`] (`pattern` supplies the immutable
/// structure, `cache` the pre-computed pivot/segment positions).
///
/// `discipline` selects the access pattern being modelled — see
/// [`AccessDiscipline`]. All three apply bit-identical arithmetic in the
/// same order; they differ only in how target positions are located and
/// which counters ([`ColCosts::probes`] / [`ColCosts::merge_steps`]) they
/// accumulate.
///
/// Only the block owning column `j` calls this for `j`, so the writes are
/// data-race-free; reads target columns finished in earlier levels.
pub fn process_column(
    pattern: &Csc,
    vals: &ValueStore,
    j: usize,
    discipline: AccessDiscipline,
    cache: &PivotCache,
) -> Result<ColCosts, SparseError> {
    process_column_with(pattern, vals, j, discipline, cache, PivotRule::Exact).map(|(c, _)| c)
}

/// [`process_column`] with an explicit [`PivotRule`]. Returns the column's
/// costs plus the static-perturbation delta applied to the pivot, if any;
/// the perturbed pivot is written back into the value store so the factor
/// is self-consistent (it exactly factors the input with `a_jj` bumped by
/// the delta).
pub fn process_column_with(
    pattern: &Csc,
    vals: &ValueStore,
    j: usize,
    discipline: AccessDiscipline,
    cache: &PivotCache,
    rule: PivotRule,
) -> Result<(ColCosts, Option<f64>), SparseError> {
    let mut costs = ColCosts::default();
    let (start, end) = (pattern.col_ptr[j], pattern.col_ptr[j + 1]);
    costs.nnz = (end - start) as u64;

    for k in start..end {
        let t = pattern.row_idx[k] as usize;
        if t >= j {
            break;
        }
        costs.deps += 1;
        let u_tj = vals.get(k);
        if u_tj == 0.0 {
            continue;
        }
        let t_lower = cache.lower_start(t);
        let t_end = pattern.col_ptr[t + 1];
        match discipline {
            AccessDiscipline::BinarySearch => {
                for src in t_lower..t_end {
                    let i = pattern.row_idx[src] as usize;
                    let (pos, probes) = pattern.find_in_col(i, j);
                    costs.probes += probes as u64;
                    costs.items += 1;
                    let pos = pos.ok_or(SparseError::MissingFill { row: i, col: j })?;
                    vals.set(pos, vals.get(pos) - vals.get(src) * u_tj);
                }
            }
            AccessDiscipline::Dense => {
                // Dense discipline: direct indexing; functionally an
                // ascending merge locates the same positions with one
                // touch per entry.
                let mut dst = k + 1;
                for src in t_lower..t_end {
                    let i = pattern.row_idx[src];
                    while dst < end && pattern.row_idx[dst] < i {
                        dst += 1;
                    }
                    if dst >= end || pattern.row_idx[dst] != i {
                        return Err(SparseError::MissingFill {
                            row: i as usize,
                            col: j,
                        });
                    }
                    costs.items += 1;
                    vals.set(dst, vals.get(dst) - vals.get(src) * u_tj);
                    dst += 1;
                }
            }
            AccessDiscipline::Merge => {
                // Merge-join: both the source segment and the destination
                // column are sorted by row, so a single forward walk of
                // `dst` locates every target. Each cursor advance is one
                // streamed comparison — counted, never repeated.
                let mut dst = k + 1;
                for src in t_lower..t_end {
                    let i = pattern.row_idx[src];
                    while dst < end && pattern.row_idx[dst] < i {
                        dst += 1;
                        costs.merge_steps += 1;
                    }
                    if dst >= end || pattern.row_idx[dst] != i {
                        return Err(SparseError::MissingFill {
                            row: i as usize,
                            col: j,
                        });
                    }
                    costs.items += 1;
                    vals.set(dst, vals.get(dst) - vals.get(src) * u_tj);
                    dst += 1;
                    costs.merge_steps += 1;
                }
            }
        }
    }

    // Division by the pivot — position served by the cache, not a search.
    // The pivot value is final here (the level barrier ordered every
    // update before this call), so the static-perturbation rule applies
    // deterministically regardless of engine or access discipline.
    let diag_pos = cache.diag(j).ok_or(SparseError::ZeroDiagonal { row: j })?;
    let (pivot, perturbed) = rule.apply(vals.get(diag_pos));
    if pivot == 0.0 || !pivot.is_finite() {
        return Err(SparseError::ZeroPivot { col: j });
    }
    if perturbed.is_some() {
        vals.set(diag_pos, pivot);
    }
    for k in (diag_pos + 1)..end {
        costs.items += 1;
        vals.set(k, vals.get(k) / pivot);
    }
    Ok((costs, perturbed))
}

/// Structural cost estimate of a column's factorization: `(deps, items)`
/// where `items` counts the multiply–adds plus the division entries. Used
/// by cost-only co-stripes (type-C cooperative blocks) without touching
/// values; exact up to deps whose current value happens to be 0.0.
pub fn column_cost_estimate(pattern: &Csc, j: usize) -> (u64, u64) {
    let (start, end) = (pattern.col_ptr[j], pattern.col_ptr[j + 1]);
    let mut deps = 0u64;
    let mut items = 0u64;
    for k in start..end {
        let t = pattern.row_idx[k] as usize;
        if t >= j {
            break;
        }
        deps += 1;
        items += (pattern.col_ptr[t + 1] - pattern.lower_bound_after(t, t)) as u64;
    }
    items += (end - pattern.lower_bound_after(j, j)) as u64;
    (deps, items)
}

/// As [`column_cost_estimate`], but with every `lower_bound_after` served
/// by the [`PivotCache`] — `O(nnz_j)` with no binary searches. The engines
/// call this once per column per level (hoisted out of the per-stripe
/// closures) and hand the result to every stripe.
pub fn column_cost_estimate_cached(pattern: &Csc, cache: &PivotCache, j: usize) -> (u64, u64) {
    let (start, end) = (pattern.col_ptr[j], pattern.col_ptr[j + 1]);
    let mut deps = 0u64;
    let mut items = 0u64;
    for k in start..end {
        let t = pattern.row_idx[k] as usize;
        if t >= j {
            break;
        }
        deps += 1;
        items += (pattern.col_ptr[t + 1] - cache.lower_start(t)) as u64;
    }
    items += (end - cache.lower_start(j)) as u64;
    (deps, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sim::CostModel;
    use gplu_sparse::convert::csr_to_csc;
    use gplu_sparse::gen::random::random_dominant;
    use gplu_symbolic::symbolic_cpu;

    fn filled(a: &gplu_sparse::Csr) -> Csc {
        csr_to_csc(&symbolic_cpu(a, &CostModel::default()).result.filled)
    }

    const ALL: [AccessDiscipline; 3] = [
        AccessDiscipline::Dense,
        AccessDiscipline::BinarySearch,
        AccessDiscipline::Merge,
    ];

    #[test]
    fn all_disciplines_match_sequential() {
        let a = random_dominant(40, 4.0, 61);
        let pattern = filled(&a);
        let cache = PivotCache::build(&pattern);
        let mut seq = pattern.clone();
        crate::seq::factorize_seq(&mut seq).expect("seq factorizes");

        for &d in &ALL {
            let vals = ValueStore::new(&pattern.vals);
            for j in 0..40 {
                process_column(&pattern, &vals, j, d, &cache).expect("column ok");
            }
            let got = vals.into_vec();
            for (k, (&want, got)) in seq.vals.iter().zip(&got).enumerate() {
                assert!(
                    (want - got).abs() < 1e-12,
                    "{d:?}: value {k} differs: {want} vs {got}"
                );
            }
        }
    }

    #[test]
    fn merge_is_bit_identical_to_sequential() {
        // Merge walks positions in exactly the sequential order, so the
        // factors must agree to the last bit, not merely to a tolerance.
        let a = random_dominant(60, 5.0, 63);
        let pattern = filled(&a);
        let cache = PivotCache::build(&pattern);
        let mut seq = pattern.clone();
        crate::seq::factorize_seq(&mut seq).expect("seq factorizes");

        let vals = ValueStore::new(&pattern.vals);
        for j in 0..60 {
            process_column(&pattern, &vals, j, AccessDiscipline::Merge, &cache).expect("ok");
        }
        assert_eq!(vals.into_vec(), seq.vals);
    }

    #[test]
    fn probes_counted_only_for_binary_search() {
        let a = random_dominant(30, 4.0, 62);
        let pattern = filled(&a);
        let cache = PivotCache::build(&pattern);
        let vals = ValueStore::new(&pattern.vals);
        let mut dense_probes = 0;
        let mut items = 0;
        for j in 0..30 {
            let c =
                process_column(&pattern, &vals, j, AccessDiscipline::Dense, &cache).expect("ok");
            dense_probes += c.probes;
            items += c.items;
        }
        // With the pivot cache even the diagonal lookup is search-free.
        assert_eq!(dense_probes, 0);
        assert!(items > 0);

        let vals = ValueStore::new(&pattern.vals);
        let mut sparse_probes = 0;
        for j in 0..30 {
            sparse_probes +=
                process_column(&pattern, &vals, j, AccessDiscipline::BinarySearch, &cache)
                    .expect("ok")
                    .probes;
        }
        assert!(sparse_probes > 0, "binary search must pay probes");
    }

    #[test]
    fn merge_steps_bound_by_column_traffic() {
        // Each destination entry is passed at most once per dependency, so
        // merge_steps ≤ Σ_deps nnz_j — the O(nnz) streaming bound; probes
        // stay zero.
        let a = random_dominant(50, 5.0, 64);
        let pattern = filled(&a);
        let cache = PivotCache::build(&pattern);
        let vals = ValueStore::new(&pattern.vals);
        for j in 0..50 {
            let c =
                process_column(&pattern, &vals, j, AccessDiscipline::Merge, &cache).expect("ok");
            assert_eq!(c.probes, 0);
            assert!(
                c.merge_steps <= c.deps * c.nnz,
                "col {j}: merge_steps {} exceeds deps·nnz {}",
                c.merge_steps,
                c.deps * c.nnz
            );
        }
    }

    #[test]
    fn pivot_cache_matches_searches() {
        let a = random_dominant(35, 4.0, 65);
        let pattern = filled(&a);
        let cache = PivotCache::build(&pattern);
        assert_eq!(cache.len(), 35);
        for j in 0..35 {
            assert_eq!(cache.diag(j), pattern.find_in_col(j, j).0, "diag {j}");
            assert_eq!(
                cache.lower_start(j),
                pattern.lower_bound_after(j, j),
                "lower {j}"
            );
        }
    }

    #[test]
    fn cached_cost_estimate_matches_uncached() {
        let a = random_dominant(45, 4.0, 66);
        let pattern = filled(&a);
        let cache = PivotCache::build(&pattern);
        for j in 0..45 {
            assert_eq!(
                column_cost_estimate_cached(&pattern, &cache, j),
                column_cost_estimate(&pattern, j),
                "col {j}"
            );
        }
    }

    #[test]
    fn perturb_rule_clamps_tiny_pivots_and_keeps_sign() {
        let rule = PivotRule::Perturb { threshold: 1e-3 };
        assert_eq!(rule.apply(5.0), (5.0, None));
        assert_eq!(rule.apply(-5.0), (-5.0, None));
        let (p, d) = rule.apply(0.0);
        assert_eq!(p, 1e-3);
        assert_eq!(d, Some(1e-3));
        let (p, d) = rule.apply(1e-6);
        assert_eq!(p, 1e-3);
        assert_eq!(d, Some(1e-3 - 1e-6));
        let (p, d) = rule.apply(-1e-6);
        assert_eq!(p, -1e-3);
        assert_eq!(d, Some(-1e-3 + 1e-6));
        // Non-finite pivots are never masked by a perturbation.
        assert_eq!(rule.apply(f64::NAN).1, None);
    }

    #[test]
    fn perturb_rule_survives_exact_zero_pivot() {
        // [[1,1],[1,1]] cancels to an exact zero pivot in column 1; the
        // perturb rule must clamp it instead of erroring, and the clamped
        // value must land in the store.
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let pattern = filled(&a);
        let cache = PivotCache::build(&pattern);
        let vals = ValueStore::new(&pattern.vals);
        let rule = PivotRule::Perturb { threshold: 1e-8 };
        for j in 0..2 {
            process_column_with(&pattern, &vals, j, AccessDiscipline::Merge, &cache, rule)
                .expect("perturbed column factorizes");
        }
        let got = vals.into_vec();
        let diag1 = cache.diag(1).expect("diagonal present");
        assert_eq!(got[diag1], 1e-8, "clamped pivot written back");
    }

    #[test]
    fn zero_pivot_detected() {
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let pattern = filled(&a);
        let cache = PivotCache::build(&pattern);
        let vals = ValueStore::new(&pattern.vals);
        process_column(&pattern, &vals, 0, AccessDiscipline::BinarySearch, &cache)
            .expect("col 0 fine");
        assert!(matches!(
            process_column(&pattern, &vals, 1, AccessDiscipline::BinarySearch, &cache),
            Err(SparseError::ZeroPivot { col: 1 })
        ));
    }
}
