//! Shared outcome type and the per-column functional kernel core.

use crate::modes::ModeMix;
use crate::values::ValueStore;
use gplu_sim::{GpuStatsSnapshot, SimTime};
use gplu_sparse::{Csc, SparseError};

/// Result of a GPU numeric factorization.
#[derive(Debug, Clone)]
pub struct NumericOutcome {
    /// The combined factor (unit-diagonal `L` strictly below the diagonal,
    /// `U` on and above) on the filled pattern.
    pub lu: Csc,
    /// Simulated time of the numeric phase.
    pub time: SimTime,
    /// GPU statistics delta.
    pub stats: GpuStatsSnapshot,
    /// How many levels ran in each kernel mode.
    pub mode_mix: ModeMix,
    /// Dense format only: the `M = L_free/(n·sizeof)` concurrency limit.
    pub m_limit: Option<usize>,
    /// Dense format only: total batched kernel launches (levels split into
    /// `⌈width/M⌉` batches).
    pub batches: u64,
    /// Sparse format only: total binary-search probes (Algorithm 6).
    pub probes: u64,
}

/// Operation counts of one column's factorization, for cost charging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColCosts {
    /// Dependency columns consumed (update steps).
    pub deps: u64,
    /// Multiply–add items applied.
    pub items: u64,
    /// Binary-search probes (sparse access only).
    pub probes: u64,
    /// Entries of the column (scatter/gather volume for the dense format).
    pub nnz: u64,
}

/// Factorizes column `j` against finished columns, reading and writing
/// through the atomic [`ValueStore`] (`pattern` supplies the immutable
/// structure).
///
/// `use_binary_search` selects the access discipline being modelled:
/// * `false` — dense format: the column sits in an `O(n)` dense buffer, so
///   each target row is located directly (functionally we use the merge
///   position, which touches each entry once, like the dense scatter),
/// * `true` — sorted-CSC format: every target row is located with the
///   binary search of the paper's Algorithm 6 and the probes are counted.
///
/// Only the block owning column `j` calls this for `j`, so the writes are
/// data-race-free; reads target columns finished in earlier levels.
pub fn process_column(
    pattern: &Csc,
    vals: &ValueStore,
    j: usize,
    use_binary_search: bool,
) -> Result<ColCosts, SparseError> {
    let mut costs = ColCosts::default();
    let (start, end) = (pattern.col_ptr[j], pattern.col_ptr[j + 1]);
    costs.nnz = (end - start) as u64;

    for k in start..end {
        let t = pattern.row_idx[k] as usize;
        if t >= j {
            break;
        }
        costs.deps += 1;
        let u_tj = vals.get(k);
        if u_tj == 0.0 {
            continue;
        }
        let t_lower = pattern.lower_bound_after(t, t);
        let t_end = pattern.col_ptr[t + 1];
        if use_binary_search {
            for src in t_lower..t_end {
                let i = pattern.row_idx[src] as usize;
                let (pos, probes) = pattern.find_in_col(i, j);
                costs.probes += probes as u64;
                costs.items += 1;
                let pos = pos.unwrap_or_else(|| {
                    unreachable!("missing fill position ({i}, {j}); symbolic closure violated")
                });
                vals.set(pos, vals.get(pos) - vals.get(src) * u_tj);
            }
        } else {
            // Dense discipline: direct indexing; functionally an ascending
            // merge locates the same positions with one touch per entry.
            let mut dst = k + 1;
            for src in t_lower..t_end {
                let i = pattern.row_idx[src];
                while dst < end && pattern.row_idx[dst] < i {
                    dst += 1;
                }
                debug_assert!(
                    dst < end && pattern.row_idx[dst] == i,
                    "missing fill position ({i}, {j})"
                );
                costs.items += 1;
                vals.set(dst, vals.get(dst) - vals.get(src) * u_tj);
                dst += 1;
            }
        }
    }

    // Division by the pivot.
    let (diag_pos, probes) = pattern.find_in_col(j, j);
    costs.probes += probes as u64;
    let diag_pos = diag_pos.ok_or(SparseError::ZeroDiagonal { row: j })?;
    let pivot = vals.get(diag_pos);
    if pivot == 0.0 || !pivot.is_finite() {
        return Err(SparseError::ZeroPivot { col: j });
    }
    for k in (diag_pos + 1)..end {
        costs.items += 1;
        vals.set(k, vals.get(k) / pivot);
    }
    Ok(costs)
}

/// Structural cost estimate of a column's factorization: `(deps, items)`
/// where `items` counts the multiply–adds plus the division entries. Used
/// by cost-only co-stripes (type-C cooperative blocks) without touching
/// values; exact up to deps whose current value happens to be 0.0.
pub fn column_cost_estimate(pattern: &Csc, j: usize) -> (u64, u64) {
    let (start, end) = (pattern.col_ptr[j], pattern.col_ptr[j + 1]);
    let mut deps = 0u64;
    let mut items = 0u64;
    for k in start..end {
        let t = pattern.row_idx[k] as usize;
        if t >= j {
            break;
        }
        deps += 1;
        items += (pattern.col_ptr[t + 1] - pattern.lower_bound_after(t, t)) as u64;
    }
    items += (end - pattern.lower_bound_after(j, j)) as u64;
    (deps, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sim::CostModel;
    use gplu_sparse::convert::csr_to_csc;
    use gplu_sparse::gen::random::random_dominant;
    use gplu_symbolic::symbolic_cpu;

    fn filled(a: &gplu_sparse::Csr) -> Csc {
        csr_to_csc(&symbolic_cpu(a, &CostModel::default()).result.filled)
    }

    #[test]
    fn both_disciplines_match_sequential() {
        let a = random_dominant(40, 4.0, 61);
        let pattern = filled(&a);
        let mut seq = pattern.clone();
        crate::seq::factorize_seq(&mut seq).expect("seq factorizes");

        for &bs in &[false, true] {
            let vals = ValueStore::new(&pattern.vals);
            for j in 0..40 {
                process_column(&pattern, &vals, j, bs).expect("column ok");
            }
            let got = vals.into_vec();
            for (k, (&want, got)) in seq.vals.iter().zip(&got).enumerate() {
                assert!(
                    (want - got).abs() < 1e-12,
                    "bs={bs}: value {k} differs: {want} vs {got}"
                );
            }
        }
    }

    #[test]
    fn probes_counted_only_for_binary_search() {
        let a = random_dominant(30, 4.0, 62);
        let pattern = filled(&a);
        let vals = ValueStore::new(&pattern.vals);
        let mut dense_probes = 0;
        let mut items = 0;
        for j in 0..30 {
            let c = process_column(&pattern, &vals, j, false).expect("ok");
            dense_probes += c.probes;
            items += c.items;
        }
        // Dense discipline only probes for the diagonal lookup.
        assert!(dense_probes <= 30 * 8);
        assert!(items > 0);

        let vals = ValueStore::new(&pattern.vals);
        let mut sparse_probes = 0;
        for j in 0..30 {
            sparse_probes += process_column(&pattern, &vals, j, true).expect("ok").probes;
        }
        assert!(sparse_probes > dense_probes, "binary search must pay probes");
    }

    #[test]
    fn zero_pivot_detected() {
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let pattern = filled(&a);
        let vals = ValueStore::new(&pattern.vals);
        process_column(&pattern, &vals, 0, true).expect("col 0 fine");
        assert!(matches!(
            process_column(&pattern, &vals, 1, true),
            Err(SparseError::ZeroPivot { col: 1 })
        ));
    }
}
