//! Sorted-CSC GPU numeric factorization with **merge-join** access — the
//! streaming refinement of the paper's Algorithm 6.
//!
//! Algorithm 6 keeps the factor in sorted CSC and locates every update
//! target with a per-element binary search: `O(log nnz_j)` probes per
//! multiply–add, `O(nnz · log nnz)` over the factorization. But *both*
//! sides of an update are sorted by row — the source segment (the rows of
//! column `t` below its diagonal) and the destination column `j` — so a
//! two-pointer merge-join locates the same positions with one forward walk:
//! `O(nnz_t + nnz_j)` per update, `O(nnz)` overall, and perfectly coalesced
//! (both cursors only move forward).
//!
//! The cost model prices this as the pure item stream — no probe surcharge
//! (compare [`crate::sparse`], which charges
//! [`gplu_sim::CostModel::probe_flop_items`] on top). Like the
//! binary-search engine it needs no per-column dense buffers, so all
//! `TB_max` blocks stay resident regardless of `n`.

use crate::error::NumericError;
use crate::modes::{classify_level_cached, launch_shape, LevelType, ModeMix};
use crate::outcome::{
    column_cost_estimate_cached, process_column, AccessDiscipline, NumericOutcome, PivotCache,
};
use crate::resume::{LevelHook, LevelProgress, NumericResume};
use crate::values::ValueStore;
use gplu_schedule::Levels;
use gplu_sim::{BlockCtx, Gpu};
use gplu_sparse::{Csc, SparseError};
use gplu_trace::{TraceSink, NOOP};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Factorizes the filled matrix in sorted CSC with merge-join access.
pub fn factorize_gpu_merge(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_merge_traced(gpu, pattern, levels, &NOOP)
}

/// [`factorize_gpu_merge`] with telemetry: one `numeric.level` span per
/// schedule level; the end event carries the level's width, its A/B/C
/// mode, and the merge-cursor steps the level contributed.
pub fn factorize_gpu_merge_traced(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_merge_run(gpu, pattern, levels, trace, None, None)
}

/// Full-control entry point: [`factorize_gpu_merge_traced`] plus optional
/// level-granular resume state and a per-level checkpoint hook.
pub fn factorize_gpu_merge_run(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    hook: Option<&mut LevelHook<'_>>,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_merge_run_cached(gpu, pattern, levels, trace, resume, hook, None)
}

/// [`factorize_gpu_merge_run`] with an optional prebuilt [`PivotCache`]
/// (the pattern-keyed refactorization fast path: the cache is pattern-only,
/// so a service factorizing the same pattern repeatedly builds it once).
///
/// A supplied cache also marks the run as a **captured-schedule replay**:
/// the level sequence was already executed once, so the host does not need
/// to orchestrate it level by level. The first executed level is
/// host-launched as the kick-off; every later level is tail-launched from
/// the device (the paper's Algorithm 5 dynamic-parallelism discipline),
/// paying [`gplu_sim::CostModel::device_launch_ns`] instead of
/// [`gplu_sim::CostModel::host_launch_ns`] — on deep, narrow schedules the
/// host launch overhead *is* the numeric phase, and this removes it.
pub fn factorize_gpu_merge_run_cached(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    mut hook: Option<&mut LevelHook<'_>>,
    pivot: Option<&PivotCache>,
) -> Result<NumericOutcome, NumericError> {
    let n = pattern.n_cols();
    let before = gpu.stats();

    let csc_bytes = ((n + 1) as u64 + 2 * pattern.nnz() as u64) * 4;
    let csc_dev = gpu.mem.alloc(csc_bytes)?;
    gpu.h2d(csc_bytes);
    let lvl_dev = gpu.mem.alloc(n as u64 * 4)?;

    if let Some(r) = resume {
        r.check(pattern.nnz(), levels.groups.len())
            .map_err(NumericError::Input)?;
    }
    let start_level = resume.map_or(0, |r| r.start_level);
    let vals = match resume {
        Some(r) => ValueStore::new(&r.vals),
        None => ValueStore::new(&pattern.vals),
    };
    let cache_storage;
    let cache = match pivot {
        Some(c) => c,
        None => {
            cache_storage = PivotCache::build(pattern);
            &cache_storage
        }
    };
    let mut mix = resume.map_or_else(ModeMix::default, |r| r.mode_mix);
    let total_merge_steps = AtomicU64::new(resume.map_or(0, |r| r.merge_steps));
    let error: Mutex<Option<SparseError>> = Mutex::new(None);
    // Captured-schedule replay (prebuilt pivot cache ⇒ the schedule already
    // ran once): the host kicks off the first level, every later level is
    // tail-launched device-side, Algorithm-5 style.
    let replay = pivot.is_some();
    let mut kicked_off = false;

    for (li, cols) in levels.groups.iter().enumerate() {
        if li < start_level {
            continue; // already durable in the resumed value store
        }
        let t = classify_level_cached(pattern, cache, cols);
        match t {
            LevelType::A => mix.a += 1,
            LevelType::B => mix.b += 1,
            LevelType::C => mix.c += 1,
        }
        let (threads, stripes) = launch_shape(t);
        let steps_before = total_merge_steps.load(Ordering::Relaxed);
        trace.span_begin(
            "numeric.level",
            "level",
            gpu.now().as_ns(),
            &[("level", li.into()), ("width", cols.len().into())],
        );
        // Hoisted: one structural cost estimate per column, shared by all
        // of its cooperating stripes (type C runs 64 per column).
        let items_of: Vec<u64> = cols
            .iter()
            .map(|&j| column_cost_estimate_cached(pattern, cache, j as usize).1)
            .collect();
        let kernel = |b: usize, ctx: &mut BlockCtx| {
            let col = cols[b / stripes] as usize;
            let stripe = b % stripes;
            let items = items_of[b / stripes];
            // Streaming traffic only: the merge cursors advance once per
            // touched entry, so the whole update is the item stream at the
            // structured flop rate — no probe surcharge, and the same
            // value-stream bytes as the binary-search engine (the index
            // bytes the cursor walk touches ride the same cache lines).
            ctx.bulk_flops(3, items / stripes as u64);
            ctx.mem(items * 8 / stripes as u64);
            if stripe == 0 {
                match process_column(pattern, &vals, col, AccessDiscipline::Merge, cache) {
                    Ok(c) => {
                        total_merge_steps.fetch_add(c.merge_steps, Ordering::Relaxed);
                    }
                    Err(e) => {
                        error.lock().get_or_insert(e);
                    }
                }
            }
        };
        let grid = cols.len() * stripes;
        if replay && kicked_off {
            gpu.launch_device("numeric_merge", grid, threads, &kernel)?;
        } else {
            gpu.launch("numeric_merge", grid, threads, &kernel)?;
        }
        kicked_off = true;
        trace.span_end(
            "numeric.level",
            "level",
            gpu.now().as_ns(),
            &[
                ("level", li.into()),
                ("width", cols.len().into()),
                ("mode", t.letter().into()),
                (
                    "merge_steps",
                    (total_merge_steps.load(Ordering::Relaxed) - steps_before).into(),
                ),
            ],
        );
        if let Some(e) = error.lock().take() {
            return Err(NumericError::from_sparse_at_level(e, li));
        }
        if let Some(h) = hook.as_mut() {
            h(&LevelProgress {
                level: li,
                n_levels: levels.groups.len(),
                vals: &vals,
                mode_mix: mix,
                probes: 0,
                merge_steps: total_merge_steps.load(Ordering::Relaxed),
                batches: 0,
            })?;
        }
    }

    gpu.mem.free(lvl_dev)?;
    gpu.d2h(pattern.nnz() as u64 * 4);
    gpu.mem.free(csc_dev)?;

    let lu = Csc::from_parts_unchecked(
        pattern.n_rows(),
        n,
        pattern.col_ptr.clone(),
        pattern.row_idx.clone(),
        vals.into_vec(),
    );
    let stats = gpu.stats().since(&before);
    Ok(NumericOutcome {
        lu,
        time: stats.now,
        stats,
        mode_mix: mix,
        m_limit: None,
        batches: 0,
        probes: 0,
        merge_steps: total_merge_steps.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::factorize_gpu_sparse;
    use gplu_schedule::{levelize_cpu, DepGraph};
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::convert::csr_to_csc;
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::verify::residual_probe;
    use gplu_symbolic::symbolic_cpu;

    fn setup(a: &gplu_sparse::Csr) -> (Csc, Levels) {
        let sym = symbolic_cpu(a, &CostModel::default());
        let g = DepGraph::build(&sym.result.filled);
        let levels = levelize_cpu(&g, &CostModel::default()).levels;
        (csr_to_csc(&sym.result.filled), levels)
    }

    #[test]
    fn matches_binary_search_engine_bitwise() {
        let a = random_dominant(100, 4.0, 91);
        let (pattern, levels) = setup(&a);
        let merge =
            factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("merge ok");
        let bsearch = factorize_gpu_sparse(&Gpu::new(GpuConfig::v100()), &pattern, &levels)
            .expect("bsearch ok");
        assert_eq!(
            merge.lu.vals, bsearch.lu.vals,
            "identical update order ⇒ identical bits"
        );
        assert!(residual_probe(&a, &merge.lu, 3) < 1e-10);
    }

    #[test]
    fn counts_merge_steps_not_probes() {
        let a = banded_dominant(200, 4, 92);
        let (pattern, levels) = setup(&a);
        let out = factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("ok");
        assert_eq!(out.probes, 0);
        assert!(
            out.merge_steps > 0,
            "merge must report its streaming traffic"
        );
        assert!(out.m_limit.is_none());
    }

    #[test]
    fn beats_binary_search_in_simulated_time() {
        // Same launches, same item streams — the only difference is the
        // probe surcharge, so merge must come out strictly faster.
        let a = banded_dominant(2000, 6, 93);
        let (pattern, levels) = setup(&a);
        let merge =
            factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("merge ok");
        let bsearch = factorize_gpu_sparse(&Gpu::new(GpuConfig::v100()), &pattern, &levels)
            .expect("bsearch ok");
        assert!(
            merge.time < bsearch.time,
            "merge {} must beat binary search {}",
            merge.time,
            bsearch.time
        );
    }

    #[test]
    fn frees_device_memory() {
        let a = random_dominant(64, 3.0, 94);
        let (pattern, levels) = setup(&a);
        let gpu = Gpu::new(GpuConfig::v100());
        factorize_gpu_merge(&gpu, &pattern, &levels).expect("ok");
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn singular_pivot_is_typed() {
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let (pattern, levels) = setup(&a);
        let err = factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels).unwrap_err();
        assert!(
            matches!(err, crate::NumericError::SingularPivot { col: 1, .. }),
            "want SingularPivot in column 1, got {err}"
        );
    }
}
