//! Sorted-CSC GPU numeric factorization with **merge-join** access — the
//! streaming refinement of the paper's Algorithm 6.
//!
//! Algorithm 6 keeps the factor in sorted CSC and locates every update
//! target with a per-element binary search: `O(log nnz_j)` probes per
//! multiply–add, `O(nnz · log nnz)` over the factorization. But *both*
//! sides of an update are sorted by row — the source segment (the rows of
//! column `t` below its diagonal) and the destination column `j` — so a
//! two-pointer merge-join locates the same positions with one forward walk:
//! `O(nnz_t + nnz_j)` per update, `O(nnz)` overall, and perfectly coalesced
//! (both cursors only move forward).
//!
//! The cost model prices this as the pure item stream — no probe surcharge
//! (compare [`crate::sparse`], which charges
//! [`gplu_sim::CostModel::probe_flop_items`] on top). Like the
//! binary-search engine it needs no per-column dense buffers, so all
//! `TB_max` blocks stay resident regardless of `n`.
//!
//! The level-loop scaffolding lives in [`crate::engine::run_levels`]; this
//! module contributes only the [`MergeEngine`] kernel.

use crate::engine::{run_levels, EngineCounters, LevelRun, NumericEngine};
use crate::error::NumericError;
use crate::outcome::{
    process_column_with, AccessDiscipline, NumericOutcome, PivotCache, PivotRule,
};
use crate::resume::{LevelHook, NumericResume};
use gplu_schedule::Levels;
use gplu_sim::{BlockCtx, Gpu, SimError};
use gplu_sparse::Csc;
use gplu_trace::{AttrValue, TraceSink, NOOP};
use std::sync::atomic::{AtomicU64, Ordering};

/// The merge-join numeric engine: streaming two-pointer update location,
/// priced as the pure item stream.
pub(crate) struct MergeEngine {
    steps: AtomicU64,
}

impl MergeEngine {
    pub(crate) fn new() -> MergeEngine {
        MergeEngine {
            steps: AtomicU64::new(0),
        }
    }
}

impl NumericEngine for MergeEngine {
    fn kernel_name(&self) -> &'static str {
        "numeric_merge"
    }

    fn seed(&mut self, resume: &NumericResume) {
        self.steps.store(resume.merge_steps, Ordering::Relaxed);
    }

    fn run_level(&self, run: &LevelRun<'_>) -> Result<(), SimError> {
        let stripes = run.stripes;
        let kernel = |b: usize, ctx: &mut BlockCtx| {
            let col = run.cols[b / stripes] as usize;
            let stripe = b % stripes;
            let items = run.items_of[b / stripes];
            // Streaming traffic only: the merge cursors advance once per
            // touched entry, so the whole update is the item stream at the
            // structured flop rate — no probe surcharge, and the same
            // value-stream bytes as the binary-search engine (the index
            // bytes the cursor walk touches ride the same cache lines).
            ctx.bulk_flops(3, items / stripes as u64);
            ctx.mem(items * 8 / stripes as u64);
            if stripe == 0 {
                match process_column_with(
                    run.pattern,
                    run.vals,
                    col,
                    AccessDiscipline::Merge,
                    run.cache,
                    run.rule,
                ) {
                    Ok((c, perturb)) => {
                        self.steps.fetch_add(c.merge_steps, Ordering::Relaxed);
                        if let Some(delta) = perturb {
                            run.perturbs.lock().push((col, delta));
                        }
                    }
                    Err(e) => {
                        run.error.lock().get_or_insert(e);
                    }
                }
            }
        };
        run.launch(self.kernel_name(), &kernel)
    }

    fn counters(&self) -> EngineCounters {
        EngineCounters {
            merge_steps: self.steps.load(Ordering::Relaxed),
            ..EngineCounters::default()
        }
    }

    fn level_attrs(
        &self,
        _run: &LevelRun<'_>,
        delta: &EngineCounters,
        attrs: &mut Vec<(&'static str, AttrValue)>,
    ) {
        attrs.push(("merge_steps", delta.merge_steps.into()));
    }
}

/// Factorizes the filled matrix in sorted CSC with merge-join access.
pub fn factorize_gpu_merge(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_merge_traced(gpu, pattern, levels, &NOOP)
}

/// [`factorize_gpu_merge`] with telemetry: one `numeric.level` span per
/// schedule level; the end event carries the level's width, its A/B/C
/// mode, and the merge-cursor steps the level contributed.
pub fn factorize_gpu_merge_traced(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_merge_run(gpu, pattern, levels, trace, None, None)
}

/// Full-control entry point: [`factorize_gpu_merge_traced`] plus optional
/// level-granular resume state and a per-level checkpoint hook.
pub fn factorize_gpu_merge_run(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    hook: Option<&mut LevelHook<'_>>,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_merge_run_cached(
        gpu,
        pattern,
        levels,
        trace,
        resume,
        hook,
        None,
        PivotRule::Exact,
    )
}

/// [`factorize_gpu_merge_run`] with an optional prebuilt [`PivotCache`]
/// (the pattern-keyed refactorization fast path: the cache is pattern-only,
/// so a service factorizing the same pattern repeatedly builds it once).
///
/// A supplied cache also marks the run as a **captured-schedule replay**:
/// the level sequence was already executed once, so the host does not need
/// to orchestrate it level by level. The first executed level is
/// host-launched as the kick-off; every later level is tail-launched from
/// the device (the paper's Algorithm 5 dynamic-parallelism discipline),
/// paying [`gplu_sim::CostModel::device_launch_ns`] instead of
/// [`gplu_sim::CostModel::host_launch_ns`] — on deep, narrow schedules the
/// host launch overhead *is* the numeric phase, and this removes it.
#[allow(clippy::too_many_arguments)]
pub fn factorize_gpu_merge_run_cached(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    hook: Option<&mut LevelHook<'_>>,
    pivot: Option<&PivotCache>,
    rule: PivotRule,
) -> Result<NumericOutcome, NumericError> {
    let mut engine = MergeEngine::new();
    run_levels(
        &mut engine,
        gpu,
        pattern,
        levels,
        trace,
        resume,
        hook,
        pivot,
        rule,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::factorize_gpu_sparse;
    use gplu_schedule::{levelize_cpu, DepGraph};
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::convert::csr_to_csc;
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::verify::residual_probe;
    use gplu_symbolic::symbolic_cpu;

    fn setup(a: &gplu_sparse::Csr) -> (Csc, Levels) {
        let sym = symbolic_cpu(a, &CostModel::default());
        let g = DepGraph::build(&sym.result.filled);
        let levels = levelize_cpu(&g, &CostModel::default()).levels;
        (csr_to_csc(&sym.result.filled), levels)
    }

    #[test]
    fn matches_binary_search_engine_bitwise() {
        let a = random_dominant(100, 4.0, 91);
        let (pattern, levels) = setup(&a);
        let merge =
            factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("merge ok");
        let bsearch = factorize_gpu_sparse(&Gpu::new(GpuConfig::v100()), &pattern, &levels)
            .expect("bsearch ok");
        assert_eq!(
            merge.lu.vals, bsearch.lu.vals,
            "identical update order ⇒ identical bits"
        );
        assert!(residual_probe(&a, &merge.lu, 3) < 1e-10);
    }

    #[test]
    fn counts_merge_steps_not_probes() {
        let a = banded_dominant(200, 4, 92);
        let (pattern, levels) = setup(&a);
        let out = factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("ok");
        assert_eq!(out.probes, 0);
        assert!(
            out.merge_steps > 0,
            "merge must report its streaming traffic"
        );
        assert!(out.m_limit.is_none());
    }

    #[test]
    fn beats_binary_search_in_simulated_time() {
        // Same launches, same item streams — the only difference is the
        // probe surcharge, so merge must come out strictly faster.
        let a = banded_dominant(2000, 6, 93);
        let (pattern, levels) = setup(&a);
        let merge =
            factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("merge ok");
        let bsearch = factorize_gpu_sparse(&Gpu::new(GpuConfig::v100()), &pattern, &levels)
            .expect("bsearch ok");
        assert!(
            merge.time < bsearch.time,
            "merge {} must beat binary search {}",
            merge.time,
            bsearch.time
        );
    }

    #[test]
    fn frees_device_memory() {
        let a = random_dominant(64, 3.0, 94);
        let (pattern, levels) = setup(&a);
        let gpu = Gpu::new(GpuConfig::v100());
        factorize_gpu_merge(&gpu, &pattern, &levels).expect("ok");
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn singular_pivot_is_typed() {
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let (pattern, levels) = setup(&a);
        let err = factorize_gpu_merge(&Gpu::new(GpuConfig::v100()), &pattern, &levels).unwrap_err();
        assert!(
            matches!(err, crate::NumericError::SingularPivot { col: 1, .. }),
            "want SingularPivot in column 1, got {err}"
        );
    }
}
