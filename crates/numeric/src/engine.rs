//! The unified [`NumericEngine`] trait and the shared level-loop driver.
//!
//! Every GPU numeric engine runs the same scaffolding: stage the CSC
//! structure and level numbers on the device, seed the value store
//! (optionally from a resume cut), walk the level schedule classifying
//! each level into a GLU 3.0 kernel mode, launch one kernel per level
//! (host-launched cold, tail-launched on captured-schedule replays),
//! wrap each level in a `numeric.level` trace span, feed the checkpoint
//! hook after every level barrier, and assemble a [`NumericOutcome`].
//! That scaffolding used to be copied into `dense.rs`, `sparse.rs` and
//! `merge.rs` verbatim; it now lives once in [`run_levels`], and each
//! engine implements only what actually differs — its kernel body, its
//! counters, and its per-level telemetry attributes.
//!
//! The sequential reference ([`crate::seq`]) is the host-side
//! instantiation of the same interface: it runs the identical kernel
//! core ([`crate::outcome::process_column`]) column by column with no
//! device, which is why all engines agree bit-for-bit.

use crate::error::NumericError;
use crate::modes::{classify_level_cached, launch_shape, LevelType, ModeMix};
use crate::outcome::{column_cost_estimate_cached, NumericOutcome, PivotCache, PivotRule};
use crate::resume::{LevelHook, LevelProgress, NumericResume};
use crate::values::ValueStore;
use gplu_schedule::Levels;
use gplu_sim::{Gpu, Kernel, SimError};
use gplu_sparse::{Csc, SparseError};
use gplu_trace::{AttrValue, TraceSink};
use parking_lot::Mutex;

/// Counter totals an engine accumulates over a run. Each engine drives a
/// subset and leaves the rest at zero; the driver threads the whole set
/// through hooks, spans and the outcome so checkpoint/resume and
/// telemetry never special-case an engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Binary-search probes (the binary-search engine).
    pub probes: u64,
    /// Destination-cursor advances (the merge and blocked engines).
    pub merge_steps: u64,
    /// M-capped kernel batches (the dense engine).
    pub batches: u64,
    /// BLAS-3 update tiles executed (the blocked engine).
    pub gemm_tiles: u64,
}

impl EngineCounters {
    /// Component-wise `self - before` (counters are monotone).
    pub fn delta(&self, before: &EngineCounters) -> EngineCounters {
        EngineCounters {
            probes: self.probes - before.probes,
            merge_steps: self.merge_steps - before.merge_steps,
            batches: self.batches - before.batches,
            gemm_tiles: self.gemm_tiles - before.gemm_tiles,
        }
    }
}

/// Everything one level's execution needs, handed to
/// [`NumericEngine::run_level`] by the driver.
pub struct LevelRun<'a> {
    /// The device.
    pub gpu: &'a Gpu,
    /// The filled pattern (sorted CSC).
    pub pattern: &'a Csc,
    /// Pivot/segment positions for every column.
    pub cache: &'a PivotCache,
    /// The shared value store.
    pub vals: &'a ValueStore,
    /// First kernel-core error raised by any column of this level.
    pub error: &'a Mutex<Option<SparseError>>,
    /// Index of the level in the schedule.
    pub level: usize,
    /// The level's columns.
    pub cols: &'a [gplu_sparse::Idx],
    /// The level's GLU 3.0 kernel mode.
    pub mode: LevelType,
    /// Threads per block for this mode.
    pub threads: usize,
    /// Blocks cooperating per column (type C row-striping).
    pub stripes: usize,
    /// Hoisted per-column structural item counts (index parallel to
    /// `cols`), shared by all of a column's cooperating stripes.
    pub items_of: &'a [u64],
    /// Engine-level pivot rule ([`PivotRule::Exact`] or static
    /// perturbation), applied by the kernel core at division time.
    pub rule: PivotRule,
    /// Static-perturbation deltas recorded by this run's kernel cores as
    /// `(col, delta)`; the driver sorts them into the outcome.
    pub perturbs: &'a Mutex<Vec<(usize, f64)>>,
    /// True when this level is tail-launched device-side (captured-
    /// schedule replay, Algorithm 5).
    pub(crate) tail_launch: bool,
}

impl LevelRun<'_> {
    /// Grid size of this level's launch.
    pub fn grid(&self) -> usize {
        self.cols.len() * self.stripes
    }

    /// Launches the level's kernel: host-launched normally, tail-launched
    /// from the device on a captured-schedule replay.
    pub fn launch<K: Kernel>(&self, name: &str, kernel: &K) -> Result<(), SimError> {
        if self.tail_launch {
            self.gpu
                .launch_device(name, self.grid(), self.threads, kernel)?;
        } else {
            self.gpu.launch(name, self.grid(), self.threads, kernel)?;
        }
        Ok(())
    }
}

/// One GPU numeric engine: the per-level kernel and its counters. The
/// level iteration, launch accounting, fault surface, resume cuts and
/// trace spans are owned by [`run_levels`].
pub trait NumericEngine: Sync {
    /// Kernel name — launch accounting and fault plans key off this.
    fn kernel_name(&self) -> &'static str;

    /// Seeds the engine's counters from a resume cut.
    fn seed(&mut self, _resume: &NumericResume) {}

    /// Whether a captured-schedule replay may tail-launch this engine's
    /// levels device-side. The dense engine says no: its per-batch buffer
    /// alloc/free is host work between launches.
    fn device_replay(&self) -> bool {
        true
    }

    /// One-time setup after the CSC structure and level numbers are
    /// resident on the device (the dense engine sizes its `M` from the
    /// remaining free memory here).
    fn begin(&mut self, _gpu: &Gpu, _pattern: &Csc) -> Result<(), NumericError> {
        Ok(())
    }

    /// Classifies one level into a kernel mode. The binary-search
    /// engine's forced-mode ablation overrides this.
    fn classify(&self, pattern: &Csc, cache: &PivotCache, cols: &[gplu_sparse::Idx]) -> LevelType {
        classify_level_cached(pattern, cache, cols)
    }

    /// Executes one level (prices and launches its kernel).
    fn run_level(&self, run: &LevelRun<'_>) -> Result<(), SimError>;

    /// Counter totals accumulated so far.
    fn counters(&self) -> EngineCounters;

    /// Appends engine-specific attributes to the level's span-end event;
    /// `delta` is this level's counter contribution.
    fn level_attrs(
        &self,
        run: &LevelRun<'_>,
        delta: &EngineCounters,
        attrs: &mut Vec<(&'static str, AttrValue)>,
    );

    /// Stamps engine-specific outcome fields (the dense engine's `M`).
    fn finish(&self, _out: &mut NumericOutcome) {}
}

/// Runs `engine` over the level schedule — the scaffolding every GPU
/// numeric engine shares.
///
/// A supplied `pivot` cache marks the run as a **captured-schedule
/// replay** (the pattern-keyed refactorization fast path): the host kicks
/// off the first executed level, and — when the engine permits
/// ([`NumericEngine::device_replay`]) — every later level is tail-launched
/// from the device (the paper's Algorithm 5 dynamic-parallelism
/// discipline), paying [`gplu_sim::CostModel::device_launch_ns`] instead
/// of [`gplu_sim::CostModel::host_launch_ns`].
#[allow(clippy::too_many_arguments)]
pub fn run_levels<E: NumericEngine>(
    engine: &mut E,
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    mut hook: Option<&mut LevelHook<'_>>,
    pivot: Option<&PivotCache>,
    rule: PivotRule,
) -> Result<NumericOutcome, NumericError> {
    let n = pattern.n_cols();
    let before = gpu.stats();

    // Resident: the CSC structure + values (float) + level numbers.
    let csc_bytes = ((n + 1) as u64 + 2 * pattern.nnz() as u64) * 4;
    let csc_dev = gpu.mem.alloc(csc_bytes)?;
    gpu.h2d(csc_bytes);
    let lvl_dev = gpu.mem.alloc(n as u64 * 4)?;

    if let Some(r) = resume {
        r.check(pattern.nnz(), levels.groups.len())
            .map_err(NumericError::Input)?;
        engine.seed(r);
    }
    engine.begin(gpu, pattern)?;

    let start_level = resume.map_or(0, |r| r.start_level);
    let vals = match resume {
        Some(r) => ValueStore::new(&r.vals),
        None => ValueStore::new(&pattern.vals),
    };
    let cache_storage;
    let cache = match pivot {
        Some(c) => c,
        None => {
            cache_storage = PivotCache::build(pattern);
            &cache_storage
        }
    };
    let mut mix = resume.map_or_else(ModeMix::default, |r| r.mode_mix);
    let error: Mutex<Option<SparseError>> = Mutex::new(None);
    let perturbs: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());
    let replay = pivot.is_some() && engine.device_replay();
    let mut kicked_off = false;

    for (li, cols) in levels.groups.iter().enumerate() {
        if li < start_level {
            continue; // already durable in the resumed value store
        }
        let t = engine.classify(pattern, cache, cols);
        match t {
            LevelType::A => mix.a += 1,
            LevelType::B => mix.b += 1,
            LevelType::C => mix.c += 1,
        }
        let (threads, stripes) = launch_shape(t);
        let counters_before = engine.counters();
        trace.span_begin(
            "numeric.level",
            "level",
            gpu.now().as_ns(),
            &[("level", li.into()), ("width", cols.len().into())],
        );
        // Hoisted: one structural cost estimate per column, shared by all
        // of its cooperating stripes (type C runs 64 per column).
        let items_of: Vec<u64> = cols
            .iter()
            .map(|&j| column_cost_estimate_cached(pattern, cache, j as usize).1)
            .collect();
        let run = LevelRun {
            gpu,
            pattern,
            cache,
            vals: &vals,
            error: &error,
            level: li,
            cols,
            mode: t,
            threads,
            stripes,
            items_of: &items_of,
            rule,
            perturbs: &perturbs,
            tail_launch: replay && kicked_off,
        };
        let clk0 = trace.enabled().then(|| gpu.clocks());
        engine.run_level(&run)?;
        kicked_off = true;
        if trace.enabled() {
            let delta = engine.counters().delta(&counters_before);
            let mut attrs: Vec<(&'static str, AttrValue)> = vec![
                ("level", li.into()),
                ("width", cols.len().into()),
                ("mode", t.letter().into()),
            ];
            engine.level_attrs(&run, &delta, &mut attrs);
            trace.span_end("numeric.level", "level", gpu.now().as_ns(), &attrs);
            // Predicted-vs-observed sample for the drift profiler: levels
            // that executed BLAS-3 tiles are priced by the GEMM terms of
            // the cost model, everything else by the scalar kernel terms —
            // distinct pricing paths, so they drift independently.
            if let Some((obs0, pred0)) = clk0 {
                let (obs1, pred1) = gpu.clocks();
                if obs1 > obs0 {
                    let kind = if delta.gemm_tiles > 0 {
                        "gemm_tile"
                    } else {
                        "numeric_level"
                    };
                    trace.instant(
                        "drift.sample",
                        "drift",
                        obs1,
                        &[
                            ("kind", kind.into()),
                            ("predicted_ns", AttrValue::F64(pred1 - pred0)),
                            ("observed_ns", AttrValue::F64(obs1 - obs0)),
                        ],
                    );
                }
            }
        }
        if let Some(e) = error.lock().take() {
            return Err(NumericError::from_sparse_at_level(e, li));
        }
        if let Some(h) = hook.as_mut() {
            let c = engine.counters();
            h(&LevelProgress {
                level: li,
                n_levels: levels.groups.len(),
                vals: &vals,
                mode_mix: mix,
                probes: c.probes,
                merge_steps: c.merge_steps,
                batches: c.batches,
                gemm_tiles: c.gemm_tiles,
            })?;
        }
    }

    gpu.mem.free(lvl_dev)?;
    gpu.d2h(pattern.nnz() as u64 * 4); // factored values back to host
    gpu.mem.free(csc_dev)?;

    let lu = Csc::from_parts_unchecked(
        pattern.n_rows(),
        n,
        pattern.col_ptr.clone(),
        pattern.row_idx.clone(),
        vals.into_vec(),
    );
    let stats = gpu.stats().since(&before);
    let c = engine.counters();
    // Deterministic artifact: levels run in order, but within a level the
    // recording order is the launch's block order — sort by column.
    let mut perturbations = perturbs.into_inner();
    perturbations.sort_unstable_by_key(|&(col, _)| col);
    let mut out = NumericOutcome {
        lu,
        time: stats.now,
        stats,
        mode_mix: mix,
        m_limit: None,
        batches: c.batches,
        probes: c.probes,
        merge_steps: c.merge_steps,
        gemm_tiles: c.gemm_tiles,
        perturbations,
    };
    engine.finish(&mut out);
    Ok(out)
}
