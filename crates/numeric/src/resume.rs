//! Level-granular resume support for the numeric engines.
//!
//! Columns within a level are independent and each is processed with a
//! fixed arithmetic order, so the level barrier is a natural durability
//! point: the value store after level `k` is a pure function of the
//! pattern and schedule, identical across engines and runs. A checkpoint
//! cut there and replayed with [`NumericResume`] therefore produces
//! **bit-identical** factors — the invariant the crash/resume chaos suite
//! asserts.
//!
//! All GPU engines accept an optional [`NumericResume`] (skip levels
//! below the watermark, seed the value store and counters) and an
//! optional [`LevelHook`] invoked after every completed level. The hook
//! is where the pipeline cuts snapshots; it returns a [`SimError`] to
//! abort the run — in particular the injected [`SimError::Crashed`] of a
//! `crash:at=N` fault plan.

use crate::modes::ModeMix;
use crate::values::ValueStore;
use gplu_sim::SimError;

/// State to restart a numeric engine from the end of a completed level.
#[derive(Debug, Clone)]
pub struct NumericResume {
    /// First level index to execute (levels `0..start_level` are done).
    pub start_level: usize,
    /// Value-store contents after level `start_level - 1`, bit-exact.
    pub vals: Vec<f64>,
    /// Mode mix accumulated over the completed levels.
    pub mode_mix: ModeMix,
    /// Binary-search probes accumulated (sparse engine).
    pub probes: u64,
    /// Merge-cursor steps accumulated (merge engine).
    pub merge_steps: u64,
    /// M-capped batches accumulated (dense engine).
    pub batches: u64,
    /// BLAS-3 update tiles accumulated (blocked engine).
    pub gemm_tiles: u64,
}

/// Progress handed to the [`LevelHook`] after each completed level.
#[derive(Debug)]
pub struct LevelProgress<'a> {
    /// Index of the level that just completed.
    pub level: usize,
    /// Total number of levels in the schedule.
    pub n_levels: usize,
    /// The live value store (snapshot it to persist).
    pub vals: &'a ValueStore,
    /// Mode mix so far.
    pub mode_mix: ModeMix,
    /// Probes so far (sparse engine; 0 elsewhere).
    pub probes: u64,
    /// Merge steps so far (merge engine; 0 elsewhere).
    pub merge_steps: u64,
    /// Batches so far (dense engine; 0 elsewhere).
    pub batches: u64,
    /// BLAS-3 tiles so far (blocked engine; 0 elsewhere).
    pub gemm_tiles: u64,
}

/// Per-level callback. Returning an error aborts the factorization with
/// that device error — the path an injected crash takes.
pub type LevelHook<'h> = dyn FnMut(&LevelProgress<'_>) -> Result<(), SimError> + 'h;

impl NumericResume {
    /// Validates the resume state against a pattern/schedule pair.
    pub fn check(&self, nnz: usize, n_levels: usize) -> Result<(), String> {
        if self.vals.len() != nnz {
            return Err(format!(
                "resume state has {} values, pattern has {nnz} nonzeros",
                self.vals.len()
            ));
        }
        if self.start_level > n_levels {
            return Err(format!(
                "resume watermark {} exceeds schedule of {n_levels} levels",
                self.start_level
            ));
        }
        Ok(())
    }
}
