//! Structured errors for the numeric phase.
//!
//! Device failures ([`SimError`]) and numerical breakdown used to share
//! one channel — engines smuggled pivot failures through
//! `SimError::BadLaunch(format!(...))`, which callers could neither match
//! on nor recover from. [`NumericError`] separates the two: the pipeline
//! degrades formats on [`NumericError::Sim`] OOM and repairs/reports
//! pivots on [`NumericError::SingularPivot`].

use gplu_sim::SimError;
use gplu_sparse::SparseError;
use std::fmt;

/// Errors from the GPU numeric engines and triangular solves.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// Device-side failure: out of memory, failed launch, bad handle.
    Sim(SimError),
    /// Zero, non-finite, or structurally absent pivot. All engines report
    /// the same variant, tagged with the level-schedule group that was
    /// executing, so callers can repair-and-retry uniformly.
    SingularPivot {
        /// The column whose pivot broke.
        col: usize,
        /// Index of the level group being executed (0-based; `usize::MAX`
        /// when the failure happened outside a level schedule, e.g. in a
        /// triangular solve).
        level: usize,
    },
    /// A precondition on the inputs failed (rhs length, corrupt pattern).
    Input(String),
}

impl NumericError {
    /// Maps a kernel-core [`SparseError`] raised while executing level
    /// group `level` onto the unified surface.
    pub fn from_sparse_at_level(e: SparseError, level: usize) -> Self {
        match e {
            SparseError::ZeroDiagonal { row } => NumericError::SingularPivot { col: row, level },
            SparseError::ZeroPivot { col } => NumericError::SingularPivot { col, level },
            other => NumericError::Input(other.to_string()),
        }
    }
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::Sim(e) => write!(f, "device failure in numeric phase: {e}"),
            NumericError::SingularPivot { col, level } if *level == usize::MAX => {
                write!(f, "singular pivot in column {col}")
            }
            NumericError::SingularPivot { col, level } => {
                write!(f, "singular pivot in column {col} (level {level})")
            }
            NumericError::Input(msg) => write!(f, "invalid numeric input: {msg}"),
        }
    }
}

impl std::error::Error for NumericError {}

impl From<SimError> for NumericError {
    fn from(e: SimError) -> Self {
        NumericError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_pivot_errors_unify() {
        assert_eq!(
            NumericError::from_sparse_at_level(SparseError::ZeroDiagonal { row: 3 }, 2),
            NumericError::SingularPivot { col: 3, level: 2 }
        );
        assert_eq!(
            NumericError::from_sparse_at_level(SparseError::ZeroPivot { col: 5 }, 0),
            NumericError::SingularPivot { col: 5, level: 0 }
        );
        assert!(matches!(
            NumericError::from_sparse_at_level(SparseError::MissingFill { row: 1, col: 2 }, 0),
            NumericError::Input(_)
        ));
    }

    #[test]
    fn display_is_informative() {
        let e = NumericError::SingularPivot { col: 7, level: 3 };
        assert!(e.to_string().contains("column 7"));
        assert!(e.to_string().contains("level 3"));
        let e = NumericError::SingularPivot {
            col: 7,
            level: usize::MAX,
        };
        assert!(!e.to_string().contains("level"));
        let e: NumericError = SimError::OutOfMemory {
            requested: 10,
            free: 1,
            capacity: 4,
        }
        .into();
        assert!(e.to_string().contains("device failure"));
    }
}
