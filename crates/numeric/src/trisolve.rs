//! GPU-simulated sparse triangular solves — the step the paper's
//! introduction motivates ("solution x can be easily obtained by solving
//! equations involving these two triangular matrices") and the natural
//! completion of the end-to-end GPU story: with factorization fully on the
//! device, the solve can stay there too.
//!
//! Triangular solves carry the same dependency structure as numeric
//! factorization: unknown `x_j` of `L y = b` is final only after every
//! `y_t` with `L(j, t) ≠ 0` has been applied. We reuse the workspace's
//! level machinery (Kahn wavefronts over the factor's own pattern) and run
//! one thread block per column per level, with CAS-accumulated right-hand-
//! side updates — the level-scheduled GPU solve of the sparse-triangular
//! literature the paper cites (Liu et al. \[28\] pursue the
//! synchronisation-free variant of the same schedule).
//!
//! Everything pattern-only lives in [`TriSolvePlan`]: the two wavefront
//! schedules *and* the per-column diagonal/`L`-segment positions the
//! sweeps consult on every solve. Building the plan costs one pass over
//! the factor; each subsequent solve is search-free (the
//! circuit-simulation pattern: one plan, many right-hand sides). For the
//! many-rhs case itself, [`solve_gpu_batch`] runs one kernel launch per
//! level across *all* right-hand sides, amortizing the fixed launch
//! latency that dominates the deep, narrow levels of triangular factors.

use crate::error::NumericError;
use crate::values::ValueStore;
use gplu_schedule::Levels;
use gplu_sim::{BlockCtx, Gpu, GpuStatsSnapshot, SimTime};
use gplu_sparse::{Csc, SparseError, Val};
use gplu_trace::{AttrValue, TraceSink, NOOP};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global count of [`TriSolvePlan`] constructions, for regression tests
/// that pin down plan amortization (a cached pattern must build its plan
/// exactly once, no matter how many solves it serves).
static PLAN_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Precomputed pattern-only solve state for a combined factor: the level
/// schedules of both triangles plus the per-column structural positions
/// every sweep needs.
///
/// Building the plan costs one pass over the factor; it is reused across
/// every right-hand side (the circuit-simulation pattern: one plan, many
/// solves). No per-solve work re-derives pattern facts: the backward
/// sweep's pivot lookup and the forward sweep's `L`-segment start are
/// `O(1)` array reads out of this plan.
#[derive(Debug, Clone)]
pub struct TriSolvePlan {
    /// Wavefronts of the forward (unit-L) solve.
    pub l_levels: Levels,
    /// Wavefronts of the backward (U) solve.
    pub u_levels: Levels,
    /// Position of the diagonal entry `(j, j)` in column `j`, or
    /// `usize::MAX` when structurally absent (reported as
    /// [`SparseError::ZeroDiagonal`] at solve time).
    diag_pos: Vec<usize>,
    /// `lower_bound_after(j, j)`: first position in column `j` whose row
    /// exceeds `j` (start of the `L` segment).
    lower_start: Vec<usize>,
}

impl TriSolvePlan {
    /// Builds the schedules and position tables from the combined factor
    /// (unit-diagonal `L` strictly below, `U` on and above the diagonal).
    pub fn new(lu: &Csc) -> TriSolvePlan {
        PLAN_BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = lu.n_cols();
        // One structural pass: the diagonal position and L-segment start
        // of every column, shared by both schedule constructions below and
        // by every subsequent solve.
        let mut diag_pos = vec![usize::MAX; n];
        let mut lower_start = vec![0usize; n];
        for j in 0..n {
            let lb = lu.lower_bound_after(j, j);
            lower_start[j] = lb;
            if lb > lu.col_ptr[j] && lu.row_idx[lb - 1] as usize == j {
                diag_pos[j] = lb - 1;
            }
        }
        // Forward solve: column j's updates touch rows > j where L has
        // entries, so x_j depends on every t < j with L(j, t) != 0 — the
        // longest-path recurrence over the L pattern (edges ascend).
        let mut l_level = vec![0u32; n];
        let mut u_level = vec![0u32; n];
        for t in 0..n {
            for k in lower_start[t]..lu.col_ptr[t + 1] {
                let j = lu.row_idx[k] as usize;
                l_level[j] = l_level[j].max(l_level[t] + 1);
            }
        }
        // Backward solve: x_j depends on every i > j with U(i, j)… in
        // column terms, column j of U updates rows i < j, so the
        // dependency points downward; sweep columns descending.
        for t in (0..n).rev() {
            for k in lu.col_ptr[t]..lower_start[t] {
                let i = lu.row_idx[k] as usize;
                if i < t {
                    u_level[i] = u_level[i].max(u_level[t] + 1);
                }
            }
        }
        TriSolvePlan {
            l_levels: Levels::from_level_of(l_level),
            u_levels: Levels::from_level_of(u_level),
            diag_pos,
            lower_start,
        }
    }

    /// Position of the diagonal entry of column `j`, if structurally
    /// present.
    #[inline]
    pub fn diag(&self, j: usize) -> Option<usize> {
        let p = self.diag_pos[j];
        (p != usize::MAX).then_some(p)
    }

    /// First position in column `j` whose row index exceeds `j` (the
    /// start of the `L` segment).
    #[inline]
    pub fn lower_start(&self, j: usize) -> usize {
        self.lower_start[j]
    }

    /// Number of columns covered by the plan.
    pub fn n_cols(&self) -> usize {
        self.diag_pos.len()
    }

    /// Estimated host-memory footprint of the plan (the quantity a factor
    /// cache charges against its device-model budget).
    pub fn approx_bytes(&self) -> u64 {
        let levels = |l: &Levels| {
            (l.level_of.len() * 4 + l.groups.iter().map(Vec::len).sum::<usize>() * 4) as u64
        };
        levels(&self.l_levels) + levels(&self.u_levels) + (self.diag_pos.len() as u64) * 16
    }

    /// Total [`TriSolvePlan`] constructions since process start (a
    /// monotone global counter; take deltas around the region under
    /// test).
    pub fn builds_total() -> u64 {
        PLAN_BUILDS.load(Ordering::Relaxed)
    }
}

/// Outcome of a GPU triangular solve.
#[derive(Debug, Clone)]
pub struct TriSolveOutcome {
    /// The solution vector.
    pub x: Vec<Val>,
    /// Simulated time of both sweeps.
    pub time: SimTime,
    /// Levels of the forward and backward sweeps.
    pub l_levels: usize,
    /// Levels of the backward sweep.
    pub u_levels: usize,
    /// GPU statistics delta.
    pub stats: GpuStatsSnapshot,
}

/// Outcome of a batched multi-rhs GPU triangular solve.
#[derive(Debug, Clone)]
pub struct BatchSolveOutcome {
    /// One solution per input right-hand side, in order.
    pub xs: Vec<Vec<Val>>,
    /// Simulated time of the whole batch.
    pub time: SimTime,
    /// Kernel launches issued (one per level per sweep — *not* per rhs).
    pub launches: u64,
    /// GPU statistics delta.
    pub stats: GpuStatsSnapshot,
}

/// Solves `(L·U) x = b` on the simulated GPU with the level-scheduled
/// column algorithm, given a combined factor and its plan.
pub fn solve_gpu(
    gpu: &Gpu,
    lu: &Csc,
    plan: &TriSolvePlan,
    b: &[Val],
) -> Result<TriSolveOutcome, NumericError> {
    solve_gpu_traced(gpu, lu, plan, b, &NOOP)
}

/// [`solve_gpu`] with telemetry: one `trisolve` drift sample covering the
/// whole solve (transfers + both sweeps) for the cost-model drift
/// profiler.
pub fn solve_gpu_traced(
    gpu: &Gpu,
    lu: &Csc,
    plan: &TriSolvePlan,
    b: &[Val],
    trace: &dyn TraceSink,
) -> Result<TriSolveOutcome, NumericError> {
    let n = lu.n_cols();
    if b.len() != n {
        return Err(NumericError::Input(format!(
            "rhs length {} does not match matrix dimension {n}",
            b.len()
        )));
    }
    if plan.n_cols() != n {
        return Err(NumericError::Input(format!(
            "plan covers {} columns, matrix has {n}",
            plan.n_cols()
        )));
    }
    let before = gpu.stats();
    let clk0 = trace.enabled().then(|| gpu.clocks());

    // The factor is assumed device-resident (it just came out of numeric
    // factorization); the rhs crosses the bus.
    let x_dev = gpu.mem.alloc(n as u64 * 8)?;
    gpu.h2d(n as u64 * 8);

    let y = ValueStore::new(b);
    // Forward sweep: per level, block per column j: y_j is final; apply
    // y_i -= L(i,j) * y_j to the rows below.
    for cols in &plan.l_levels.groups {
        gpu.launch_device(
            "trisolve_l",
            cols.len(),
            256,
            &|blk: usize, ctx: &mut BlockCtx| {
                let j = cols[blk] as usize;
                forward_column(lu, plan, &y, j, ctx);
            },
        )?;
    }

    // Backward sweep: per level, block per column j: divide by the pivot,
    // then push x_j's contribution up through U's column.
    let error = parking_lot::Mutex::new(None::<SparseError>);
    for cols in &plan.u_levels.groups {
        gpu.launch_device(
            "trisolve_u",
            cols.len(),
            256,
            &|blk: usize, ctx: &mut BlockCtx| {
                let j = cols[blk] as usize;
                if let Err(e) = backward_column(lu, plan, &y, j, ctx) {
                    error.lock().get_or_insert(e);
                }
            },
        )?;
        if let Some(e) = error.lock().take() {
            return Err(NumericError::from_sparse_at_level(e, usize::MAX));
        }
    }

    gpu.d2h(n as u64 * 8);
    gpu.mem.free(x_dev)?;
    emit_trisolve_drift(gpu, trace, clk0);
    let stats = gpu.stats().since(&before);
    Ok(TriSolveOutcome {
        x: y.into_vec(),
        time: stats.now,
        l_levels: plan.l_levels.n_levels(),
        u_levels: plan.u_levels.n_levels(),
        stats,
    })
}

/// Solves `(L·U) X = B` for a whole batch of right-hand sides with one
/// kernel launch per level per sweep: block `(c, r)` of the launch grid
/// applies column `cols[c]` to right-hand side `r`. The per-level fixed
/// launch latency — the dominant cost of the deep, narrow wavefronts of
/// triangular factors — is paid once per level instead of once per level
/// *per rhs*.
pub fn solve_gpu_batch(
    gpu: &Gpu,
    lu: &Csc,
    plan: &TriSolvePlan,
    bs: &[Vec<Val>],
) -> Result<BatchSolveOutcome, NumericError> {
    solve_gpu_batch_traced(gpu, lu, plan, bs, &NOOP)
}

/// [`solve_gpu_batch`] with telemetry: one `trisolve` drift sample
/// covering the whole batch.
pub fn solve_gpu_batch_traced(
    gpu: &Gpu,
    lu: &Csc,
    plan: &TriSolvePlan,
    bs: &[Vec<Val>],
    trace: &dyn TraceSink,
) -> Result<BatchSolveOutcome, NumericError> {
    let n = lu.n_cols();
    if bs.is_empty() {
        return Err(NumericError::Input("empty rhs batch".into()));
    }
    for (r, b) in bs.iter().enumerate() {
        if b.len() != n {
            return Err(NumericError::Input(format!(
                "rhs {r} length {} does not match matrix dimension {n}",
                b.len()
            )));
        }
    }
    if plan.n_cols() != n {
        return Err(NumericError::Input(format!(
            "plan covers {} columns, matrix has {n}",
            plan.n_cols()
        )));
    }
    let nrhs = bs.len();
    let before = gpu.stats();
    let clk0 = trace.enabled().then(|| gpu.clocks());

    let x_dev = gpu.mem.alloc((nrhs * n) as u64 * 8)?;
    gpu.h2d((nrhs * n) as u64 * 8);

    let ys: Vec<ValueStore> = bs.iter().map(|b| ValueStore::new(b)).collect();
    let mut launches = 0u64;
    for cols in &plan.l_levels.groups {
        gpu.launch_device(
            "trisolve_l",
            cols.len() * nrhs,
            256,
            &|blk: usize, ctx: &mut BlockCtx| {
                let j = cols[blk / nrhs] as usize;
                forward_column(lu, plan, &ys[blk % nrhs], j, ctx);
            },
        )?;
        launches += 1;
    }

    let error = parking_lot::Mutex::new(None::<SparseError>);
    for cols in &plan.u_levels.groups {
        gpu.launch_device(
            "trisolve_u",
            cols.len() * nrhs,
            256,
            &|blk: usize, ctx: &mut BlockCtx| {
                let j = cols[blk / nrhs] as usize;
                if let Err(e) = backward_column(lu, plan, &ys[blk % nrhs], j, ctx) {
                    error.lock().get_or_insert(e);
                }
            },
        )?;
        launches += 1;
        if let Some(e) = error.lock().take() {
            return Err(NumericError::from_sparse_at_level(e, usize::MAX));
        }
    }

    gpu.d2h((nrhs * n) as u64 * 8);
    gpu.mem.free(x_dev)?;
    emit_trisolve_drift(gpu, trace, clk0);
    let stats = gpu.stats().since(&before);
    Ok(BatchSolveOutcome {
        xs: ys.into_iter().map(ValueStore::into_vec).collect(),
        time: stats.now,
        launches,
        stats,
    })
}

/// Emits the solve's predicted-vs-observed drift sample when the sink is
/// live and simulated time actually passed.
fn emit_trisolve_drift(gpu: &Gpu, trace: &dyn TraceSink, clk0: Option<(f64, f64)>) {
    if let Some((obs0, pred0)) = clk0 {
        let (obs1, pred1) = gpu.clocks();
        if obs1 > obs0 {
            trace.instant(
                "drift.sample",
                "drift",
                obs1,
                &[
                    ("kind", "trisolve".into()),
                    ("predicted_ns", AttrValue::F64(pred1 - pred0)),
                    ("observed_ns", AttrValue::F64(obs1 - obs0)),
                ],
            );
        }
    }
}

/// One forward-sweep column: `y_i -= L(i, j) · y_j` for the rows below
/// the diagonal. The `L`-segment bounds come from the plan — no
/// per-solve pattern search.
#[inline]
fn forward_column(lu: &Csc, plan: &TriSolvePlan, y: &ValueStore, j: usize, ctx: &mut BlockCtx) {
    let yj = y.get(j);
    let start = plan.lower_start[j];
    let end = lu.col_ptr[j + 1];
    ctx.bulk_flops(1, (end - start) as u64);
    ctx.mem((end - start) as u64 * 12);
    if yj != 0.0 {
        for k in start..end {
            y.fetch_add(lu.row_idx[k] as usize, -lu.vals[k] * yj);
        }
    }
}

/// One backward-sweep column: divide by the pivot (position read from
/// the plan — the binary search of the pre-plan implementation is gone),
/// then push `x_j`'s contribution up through `U`'s column.
#[inline]
fn backward_column(
    lu: &Csc,
    plan: &TriSolvePlan,
    y: &ValueStore,
    j: usize,
    ctx: &mut BlockCtx,
) -> Result<(), SparseError> {
    let Some(diag_pos) = plan.diag(j) else {
        return Err(SparseError::ZeroDiagonal { row: j });
    };
    let pivot = lu.vals[diag_pos];
    if pivot == 0.0 || !pivot.is_finite() {
        return Err(SparseError::ZeroPivot { col: j });
    }
    let xj = y.get(j) / pivot;
    y.set(j, xj);
    let ups = diag_pos - lu.col_ptr[j];
    ctx.bulk_flops(1, ups as u64);
    ctx.mem(ups as u64 * 12);
    if xj != 0.0 {
        for k in lu.col_ptr[j]..diag_pos {
            y.fetch_add(lu.row_idx[k] as usize, -lu.vals[k] * xj);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::convert::csr_to_csc;
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::triangular::solve_lu;
    use gplu_symbolic::symbolic_cpu;

    fn factor(a: &gplu_sparse::Csr) -> Csc {
        let mut lu = csr_to_csc(&symbolic_cpu(a, &CostModel::default()).result.filled);
        crate::seq::factorize_seq(&mut lu).expect("factorizes");
        lu
    }

    #[test]
    fn matches_host_solve() {
        let a = random_dominant(200, 4.0, 91);
        let lu = factor(&a);
        let b: Vec<f64> = (0..200).map(|i| (i % 5) as f64 - 2.0).collect();
        let host = solve_lu(&lu, &b).expect("host solve");
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        let out = solve_gpu(&gpu, &lu, &plan, &b).expect("gpu solve");
        for (k, (h, g)) in host.iter().zip(&out.x).enumerate() {
            assert!((h - g).abs() < 1e-9, "x[{k}]: host {h} vs gpu {g}");
        }
    }

    #[test]
    fn solves_the_original_system() {
        let a = banded_dominant(300, 4, 92);
        let lu = factor(&a);
        let x_true = vec![1.5; 300];
        let b = a.spmv(&x_true);
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        let out = solve_gpu(&gpu, &lu, &plan, &b).expect("gpu solve");
        assert!(gplu_sparse::verify::check_solution(&a, &out.x, &b, 1e-8));
    }

    #[test]
    fn plan_levels_respect_dependencies() {
        let a = random_dominant(150, 4.0, 93);
        let lu = factor(&a);
        let plan = TriSolvePlan::new(&lu);
        // Forward: every L entry (i, j) with i > j must cross levels.
        for j in 0..150 {
            for k in lu.lower_bound_after(j, j)..lu.col_ptr[j + 1] {
                let i = lu.row_idx[k] as usize;
                assert!(
                    plan.l_levels.level_of[i] > plan.l_levels.level_of[j],
                    "L({i},{j}) violates forward schedule"
                );
            }
        }
        // Backward: every strict-U entry (i, j) with i < j must cross.
        for j in 0..150 {
            let diag = lu.lower_bound_after(j, j);
            for k in lu.col_ptr[j]..diag {
                let i = lu.row_idx[k] as usize;
                if i < j {
                    assert!(
                        plan.u_levels.level_of[i] > plan.u_levels.level_of[j],
                        "U({i},{j}) violates backward schedule"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_hoists_pattern_positions() {
        let a = random_dominant(120, 4.0, 98);
        let lu = factor(&a);
        let plan = TriSolvePlan::new(&lu);
        for j in 0..120 {
            assert_eq!(plan.lower_start(j), lu.lower_bound_after(j, j));
            assert_eq!(plan.diag(j), lu.find_in_col(j, j).0);
        }
        assert!(plan.approx_bytes() > 0);
    }

    #[test]
    fn plan_reuse_across_many_rhs() {
        let a = random_dominant(120, 4.0, 94);
        let lu = factor(&a);
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        for seed in 0..4u64 {
            let x_true: Vec<f64> = (0..120)
                .map(|i| ((i as u64 + seed) % 9) as f64 + 1.0)
                .collect();
            let b = a.spmv(&x_true);
            let out = solve_gpu(&gpu, &lu, &plan, &b).expect("gpu solve");
            assert!(
                gplu_sparse::verify::check_solution(&a, &out.x, &b, 1e-8),
                "rhs {seed}"
            );
        }
    }

    #[test]
    fn batch_matches_per_rhs_solves_bitwise() {
        let a = random_dominant(150, 4.0, 99);
        let lu = factor(&a);
        let plan = TriSolvePlan::new(&lu);
        let bs: Vec<Vec<f64>> = (0..5u64)
            .map(|s| {
                (0..150)
                    .map(|i| ((i as u64 * 31 + s) % 11) as f64 - 5.0)
                    .collect()
            })
            .collect();
        let gpu_b = Gpu::new(GpuConfig::v100());
        let batch = solve_gpu_batch(&gpu_b, &lu, &plan, &bs).expect("batch solve");
        assert_eq!(batch.xs.len(), 5);
        for (r, b) in bs.iter().enumerate() {
            let gpu_s = Gpu::new(GpuConfig::v100());
            let single = solve_gpu(&gpu_s, &lu, &plan, b).expect("single solve");
            assert_eq!(batch.xs[r], single.x, "rhs {r} must be bit-identical");
        }
    }

    #[test]
    fn batch_amortizes_launch_latency() {
        let a = banded_dominant(400, 4, 100);
        let lu = factor(&a);
        let plan = TriSolvePlan::new(&lu);
        let nrhs = 8;
        let bs: Vec<Vec<f64>> = (0..nrhs)
            .map(|s| a.spmv(&vec![1.0 + s as f64; 400]))
            .collect();
        let gpu_b = Gpu::new(GpuConfig::v100());
        let batch = solve_gpu_batch(&gpu_b, &lu, &plan, &bs).expect("batch");
        let gpu_s = Gpu::new(GpuConfig::v100());
        let mut serial = SimTime::ZERO;
        for b in &bs {
            serial += solve_gpu(&gpu_s, &lu, &plan, b).expect("single").time;
        }
        assert!(
            batch.time < serial,
            "batched {} must beat {} serial solves at {}",
            batch.time,
            nrhs,
            serial
        );
        assert_eq!(
            batch.launches as usize,
            plan.l_levels.n_levels() + plan.u_levels.n_levels(),
            "one launch per level per sweep"
        );
    }

    #[test]
    fn batch_rejects_bad_inputs() {
        let a = random_dominant(40, 3.0, 96);
        let lu = factor(&a);
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        assert!(matches!(
            solve_gpu_batch(&gpu, &lu, &plan, &[]).unwrap_err(),
            NumericError::Input(_)
        ));
        assert!(matches!(
            solve_gpu_batch(&gpu, &lu, &plan, &[vec![1.0; 7]]).unwrap_err(),
            NumericError::Input(_)
        ));
    }

    #[test]
    fn frees_device_memory() {
        let a = random_dominant(80, 3.0, 95);
        let lu = factor(&a);
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        let b = vec![1.0; 80];
        solve_gpu(&gpu, &lu, &plan, &b).expect("gpu solve");
        solve_gpu_batch(&gpu, &lu, &plan, &[b.clone(), b]).expect("batch solve");
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn rhs_length_mismatch_is_typed_not_a_panic() {
        let a = random_dominant(40, 3.0, 96);
        let lu = factor(&a);
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        let err = solve_gpu(&gpu, &lu, &plan, &[1.0; 7]).unwrap_err();
        assert!(matches!(err, NumericError::Input(_)), "got {err}");
    }

    #[test]
    fn zero_pivot_in_factor_is_singular_pivot() {
        let a = random_dominant(40, 3.0, 97);
        let mut lu = factor(&a);
        // Corrupt one pivot to zero: the backward sweep must report it.
        let (diag, _) = lu.find_in_col(5, 5);
        lu.vals[diag.expect("diagonal present")] = 0.0;
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        let err = solve_gpu(&gpu, &lu, &plan, &[1.0; 40]).unwrap_err();
        assert_eq!(
            err,
            NumericError::SingularPivot {
                col: 5,
                level: usize::MAX
            }
        );
    }
}
