//! GPU-simulated sparse triangular solves — the step the paper's
//! introduction motivates ("solution x can be easily obtained by solving
//! equations involving these two triangular matrices") and the natural
//! completion of the end-to-end GPU story: with factorization fully on the
//! device, the solve can stay there too.
//!
//! Triangular solves carry the same dependency structure as numeric
//! factorization: unknown `x_j` of `L y = b` is final only after every
//! `y_t` with `L(j, t) ≠ 0` has been applied. We reuse the workspace's
//! level machinery (Kahn wavefronts over the factor's own pattern) and run
//! one thread block per column per level, with CAS-accumulated right-hand-
//! side updates — the level-scheduled GPU solve of the sparse-triangular
//! literature the paper cites (Liu et al. \[28\] pursue the
//! synchronisation-free variant of the same schedule).

use crate::error::NumericError;
use crate::values::ValueStore;
use gplu_schedule::Levels;
use gplu_sim::{BlockCtx, Gpu, GpuStatsSnapshot, SimTime};
use gplu_sparse::{Csc, SparseError, Val};

/// Precomputed level schedules for both triangles of a combined factor.
///
/// Building the plan costs one pass over the factor; it is reused across
/// every right-hand side (the circuit-simulation pattern: one plan, many
/// solves).
#[derive(Debug, Clone)]
pub struct TriSolvePlan {
    /// Wavefronts of the forward (unit-L) solve.
    pub l_levels: Levels,
    /// Wavefronts of the backward (U) solve.
    pub u_levels: Levels,
}

impl TriSolvePlan {
    /// Builds the schedules from the combined factor (unit-diagonal `L`
    /// strictly below, `U` on and above the diagonal).
    pub fn new(lu: &Csc) -> TriSolvePlan {
        let n = lu.n_cols();
        // Forward solve: column j's updates touch rows > j where L has
        // entries, so x_j depends on every t < j with L(j, t) != 0 — the
        // longest-path recurrence over the L pattern (edges ascend).
        let mut l_level = vec![0u32; n];
        let mut u_level = vec![0u32; n];
        for t in 0..n {
            let start = lu.lower_bound_after(t, t);
            for k in start..lu.col_ptr[t + 1] {
                let j = lu.row_idx[k] as usize;
                l_level[j] = l_level[j].max(l_level[t] + 1);
            }
        }
        // Backward solve: x_j depends on every i > j with U(i, j)… in
        // column terms, column j of U updates rows i < j, so the
        // dependency points downward; sweep columns descending.
        for t in (0..n).rev() {
            let diag = lu.lower_bound_after(t, t);
            for k in lu.col_ptr[t]..diag {
                let i = lu.row_idx[k] as usize;
                if i < t {
                    u_level[i] = u_level[i].max(u_level[t] + 1);
                }
            }
        }
        TriSolvePlan {
            l_levels: Levels::from_level_of(l_level),
            u_levels: Levels::from_level_of(u_level),
        }
    }
}

/// Outcome of a GPU triangular solve.
#[derive(Debug, Clone)]
pub struct TriSolveOutcome {
    /// The solution vector.
    pub x: Vec<Val>,
    /// Simulated time of both sweeps.
    pub time: SimTime,
    /// Levels of the forward and backward sweeps.
    pub l_levels: usize,
    /// Levels of the backward sweep.
    pub u_levels: usize,
    /// GPU statistics delta.
    pub stats: GpuStatsSnapshot,
}

/// Solves `(L·U) x = b` on the simulated GPU with the level-scheduled
/// column algorithm, given a combined factor and its plan.
pub fn solve_gpu(
    gpu: &Gpu,
    lu: &Csc,
    plan: &TriSolvePlan,
    b: &[Val],
) -> Result<TriSolveOutcome, NumericError> {
    let n = lu.n_cols();
    if b.len() != n {
        return Err(NumericError::Input(format!(
            "rhs length {} does not match matrix dimension {n}",
            b.len()
        )));
    }
    let before = gpu.stats();

    // The factor is assumed device-resident (it just came out of numeric
    // factorization); the rhs crosses the bus.
    let x_dev = gpu.mem.alloc(n as u64 * 8)?;
    gpu.h2d(n as u64 * 8);

    let y = ValueStore::new(b);
    // Forward sweep: per level, block per column j: y_j is final; apply
    // y_i -= L(i,j) * y_j to the rows below.
    for cols in &plan.l_levels.groups {
        gpu.launch_device(
            "trisolve_l",
            cols.len(),
            256,
            &|blk: usize, ctx: &mut BlockCtx| {
                let j = cols[blk] as usize;
                let yj = y.get(j);
                let start = lu.lower_bound_after(j, j);
                let end = lu.col_ptr[j + 1];
                ctx.bulk_flops(1, (end - start) as u64);
                ctx.mem((end - start) as u64 * 12);
                if yj != 0.0 {
                    for k in start..end {
                        y.fetch_add(lu.row_idx[k] as usize, -lu.vals[k] * yj);
                    }
                }
            },
        )?;
    }

    // Backward sweep: per level, block per column j: divide by the pivot,
    // then push x_j's contribution up through U's column.
    let error = parking_lot::Mutex::new(None::<SparseError>);
    for cols in &plan.u_levels.groups {
        gpu.launch_device(
            "trisolve_u",
            cols.len(),
            256,
            &|blk: usize, ctx: &mut BlockCtx| {
                let j = cols[blk] as usize;
                let (diag_pos, probes) = lu.find_in_col(j, j);
                let Some(diag_pos) = diag_pos else {
                    error
                        .lock()
                        .get_or_insert(SparseError::ZeroDiagonal { row: j });
                    return;
                };
                let pivot = lu.vals[diag_pos];
                if pivot == 0.0 || !pivot.is_finite() {
                    error
                        .lock()
                        .get_or_insert(SparseError::ZeroPivot { col: j });
                    return;
                }
                let xj = y.get(j) / pivot;
                y.set(j, xj);
                let ups = diag_pos - lu.col_ptr[j];
                ctx.bulk_flops(1, ups as u64 + probes as u64);
                ctx.mem(ups as u64 * 12);
                if xj != 0.0 {
                    for k in lu.col_ptr[j]..diag_pos {
                        y.fetch_add(lu.row_idx[k] as usize, -lu.vals[k] * xj);
                    }
                }
            },
        )?;
        if let Some(e) = error.lock().take() {
            return Err(NumericError::from_sparse_at_level(e, usize::MAX));
        }
    }

    gpu.d2h(n as u64 * 8);
    gpu.mem.free(x_dev)?;
    let stats = gpu.stats().since(&before);
    Ok(TriSolveOutcome {
        x: y.into_vec(),
        time: stats.now,
        l_levels: plan.l_levels.n_levels(),
        u_levels: plan.u_levels.n_levels(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::convert::csr_to_csc;
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::triangular::solve_lu;
    use gplu_symbolic::symbolic_cpu;

    fn factor(a: &gplu_sparse::Csr) -> Csc {
        let mut lu = csr_to_csc(&symbolic_cpu(a, &CostModel::default()).result.filled);
        crate::seq::factorize_seq(&mut lu).expect("factorizes");
        lu
    }

    #[test]
    fn matches_host_solve() {
        let a = random_dominant(200, 4.0, 91);
        let lu = factor(&a);
        let b: Vec<f64> = (0..200).map(|i| (i % 5) as f64 - 2.0).collect();
        let host = solve_lu(&lu, &b).expect("host solve");
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        let out = solve_gpu(&gpu, &lu, &plan, &b).expect("gpu solve");
        for (k, (h, g)) in host.iter().zip(&out.x).enumerate() {
            assert!((h - g).abs() < 1e-9, "x[{k}]: host {h} vs gpu {g}");
        }
    }

    #[test]
    fn solves_the_original_system() {
        let a = banded_dominant(300, 4, 92);
        let lu = factor(&a);
        let x_true = vec![1.5; 300];
        let b = a.spmv(&x_true);
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        let out = solve_gpu(&gpu, &lu, &plan, &b).expect("gpu solve");
        assert!(gplu_sparse::verify::check_solution(&a, &out.x, &b, 1e-8));
    }

    #[test]
    fn plan_levels_respect_dependencies() {
        let a = random_dominant(150, 4.0, 93);
        let lu = factor(&a);
        let plan = TriSolvePlan::new(&lu);
        // Forward: every L entry (i, j) with i > j must cross levels.
        for j in 0..150 {
            for k in lu.lower_bound_after(j, j)..lu.col_ptr[j + 1] {
                let i = lu.row_idx[k] as usize;
                assert!(
                    plan.l_levels.level_of[i] > plan.l_levels.level_of[j],
                    "L({i},{j}) violates forward schedule"
                );
            }
        }
        // Backward: every strict-U entry (i, j) with i < j must cross.
        for j in 0..150 {
            let diag = lu.lower_bound_after(j, j);
            for k in lu.col_ptr[j]..diag {
                let i = lu.row_idx[k] as usize;
                if i < j {
                    assert!(
                        plan.u_levels.level_of[i] > plan.u_levels.level_of[j],
                        "U({i},{j}) violates backward schedule"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_reuse_across_many_rhs() {
        let a = random_dominant(120, 4.0, 94);
        let lu = factor(&a);
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        for seed in 0..4u64 {
            let x_true: Vec<f64> = (0..120)
                .map(|i| ((i as u64 + seed) % 9) as f64 + 1.0)
                .collect();
            let b = a.spmv(&x_true);
            let out = solve_gpu(&gpu, &lu, &plan, &b).expect("gpu solve");
            assert!(
                gplu_sparse::verify::check_solution(&a, &out.x, &b, 1e-8),
                "rhs {seed}"
            );
        }
    }

    #[test]
    fn frees_device_memory() {
        let a = random_dominant(80, 3.0, 95);
        let lu = factor(&a);
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        let b = vec![1.0; 80];
        solve_gpu(&gpu, &lu, &plan, &b).expect("gpu solve");
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn rhs_length_mismatch_is_typed_not_a_panic() {
        let a = random_dominant(40, 3.0, 96);
        let lu = factor(&a);
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        let err = solve_gpu(&gpu, &lu, &plan, &[1.0; 7]).unwrap_err();
        assert!(matches!(err, NumericError::Input(_)), "got {err}");
    }

    #[test]
    fn zero_pivot_in_factor_is_singular_pivot() {
        let a = random_dominant(40, 3.0, 97);
        let mut lu = factor(&a);
        // Corrupt one pivot to zero: the backward sweep must report it.
        let (diag, _) = lu.find_in_col(5, 5);
        lu.vals[diag.expect("diagonal present")] = 0.0;
        let plan = TriSolvePlan::new(&lu);
        let gpu = Gpu::new(GpuConfig::v100());
        let err = solve_gpu(&gpu, &lu, &plan, &[1.0; 40]).unwrap_err();
        assert_eq!(
            err,
            NumericError::SingularPivot {
                col: 5,
                level: usize::MAX
            }
        );
    }
}
