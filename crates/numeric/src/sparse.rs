//! Sorted-CSC GPU numeric factorization with binary-search access — the
//! paper's third contribution (Section 3.4, Algorithm 6).
//!
//! No per-column dense buffers: the factor stays in sorted CSC the whole
//! time, so the only per-column device state is registers/shared memory
//! and **all `TB_max` thread blocks can be resident** regardless of `n`.
//! The price is that each target row must be located by binary search
//! within its column (the ascending `row_idx` makes Algorithm 6 exact);
//! the probe count is charged by the cost model at a reduced per-probe
//! weight (the upper levels of the search tree stay cache-resident).

use crate::error::NumericError;
use crate::modes::{classify_level_cached, launch_shape, LevelType, ModeMix};
use crate::outcome::{
    column_cost_estimate_cached, process_column, AccessDiscipline, NumericOutcome, PivotCache,
};
use crate::resume::{LevelHook, LevelProgress, NumericResume};
use crate::values::ValueStore;
use gplu_schedule::Levels;
use gplu_sim::{BlockCtx, Gpu};
use gplu_sparse::{Csc, SparseError};
use gplu_trace::{TraceSink, NOOP};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fraction of a full work-item each binary-search probe costs (probes hit
/// mostly cache-resident tree levels; the leaf access is already counted
/// as the update item itself). This is the default of the cost model's
/// `probe_weight` knob; the kernel charges through
/// [`gplu_sim::CostModel::probe_flop_items`].
pub const PROBE_WEIGHT: f64 = 0.12;

/// Factorizes the filled matrix in the sorted-CSC format (Algorithm 6).
pub fn factorize_gpu_sparse(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_sparse_forced(gpu, pattern, levels, None)
}

/// As [`factorize_gpu_sparse`], but with the per-level A/B/C mode
/// classification overridden to a single `force`d type — the ablation knob
/// for GLU 3.0's adaptive kernel modes (paper Section 2.2).
pub fn factorize_gpu_sparse_forced(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    force: Option<LevelType>,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_sparse_traced(gpu, pattern, levels, force, &NOOP)
}

/// [`factorize_gpu_sparse_forced`] with telemetry: one `numeric.level` span
/// per schedule level; the end event carries the level's width, its A/B/C
/// mode, and the binary-search probe count the level contributed.
pub fn factorize_gpu_sparse_traced(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    force: Option<LevelType>,
    trace: &dyn TraceSink,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_sparse_run(gpu, pattern, levels, force, trace, None, None)
}

/// Full-control entry point: [`factorize_gpu_sparse_traced`] plus optional
/// level-granular resume state and a per-level checkpoint hook.
#[allow(clippy::too_many_arguments)]
pub fn factorize_gpu_sparse_run(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    force: Option<LevelType>,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    hook: Option<&mut LevelHook<'_>>,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_sparse_run_cached(gpu, pattern, levels, force, trace, resume, hook, None)
}

/// [`factorize_gpu_sparse_run`] with an optional prebuilt [`PivotCache`]
/// (the pattern-keyed refactorization fast path: the cache is pattern-only,
/// so a service factorizing the same pattern repeatedly builds it once).
///
/// A supplied cache also marks the run as a captured-schedule replay:
/// levels after the host-launched kick-off are tail-launched device-side
/// (Algorithm 5), exactly as in
/// [`crate::merge::factorize_gpu_merge_run_cached`].
#[allow(clippy::too_many_arguments)]
pub fn factorize_gpu_sparse_run_cached(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    force: Option<LevelType>,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    mut hook: Option<&mut LevelHook<'_>>,
    pivot: Option<&PivotCache>,
) -> Result<NumericOutcome, NumericError> {
    let n = pattern.n_cols();
    let before = gpu.stats();

    let csc_bytes = ((n + 1) as u64 + 2 * pattern.nnz() as u64) * 4;
    let csc_dev = gpu.mem.alloc(csc_bytes)?;
    gpu.h2d(csc_bytes);
    let lvl_dev = gpu.mem.alloc(n as u64 * 4)?;

    if let Some(r) = resume {
        r.check(pattern.nnz(), levels.groups.len())
            .map_err(NumericError::Input)?;
    }
    let start_level = resume.map_or(0, |r| r.start_level);
    let vals = match resume {
        Some(r) => ValueStore::new(&r.vals),
        None => ValueStore::new(&pattern.vals),
    };
    let cache_storage;
    let cache = match pivot {
        Some(c) => c,
        None => {
            cache_storage = PivotCache::build(pattern);
            &cache_storage
        }
    };
    let mut mix = resume.map_or_else(ModeMix::default, |r| r.mode_mix);
    let total_probes = AtomicU64::new(resume.map_or(0, |r| r.probes));
    let error: Mutex<Option<SparseError>> = Mutex::new(None);
    // Captured-schedule replay (prebuilt pivot cache ⇒ the schedule already
    // ran once): the host kicks off the first level, every later level is
    // tail-launched device-side, Algorithm-5 style.
    let replay = pivot.is_some();
    let mut kicked_off = false;

    for (li, cols) in levels.groups.iter().enumerate() {
        if li < start_level {
            continue; // already durable in the resumed value store
        }
        let t = force.unwrap_or_else(|| classify_level_cached(pattern, cache, cols));
        match t {
            LevelType::A => mix.a += 1,
            LevelType::B => mix.b += 1,
            LevelType::C => mix.c += 1,
        }
        let (threads, stripes) = launch_shape(t);
        let probes_before = total_probes.load(Ordering::Relaxed);
        trace.span_begin(
            "numeric.level",
            "level",
            gpu.now().as_ns(),
            &[("level", li.into()), ("width", cols.len().into())],
        );
        // Hoisted: one structural cost estimate per column, shared by all
        // of its cooperating stripes (type C runs 64 per column).
        let items_of: Vec<u64> = cols
            .iter()
            .map(|&j| column_cost_estimate_cached(pattern, cache, j as usize).1)
            .collect();
        let kernel = |b: usize, ctx: &mut BlockCtx| {
            let col = cols[b / stripes] as usize;
            let stripe = b % stripes;
            let items = items_of[b / stripes];
            // Each located access pays log2(col_nnz) probes at the reduced
            // probe weight, on top of the item itself (all at the
            // structured flop rate; the chain-free right-looking charge,
            // as in the dense engine).
            let nnz_col = (pattern.col_ptr[col + 1] - pattern.col_ptr[col]).max(1) as u64;
            let probe_items = gpu.cost().probe_flop_items(items, nnz_col);
            ctx.bulk_flops(3, (items + probe_items) / stripes as u64);
            ctx.mem(items * 8 / stripes as u64);
            if stripe == 0 {
                match process_column(pattern, &vals, col, AccessDiscipline::BinarySearch, cache) {
                    Ok(c) => {
                        total_probes.fetch_add(c.probes, Ordering::Relaxed);
                    }
                    Err(e) => {
                        error.lock().get_or_insert(e);
                    }
                }
            }
        };
        let grid = cols.len() * stripes;
        if replay && kicked_off {
            gpu.launch_device("numeric_sparse", grid, threads, &kernel)?;
        } else {
            gpu.launch("numeric_sparse", grid, threads, &kernel)?;
        }
        kicked_off = true;
        trace.span_end(
            "numeric.level",
            "level",
            gpu.now().as_ns(),
            &[
                ("level", li.into()),
                ("width", cols.len().into()),
                ("mode", t.letter().into()),
                (
                    "probes",
                    (total_probes.load(Ordering::Relaxed) - probes_before).into(),
                ),
            ],
        );
        if let Some(e) = error.lock().take() {
            return Err(NumericError::from_sparse_at_level(e, li));
        }
        if let Some(h) = hook.as_mut() {
            h(&LevelProgress {
                level: li,
                n_levels: levels.groups.len(),
                vals: &vals,
                mode_mix: mix,
                probes: total_probes.load(Ordering::Relaxed),
                merge_steps: 0,
                batches: 0,
            })?;
        }
    }

    gpu.mem.free(lvl_dev)?;
    gpu.d2h(pattern.nnz() as u64 * 4);
    gpu.mem.free(csc_dev)?;

    let lu = Csc::from_parts_unchecked(
        pattern.n_rows(),
        n,
        pattern.col_ptr.clone(),
        pattern.row_idx.clone(),
        vals.into_vec(),
    );
    let stats = gpu.stats().since(&before);
    Ok(NumericOutcome {
        lu,
        time: stats.now,
        stats,
        mode_mix: mix,
        m_limit: None,
        batches: 0,
        probes: total_probes.load(Ordering::Relaxed),
        merge_steps: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::factorize_gpu_dense;
    use gplu_schedule::{levelize_cpu, DepGraph};
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::convert::csr_to_csc;
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::verify::residual_probe;
    use gplu_symbolic::symbolic_cpu;

    fn setup(a: &gplu_sparse::Csr) -> (Csc, Levels) {
        let sym = symbolic_cpu(a, &CostModel::default());
        let g = DepGraph::build(&sym.result.filled);
        let levels = levelize_cpu(&g, &CostModel::default()).levels;
        (csr_to_csc(&sym.result.filled), levels)
    }

    #[test]
    fn matches_dense_engine_bitwise() {
        let a = random_dominant(100, 4.0, 81);
        let (pattern, levels) = setup(&a);
        let sparse = factorize_gpu_sparse(&Gpu::new(GpuConfig::v100()), &pattern, &levels)
            .expect("sparse ok");
        let dense =
            factorize_gpu_dense(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("dense ok");
        assert_eq!(
            sparse.lu.vals, dense.lu.vals,
            "identical update order ⇒ identical bits"
        );
        assert!(residual_probe(&a, &sparse.lu, 3) < 1e-10);
    }

    #[test]
    fn counts_binary_search_probes() {
        let a = banded_dominant(200, 4, 82);
        let (pattern, levels) = setup(&a);
        let out =
            factorize_gpu_sparse(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("ok");
        assert!(
            out.probes > pattern.nnz() as u64 / 2,
            "probes {} too few",
            out.probes
        );
        assert!(out.m_limit.is_none());
    }

    #[test]
    fn beats_dense_when_dense_is_block_starved() {
        // The Figure 8 situation: a device whose free memory fits only a
        // handful of dense column buffers, while CSC fits entirely.
        let a = banded_dominant(2000, 6, 83);
        let (pattern, levels) = setup(&a);
        let csc_bytes = ((2000 + 1) as u64 + 2 * pattern.nnz() as u64) * 4;
        let mem = csc_bytes + 2000 * 4 + 20 * 2000 * 4 + 1024; // M ≈ 20 < 160
        let dense_out = factorize_gpu_dense(
            &Gpu::new(GpuConfig::v100().with_memory(mem)),
            &pattern,
            &levels,
        )
        .expect("dense ok");
        let sparse_out = factorize_gpu_sparse(
            &Gpu::new(GpuConfig::v100().with_memory(mem)),
            &pattern,
            &levels,
        )
        .expect("sparse ok");
        assert!(
            sparse_out.time < dense_out.time,
            "sparse {} must beat block-starved dense {}",
            sparse_out.time,
            dense_out.time
        );
    }

    #[test]
    fn frees_device_memory() {
        let a = random_dominant(64, 3.0, 84);
        let (pattern, levels) = setup(&a);
        let gpu = Gpu::new(GpuConfig::v100());
        factorize_gpu_sparse(&gpu, &pattern, &levels).expect("ok");
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn singular_pivot_is_typed() {
        // Rank-deficient 2x2 of all ones: column 1's pivot cancels to zero.
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let (pattern, levels) = setup(&a);
        let err =
            factorize_gpu_sparse(&Gpu::new(GpuConfig::v100()), &pattern, &levels).unwrap_err();
        assert!(
            matches!(err, crate::NumericError::SingularPivot { col: 1, .. }),
            "want SingularPivot in column 1, got {err}"
        );
    }
}
