//! Sorted-CSC GPU numeric factorization with binary-search access — the
//! paper's third contribution (Section 3.4, Algorithm 6).
//!
//! No per-column dense buffers: the factor stays in sorted CSC the whole
//! time, so the only per-column device state is registers/shared memory
//! and **all `TB_max` thread blocks can be resident** regardless of `n`.
//! The price is that each target row must be located by binary search
//! within its column (the ascending `row_idx` makes Algorithm 6 exact);
//! the probe count is charged by the cost model at a reduced per-probe
//! weight (the upper levels of the search tree stay cache-resident).
//!
//! The level-loop scaffolding lives in [`crate::engine::run_levels`]; this
//! module contributes only the [`SparseEngine`] kernel and the forced-mode
//! ablation knob.

use crate::engine::{run_levels, EngineCounters, LevelRun, NumericEngine};
use crate::error::NumericError;
use crate::modes::{classify_level_cached, LevelType};
use crate::outcome::{
    process_column_with, AccessDiscipline, NumericOutcome, PivotCache, PivotRule,
};
use crate::resume::{LevelHook, NumericResume};
use gplu_schedule::Levels;
use gplu_sim::{BlockCtx, Gpu, SimError};
use gplu_sparse::Csc;
use gplu_trace::{AttrValue, TraceSink, NOOP};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fraction of a full work-item each binary-search probe costs (probes hit
/// mostly cache-resident tree levels; the leaf access is already counted
/// as the update item itself). This is the default of the cost model's
/// `probe_weight` knob; the kernel charges through
/// [`gplu_sim::CostModel::probe_flop_items`].
pub const PROBE_WEIGHT: f64 = 0.12;

/// The binary-search numeric engine (Algorithm 6), with GLU 3.0's
/// forced-mode ablation knob.
pub(crate) struct SparseEngine {
    force: Option<LevelType>,
    probes: AtomicU64,
}

impl SparseEngine {
    pub(crate) fn new(force: Option<LevelType>) -> SparseEngine {
        SparseEngine {
            force,
            probes: AtomicU64::new(0),
        }
    }
}

impl NumericEngine for SparseEngine {
    fn kernel_name(&self) -> &'static str {
        "numeric_sparse"
    }

    fn seed(&mut self, resume: &NumericResume) {
        self.probes.store(resume.probes, Ordering::Relaxed);
    }

    fn classify(&self, pattern: &Csc, cache: &PivotCache, cols: &[gplu_sparse::Idx]) -> LevelType {
        self.force
            .unwrap_or_else(|| classify_level_cached(pattern, cache, cols))
    }

    fn run_level(&self, run: &LevelRun<'_>) -> Result<(), SimError> {
        let stripes = run.stripes;
        let kernel = |b: usize, ctx: &mut BlockCtx| {
            let col = run.cols[b / stripes] as usize;
            let stripe = b % stripes;
            let items = run.items_of[b / stripes];
            // Each located access pays log2(col_nnz) probes at the reduced
            // probe weight, on top of the item itself (all at the
            // structured flop rate; the chain-free right-looking charge,
            // as in the dense engine).
            let nnz_col = (run.pattern.col_ptr[col + 1] - run.pattern.col_ptr[col]).max(1) as u64;
            let probe_items = run.gpu.cost().probe_flop_items(items, nnz_col);
            ctx.bulk_flops(3, (items + probe_items) / stripes as u64);
            ctx.mem(items * 8 / stripes as u64);
            if stripe == 0 {
                match process_column_with(
                    run.pattern,
                    run.vals,
                    col,
                    AccessDiscipline::BinarySearch,
                    run.cache,
                    run.rule,
                ) {
                    Ok((c, perturb)) => {
                        self.probes.fetch_add(c.probes, Ordering::Relaxed);
                        if let Some(delta) = perturb {
                            run.perturbs.lock().push((col, delta));
                        }
                    }
                    Err(e) => {
                        run.error.lock().get_or_insert(e);
                    }
                }
            }
        };
        run.launch(self.kernel_name(), &kernel)
    }

    fn counters(&self) -> EngineCounters {
        EngineCounters {
            probes: self.probes.load(Ordering::Relaxed),
            ..EngineCounters::default()
        }
    }

    fn level_attrs(
        &self,
        _run: &LevelRun<'_>,
        delta: &EngineCounters,
        attrs: &mut Vec<(&'static str, AttrValue)>,
    ) {
        attrs.push(("probes", delta.probes.into()));
    }
}

/// Factorizes the filled matrix in the sorted-CSC format (Algorithm 6).
pub fn factorize_gpu_sparse(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_sparse_forced(gpu, pattern, levels, None)
}

/// As [`factorize_gpu_sparse`], but with the per-level A/B/C mode
/// classification overridden to a single `force`d type — the ablation knob
/// for GLU 3.0's adaptive kernel modes (paper Section 2.2).
pub fn factorize_gpu_sparse_forced(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    force: Option<LevelType>,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_sparse_traced(gpu, pattern, levels, force, &NOOP)
}

/// [`factorize_gpu_sparse_forced`] with telemetry: one `numeric.level` span
/// per schedule level; the end event carries the level's width, its A/B/C
/// mode, and the binary-search probe count the level contributed.
pub fn factorize_gpu_sparse_traced(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    force: Option<LevelType>,
    trace: &dyn TraceSink,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_sparse_run(gpu, pattern, levels, force, trace, None, None)
}

/// Full-control entry point: [`factorize_gpu_sparse_traced`] plus optional
/// level-granular resume state and a per-level checkpoint hook.
#[allow(clippy::too_many_arguments)]
pub fn factorize_gpu_sparse_run(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    force: Option<LevelType>,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    hook: Option<&mut LevelHook<'_>>,
) -> Result<NumericOutcome, NumericError> {
    factorize_gpu_sparse_run_cached(
        gpu,
        pattern,
        levels,
        force,
        trace,
        resume,
        hook,
        None,
        PivotRule::Exact,
    )
}

/// [`factorize_gpu_sparse_run`] with an optional prebuilt [`PivotCache`]
/// (the pattern-keyed refactorization fast path: the cache is pattern-only,
/// so a service factorizing the same pattern repeatedly builds it once).
///
/// A supplied cache also marks the run as a captured-schedule replay:
/// levels after the host-launched kick-off are tail-launched device-side
/// (Algorithm 5), exactly as in
/// [`crate::merge::factorize_gpu_merge_run_cached`].
#[allow(clippy::too_many_arguments)]
pub fn factorize_gpu_sparse_run_cached(
    gpu: &Gpu,
    pattern: &Csc,
    levels: &Levels,
    force: Option<LevelType>,
    trace: &dyn TraceSink,
    resume: Option<&NumericResume>,
    hook: Option<&mut LevelHook<'_>>,
    pivot: Option<&PivotCache>,
    rule: PivotRule,
) -> Result<NumericOutcome, NumericError> {
    let mut engine = SparseEngine::new(force);
    run_levels(
        &mut engine,
        gpu,
        pattern,
        levels,
        trace,
        resume,
        hook,
        pivot,
        rule,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::factorize_gpu_dense;
    use gplu_schedule::{levelize_cpu, DepGraph};
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::convert::csr_to_csc;
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::verify::residual_probe;
    use gplu_symbolic::symbolic_cpu;

    fn setup(a: &gplu_sparse::Csr) -> (Csc, Levels) {
        let sym = symbolic_cpu(a, &CostModel::default());
        let g = DepGraph::build(&sym.result.filled);
        let levels = levelize_cpu(&g, &CostModel::default()).levels;
        (csr_to_csc(&sym.result.filled), levels)
    }

    #[test]
    fn matches_dense_engine_bitwise() {
        let a = random_dominant(100, 4.0, 81);
        let (pattern, levels) = setup(&a);
        let sparse = factorize_gpu_sparse(&Gpu::new(GpuConfig::v100()), &pattern, &levels)
            .expect("sparse ok");
        let dense =
            factorize_gpu_dense(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("dense ok");
        assert_eq!(
            sparse.lu.vals, dense.lu.vals,
            "identical update order ⇒ identical bits"
        );
        assert!(residual_probe(&a, &sparse.lu, 3) < 1e-10);
    }

    #[test]
    fn counts_binary_search_probes() {
        let a = banded_dominant(200, 4, 82);
        let (pattern, levels) = setup(&a);
        let out =
            factorize_gpu_sparse(&Gpu::new(GpuConfig::v100()), &pattern, &levels).expect("ok");
        assert!(
            out.probes > pattern.nnz() as u64 / 2,
            "probes {} too few",
            out.probes
        );
        assert!(out.m_limit.is_none());
    }

    #[test]
    fn beats_dense_when_dense_is_block_starved() {
        // The Figure 8 situation: a device whose free memory fits only a
        // handful of dense column buffers, while CSC fits entirely.
        let a = banded_dominant(2000, 6, 83);
        let (pattern, levels) = setup(&a);
        let csc_bytes = ((2000 + 1) as u64 + 2 * pattern.nnz() as u64) * 4;
        let mem = csc_bytes + 2000 * 4 + 20 * 2000 * 4 + 1024; // M ≈ 20 < 160
        let dense_out = factorize_gpu_dense(
            &Gpu::new(GpuConfig::v100().with_memory(mem)),
            &pattern,
            &levels,
        )
        .expect("dense ok");
        let sparse_out = factorize_gpu_sparse(
            &Gpu::new(GpuConfig::v100().with_memory(mem)),
            &pattern,
            &levels,
        )
        .expect("sparse ok");
        assert!(
            sparse_out.time < dense_out.time,
            "sparse {} must beat block-starved dense {}",
            sparse_out.time,
            dense_out.time
        );
    }

    #[test]
    fn frees_device_memory() {
        let a = random_dominant(64, 3.0, 84);
        let (pattern, levels) = setup(&a);
        let gpu = Gpu::new(GpuConfig::v100());
        factorize_gpu_sparse(&gpu, &pattern, &levels).expect("ok");
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn singular_pivot_is_typed() {
        // Rank-deficient 2x2 of all ones: column 1's pivot cancels to zero.
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let (pattern, levels) = setup(&a);
        let err =
            factorize_gpu_sparse(&Gpu::new(GpuConfig::v100()), &pattern, &levels).unwrap_err();
        assert!(
            matches!(err, crate::NumericError::SingularPivot { col: 1, .. }),
            "want SingularPivot in column 1, got {err}"
        );
    }
}
