//! Dynamic symbolic expansion — in-place pattern repair after a pivot
//! permutation.
//!
//! When threshold-pivot discovery (gplu-numeric) chooses a row order that
//! deviates from the natural diagonal, the fill pattern predicted for the
//! *unpermuted* matrix no longer covers the factorization of the permuted
//! one: left-looking updates would land on structurally missing positions
//! (`MissingFill`). Rather than discarding the symbolic investment and
//! re-running the full fill pass, this module grows the affected columns
//! in place.
//!
//! The input is the predicted filled matrix with its **rows permuted** by
//! the discovered pivot order (original `A` entries carried along, fills
//! as explicit zeros). Its pattern is a superset of the permuted `A`'s
//! pattern, so the left-looking closure of it is a superset of the true
//! fill of the permuted system — completing the closure is sufficient for
//! every engine to factorize without `MissingFill`.
//!
//! Closure rule (exactly the engines' access contract): for every column
//! `j` and every dependency entry `(t, j)` with `t < j`, each sub-diagonal
//! row of column `t` must also be present in column `j`. Columns are
//! repaired in ascending order; because column `t < j` is already final
//! when `j` is processed, a single outer pass with a per-column inner
//! fixpoint (new sub-diagonal deps discovered while repairing `j` are
//! replayed until quiescent) reaches the full closure.
//!
//! The pass is *bounded*: the permuted old fill can close to far more
//! entries than a fresh symbolic pass on the permuted matrix would
//! predict. The caller supplies a budget of added entries; when the
//! closure blows past it the outcome reports `closed == false` and the
//! caller falls back to a full re-symbolic pass — the last rung before
//! rejection on the recovery ladder.

use gplu_sparse::convert::coo_to_csr;
use gplu_sparse::{Coo, Csr, Idx, Val};

/// Result of a bounded in-place pattern expansion.
#[derive(Debug)]
pub struct ExpandOutcome {
    /// The expanded filled matrix: input entries in place, inserted
    /// positions as explicit zeros. Only meaningful when `closed`.
    pub filled: Csr,
    /// Number of structural entries inserted (including repaired
    /// diagonals).
    pub added: usize,
    /// Maximum number of inner fixpoint passes any single column needed —
    /// how deep the swap-induced fill cascaded.
    pub rounds: usize,
    /// Whether the closure completed within `budget`. When false the
    /// pattern is unusable and the caller must re-run symbolic
    /// factorization on the permuted matrix.
    pub closed: bool,
}

/// Inserts `row` into the sorted column `col` as an explicit zero if
/// absent; returns whether an insertion happened.
fn insert_zero(col: &mut Vec<(Idx, Val)>, row: Idx) -> bool {
    match col.binary_search_by_key(&row, |&(r, _)| r) {
        Ok(_) => false,
        Err(pos) => {
            col.insert(pos, (row, 0.0));
            true
        }
    }
}

/// Completes the left-looking closure of `filled_perm` (the row-permuted
/// predicted fill), inserting at most `budget` explicit-zero entries.
///
/// On dominant traffic — where discovery keeps the natural diagonal and
/// the caller passes the unpermuted fill — the input is already closed
/// and the pass returns it unchanged with `added == 0`.
pub fn expand_fill(filled_perm: &Csr, budget: usize) -> ExpandOutcome {
    let n = filled_perm.n_rows();
    debug_assert_eq!(n, filled_perm.n_cols(), "square systems only");

    // Column-wise working form; rows arrive ascending because the CSR is
    // scanned in row order.
    let mut cols: Vec<Vec<(Idx, Val)>> = vec![Vec::new(); n];
    for i in 0..n {
        for (j, v) in filled_perm.row_iter(i) {
            cols[j].push((i as Idx, v));
        }
    }

    let mut added = 0usize;
    let mut rounds = 0usize;
    let mut closed = true;

    'outer: for j in 0..n {
        let (left, right) = cols.split_at_mut(j);
        let colj = &mut right[0];
        // The engines address every pivot through the diagonal slot; make
        // sure it exists structurally (its value is repaired numerically).
        if insert_zero(colj, j as Idx) {
            added += 1;
        }
        let mut pass = 0usize;
        loop {
            let mut grew = false;
            // Snapshot the dependency prefix: insertions below may extend
            // it, which the next pass picks up.
            let deps: Vec<usize> = colj
                .iter()
                .map(|&(r, _)| r as usize)
                .take_while(|&r| r < j)
                .collect();
            for t in deps {
                for &(r, _) in &left[t] {
                    if (r as usize) > t && insert_zero(colj, r) {
                        added += 1;
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
            pass += 1;
            rounds = rounds.max(pass);
            if added > budget {
                closed = false;
                break 'outer;
            }
        }
    }

    let mut coo = Coo::new(n, n);
    for (j, col) in cols.iter().enumerate() {
        for &(i, v) in col {
            coo.push(i as usize, j, v);
        }
    }
    ExpandOutcome {
        filled: coo_to_csr(&coo),
        added,
        rounds,
        closed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::symbolic_cpu;
    use crate::reference::fill_by_elimination;
    use gplu_sim::CostModel;
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::perm::permute_csr;
    use gplu_sparse::Permutation;

    fn filled_of(a: &Csr) -> Csr {
        symbolic_cpu(a, &CostModel::default()).result.filled
    }

    /// The engines' access contract the expansion must establish.
    fn assert_closed(f: &Csr) {
        let n = f.n_rows();
        let mut cols: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for &j in f.row_cols(i) {
                cols[j as usize].push(i);
            }
        }
        for j in 0..n {
            assert!(cols[j].contains(&j), "diagonal ({j},{j}) missing");
            let deps: Vec<usize> = cols[j].iter().copied().filter(|&t| t < j).collect();
            for t in deps {
                for &r in &cols[t] {
                    if r > t {
                        assert!(cols[j].contains(&r), "dep ({t},{j}) needs target ({r},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn already_closed_pattern_is_untouched() {
        for seed in [11, 12] {
            let a = random_dominant(80, 3.0, seed);
            let f = filled_of(&a);
            let out = expand_fill(&f, f.nnz());
            assert!(out.closed);
            assert_eq!(out.added, 0, "symbolic fill is already a closure");
            assert_eq!(out.rounds, 0);
            assert_eq!(out.filled.nnz(), f.nnz());
            assert_closed(&out.filled);
        }
    }

    #[test]
    fn repairs_swap_induced_fill() {
        // Permute rows of a predicted fill by a few transpositions — the
        // situation after threshold pivoting rejects some diagonals — and
        // check the expansion restores the engines' closure invariant and
        // covers the true fill of the permuted matrix.
        let a = banded_dominant(60, 3, 21);
        let f = filled_of(&a);
        let n = f.n_rows();
        let mut fwd: Vec<Idx> = (0..n as Idx).collect();
        fwd.swap(3, 17);
        fwd.swap(30, 31);
        fwd.swap(44, 58);
        let p = Permutation::from_forward(fwd).expect("bijection");
        let fp = permute_csr(&f, &p, &Permutation::identity(n));
        let out = expand_fill(&fp, fp.nnz() * 8);
        assert!(out.closed, "small swaps close within budget");
        assert!(out.added > 0, "row swaps must introduce new positions");
        assert_closed(&out.filled);

        // Superset of the minimal fill of the permuted matrix: every true
        // fill position has a slot.
        let ap = permute_csr(&a, &p, &Permutation::identity(n));
        let oracle = fill_by_elimination(&ap);
        for (i, row) in oracle.iter().enumerate() {
            for &j in row {
                assert!(
                    out.filled.get(i, j as usize).is_some(),
                    "oracle fill ({i},{j}) missing from expansion"
                );
            }
        }

        // Original values rode along; fills are explicit zeros.
        for i in 0..n {
            for (j, v) in ap.row_iter(i) {
                if v != 0.0 {
                    assert_eq!(out.filled.get(i, j), Some(v));
                }
            }
        }
    }

    #[test]
    fn blown_budget_reports_unclosed() {
        let a = random_dominant(80, 2.0, 22);
        let f = filled_of(&a);
        let n = f.n_rows();
        // Reverse the rows — maximal deviation, massive induced fill.
        let fwd: Vec<Idx> = (0..n as Idx).rev().collect();
        let p = Permutation::from_forward(fwd).expect("bijection");
        let fp = permute_csr(&f, &p, &Permutation::identity(n));
        let out = expand_fill(&fp, 8);
        assert!(!out.closed, "budget of 8 entries cannot absorb a reversal");
        assert!(out.added > 8);
    }

    #[test]
    fn inserts_missing_diagonal() {
        let mut coo = Coo::new(3, 3);
        for (i, j, v) in [(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (2, 2, 3.0)] {
            coo.push(i, j, v);
        }
        let f = coo_to_csr(&coo);
        let out = expand_fill(&f, 16);
        assert!(out.closed);
        assert_eq!(out.filled.get(1, 1), Some(0.0), "diagonal slot repaired");
        assert_closed(&out.filled);
    }
}
