//! Chunk-granular resume support for the out-of-core symbolic engines.
//!
//! Stage 1 of Algorithm 3/4 is a loop of independent per-row traversals
//! grouped into chunks; each chunk boundary is a natural durability point
//! because the counting state (`fill_count`, frontier profile, aggregate
//! traversal counters) after `k` chunks is a pure function of the matrix
//! — the traversal of one row never reads another row's results. A
//! checkpoint cut there and replayed with [`SymbolicResume`] therefore
//! reproduces the identical fill pattern; stage 2 (position storing) is
//! recomputed from the counts and needs no partial state of its own.
//!
//! Both OOC engines ([`crate::ooc`], [`crate::dynamic`]) accept an
//! optional [`SymbolicResume`] plus an optional [`ChunkHook`] invoked
//! after every completed stage-1 chunk. The hook is where the pipeline
//! cuts snapshots; it returns a [`SimError`] to abort the run — in
//! particular the injected [`SimError::Crashed`] of a `crash:at=N` fault
//! plan.

use crate::dynamic::DynamicSplit;
use gplu_sim::SimError;

/// State to restart a stage-1 counting loop from a completed chunk.
#[derive(Debug, Clone, Default)]
pub struct SymbolicResume {
    /// Source rows `0..rows_done` have final counts in [`Self::fill_counts`].
    pub rows_done: usize,
    /// Out-of-core iterations already executed (for iteration accounting).
    pub iters_done: usize,
    /// Effective stage-1 chunk size after any OOM backoff
    /// ([`crate::ooc`] engine; the dynamic engine re-derives chunks from
    /// [`Self::split`]).
    pub chunk: usize,
    /// OOM backoff halvings already taken.
    pub oom_backoffs: usize,
    /// Per-row filled-nonzero counts (length `n`; rows past the watermark
    /// are zero).
    pub fill_counts: Vec<u32>,
    /// Per-row frontier counts ([`crate::ooc`] engine; empty for the
    /// dynamic engine, which only aggregates).
    pub frontiers: Vec<u64>,
    /// Aggregate traversal steps over the completed rows.
    pub agg_steps: u64,
    /// Aggregate scanned edges over the completed rows.
    pub agg_edges: u64,
    /// Aggregate frontier inserts (dynamic engine; the naive engine
    /// recomputes this from [`Self::frontiers`]).
    pub agg_frontiers: u64,
    /// Figure 3 series for the completed iterations ([`crate::ooc`]).
    pub per_iter_max_frontier: Vec<u64>,
    /// The prepass split (dynamic engine; `None` for the naive engine).
    pub split: Option<DynamicSplit>,
    /// Part-1 rows whose shrunken queues overflowed in completed chunks
    /// (dynamic engine; they are re-run after the counting stage).
    pub overflow_rows: Vec<u32>,
}

/// Progress handed to the [`ChunkHook`] after each completed stage-1
/// chunk. Carries owned snapshots so the hook can persist it directly;
/// [`ChunkProgress::to_resume`] converts it into the matching restart
/// state.
#[derive(Debug, Clone)]
pub struct ChunkProgress {
    /// Rows with final counts so far.
    pub rows_done: usize,
    /// Matrix dimension.
    pub n_rows: usize,
    /// Iterations executed so far.
    pub iters_done: usize,
    /// Effective chunk size in force.
    pub chunk: usize,
    /// OOM backoffs so far.
    pub oom_backoffs: usize,
    /// Snapshot of the per-row fill counts (length `n`).
    pub fill_counts: Vec<u32>,
    /// Snapshot of the per-row frontier counts (naive engine; else empty).
    pub frontiers: Vec<u64>,
    /// Aggregate traversal steps so far.
    pub agg_steps: u64,
    /// Aggregate scanned edges so far.
    pub agg_edges: u64,
    /// Aggregate frontier inserts so far (dynamic engine).
    pub agg_frontiers: u64,
    /// Figure 3 series so far (naive engine; else empty).
    pub per_iter_max_frontier: Vec<u64>,
    /// The prepass split (dynamic engine).
    pub split: Option<DynamicSplit>,
    /// Overflowed part-1 rows so far (dynamic engine).
    pub overflow_rows: Vec<u32>,
}

/// Per-chunk callback. Returning an error aborts the phase with that
/// device error — the path an injected crash takes.
pub type ChunkHook<'h> = dyn FnMut(&ChunkProgress) -> Result<(), SimError> + 'h;

impl ChunkProgress {
    /// Converts the progress snapshot into the restart state that
    /// reproduces it.
    pub fn to_resume(&self) -> SymbolicResume {
        SymbolicResume {
            rows_done: self.rows_done,
            iters_done: self.iters_done,
            chunk: self.chunk,
            oom_backoffs: self.oom_backoffs,
            fill_counts: self.fill_counts.clone(),
            frontiers: self.frontiers.clone(),
            agg_steps: self.agg_steps,
            agg_edges: self.agg_edges,
            agg_frontiers: self.agg_frontiers,
            per_iter_max_frontier: self.per_iter_max_frontier.clone(),
            split: self.split,
            overflow_rows: self.overflow_rows.clone(),
        }
    }
}

impl SymbolicResume {
    /// Validates the restart state against an `n × n` matrix; `per_row`
    /// demands the per-row frontier profile (naive OOC engine).
    pub fn check(&self, n: usize, per_row_frontiers: bool) -> Result<(), String> {
        if self.fill_counts.len() != n {
            return Err(format!(
                "resume state counts {} rows, matrix has {n}",
                self.fill_counts.len()
            ));
        }
        if self.rows_done > n {
            return Err(format!(
                "resume watermark {} exceeds matrix dimension {n}",
                self.rows_done
            ));
        }
        if per_row_frontiers && self.frontiers.len() != n {
            return Err(format!(
                "resume state has {} frontier entries, matrix has {n} rows",
                self.frontiers.len()
            ));
        }
        if self.rows_done > 0 && self.chunk == 0 && self.split.is_none() {
            return Err("resume state carries neither a chunk size nor a split".into());
        }
        Ok(())
    }
}
