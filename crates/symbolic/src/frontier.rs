//! Frontier-size profiling — the measurement behind the paper's Figure 3
//! and the justification for Algorithm 4's two-part split.

use crate::fill2::{fill2_row, Fill2Workspace};
use gplu_sparse::Csr;
use rayon::prelude::*;

/// Per-row frontier counts for the whole matrix (exact profile).
pub fn frontier_profile(a: &Csr) -> Vec<u64> {
    let n = a.n_rows();
    (0..n)
        .collect::<Vec<_>>()
        .par_chunks((n / (rayon::current_num_threads() * 4)).max(16))
        .flat_map_iter(|rows| {
            let mut ws = Fill2Workspace::new(n);
            rows.iter()
                .map(|&src| fill2_row(a, src as u32, &mut ws, |_| {}).frontiers)
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Buckets a per-row profile into `iterations` chunks of consecutive rows
/// (the out-of-core iterations of Figure 3's x-axis), reporting the
/// maximum frontier count in each.
pub fn bucket_max(profile: &[u64], iterations: usize) -> Vec<u64> {
    if profile.is_empty() || iterations == 0 {
        return Vec::new();
    }
    let chunk = profile.len().div_ceil(iterations);
    profile
        .chunks(chunk)
        .map(|c| c.iter().copied().max().unwrap_or(0))
        .collect()
}

/// The paper's split criterion: the first row index whose frontier count
/// exceeds `fraction` of the profile's maximum (`n1` in Algorithm 4).
pub fn split_point(profile: &[u64], fraction: f64) -> usize {
    let max = profile.iter().copied().max().unwrap_or(0);
    let threshold = (max as f64 * fraction) as u64;
    profile
        .iter()
        .position(|&f| f > threshold)
        .unwrap_or(profile.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sparse::gen::random::banded_dominant;

    #[test]
    fn banded_profile_grows_with_row_id() {
        let a = banded_dominant(600, 5, 3);
        let p = frontier_profile(&a);
        let early: u64 = p[..100].iter().sum();
        let late: u64 = p[500..].iter().sum();
        assert!(
            late > early,
            "frontier work must grow with row id: {early} vs {late}"
        );
    }

    #[test]
    fn bucket_max_shapes() {
        let p = vec![1, 2, 3, 9, 5, 6];
        assert_eq!(bucket_max(&p, 3), vec![2, 9, 6]);
        assert_eq!(bucket_max(&p, 1), vec![9]);
        assert!(bucket_max(&[], 4).is_empty());
    }

    #[test]
    fn split_point_on_half_max() {
        let p = vec![0, 1, 2, 10, 10, 10];
        assert_eq!(split_point(&p, 0.5), 3);
        // All below threshold -> split at the end (single part).
        assert_eq!(split_point(&[1, 1, 1], 1.0), 3);
    }
}
