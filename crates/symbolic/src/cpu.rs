//! The "modified GLU 3.0" parallel CPU symbolic baseline.
//!
//! The paper's Figure 4 baseline runs symbolic factorization on the
//! 28-thread host. Functionally this is the same fill2 traversal as the
//! GPU versions, parallelised across source rows with one workspace per
//! worker; its simulated cost comes from [`CostModel::cpu_parallel_ns`]
//! over the edges actually scanned.

use crate::fill2::{fill2_row, Fill2Workspace};
use crate::result::{SymbolicMetrics, SymbolicResult};
use gplu_sim::{CostModel, SimTime};
use gplu_sparse::{Csr, Idx};
use rayon::prelude::*;

/// Outcome of the CPU baseline: the symbolic result plus its simulated
/// wall time on the 28-thread host.
#[derive(Debug, Clone)]
pub struct CpuOutcome {
    /// The factorization pattern (identical across all implementations).
    pub result: SymbolicResult,
    /// Simulated CPU time.
    pub time: SimTime,
}

/// Runs parallel CPU symbolic factorization.
pub fn symbolic_cpu(a: &Csr, cost: &CostModel) -> CpuOutcome {
    let n = a.n_rows();
    // Row-chunked parallelism: one workspace per chunk keeps the O(n)
    // state allocation amortised over many rows, like a worker thread
    // reusing its buffers.
    let chunk = (n / (rayon::current_num_threads() * 4)).max(16);
    let per_chunk: Vec<(Vec<Vec<Idx>>, SymbolicMetrics)> = (0..n)
        .collect::<Vec<_>>()
        .par_chunks(chunk)
        .map(|rows| {
            let mut ws = Fill2Workspace::new(n);
            let mut patterns = Vec::with_capacity(rows.len());
            let mut metrics = SymbolicMetrics::default();
            for &src in rows {
                let mut cols: Vec<Idx> = Vec::new();
                let m = fill2_row(a, src as u32, &mut ws, |c| cols.push(c));
                cols.sort_unstable();
                patterns.push(cols);
                metrics.steps += m.steps;
                metrics.edges += m.edges;
                metrics.frontiers += m.frontiers;
            }
            (patterns, metrics)
        })
        .collect();

    let mut patterns = Vec::with_capacity(n);
    let mut metrics = SymbolicMetrics::default();
    for (pats, m) in per_chunk {
        patterns.extend(pats);
        metrics.steps += m.steps;
        metrics.edges += m.edges;
        metrics.frontiers += m.frontiers;
    }

    // Simulated cost: every scanned edge plus every emitted entry is one
    // irregular memory-bound item on the host.
    let items = metrics.edges + patterns.iter().map(|p| p.len() as u64).sum::<u64>();
    let time = SimTime::from_ns(cost.cpu_parallel_ns(items));
    let result = SymbolicResult::from_patterns(a, patterns, metrics);
    CpuOutcome { result, time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::fill_by_elimination;
    use gplu_sparse::gen::random::random_dominant;

    #[test]
    fn matches_reference_pattern() {
        let a = random_dominant(60, 4.0, 3);
        let out = symbolic_cpu(&a, &CostModel::default());
        let oracle = fill_by_elimination(&a);
        for (i, want) in oracle.iter().enumerate() {
            assert_eq!(out.result.filled.row_cols(i), &want[..], "row {i}");
        }
    }

    #[test]
    fn time_scales_with_work() {
        let cost = CostModel::default();
        let small = symbolic_cpu(&random_dominant(40, 3.0, 1), &cost);
        let large = symbolic_cpu(&random_dominant(400, 6.0, 1), &cost);
        assert!(large.time > small.time);
    }

    #[test]
    fn values_preserved_fill_zeroed() {
        let a = random_dominant(30, 4.0, 7);
        let out = symbolic_cpu(&a, &CostModel::default());
        for i in 0..30 {
            for (j, v) in a.row_iter(i) {
                assert_eq!(out.result.filled.get(i, j), Some(v));
            }
        }
        // Any entries beyond A's are zeros.
        let extra = out.result.fill_nnz() - a.nnz();
        let zeros = out.result.filled.vals.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros >= extra);
    }
}
