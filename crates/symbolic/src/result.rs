//! Symbolic-phase result types.

use gplu_sparse::{Csr, Idx, Val};

/// Aggregate traversal metrics over all rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymbolicMetrics {
    /// Total frontier BFS steps.
    pub steps: u64,
    /// Total adjacency entries scanned.
    pub edges: u64,
    /// Total frontier vertices processed.
    pub frontiers: u64,
}

/// The output of symbolic factorization: the filled pattern `As`, with
/// `A`'s values at original positions and explicit zeros at fill-ins —
/// exactly the "non-zero filled-in matrix of A after symbolic analysis"
/// that the paper's Algorithm 2 takes as input.
#[derive(Debug, Clone)]
pub struct SymbolicResult {
    /// The filled matrix `As` in CSR form (values populated from `A`).
    pub filled: Csr,
    /// Per-row nonzero counts of `As` (the stage-1 `fill_count` array).
    pub fill_count: Vec<u32>,
    /// Traversal metrics.
    pub metrics: SymbolicMetrics,
}

impl SymbolicResult {
    /// Assembles the result from per-row **sorted** patterns and the
    /// original matrix (for values).
    pub fn from_patterns(a: &Csr, patterns: Vec<Vec<Idx>>, metrics: SymbolicMetrics) -> Self {
        let n = a.n_rows();
        assert_eq!(patterns.len(), n, "one pattern per row required");
        let fill_count: Vec<u32> = patterns.iter().map(|p| p.len() as u32).collect();
        let nnz: usize = patterns.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut vals = vec![0.0 as Val; nnz];
        for (i, pat) in patterns.iter().enumerate() {
            debug_assert!(
                pat.windows(2).all(|w| w[0] < w[1]),
                "row {i} pattern unsorted"
            );
            let base = col_idx.len();
            col_idx.extend_from_slice(pat);
            // Scatter A's values into the (sorted) filled row by a merged
            // scan: both sequences are ascending.
            let mut k = base;
            for (j, v) in a.row_iter(i) {
                while col_idx[k] != j as Idx {
                    k += 1;
                }
                vals[k] = v;
                k += 1;
            }
            row_ptr.push(col_idx.len());
        }
        let filled = Csr::from_parts_unchecked(n, a.n_cols(), row_ptr, col_idx, vals);
        SymbolicResult {
            filled,
            fill_count,
            metrics,
        }
    }

    /// Number of nonzeros in the filled matrix.
    pub fn fill_nnz(&self) -> usize {
        self.filled.nnz()
    }

    /// Number of *new* fill-ins relative to the original matrix.
    pub fn new_fill_ins(&self, a: &Csr) -> usize {
        self.fill_nnz() - a.nnz()
    }

    /// Fill ratio `nnz(As) / nnz(A)` — the growth the out-of-core design
    /// has to absorb.
    pub fn fill_ratio(&self, a: &Csr) -> f64 {
        self.fill_nnz() as f64 / a.nnz() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sparse::convert::coo_to_csr;
    use gplu_sparse::Coo;

    fn small() -> Csr {
        let mut c = Coo::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(0, 2, 5.0);
        c.push(1, 1, 2.0);
        c.push(2, 0, 4.0);
        c.push(2, 2, 3.0);
        coo_to_csr(&c)
    }

    #[test]
    fn values_scattered_zeros_at_fill() {
        let a = small();
        // Pretend symbolic found fill-in (2, 1).
        let patterns = vec![vec![0, 2], vec![1], vec![0, 1, 2]];
        let r = SymbolicResult::from_patterns(&a, patterns, SymbolicMetrics::default());
        assert_eq!(r.filled.get(0, 2), Some(5.0));
        assert_eq!(
            r.filled.get(2, 1),
            Some(0.0),
            "fill-in must be explicit zero"
        );
        assert_eq!(r.filled.get(2, 2), Some(3.0));
        assert_eq!(r.new_fill_ins(&a), 1);
        assert!((r.fill_ratio(&a) - 6.0 / 5.0).abs() < 1e-12);
        assert_eq!(r.fill_count, vec![2, 1, 3]);
    }
}
