//! Unified-memory GPU symbolic factorization — the baselines of the
//! paper's Figures 5/6 and Table 3.
//!
//! Instead of chunking, the whole `c·4·n²`-byte traversal state is placed
//! in CUDA managed memory, oversubscribing the device; non-resident
//! fault-group blocks are serviced on first GPU touch, evicted LRU under
//! pressure (after which re-touching them pays real PCIe migration), and
//! can be moved ahead of time with `cudaMemPrefetchAsync`. Two variants,
//! exactly as the paper evaluates:
//!
//! * [`UmMode::NoPrefetch`] — pure on-demand paging: every cold block
//!   costs a fault-group service,
//! * [`UmMode::Prefetch`] — the tuned version: the prefetch stream runs
//!   ahead of each batch of rows. An asynchronous stream cannot fully
//!   outrun the kernels' irregular first touches, so it covers
//!   [`PREFETCH_COVERAGE`] of each batch; the remainder still faults —
//!   matching the residual fault counts the paper's Table 3 reports for
//!   its prefetching version (roughly a third of the on-demand counts).
//!
//! Blocks are replayed sequentially ([`Exec::Seq`]) so the paging pattern,
//! fault counts and Table 3 percentages are deterministic run to run.

use crate::fill2::{fill2_row, Fill2Workspace};
use crate::result::{SymbolicMetrics, SymbolicResult};
use gplu_sim::{BlockCtx, Exec, Gpu, GpuStatsSnapshot, LaunchKind, SimError, SimTime};
use gplu_sparse::{Csr, Idx};
use gplu_trace::{TraceSink, NOOP};
use parking_lot::Mutex;

/// Which unified-memory variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UmMode {
    /// Pure on-demand paging.
    NoPrefetch,
    /// Batched `cudaMemPrefetchAsync` of the traversal state.
    Prefetch,
}

/// Fraction of each batch's traversal state the asynchronous prefetch
/// stream manages to move before the kernels touch it.
pub const PREFETCH_COVERAGE: f64 = 0.65;

/// Outcome of a unified-memory symbolic run.
#[derive(Debug, Clone)]
pub struct UmOutcome {
    /// The factorization pattern (identical to every other variant).
    pub result: SymbolicResult,
    /// Simulated time of the phase.
    pub time: SimTime,
    /// GPU page-fault groups raised (Table 3's count).
    pub fault_groups: u64,
    /// Fraction of phase time spent servicing faults (Table 3's "pc.").
    pub fault_time_fraction: f64,
    /// GPU statistics delta.
    pub stats: GpuStatsSnapshot,
}

/// Runs unified-memory GPU symbolic factorization in the given mode.
pub fn symbolic_um(gpu: &Gpu, a: &Csr, mode: UmMode) -> Result<UmOutcome, SimError> {
    symbolic_um_traced(gpu, a, mode, &NOOP)
}

/// [`symbolic_um`] with telemetry: one `symbolic.batch` span per launch
/// batch, its end carrying the batch's fault-group delta (the per-batch
/// resolution behind the paper's Table 3 totals).
pub fn symbolic_um_traced(
    gpu: &Gpu,
    a: &Csr,
    mode: UmMode,
    trace: &dyn TraceSink,
) -> Result<UmOutcome, SimError> {
    let n = a.n_rows();
    let before = gpu.stats();
    let row_bytes = gplu_sim::GpuConfig::SYMBOLIC_ROW_WORDS * 4 * n as u64;

    // Managed allocations: the matrix pattern is host-backed (it migrates
    // over PCIe); the per-row traversal state and counts are device
    // scratch. The O(n²) state is the structure the out-of-core version
    // refuses to hold — here it simply oversubscribes the device.
    let a_bytes = (n as u64 + 1 + a.nnz() as u64) * 4;
    let a_um = gpu.um.alloc(a_bytes);
    let counts_um = gpu.um.alloc_scratch(n as u64 * 4);

    // Rows per launch batch: half the device's worth of traversal state,
    // so the batch streams through residency without self-eviction.
    let cap_bytes = gpu.mem.capacity();
    let batch = (((cap_bytes / 2) / row_bytes) as usize).clamp(1, n.max(1));

    // Functional workspaces (sequential execution → one suffices).
    let ws = Mutex::new(Fill2Workspace::new(n));
    let counts = Mutex::new(vec![0u32; n]);
    let patterns = Mutex::new(vec![Vec::<Idx>::new(); n]);
    let agg = Mutex::new(SymbolicMetrics::default());

    for store in [false, true] {
        let stage = if store {
            "um_symbolic_2"
        } else {
            "um_symbolic_1"
        };
        // Fresh scratch per stage (as the real implementation would
        // re-allocate its queues): no stale materialised pages.
        let state_um = gpu.um.alloc_scratch(row_bytes * n as u64);
        if mode == UmMode::Prefetch {
            // The matrix is hot data for every row: prefetch it up front.
            gpu.um_prefetch(&a_um, 0, a_bytes);
        }
        let mut start = 0usize;
        while start < n {
            let rows = batch.min(n - start);
            let faults_before = gpu.stats().fault_groups;
            trace.span_begin(
                "symbolic.batch",
                "chunk",
                gpu.now().as_ns(),
                &[("start", start.into()), ("rows", rows.into())],
            );
            if mode == UmMode::Prefetch {
                let cover = ((rows as u64 * row_bytes) as f64 * PREFETCH_COVERAGE) as u64;
                gpu.um_prefetch(&state_um, start as u64 * row_bytes, cover.max(1));
            }
            gpu.launch_with(
                stage,
                rows,
                1024,
                LaunchKind::Host,
                Exec::Seq,
                &|b: usize, ctx: &mut BlockCtx| {
                    let src = (start + b) as u32;
                    let mut cols: Vec<Idx> = Vec::new();
                    let m = {
                        let mut ws = ws.lock();
                        if store {
                            fill2_row(a, src, &mut ws, |c| cols.push(c))
                        } else {
                            fill2_row(a, src, &mut ws, |_| {})
                        }
                    };
                    crate::ooc::charge_row(ctx, &m);

                    // Managed-memory touches: the row's fill-stamp array is
                    // written through (4·n bytes), the frontier queues grow to
                    // the instantaneous maximum, and the adjacency scan reads
                    // the matrix allocation.
                    let s_off = src as u64 * row_bytes;
                    ctx.um_write(&state_um, s_off, (4 * n as u64).min(row_bytes));
                    let q_bytes = (8 * m.max_queue).min(row_bytes - 4 * n as u64);
                    if q_bytes > 0 {
                        ctx.um_write(&state_um, s_off + 4 * n as u64, q_bytes);
                    }
                    ctx.um_read(&a_um, 0, (m.edges * 4).min(a_bytes));
                    ctx.um_write(&counts_um, src as u64 * 4, 4);

                    if store {
                        cols.sort_unstable();
                        let e = m.emitted as u64;
                        if e > 1 {
                            ctx.step(e * (64 - e.leading_zeros() as u64));
                        }
                        patterns.lock()[src as usize] = cols;
                    } else {
                        counts.lock()[src as usize] = m.emitted;
                        let mut g = agg.lock();
                        g.steps += m.steps;
                        g.edges += m.edges;
                        g.frontiers += m.frontiers;
                    }
                },
            )?;
            trace.span_end(
                "symbolic.batch",
                "chunk",
                gpu.now().as_ns(),
                &[(
                    "fault_groups",
                    (gpu.stats().fault_groups - faults_before).into(),
                )],
            );
            start += rows;
        }
        gpu.um.free(state_um);
        if !store {
            // Prefix sum over the managed counts, as in the explicit
            // version.
            gpu.launch(
                "prefix_sum",
                n.div_ceil(1024).max(1),
                1024,
                &|_b: usize, ctx: &mut BlockCtx| {
                    ctx.step(1024);
                    ctx.mem(1024 * 4);
                },
            )?;
        }
    }

    gpu.um.free(a_um);
    gpu.um.free(counts_um);

    let metrics = *agg.lock();
    let result = SymbolicResult::from_patterns(a, patterns.into_inner(), metrics);
    let stats = gpu.stats().since(&before);
    Ok(UmOutcome {
        result,
        time: stats.now,
        fault_groups: stats.fault_groups,
        fault_time_fraction: stats.fault_time_fraction(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooc::symbolic_ooc;
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::gen::random::random_dominant;

    fn gpu_for(a: &Csr) -> Gpu {
        let cfg = GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz());
        // Test scale ~1/64: fault blocks shrink with the matrix
        // (per-byte service invariant), as the experiments configure.
        let cost = CostModel::default()
            .scaled_latencies(64)
            .with_um_page_bytes(2 * 1024 * 1024 / 64);
        Gpu::with_cost(cfg, cost)
    }

    #[test]
    fn matches_ooc_pattern() {
        let a = random_dominant(300, 4.0, 31);
        let um = symbolic_um(&gpu_for(&a), &a, UmMode::NoPrefetch).expect("runs");
        let ooc = symbolic_ooc(&gpu_for(&a), &a).expect("runs");
        assert_eq!(um.result.filled, ooc.result.filled);
    }

    #[test]
    fn oversubscription_causes_faults() {
        let a = random_dominant(800, 4.0, 32);
        let um = symbolic_um(&gpu_for(&a), &a, UmMode::NoPrefetch).expect("runs");
        assert!(
            um.fault_groups > 0,
            "state exceeds the device; faults are mandatory"
        );
        assert!(um.fault_time_fraction > 0.0);
    }

    #[test]
    fn prefetch_reduces_fault_groups_and_time() {
        let a = random_dominant(800, 4.0, 33);
        let wo = symbolic_um(&gpu_for(&a), &a, UmMode::NoPrefetch).expect("runs");
        let wp = symbolic_um(&gpu_for(&a), &a, UmMode::Prefetch).expect("runs");
        assert!(
            wp.fault_groups < wo.fault_groups,
            "prefetch {} must cut faults vs on-demand {}",
            wp.fault_groups,
            wo.fault_groups
        );
        assert!(
            wp.time < wo.time,
            "prefetch {} must be faster than {}",
            wp.time,
            wo.time
        );
        assert_eq!(wp.result.filled, wo.result.filled);
    }

    #[test]
    fn ooc_beats_um_symbolic() {
        let a = random_dominant(800, 4.0, 35);
        let ooc = symbolic_ooc(&gpu_for(&a), &a).expect("runs");
        let wp = symbolic_um(&gpu_for(&a), &a, UmMode::Prefetch).expect("runs");
        assert!(
            ooc.time < wp.time,
            "explicit out-of-core {} must beat prefetched UM {}",
            ooc.time,
            wp.time
        );
    }

    #[test]
    fn deterministic_fault_counts() {
        let a = random_dominant(400, 4.0, 34);
        let r1 = symbolic_um(&gpu_for(&a), &a, UmMode::NoPrefetch).expect("runs");
        let r2 = symbolic_um(&gpu_for(&a), &a, UmMode::NoPrefetch).expect("runs");
        assert_eq!(r1.fault_groups, r2.fault_groups);
        assert!((r1.time.as_ns() - r2.time.as_ns()).abs() < 1e-6);
    }
}
