//! The fill2 per-row traversal (the paper's Algorithm 1).
//!
//! For a source row `src`, the traversal discovers every column of the
//! filled row `As(src, :)`: the original entries of `A(src, :)` plus every
//! fill-in `(src, j)` licensed by Theorem 1. It sweeps a *threshold* upward
//! over discovered vertices `< src`; from each threshold it BFS-explores
//! the adjacency of `A`, classifying each newly reached vertex as a fill-in
//! (if above the threshold) or as a further frontier vertex (if below).
//!
//! This single function is the kernel body shared by the CPU baseline, the
//! out-of-core GPU stages (`symbolic_1` counting / `symbolic_2` storing)
//! and the unified-memory variants — they differ only in memory management
//! and cost accounting, exactly as in the paper.

use gplu_sparse::{Csr, Idx};

/// Reusable per-worker state: the `c·n` words of traversal storage the
/// paper's chunk sizing is built around (fill stamps + two frontier
/// queues; the remaining words of `c = 6` are the emit buffers owned by
/// the call sites).
#[derive(Debug)]
pub struct Fill2Workspace {
    /// Visit stamps: `fill[v] == epoch` means `v` was reached during the
    /// current traversal. Stamps are unique per *call* — not per row — so
    /// the array never needs clearing between rows (the `fill(:) = 0` of
    /// Algorithm 1 happens once, at construction), and a pooled workspace
    /// may safely revisit a row it already traversed (the two-stage
    /// count/store kernels and the dynamic engine's overflow re-runs do).
    fill: Vec<u32>,
    /// Stamp of the most recent traversal; bumped on every call.
    epoch: u32,
    queue: Vec<Idx>,
    next: Vec<Idx>,
}

impl Fill2Workspace {
    /// Workspace for an `n × n` matrix.
    pub fn new(n: usize) -> Self {
        Fill2Workspace {
            fill: vec![u32::MAX; n],
            epoch: 0,
            queue: Vec::with_capacity(64),
            next: Vec::with_capacity(64),
        }
    }

    /// Starts a traversal: returns a stamp distinct from every value
    /// currently in `fill`. On the (astronomically rare) epoch wrap the
    /// stamp array is re-cleared so stale `u32::MAX`-era stamps cannot
    /// alias.
    fn next_stamp(&mut self) -> u32 {
        if self.epoch >= u32::MAX - 1 {
            self.fill.fill(u32::MAX);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Matrix dimension this workspace serves.
    pub fn n(&self) -> usize {
        self.fill.len()
    }
}

/// Traversal metrics for one source row — these drive both the simulator's
/// cost accounting and the paper's Figure 3 / Algorithm 4 analyses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowMetrics {
    /// Frontier BFS iterations executed (each is one block-wide step).
    pub steps: u64,
    /// Adjacency entries scanned.
    pub edges: u64,
    /// Total frontier vertices processed — the paper's per-row "number of
    /// frontiers" (Figure 3's y-axis, Algorithm 4's split criterion).
    pub frontiers: u64,
    /// Largest instantaneous frontier queue — what the dynamic-assignment
    /// variant sizes its shrunken part-1 queues against.
    pub max_queue: u64,
    /// Entries emitted for the filled row (originals + fill-ins, incl. the
    /// diagonal).
    pub emitted: u32,
}

/// Runs the fill2 traversal for row `src`.
///
/// Every column of the filled row `As(src, :)` is passed to `emit`
/// (unsorted; the diagonal and original entries included). Pass a counting
/// closure for stage 1 (`symbolic_1`) and a collecting closure for stage 2
/// (`symbolic_2`).
pub fn fill2_row(
    a: &Csr,
    src: u32,
    ws: &mut Fill2Workspace,
    mut emit: impl FnMut(Idx),
) -> RowMetrics {
    debug_assert_eq!(ws.n(), a.n_rows(), "workspace sized for a different matrix");
    let mut m = RowMetrics::default();
    let stamp = ws.next_stamp();
    let fill = &mut ws.fill;
    let srcu = src as usize;

    // Seed: the original entries of row `src` (Algorithm 1 lines 1-10).
    fill[srcu] = stamp;
    emit(src); // diagonal (guaranteed structurally present after pre-processing)
    m.emitted += 1;
    for &v in a.row_cols(srcu) {
        if v == src {
            continue; // diagonal already emitted
        }
        fill[v as usize] = stamp;
        emit(v);
        m.emitted += 1;
    }

    // Threshold sweep (lines 11-27). `fill[t] == stamp` marks vertices
    // reached so far; thresholds are consumed in ascending order, and
    // fill-ins below `src` discovered later in the sweep still get their
    // turn because they are always greater than the current threshold.
    for threshold in 0..src {
        if fill[threshold as usize] != stamp {
            continue;
        }
        ws.queue.clear();
        ws.queue.push(threshold);
        while !ws.queue.is_empty() {
            m.steps += 1;
            m.frontiers += ws.queue.len() as u64;
            m.max_queue = m.max_queue.max(ws.queue.len() as u64);
            ws.next.clear();
            for &u in &ws.queue {
                for &w in a.row_cols(u as usize) {
                    m.edges += 1;
                    if fill[w as usize] == stamp {
                        continue;
                    }
                    fill[w as usize] = stamp;
                    if w > threshold {
                        // New fill-in of row `src` (L side if w < src,
                        // U side if w > src); if below `src` it will also
                        // serve as a later threshold.
                        emit(w);
                        m.emitted += 1;
                    } else {
                        // Intermediate vertex: keep traversing.
                        ws.next.push(w);
                    }
                }
            }
            std::mem::swap(&mut ws.queue, &mut ws.next);
        }
    }
    m
}

/// Convenience: runs fill2 for row `src` and returns the **sorted** filled
/// row pattern.
pub fn fill2_row_sorted(a: &Csr, src: u32, ws: &mut Fill2Workspace) -> (Vec<Idx>, RowMetrics) {
    let mut cols = Vec::new();
    let metrics = fill2_row(a, src, ws, |c| cols.push(c));
    cols.sort_unstable();
    (cols, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sparse::convert::coo_to_csr;
    use gplu_sparse::Coo;

    /// The running example of the paper's Figure 1 would need its exact
    /// matrix; we use a small crafted case with a known fill-in instead:
    ///
    /// ```text
    ///   A = 1 . . 1        row 3 has a(3,0); eliminating column 0
    ///       . 1 . .        reaches a(0,3)… path 3 -> 0 -> 3 is the
    ///       1 . 1 .        diagonal, but 2 -> 0 -> 3 (intermediate 0 <
    ///       1 . . 1        min(2,3)) creates fill-in (2, 3).
    /// ```
    fn example() -> gplu_sparse::Csr {
        let mut c = Coo::new(4, 4);
        for i in 0..4 {
            c.push(i, i, 1.0);
        }
        c.push(0, 3, 1.0);
        c.push(2, 0, 1.0);
        c.push(3, 0, 1.0);
        coo_to_csr(&c)
    }

    #[test]
    fn finds_expected_fill_in() {
        let a = example();
        let mut ws = Fill2Workspace::new(4);
        let (row2, _) = fill2_row_sorted(&a, 2, &mut ws);
        // Originals: {0, 2}; fill-in (2,3) via path 2 -> 0 -> 3.
        assert_eq!(row2, vec![0, 2, 3]);
    }

    #[test]
    fn row_zero_is_just_its_originals() {
        let a = example();
        let mut ws = Fill2Workspace::new(4);
        let (row0, m) = fill2_row_sorted(&a, 0, &mut ws);
        assert_eq!(row0, vec![0, 3]);
        assert_eq!(m.frontiers, 0, "no thresholds below row 0");
    }

    #[test]
    fn workspace_reuse_needs_no_clearing() {
        let a = example();
        let mut ws = Fill2Workspace::new(4);
        // Process rows out of order; stamps must not leak between rows.
        let (r3a, _) = fill2_row_sorted(&a, 3, &mut ws);
        let (r2, _) = fill2_row_sorted(&a, 2, &mut ws);
        let (r3b, _) = fill2_row_sorted(&a, 3, &mut ws);
        assert_eq!(r3a, r3b);
        assert_eq!(r2, vec![0, 2, 3]);
    }

    #[test]
    fn revisiting_a_row_with_fill_keeps_its_fill_ins() {
        // The two-stage kernels (count, then store) can hand the *same*
        // row to the *same* pooled workspace twice. Row 2 has a genuine
        // fill-in (2,3); a per-row stamp would see stage 1's marks and
        // drop it in stage 2.
        let a = example();
        let mut ws = Fill2Workspace::new(4);
        let (first, _) = fill2_row_sorted(&a, 2, &mut ws);
        let (second, _) = fill2_row_sorted(&a, 2, &mut ws);
        assert_eq!(first, vec![0, 2, 3]);
        assert_eq!(first, second, "fill-ins lost on revisit");
    }

    #[test]
    fn metrics_count_real_work() {
        let a = example();
        let mut ws = Fill2Workspace::new(4);
        let (_, m) = fill2_row_sorted(&a, 3, &mut ws);
        assert!(m.edges > 0);
        assert!(m.steps > 0);
        assert_eq!(m.emitted as usize, 2, "row 3: {{0, 3}} with no new fill");
    }

    #[test]
    fn chain_path_with_large_intermediates_gives_no_fill() {
        // Lower bidiagonal + full first row. Row 5 reaches everything via
        // 5 -> 4 -> 3 -> 2 -> 1 -> 0, but those intermediates are NOT all
        // smaller than the would-be fill targets, so Theorem 1 licenses no
        // fill-in for row 5: the sweep must come back empty-handed.
        let n = 6;
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 1.0);
            if i > 0 {
                c.push(i, i - 1, 1.0);
            }
            c.push(0, i, 1.0);
        }
        let a = coo_to_csr(&c);
        let mut ws = Fill2Workspace::new(n);
        let (row5, _) = fill2_row_sorted(&a, 5, &mut ws);
        assert_eq!(row5, vec![4, 5]);
    }

    #[test]
    fn hub_row_fills_through_small_intermediate() {
        // Row 5 connects to vertex 0, and row 0 is dense: every column j
        // has the path 5 -> 0 -> j with intermediate 0 < min(5, j), so the
        // whole row fills in.
        let n = 6;
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 1.0);
            c.push(0, i, 1.0);
        }
        c.push(5, 0, 1.0);
        let a = coo_to_csr(&c);
        let mut ws = Fill2Workspace::new(n);
        let (row5, _) = fill2_row_sorted(&a, 5, &mut ws);
        assert_eq!(row5, vec![0, 1, 2, 3, 4, 5]);
    }
}
