//! Out-of-core symbolic factorization with **dynamic parallelism
//! assignment** — the paper's Algorithm 4.
//!
//! The naive Algorithm 3 sizes every chunk for the worst case (`c·n` words
//! per row). But the per-row frontier count grows with the source-row id
//! (Theorem 1 admits more intermediates for larger ids — the paper's
//! Figure 3), so early rows waste most of their reservation. Algorithm 4
//! splits the rows at `n1`, the first row whose frontier count reaches 50 %
//! of the maximum, and uses a *larger* chunk for the first part (its
//! frontier queues can be allocated small) and the conservative chunk for
//! the rest.
//!
//! The split point is estimated from a cheap sampled prepass on the GPU
//! (the paper derives it from the same profile its Figure 3 plots). Rows
//! whose frontier overflows the shrunken part-1 queues are detected and
//! re-run with full-size state, so the optimization is safe regardless of
//! the estimate's quality.

use crate::fill2::fill2_row;
use crate::ooc::{charge_row, row_state_bytes, with_oom_backoff, WorkspacePool};
use crate::result::{SymbolicMetrics, SymbolicResult};
use crate::resume::{ChunkHook, ChunkProgress, SymbolicResume};
use crossbeam::queue::SegQueue;
use gplu_sim::{BlockCtx, Gpu, GpuStatsSnapshot, SimError, SimTime};
use gplu_sparse::{Csr, Idx};
use gplu_trace::{AttrValue, TraceSink, NOOP};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// The two-part split chosen by the prepass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicSplit {
    /// Rows `0..n1` form the low-frontier part.
    pub n1: usize,
    /// Frontier-queue capacity allocated per part-1 row.
    pub frontier_cap: u64,
    /// Chunk size for part 1 (large).
    pub chunk1: usize,
    /// Chunk size for part 2 (the conservative Algorithm 3 value).
    pub chunk2: usize,
}

/// Outcome of the dynamic-assignment run.
#[derive(Debug, Clone)]
#[must_use = "the outcome carries the pattern and any recovery evidence"]
pub struct DynamicOutcome {
    /// The factorization pattern.
    pub result: SymbolicResult,
    /// The split the prepass chose.
    pub split: DynamicSplit,
    /// Part-1 rows whose frontier overflowed the shrunken queues and were
    /// re-run with full state.
    pub overflows: usize,
    /// Total out-of-core iterations across both parts and stages.
    pub num_iterations: usize,
    /// Batch halvings taken after failed allocations (OOM backoff).
    pub oom_backoffs: usize,
    /// True when the factorized pattern could not stay device-resident and
    /// the storing stage streamed each batch back to the host instead.
    pub streamed_output: bool,
    /// Simulated time of the whole phase.
    pub time: SimTime,
    /// GPU statistics delta.
    pub stats: GpuStatsSnapshot,
}

/// Number of rows the prepass samples.
const PREPASS_SAMPLES: usize = 64;
/// The paper's split criterion: 50 % of the highest frontier count.
const SPLIT_FRACTION: f64 = 0.5;
/// Headroom multiplier on the sampled part-1 frontier maximum. Queue
/// memory is cheap relative to the `n`-word stamp array, so generous
/// headroom costs little chunk size and avoids overflow re-runs.
const CAP_HEADROOM: f64 = 3.0;

/// Per-row state bytes for a part-1 row: the full `n`-word fill-stamp
/// array is unavoidable, but the two frontier queues and scratch shrink to
/// the sampled cap.
fn part1_row_bytes(n: usize, cap: u64) -> u64 {
    4 * (n as u64 + 5 * cap.max(16))
}

/// Runs the sampled prepass and picks the split.
///
/// The prepass is *not* charged to the simulated clock: the paper derives
/// the split from the frontier profile it measures offline (its Figure 3
/// analysis precedes the Algorithm 4 runs), so the measured phase starts
/// with the split already known.
pub fn plan_split(gpu: &Gpu, a: &Csr, pool: &WorkspacePool) -> Result<DynamicSplit, SimError> {
    let n = a.n_rows();
    let samples: Vec<usize> = if n <= PREPASS_SAMPLES {
        (0..n).collect()
    } else {
        (0..PREPASS_SAMPLES)
            .map(|k| k * n / PREPASS_SAMPLES)
            .collect()
    };
    let mut profile: Vec<u64> = Vec::with_capacity(samples.len());
    let mut queues: Vec<u64> = Vec::with_capacity(samples.len());
    for &row in &samples {
        let m = pool.with(|ws| fill2_row(a, row as u32, ws, |_| {}));
        profile.push(m.frontiers);
        queues.push(m.max_queue);
    }
    let max_frontier = profile.iter().copied().max().unwrap_or(0);
    let threshold = (max_frontier as f64 * SPLIT_FRACTION) as u64;
    let split_at = profile
        .iter()
        .position(|&f| f > threshold)
        .unwrap_or(samples.len());
    let n1 = if split_at == 0 {
        0
    } else {
        samples.get(split_at).copied().unwrap_or(n)
    };

    let cap = samples
        .iter()
        .zip(&queues)
        .filter(|(&row, _)| row < n1)
        .map(|(_, &q)| q)
        .max()
        .unwrap_or(16);
    let cap = ((cap as f64 * CAP_HEADROOM) as u64).max(16);

    let free = gpu.mem.free_bytes();
    let chunk2 = ((free / row_state_bytes(n)) as usize).clamp(1, n.max(1));
    let chunk1 = ((free / part1_row_bytes(n, cap)) as usize).clamp(chunk2, n.max(1));
    Ok(DynamicSplit {
        n1,
        frontier_cap: cap,
        chunk1,
        chunk2,
    })
}

/// Runs out-of-core symbolic factorization with dynamic parallelism
/// assignment (Algorithm 4).
pub fn symbolic_ooc_dynamic(gpu: &Gpu, a: &Csr) -> Result<DynamicOutcome, SimError> {
    symbolic_ooc_dynamic_traced(gpu, a, &NOOP)
}

/// [`symbolic_ooc_dynamic`] with telemetry: a `symbolic.split` instant for
/// the prepass decision, one `symbolic.chunk` span per counting-stage
/// iteration (attrs: iteration, rows, part), and one `symbolic.batch` span
/// per storing-stage or retry batch.
pub fn symbolic_ooc_dynamic_traced(
    gpu: &Gpu,
    a: &Csr,
    trace: &dyn TraceSink,
) -> Result<DynamicOutcome, SimError> {
    symbolic_ooc_dynamic_run(gpu, a, trace, None, None)
}

/// Full-control entry point: [`symbolic_ooc_dynamic_traced`] plus optional
/// chunk-granular resume state and a per-chunk checkpoint hook (both apply
/// to the counting stage; the storing stage recomputes from the counts).
pub fn symbolic_ooc_dynamic_run(
    gpu: &Gpu,
    a: &Csr,
    trace: &dyn TraceSink,
    resume: Option<&SymbolicResume>,
    mut hook: Option<&mut ChunkHook<'_>>,
) -> Result<DynamicOutcome, SimError> {
    let n = a.n_rows();
    let before = gpu.stats();

    if let Some(r) = resume {
        r.check(n, false).map_err(SimError::BadLaunch)?;
        if r.rows_done > 0 && r.split.is_none() {
            return Err(SimError::BadLaunch(
                "resume state lacks the prepass split its watermark depends on".into(),
            ));
        }
    }

    let a_bytes = (n as u64 + 1 + a.nnz() as u64) * 4;
    let a_dev = gpu.mem.alloc(a_bytes)?;
    gpu.h2d(a_bytes);
    let counts_dev = gpu.mem.alloc(n as u64 * 4)?;

    let pool = WorkspacePool::new(n);
    let split = match resume.and_then(|r| r.split) {
        Some(s) => s,
        None => plan_split(gpu, a, &pool)?,
    };
    trace.instant(
        "symbolic.split",
        "chunk",
        gpu.now().as_ns(),
        &[
            ("n1", split.n1.into()),
            ("frontier_cap", split.frontier_cap.into()),
            ("chunk1", split.chunk1.into()),
            ("chunk2", split.chunk2.into()),
        ],
    );
    if split.chunk2 == 0 {
        return Err(SimError::OutOfMemory {
            requested: row_state_bytes(n),
            free: gpu.mem.free_bytes(),
            capacity: gpu.mem.capacity(),
        });
    }

    let fill_counts: Vec<AtomicU32> = match resume {
        Some(r) => r.fill_counts.iter().map(|&c| AtomicU32::new(c)).collect(),
        None => (0..n).map(|_| AtomicU32::new(0)).collect(),
    };
    let agg = [
        AtomicU64::new(resume.map_or(0, |r| r.agg_steps)),
        AtomicU64::new(resume.map_or(0, |r| r.agg_edges)),
        AtomicU64::new(resume.map_or(0, |r| r.agg_frontiers)),
    ];
    // A mutexed vec (not a lock-free queue) so the per-chunk hook can
    // snapshot the overflow set without draining it.
    let overflowed: Mutex<Vec<u32>> =
        Mutex::new(resume.map_or_else(Vec::new, |r| r.overflow_rows.clone()));
    let collected: SegQueue<(u32, Vec<Idx>)> = SegQueue::new();
    let mut patterns: Vec<Vec<Idx>> = vec![Vec::new(); n];
    let count_watermark = resume.map_or(0, |r| r.rows_done);
    let mut num_iterations = resume.map_or(0, |r| r.iters_done);
    let mut overflow_rows = 0usize;
    let mut oom_backoffs = resume.map_or(0, |r| r.oom_backoffs);
    let mut streamed_output = false;

    // Two stages (count, then store); within each, part 1 with its large
    // chunk and shrunken queues, then part 2 with the conservative chunk.
    for store in [false, true] {
        let stage = if store { "symbolic_2" } else { "symbolic_1" };
        // Resident output when the factorized pattern fits on the device
        // (Algorithm 3 line 8); otherwise stream per batch.
        let resident_out = if store {
            let total_fill: u64 = fill_counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed) as u64)
                .sum();
            let out = gpu.mem.alloc(total_fill * 4).ok();
            streamed_output = out.is_none();
            out
        } else {
            None
        };

        // Shared kernel body for both parts and the retry pass.
        let body = |src: u32, capped: bool, ctx: &mut BlockCtx| {
            let mut cols: Vec<Idx> = Vec::new();
            let m = pool.with(|ws| {
                if store {
                    fill2_row(a, src, ws, |c| cols.push(c))
                } else {
                    fill2_row(a, src, ws, |_| {})
                }
            });
            charge_row(ctx, &m);
            if capped && m.max_queue > split.frontier_cap {
                // Shrunken queues overflowed: discard and re-run this
                // row with full-size state.
                overflowed.lock().push(src);
                return;
            }
            if store {
                let e = m.emitted as u64;
                if e > 1 {
                    ctx.step(e * (64 - e.leading_zeros() as u64));
                }
                cols.sort_unstable();
                collected.push((src, cols));
            } else {
                fill_counts[src as usize].store(m.emitted, Ordering::Relaxed);
                agg[0].fetch_add(m.steps, Ordering::Relaxed);
                agg[1].fetch_add(m.edges, Ordering::Relaxed);
                agg[2].fetch_add(m.frontiers, Ordering::Relaxed);
            }
        };

        for (range, chunk, capped) in [
            (0..split.n1, split.chunk1, true),
            (split.n1..n, split.chunk2, false),
        ] {
            // Counting resumes past the watermark; storing always re-runs
            // in full (it is recomputed from the durable counts).
            let range = if store {
                range
            } else {
                range.start.max(count_watermark)..range.end
            };
            if range.is_empty() {
                continue;
            }
            let row_bytes = if capped {
                part1_row_bytes(n, split.frontier_cap)
            } else {
                row_state_bytes(n)
            };
            if !store {
                // Counting stage: fixed chunks, state only. The chunk the
                // split planned for is only a hint — back off geometrically
                // when the state allocation fails.
                let (state_dev, eff_chunk, backoffs) =
                    with_oom_backoff(chunk.min(range.len()), |rows| {
                        gpu.mem.alloc(rows as u64 * row_bytes)
                    })?;
                oom_backoffs += backoffs;
                let iters = range.len().div_ceil(eff_chunk);
                for iter in 0..iters {
                    let start = range.start + iter * eff_chunk;
                    let rows = eff_chunk.min(range.end - start);
                    trace.span_begin(
                        "symbolic.chunk",
                        "chunk",
                        gpu.now().as_ns(),
                        &[
                            ("iter", iter.into()),
                            ("rows", rows.into()),
                            ("part", if capped { 1u64.into() } else { 2u64.into() }),
                        ],
                    );
                    let clk0 = trace.enabled().then(|| gpu.clocks());
                    gpu.launch(stage, rows, 1024, &|b: usize, ctx: &mut BlockCtx| {
                        body((start + b) as u32, capped, ctx);
                    })?;
                    trace.span_end("symbolic.chunk", "chunk", gpu.now().as_ns(), &[]);
                    if let Some((obs0, pred0)) = clk0 {
                        let (obs1, pred1) = gpu.clocks();
                        if obs1 > obs0 {
                            trace.instant(
                                "drift.sample",
                                "drift",
                                obs1,
                                &[
                                    ("kind", "symbolic_chunk".into()),
                                    ("predicted_ns", AttrValue::F64(pred1 - pred0)),
                                    ("observed_ns", AttrValue::F64(obs1 - obs0)),
                                ],
                            );
                        }
                    }
                    num_iterations += 1;
                    if let Some(h) = hook.as_mut() {
                        h(&ChunkProgress {
                            rows_done: start + rows,
                            n_rows: n,
                            iters_done: num_iterations,
                            chunk: eff_chunk,
                            oom_backoffs,
                            fill_counts: fill_counts
                                .iter()
                                .map(|c| c.load(Ordering::Relaxed))
                                .collect(),
                            frontiers: Vec::new(),
                            agg_steps: agg[0].load(Ordering::Relaxed),
                            agg_edges: agg[1].load(Ordering::Relaxed),
                            agg_frontiers: agg[2].load(Ordering::Relaxed),
                            per_iter_max_frontier: Vec::new(),
                            split: Some(split),
                            overflow_rows: overflowed.lock().clone(),
                        })?;
                    }
                }
                gpu.mem.free(state_dev)?;
            } else {
                // Storing stage: per batch, traversal state and the output
                // positions share the free device memory.
                let mut start = range.start;
                while start < range.end {
                    let free = gpu.mem.free_bytes();
                    let mut batch = 0usize;
                    let mut planned_nnz = 0u64;
                    while start + batch < range.end && batch < chunk {
                        let c = fill_counts[start + batch].load(Ordering::Relaxed) as u64;
                        let out_need = if resident_out.is_some() {
                            0
                        } else {
                            (planned_nnz + c) * 4
                        };
                        let need = (batch as u64 + 1) * row_bytes + out_need;
                        if batch > 0 && need > free {
                            break;
                        }
                        planned_nnz += c;
                        batch += 1;
                    }
                    // The sizing above is a hint; the allocation decides.
                    let ((state_dev, out_dev, batch_nnz), rows, backoffs) =
                        with_oom_backoff(batch, |r| {
                            let nnz: u64 = (start..start + r)
                                .map(|i| fill_counts[i].load(Ordering::Relaxed) as u64)
                                .sum();
                            let state = gpu.mem.alloc(r as u64 * row_bytes)?;
                            if resident_out.is_some() {
                                return Ok((state, None, nnz));
                            }
                            match gpu.mem.alloc(nnz * 4) {
                                Ok(out) => Ok((state, Some(out), nnz)),
                                Err(e) => {
                                    let _ = gpu.mem.free(state);
                                    Err(e)
                                }
                            }
                        })?;
                    oom_backoffs += backoffs;
                    num_iterations += 1;
                    trace.span_begin(
                        "symbolic.batch",
                        "chunk",
                        gpu.now().as_ns(),
                        &[
                            ("start", start.into()),
                            ("rows", rows.into()),
                            ("nnz", batch_nnz.into()),
                            ("streamed", streamed_output.into()),
                        ],
                    );
                    gpu.launch(stage, rows, 1024, &|b: usize, ctx: &mut BlockCtx| {
                        body((start + b) as u32, capped, ctx);
                    })?;
                    trace.span_end("symbolic.batch", "chunk", gpu.now().as_ns(), &[]);
                    if let Some(dev) = out_dev {
                        gpu.d2h(batch_nnz * 4);
                        gpu.mem.free(dev)?;
                    }
                    gpu.mem.free(state_dev)?;
                    start += rows;
                }
            }
        }

        // Re-run overflowed part-1 rows with full-size state.
        let mut retry: Vec<u32> = std::mem::take(&mut *overflowed.lock());
        retry.sort_unstable();
        if !store {
            overflow_rows += retry.len();
        }
        if !retry.is_empty() {
            let row_bytes = row_state_bytes(n);
            let mut idx = 0usize;
            while idx < retry.len() {
                let want = (retry.len() - idx).min(split.chunk2);
                let ((state_dev, out_dev), rows, backoffs) = with_oom_backoff(want, |r| {
                    let state = gpu.mem.alloc(r as u64 * row_bytes)?;
                    if store && resident_out.is_none() {
                        let nnz: u64 = retry[idx..idx + r]
                            .iter()
                            .map(|&row| fill_counts[row as usize].load(Ordering::Relaxed) as u64)
                            .sum();
                        match gpu.mem.alloc(nnz * 4) {
                            Ok(out) => Ok((state, Some((out, nnz)))),
                            Err(e) => {
                                let _ = gpu.mem.free(state);
                                Err(e)
                            }
                        }
                    } else {
                        Ok((state, None))
                    }
                })?;
                oom_backoffs += backoffs;
                let batch = &retry[idx..idx + rows];
                num_iterations += 1;
                trace.span_begin(
                    "symbolic.retry",
                    "chunk",
                    gpu.now().as_ns(),
                    &[("rows", batch.len().into())],
                );
                gpu.launch(
                    "symbolic_retry",
                    batch.len(),
                    1024,
                    &|b: usize, ctx: &mut BlockCtx| {
                        body(batch[b], false, ctx);
                    },
                )?;
                trace.span_end("symbolic.retry", "chunk", gpu.now().as_ns(), &[]);
                if let Some((dev, nnz)) = out_dev {
                    gpu.d2h(nnz * 4);
                    gpu.mem.free(dev)?;
                }
                gpu.mem.free(state_dev)?;
                idx += rows;
            }
        }

        if !store {
            // Prefix sum + offsets readback between the stages (as in
            // Algorithm 3).
            gpu.launch(
                "prefix_sum",
                n.div_ceil(1024).max(1),
                1024,
                &|_b: usize, ctx: &mut BlockCtx| {
                    ctx.step(1024);
                    ctx.mem(1024 * 4);
                },
            )?;
            gpu.d2h(n as u64 * 4);
        } else {
            while let Some((src, cols)) = collected.pop() {
                patterns[src as usize] = cols;
            }
        }
        if let Some(dev) = resident_out {
            // Handed to the numeric phase in place (paper behaviour);
            // released because our pipeline re-allocates per phase.
            gpu.mem.free(dev)?;
        }
    }

    // The overflow list is drained per stage; anything left means a bug.
    debug_assert!(overflowed.lock().is_empty());
    gpu.mem.free(counts_dev)?;
    gpu.mem.free(a_dev)?;

    let metrics = SymbolicMetrics {
        steps: agg[0].load(Ordering::Relaxed),
        edges: agg[1].load(Ordering::Relaxed),
        frontiers: agg[2].load(Ordering::Relaxed),
    };
    let result = SymbolicResult::from_patterns(a, patterns, metrics);
    let stats = gpu.stats().since(&before);
    Ok(DynamicOutcome {
        result,
        split,
        overflows: overflow_rows,
        num_iterations,
        oom_backoffs,
        streamed_output,
        time: stats.now,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooc::symbolic_ooc;
    use gplu_sim::GpuConfig;
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};

    fn gpu_for(a: &Csr) -> Gpu {
        Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
    }

    #[test]
    fn matches_naive_ooc_pattern() {
        let a = random_dominant(400, 4.0, 21);
        let naive = symbolic_ooc(&gpu_for(&a), &a).expect("naive runs");
        let dynamic = symbolic_ooc_dynamic(&gpu_for(&a), &a).expect("dynamic runs");
        assert_eq!(naive.result.filled, dynamic.result.filled);
    }

    #[test]
    fn part1_chunk_is_larger() {
        let a = banded_dominant(1200, 5, 4);
        let gpu = gpu_for(&a);
        let out = symbolic_ooc_dynamic(&gpu, &a).expect("runs");
        assert!(
            out.split.chunk1 >= out.split.chunk2,
            "part-1 chunk {} must be >= part-2 chunk {}",
            out.split.chunk1,
            out.split.chunk2
        );
    }

    #[test]
    fn dynamic_is_not_slower_than_naive() {
        // The optimization targets banded/mesh-like matrices where the
        // frontier profile rises late; allow a small tolerance for the
        // prepass overhead.
        let a = banded_dominant(1500, 6, 8);
        let naive = symbolic_ooc(&gpu_for(&a), &a).expect("naive runs");
        let dynamic = symbolic_ooc_dynamic(&gpu_for(&a), &a).expect("dynamic runs");
        assert!(
            dynamic.time.as_ns() <= naive.time.as_ns() * 1.10,
            "dynamic {} vs naive {}",
            dynamic.time,
            naive.time
        );
    }

    #[test]
    fn overflow_retry_keeps_pattern_correct() {
        // A hub-heavy matrix makes early rows occasionally spike above the
        // sampled cap; the retry path must keep results exact.
        let a = gplu_sparse::gen::circuit::circuit(&gplu_sparse::gen::circuit::CircuitParams {
            n: 600,
            nnz_per_row: 8.0,
            ..Default::default()
        });
        let naive = symbolic_ooc(&gpu_for(&a), &a).expect("naive runs");
        let dynamic = symbolic_ooc_dynamic(&gpu_for(&a), &a).expect("dynamic runs");
        assert_eq!(naive.result.filled, dynamic.result.filled);
    }

    #[test]
    fn releases_device_memory() {
        let a = random_dominant(300, 4.0, 13);
        let gpu = gpu_for(&a);
        let _ = symbolic_ooc_dynamic(&gpu, &a).expect("runs");
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn oom_backoff_recovers_and_keeps_pattern_exact() {
        use gplu_sim::{CostModel, FaultPlan};
        let a = random_dominant(400, 4.0, 21);
        let plain = symbolic_ooc_dynamic(&gpu_for(&a), &a).expect("runs");
        // Fail the first counting-stage state allocation (ordinal 3:
        // matrix, counts, part-1 state) twice.
        let gpu = Gpu::with_fault_plan(
            GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
            CostModel::default(),
            FaultPlan::new().oom_on_alloc(3).oom_on_alloc(4),
        );
        let faulted = symbolic_ooc_dynamic(&gpu, &a).expect("backoff recovers");
        assert_eq!(faulted.oom_backoffs, 2);
        assert!(faulted.num_iterations > plain.num_iterations);
        assert_eq!(faulted.result.filled, plain.result.filled);
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn persistent_oom_is_a_typed_error() {
        use gplu_sim::{CostModel, FaultPlan};
        let a = random_dominant(300, 4.0, 13);
        let gpu = Gpu::with_fault_plan(
            GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
            CostModel::default(),
            FaultPlan::new().persistent_oom_from(1),
        );
        assert!(matches!(
            symbolic_ooc_dynamic(&gpu, &a),
            Err(SimError::OutOfMemory { .. })
        ));
    }
}
