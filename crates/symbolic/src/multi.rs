//! Multi-GPU out-of-core symbolic factorization — the scale-out extension
//! of Algorithm 3.
//!
//! The paper's closest prior work (GSOFA \[11\]) ran partial symbolic
//! factorization on up to 264 GPUs because per-row traversals are
//! embarrassingly parallel across source rows; the paper itself notes a
//! distributed collection "can increase the aggregate available memory".
//! This module extends the single-device out-of-core engine the same way:
//! the source rows are partitioned across `k` simulated devices (each with
//! its own copy of `A`, as in GSOFA), every device runs the two-stage
//! out-of-core procedure on its slice, and the host concatenates the
//! results. Simulated time is the **makespan** over the devices plus the
//! final gather.
//!
//! Partitioning matters because per-row work is wildly skewed (Figure 3:
//! late rows dominate). Two strategies are provided:
//! * [`Partition::Blocked`] — contiguous row ranges (the obvious split;
//!   the last device gets all the heavy rows),
//! * [`Partition::Strided`] — round-robin rows (interleaves the skew, the
//!   static load-balancing GSOFA-style deployments use).

use crate::fill2::fill2_row;
use crate::ooc::{charge_row, row_state_bytes, WorkspacePool};
use crate::result::{SymbolicMetrics, SymbolicResult};
use gplu_sim::{BlockCtx, Gpu, SimError, SimTime};
use gplu_sparse::{Csr, Idx};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// How source rows are assigned to devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Device `d` owns rows `d·n/k .. (d+1)·n/k`.
    Blocked,
    /// Device `d` owns rows `{ r : r mod k == d }`.
    Strided,
}

/// Outcome of a multi-GPU symbolic run.
#[derive(Debug, Clone)]
pub struct MultiGpuOutcome {
    /// The factorization pattern (identical to single-device).
    pub result: SymbolicResult,
    /// Per-device simulated times.
    pub per_gpu: Vec<SimTime>,
    /// Makespan (slowest device) plus the host gather.
    pub time: SimTime,
    /// Parallel efficiency vs the per-device total:
    /// `sum(per_gpu) / (k · makespan)`.
    pub efficiency: f64,
}

/// Runs out-of-core symbolic factorization across `gpus.len()` devices.
pub fn symbolic_multi_gpu(
    gpus: &[Gpu],
    a: &Csr,
    partition: Partition,
) -> Result<MultiGpuOutcome, SimError> {
    assert!(!gpus.is_empty(), "need at least one device");
    let n = a.n_rows();
    let k = gpus.len();

    let rows_of = |d: usize| -> Vec<u32> {
        match partition {
            Partition::Blocked => {
                let start = d * n / k;
                let end = (d + 1) * n / k;
                (start as u32..end as u32).collect()
            }
            Partition::Strided => (d as u32..)
                .step_by(k)
                .take_while(|&r| (r as usize) < n)
                .collect(),
        }
    };

    let fill_counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let agg = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
    let patterns: Vec<parking_lot::Mutex<Vec<Idx>>> = (0..n)
        .map(|_| parking_lot::Mutex::new(Vec::new()))
        .collect();

    let mut per_gpu = Vec::with_capacity(k);
    for (d, gpu) in gpus.iter().enumerate() {
        let before = gpu.stats();
        let my_rows = rows_of(d);

        // Each device holds its own copy of the pattern (GSOFA's layout).
        let a_bytes = (n as u64 + 1 + a.nnz() as u64) * 4;
        let a_dev = gpu.mem.alloc(a_bytes)?;
        gpu.h2d(a_bytes);
        let chunk =
            ((gpu.mem.free_bytes() / row_state_bytes(n)) as usize).clamp(1, my_rows.len().max(1));
        let state_dev = gpu.mem.alloc(chunk as u64 * row_state_bytes(n))?;

        let pool = WorkspacePool::new(n);
        for store in [false, true] {
            let stage = if store {
                "mg_symbolic_2"
            } else {
                "mg_symbolic_1"
            };
            for batch in my_rows.chunks(chunk.max(1)) {
                gpu.launch(stage, batch.len(), 1024, &|b: usize, ctx: &mut BlockCtx| {
                    let src = batch[b];
                    let mut cols: Vec<Idx> = Vec::new();
                    let m = pool.with(|ws| {
                        if store {
                            fill2_row(a, src, ws, |c| cols.push(c))
                        } else {
                            fill2_row(a, src, ws, |_| {})
                        }
                    });
                    charge_row(ctx, &m);
                    if store {
                        cols.sort_unstable();
                        *patterns[src as usize].lock() = cols;
                    } else {
                        fill_counts[src as usize].store(m.emitted, Ordering::Relaxed);
                        agg[0].fetch_add(m.steps, Ordering::Relaxed);
                        agg[1].fetch_add(m.edges, Ordering::Relaxed);
                        agg[2].fetch_add(m.frontiers, Ordering::Relaxed);
                    }
                })?;
            }
        }
        // Ship this device's slice of the pattern to the host for the
        // merge.
        let my_nnz: u64 = my_rows
            .iter()
            .map(|&r| fill_counts[r as usize].load(Ordering::Relaxed) as u64)
            .sum();
        gpu.d2h(my_nnz * 4);
        gpu.mem.free(state_dev)?;
        gpu.mem.free(a_dev)?;
        per_gpu.push(gpu.stats().since(&before).now);
    }

    let makespan = per_gpu.iter().copied().fold(SimTime::ZERO, SimTime::max);
    let total: SimTime = per_gpu.iter().copied().sum();
    let efficiency = if makespan.as_ns() > 0.0 {
        total.as_ns() / (k as f64 * makespan.as_ns())
    } else {
        1.0
    };

    let metrics = SymbolicMetrics {
        steps: agg[0].load(Ordering::Relaxed),
        edges: agg[1].load(Ordering::Relaxed),
        frontiers: agg[2].load(Ordering::Relaxed),
    };
    let pattern_rows: Vec<Vec<Idx>> = patterns.into_iter().map(|m| m.into_inner()).collect();
    let result = SymbolicResult::from_patterns(a, pattern_rows, metrics);
    Ok(MultiGpuOutcome {
        result,
        per_gpu,
        time: makespan,
        efficiency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooc::symbolic_ooc;
    use gplu_sim::GpuConfig;
    use gplu_sparse::gen::random::banded_dominant;

    fn fleet(a: &Csr, k: usize) -> Vec<Gpu> {
        (0..k)
            .map(|_| Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz())))
            .collect()
    }

    #[test]
    fn matches_single_device_pattern() {
        let a = banded_dominant(800, 5, 51);
        let single = symbolic_ooc(&fleet(&a, 1)[0], &a).expect("single");
        for partition in [Partition::Blocked, Partition::Strided] {
            let multi = symbolic_multi_gpu(&fleet(&a, 4), &a, partition).expect("multi");
            assert_eq!(single.result.filled, multi.result.filled, "{partition:?}");
        }
    }

    #[test]
    fn more_devices_reduce_makespan() {
        let a = banded_dominant(1500, 6, 52);
        let one = symbolic_multi_gpu(&fleet(&a, 1), &a, Partition::Strided).expect("k=1");
        let four = symbolic_multi_gpu(&fleet(&a, 4), &a, Partition::Strided).expect("k=4");
        assert!(
            four.time.as_ns() < one.time.as_ns() / 2.0,
            "4 devices {} should at least halve 1 device {}",
            four.time,
            one.time
        );
    }

    #[test]
    fn strided_beats_blocked_on_skewed_work() {
        // Banded matrices have the Figure 3 skew: late rows are much
        // heavier, so a blocked split starves devices 0..k-1.
        let a = banded_dominant(1600, 6, 53);
        let blocked = symbolic_multi_gpu(&fleet(&a, 4), &a, Partition::Blocked).expect("blocked");
        let strided = symbolic_multi_gpu(&fleet(&a, 4), &a, Partition::Strided).expect("strided");
        assert!(
            strided.time < blocked.time,
            "strided {} must beat blocked {} under skew",
            strided.time,
            blocked.time
        );
        assert!(strided.efficiency > blocked.efficiency);
    }

    #[test]
    fn efficiency_is_a_fraction() {
        let a = banded_dominant(600, 4, 54);
        let out = symbolic_multi_gpu(&fleet(&a, 3), &a, Partition::Strided).expect("runs");
        assert!(out.efficiency > 0.0 && out.efficiency <= 1.0 + 1e-9);
        assert_eq!(out.per_gpu.len(), 3);
    }
}
