//! Multi-GPU out-of-core symbolic factorization — the scale-out extension
//! of Algorithm 3.
//!
//! The paper's closest prior work (GSOFA \[11\]) ran partial symbolic
//! factorization on up to 264 GPUs because per-row traversals are
//! embarrassingly parallel across source rows; the paper itself notes a
//! distributed collection "can increase the aggregate available memory".
//! This module extends the single-device out-of-core engine the same way:
//! the source rows are partitioned across `k` simulated devices (each with
//! its own copy of `A`, as in GSOFA), every device runs the two-stage
//! out-of-core procedure on its slice, and the host concatenates the
//! results. Simulated time is the **makespan** over the devices plus the
//! final gather.
//!
//! Partitioning matters because per-row work is wildly skewed (Figure 3:
//! late rows dominate). Two strategies are provided:
//! * [`Partition::Blocked`] — contiguous row ranges (the obvious split;
//!   the last device gets all the heavy rows),
//! * [`Partition::Strided`] — round-robin rows (interleaves the skew, the
//!   static load-balancing GSOFA-style deployments use).

use crate::fill2::fill2_row;
use crate::ooc::{charge_row, row_state_bytes, WorkspacePool};
use crate::result::{SymbolicMetrics, SymbolicResult};
use gplu_sim::{BlockCtx, DeviceFleet, Gpu, SimError, SimTime};
use gplu_sparse::{Csr, Idx};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// How source rows are assigned to devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Device `d` owns rows `d·n/k .. (d+1)·n/k`.
    Blocked,
    /// Device `d` owns rows `{ r : r mod k == d }`.
    Strided,
}

/// Outcome of a multi-GPU symbolic run.
#[derive(Debug, Clone)]
pub struct MultiGpuOutcome {
    /// The factorization pattern (identical to single-device).
    pub result: SymbolicResult,
    /// Per-device simulated times.
    pub per_gpu: Vec<SimTime>,
    /// Makespan (slowest device) plus the host gather.
    pub time: SimTime,
    /// Parallel efficiency vs the per-device total:
    /// `sum(per_gpu) / (k · makespan)`.
    pub efficiency: f64,
}

/// Runs out-of-core symbolic factorization across `gpus.len()` devices.
pub fn symbolic_multi_gpu(
    gpus: &[Gpu],
    a: &Csr,
    partition: Partition,
) -> Result<MultiGpuOutcome, SimError> {
    assert!(!gpus.is_empty(), "need at least one device");
    let n = a.n_rows();
    let k = gpus.len();

    let rows_of = |d: usize| -> Vec<u32> {
        match partition {
            Partition::Blocked => {
                let start = d * n / k;
                let end = (d + 1) * n / k;
                (start as u32..end as u32).collect()
            }
            Partition::Strided => (d as u32..)
                .step_by(k)
                .take_while(|&r| (r as usize) < n)
                .collect(),
        }
    };

    let fill_counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let agg = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
    let patterns: Vec<parking_lot::Mutex<Vec<Idx>>> = (0..n)
        .map(|_| parking_lot::Mutex::new(Vec::new()))
        .collect();

    let mut per_gpu = Vec::with_capacity(k);
    for (d, gpu) in gpus.iter().enumerate() {
        let before = gpu.stats();
        let my_rows = rows_of(d);

        // Each device holds its own copy of the pattern (GSOFA's layout).
        let a_bytes = (n as u64 + 1 + a.nnz() as u64) * 4;
        let a_dev = gpu.mem.alloc(a_bytes)?;
        gpu.h2d(a_bytes);
        let chunk =
            ((gpu.mem.free_bytes() / row_state_bytes(n)) as usize).clamp(1, my_rows.len().max(1));
        let state_dev = gpu.mem.alloc(chunk as u64 * row_state_bytes(n))?;

        let pool = WorkspacePool::new(n);
        for store in [false, true] {
            let stage = if store {
                "mg_symbolic_2"
            } else {
                "mg_symbolic_1"
            };
            for batch in my_rows.chunks(chunk.max(1)) {
                gpu.launch(stage, batch.len(), 1024, &|b: usize, ctx: &mut BlockCtx| {
                    let src = batch[b];
                    let mut cols: Vec<Idx> = Vec::new();
                    let m = pool.with(|ws| {
                        if store {
                            fill2_row(a, src, ws, |c| cols.push(c))
                        } else {
                            fill2_row(a, src, ws, |_| {})
                        }
                    });
                    charge_row(ctx, &m);
                    if store {
                        cols.sort_unstable();
                        *patterns[src as usize].lock() = cols;
                    } else {
                        fill_counts[src as usize].store(m.emitted, Ordering::Relaxed);
                        agg[0].fetch_add(m.steps, Ordering::Relaxed);
                        agg[1].fetch_add(m.edges, Ordering::Relaxed);
                        agg[2].fetch_add(m.frontiers, Ordering::Relaxed);
                    }
                })?;
            }
        }
        // Ship this device's slice of the pattern to the host for the
        // merge.
        let my_nnz: u64 = my_rows
            .iter()
            .map(|&r| fill_counts[r as usize].load(Ordering::Relaxed) as u64)
            .sum();
        gpu.d2h(my_nnz * 4);
        gpu.mem.free(state_dev)?;
        gpu.mem.free(a_dev)?;
        per_gpu.push(gpu.stats().since(&before).now);
    }

    let makespan = per_gpu.iter().copied().fold(SimTime::ZERO, SimTime::max);
    let total: SimTime = per_gpu.iter().copied().sum();
    let efficiency = if makespan.as_ns() > 0.0 {
        total.as_ns() / (k as f64 * makespan.as_ns())
    } else {
        1.0
    };

    let metrics = SymbolicMetrics {
        steps: agg[0].load(Ordering::Relaxed),
        edges: agg[1].load(Ordering::Relaxed),
        frontiers: agg[2].load(Ordering::Relaxed),
    };
    let pattern_rows: Vec<Vec<Idx>> = patterns.into_iter().map(|m| m.into_inner()).collect();
    let result = SymbolicResult::from_patterns(a, pattern_rows, metrics);
    Ok(MultiGpuOutcome {
        result,
        per_gpu,
        time: makespan,
        efficiency,
    })
}

/// Outcome of a fleet symbolic run (the [`DeviceFleet`]-aware variant of
/// [`MultiGpuOutcome`], with liveness and reshard accounting).
#[derive(Debug, Clone)]
pub struct FleetSymbolicOutcome {
    /// The factorization pattern (identical to single-device).
    pub result: SymbolicResult,
    /// Per-device simulated time spent in this phase, indexed by device
    /// ordinal (zero for devices that were dead on entry).
    pub per_device: Vec<SimTime>,
    /// Post-barrier makespan of the phase.
    pub time: SimTime,
    /// Parallel efficiency over the devices that did work.
    pub efficiency: f64,
    /// Devices that died *during this phase* (their work was resharded).
    pub died: Vec<usize>,
    /// Rows re-run on survivors after device deaths.
    pub resharded_rows: usize,
}

/// Runs the two-stage out-of-core fill counting sharded by source-row
/// range across the live devices of `fleet` (GSoFa-style: every device
/// holds its own copy of `A` and traverses its row slice), then prices
/// the fill-count all-gather on the interconnect and barriers.
///
/// A device failure (injected OOM, launch fault, squeeze-induced OOM)
/// marks that device dead and reshards its rows round-robin onto the
/// survivors; the run fails only when a crash is injected
/// ([`SimError::Crashed`] is terminal by design) or every device dies.
/// Because each row's traversal is independent and deterministic, the
/// merged pattern is bit-identical to the single-device engines no matter
/// how many devices run or die.
pub fn symbolic_fleet(
    fleet: &DeviceFleet,
    a: &Csr,
    partition: Partition,
) -> Result<FleetSymbolicOutcome, SimError> {
    let n = a.n_rows();
    let before: Vec<_> = fleet.devices().iter().map(|g| g.stats()).collect();

    let fill_counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    // Per-row metric slots (stores, not adds) so re-running a dead
    // device's rows on a survivor cannot double-count.
    let row_metrics: Vec<[AtomicU64; 3]> = (0..n).map(|_| Default::default()).collect();
    let patterns: Vec<parking_lot::Mutex<Vec<Idx>>> = (0..n)
        .map(|_| parking_lot::Mutex::new(Vec::new()))
        .collect();

    // Runs both stages over `rows` on one device; idempotent, so a dead
    // device's slice can simply be re-run elsewhere.
    let run_rows = |gpu: &Gpu, rows: &[u32]| -> Result<(), SimError> {
        if rows.is_empty() {
            return Ok(());
        }
        let a_bytes = (n as u64 + 1 + a.nnz() as u64) * 4;
        let a_dev = gpu.mem.alloc(a_bytes)?;
        gpu.h2d(a_bytes);
        let chunk =
            ((gpu.mem.free_bytes() / row_state_bytes(n)) as usize).clamp(1, rows.len().max(1));
        let state_dev = gpu.mem.alloc(chunk as u64 * row_state_bytes(n))?;
        let pool = WorkspacePool::new(n);
        let mut outcome = Ok(());
        'stages: for store in [false, true] {
            let stage = if store {
                "fleet_symbolic_2"
            } else {
                "fleet_symbolic_1"
            };
            for batch in rows.chunks(chunk.max(1)) {
                let launched =
                    gpu.launch(stage, batch.len(), 1024, &|b: usize, ctx: &mut BlockCtx| {
                        let src = batch[b];
                        let mut cols: Vec<Idx> = Vec::new();
                        let m = pool.with(|ws| {
                            if store {
                                fill2_row(a, src, ws, |c| cols.push(c))
                            } else {
                                fill2_row(a, src, ws, |_| {})
                            }
                        });
                        charge_row(ctx, &m);
                        if store {
                            cols.sort_unstable();
                            *patterns[src as usize].lock() = cols;
                        } else {
                            fill_counts[src as usize].store(m.emitted, Ordering::Relaxed);
                            row_metrics[src as usize][0].store(m.steps, Ordering::Relaxed);
                            row_metrics[src as usize][1].store(m.edges, Ordering::Relaxed);
                            row_metrics[src as usize][2].store(m.frontiers, Ordering::Relaxed);
                        }
                    });
                if let Err(e) = launched {
                    outcome = Err(e);
                    break 'stages;
                }
            }
        }
        // Free the arena even on failure so a later reshard pass (or the
        // numeric phase) sees a clean device.
        let my_nnz: u64 = if outcome.is_ok() {
            rows.iter()
                .map(|&r| fill_counts[r as usize].load(Ordering::Relaxed) as u64)
                .sum()
        } else {
            0
        };
        if my_nnz > 0 {
            gpu.d2h(my_nnz * 4);
        }
        gpu.mem.free(state_dev)?;
        gpu.mem.free(a_dev)?;
        outcome
    };

    let assign_rows = |owners: &[usize]| -> Vec<(usize, Vec<u32>)> {
        let k = owners.len();
        owners
            .iter()
            .enumerate()
            .map(|(slot, &d)| {
                let rows = match partition {
                    Partition::Blocked => {
                        let start = slot * n / k;
                        let end = (slot + 1) * n / k;
                        (start as u32..end as u32).collect()
                    }
                    Partition::Strided => (slot as u32..)
                        .step_by(k)
                        .take_while(|&r| (r as usize) < n)
                        .collect(),
                };
                (d, rows)
            })
            .collect()
    };

    let alive = fleet.alive();
    if alive.is_empty() {
        return Err(SimError::BadLaunch("no live devices in fleet".into()));
    }
    let mut pending = assign_rows(&alive);
    let mut died = Vec::new();
    let mut resharded_rows = 0usize;
    let mut last_err: Option<SimError> = None;
    while !pending.is_empty() {
        let mut failed_rows: Vec<u32> = Vec::new();
        for (d, rows) in pending.drain(..) {
            match run_rows(fleet.device(d), &rows) {
                Ok(()) => {}
                Err(e @ SimError::Crashed { .. }) => return Err(e),
                Err(e) => {
                    fleet.mark_dead(d);
                    died.push(d);
                    failed_rows.extend(rows);
                    last_err = Some(e);
                }
            }
        }
        if failed_rows.is_empty() {
            break;
        }
        let survivors = fleet.alive();
        if survivors.is_empty() {
            return Err(last_err.unwrap_or(SimError::BadLaunch(
                "every fleet device died during symbolic".into(),
            )));
        }
        // Round-robin the dead devices' rows onto the survivors.
        resharded_rows += failed_rows.len();
        let mut shards: Vec<(usize, Vec<u32>)> =
            survivors.iter().map(|&d| (d, Vec::new())).collect();
        for (i, r) in failed_rows.into_iter().enumerate() {
            shards[i % survivors.len()].1.push(r);
        }
        pending = shards;
    }

    // GSoFa's count merge: every live device gathers the others' per-row
    // fill counts (4 bytes per row it does not own) over the peer links,
    // then the fleet barriers before the host-side pattern merge.
    let counts_bytes: Vec<u64> = {
        let mut owned = vec![0u64; fleet.len()];
        for (slot, &d) in fleet.alive().iter().enumerate() {
            let k = fleet.n_alive();
            let rows = match partition {
                Partition::Blocked => ((slot + 1) * n / k - slot * n / k) as u64,
                Partition::Strided => n.div_ceil(k).min(n) as u64,
            };
            owned[d] = rows * 4;
        }
        owned
    };
    fleet.all_gather(&counts_bytes);

    let per_device: Vec<SimTime> = fleet
        .devices()
        .iter()
        .zip(&before)
        .map(|(g, b)| g.stats().since(b).now)
        .collect();
    let worked: Vec<SimTime> = fleet
        .alive()
        .iter()
        .map(|&d| per_device[d])
        .filter(|t| t.as_ns() > 0.0)
        .collect();
    let makespan = worked.iter().copied().fold(SimTime::ZERO, SimTime::max);
    let total: SimTime = worked.iter().copied().sum();
    let efficiency = if makespan.as_ns() > 0.0 && !worked.is_empty() {
        total.as_ns() / (worked.len() as f64 * makespan.as_ns())
    } else {
        1.0
    };

    let sum_metric = |i: usize| -> u64 {
        row_metrics
            .iter()
            .map(|m| m[i].load(Ordering::Relaxed))
            .sum()
    };
    let metrics = SymbolicMetrics {
        steps: sum_metric(0),
        edges: sum_metric(1),
        frontiers: sum_metric(2),
    };
    let pattern_rows: Vec<Vec<Idx>> = patterns.into_iter().map(|m| m.into_inner()).collect();
    let result = SymbolicResult::from_patterns(a, pattern_rows, metrics);
    Ok(FleetSymbolicOutcome {
        result,
        per_device,
        time: makespan,
        efficiency,
        died,
        resharded_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooc::symbolic_ooc;
    use gplu_sim::GpuConfig;
    use gplu_sparse::gen::random::banded_dominant;

    fn fleet(a: &Csr, k: usize) -> Vec<Gpu> {
        (0..k)
            .map(|_| Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz())))
            .collect()
    }

    #[test]
    fn matches_single_device_pattern() {
        let a = banded_dominant(800, 5, 51);
        let single = symbolic_ooc(&fleet(&a, 1)[0], &a).expect("single");
        for partition in [Partition::Blocked, Partition::Strided] {
            let multi = symbolic_multi_gpu(&fleet(&a, 4), &a, partition).expect("multi");
            assert_eq!(single.result.filled, multi.result.filled, "{partition:?}");
        }
    }

    #[test]
    fn more_devices_reduce_makespan() {
        let a = banded_dominant(1500, 6, 52);
        let one = symbolic_multi_gpu(&fleet(&a, 1), &a, Partition::Strided).expect("k=1");
        let four = symbolic_multi_gpu(&fleet(&a, 4), &a, Partition::Strided).expect("k=4");
        assert!(
            four.time.as_ns() < one.time.as_ns() / 2.0,
            "4 devices {} should at least halve 1 device {}",
            four.time,
            one.time
        );
    }

    #[test]
    fn strided_beats_blocked_on_skewed_work() {
        // Banded matrices have the Figure 3 skew: late rows are much
        // heavier, so a blocked split starves devices 0..k-1.
        let a = banded_dominant(1600, 6, 53);
        let blocked = symbolic_multi_gpu(&fleet(&a, 4), &a, Partition::Blocked).expect("blocked");
        let strided = symbolic_multi_gpu(&fleet(&a, 4), &a, Partition::Strided).expect("strided");
        assert!(
            strided.time < blocked.time,
            "strided {} must beat blocked {} under skew",
            strided.time,
            blocked.time
        );
        assert!(strided.efficiency > blocked.efficiency);
    }

    #[test]
    fn efficiency_is_a_fraction() {
        let a = banded_dominant(600, 4, 54);
        let out = symbolic_multi_gpu(&fleet(&a, 3), &a, Partition::Strided).expect("runs");
        assert!(out.efficiency > 0.0 && out.efficiency <= 1.0 + 1e-9);
        assert_eq!(out.per_gpu.len(), 3);
    }

    fn device_fleet(a: &Csr, k: usize) -> DeviceFleet {
        DeviceFleet::new(k, GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
    }

    #[test]
    fn fleet_matches_single_device_pattern_at_every_count() {
        let a = banded_dominant(800, 5, 51);
        let single = symbolic_ooc(&fleet(&a, 1)[0], &a).expect("single");
        for k in [1, 2, 4, 8] {
            for partition in [Partition::Blocked, Partition::Strided] {
                let f = device_fleet(&a, k);
                let out = symbolic_fleet(&f, &a, partition).expect("fleet");
                assert_eq!(
                    single.result.filled, out.result.filled,
                    "k={k} {partition:?}"
                );
                assert!(out.died.is_empty());
                assert_eq!(out.resharded_rows, 0);
            }
        }
    }

    #[test]
    fn fleet_charges_interconnect_for_count_gather() {
        let a = banded_dominant(600, 4, 55);
        let f = device_fleet(&a, 4);
        symbolic_fleet(&f, &a, Partition::Strided).expect("fleet");
        let ic = f.stats().interconnect;
        assert_eq!(ic.exchanges, 4, "one gather leg per live device");
        assert!(ic.bytes > 0);
        // A single device never touches the interconnect.
        let f1 = device_fleet(&a, 1);
        symbolic_fleet(&f1, &a, Partition::Strided).expect("fleet");
        assert_eq!(f1.stats().interconnect.exchanges, 0);
    }

    #[test]
    fn dead_device_reshards_onto_survivors_bit_identically() {
        let a = banded_dominant(700, 5, 56);
        let single = symbolic_ooc(&fleet(&a, 1)[0], &a).expect("single");
        // Device 2's first launch dies persistently: it is marked dead
        // and its rows re-run on the survivors.
        let plans =
            gplu_sim::FaultPlan::parse_fleet("dev=2:badlaunch:*=1:persistent", 4).expect("plans");
        let f = DeviceFleet::with_fault_plans(
            4,
            GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
            gplu_sim::CostModel::default(),
            &plans,
        );
        let out = symbolic_fleet(&f, &a, Partition::Strided).expect("fleet survives");
        assert_eq!(out.died, vec![2]);
        assert!(out.resharded_rows > 0);
        assert!(f.is_dead(2));
        assert_eq!(f.n_alive(), 3);
        assert_eq!(single.result.filled, out.result.filled, "bit-identical");
    }

    #[test]
    fn whole_fleet_death_is_an_error() {
        let a = banded_dominant(300, 3, 57);
        let plans = gplu_sim::FaultPlan::parse_fleet("badlaunch:*=1:persistent", 2).expect("plans");
        let f = DeviceFleet::with_fault_plans(
            2,
            GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
            gplu_sim::CostModel::default(),
            &plans,
        );
        assert!(symbolic_fleet(&f, &a, Partition::Blocked).is_err());
        assert_eq!(f.n_alive(), 0);
    }
}
