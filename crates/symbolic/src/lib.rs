//! # gplu-symbolic
//!
//! Symbolic LU factorization — the phase the paper moves onto the GPU
//! out-of-core (its first contribution, Section 3.2).
//!
//! Given the pre-processed matrix `A`, symbolic factorization computes the
//! nonzero *pattern* of the filled matrix `As = L + U` (original entries
//! plus *fill-ins*), which the numeric phase then populates. Fill-ins obey
//! Theorem 1 (Rose–Tarjan): `(i, j)` fills in iff a directed path `i → j`
//! exists in the graph of `A` whose intermediate vertices are all smaller
//! than both `i` and `j`.
//!
//! Implementations, all producing identical patterns (cross-checked by the
//! test suites):
//!
//! * [`fill2`] — the per-row frontier traversal of the paper's
//!   Algorithm 1, the kernel body shared by every GPU variant,
//! * `reference` — two independent oracles (direct Theorem-1 reachability
//!   and classical row-merge symbolic elimination) used only in tests,
//! * [`cpu`] — the "modified GLU 3.0" parallel CPU baseline of Figure 4,
//! * [`ooc`] — the out-of-core two-stage GPU implementation (Algorithm 3),
//! * [`dynamic`] — the dynamic-parallelism-assignment variant
//!   (Algorithm 4) with the 50 %-of-max-frontier split,
//! * [`um`] — unified-memory GPU implementations with and without
//!   prefetching (the baselines of Figures 5/6 and Table 3),
//! * [`frontier`] — the frontier-size profiler behind Figure 3,
//! * [`multi`] — a multi-GPU scale-out of the out-of-core engine (the
//!   GSOFA-style distribution of the paper's related work).
//!
//! The result type [`SymbolicResult`] carries the filled pattern (with
//! values: `A`'s entries in place, explicit zeros at fill positions — what
//! Algorithm 2 consumes) plus traversal metrics.

pub mod cpu;
pub mod dynamic;
pub mod expand;
pub mod fill2;
pub mod frontier;
pub mod multi;
pub mod ooc;
pub mod reference;
pub mod result;
pub mod resume;
pub mod um;

pub use cpu::symbolic_cpu;
pub use dynamic::{
    symbolic_ooc_dynamic, symbolic_ooc_dynamic_run, symbolic_ooc_dynamic_traced, DynamicSplit,
};
pub use expand::{expand_fill, ExpandOutcome};
pub use fill2::{fill2_row, Fill2Workspace, RowMetrics};
pub use multi::{
    symbolic_fleet, symbolic_multi_gpu, FleetSymbolicOutcome, MultiGpuOutcome, Partition,
};
pub use ooc::{symbolic_ooc, symbolic_ooc_run, symbolic_ooc_traced, OocOutcome};
pub use result::SymbolicResult;
pub use resume::{ChunkHook, ChunkProgress, SymbolicResume};
pub use um::{symbolic_um, symbolic_um_traced, UmMode, UmOutcome};
