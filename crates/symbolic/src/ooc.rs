//! Out-of-core GPU symbolic factorization — the paper's Algorithm 3.
//!
//! The intermediate traversal state costs `c·n` words per in-flight source
//! row (`c = 6`), so all `n` rows at once would need `O(n²)` device memory.
//! Instead the rows are processed in chunks of
//! `chunk_size = L_free / (c·4·n)`:
//!
//! 1. **Stage 1** (`symbolic_1`): per chunk, one thread block per source
//!    row runs the fill2 traversal and records only the *count* of
//!    nonzeros of its filled row into `fill_count`.
//! 2. A device **prefix sum** over `fill_count` yields the CSR row offsets
//!    and the total, sizing the factorized pattern.
//! 3. **Stage 2** (`symbolic_2`): the traversal runs again, now *storing*
//!    the column positions into the allocated pattern; each chunk's rows
//!    are streamed back to the host so the device only ever holds one
//!    chunk of output (the paper keeps the whole factorized matrix
//!    resident for the numeric phase; streaming is the out-of-core
//!    completion of the same design and changes no counts).
//!
//! Everything observable — chunk size, iteration count, launch count,
//! transfer bytes, per-iteration frontier profile (Figure 3) — comes out
//! of the simulated GPU's accounting.

use crate::fill2::{fill2_row, Fill2Workspace, RowMetrics};
use crate::result::{SymbolicMetrics, SymbolicResult};
use crate::resume::{ChunkHook, ChunkProgress, SymbolicResume};
use crossbeam::queue::SegQueue;
use gplu_sim::{BlockCtx, Gpu, GpuConfig, GpuStatsSnapshot, SimError, SimTime};
use gplu_sparse::{Csr, Idx};
use gplu_trace::{AttrValue, TraceSink, NOOP};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Outcome of an out-of-core symbolic run.
#[derive(Debug, Clone)]
#[must_use = "the outcome carries the pattern and any recovery evidence"]
pub struct OocOutcome {
    /// The factorization pattern (identical across all implementations).
    pub result: SymbolicResult,
    /// Rows per chunk used by stage 1/2.
    pub chunk_size: usize,
    /// Out-of-core iterations per stage.
    pub num_iterations: usize,
    /// Per-iteration maximum per-row frontier count (Figure 3's series).
    pub per_iter_max_frontier: Vec<u64>,
    /// Chunk halvings taken after failed allocations (OOM backoff).
    pub oom_backoffs: usize,
    /// True when the factorized pattern could not stay device-resident and
    /// stage 2 streamed each batch back to the host instead.
    pub streamed_output: bool,
    /// Simulated time of the whole symbolic phase.
    pub time: SimTime,
    /// GPU statistics delta over the phase.
    pub stats: GpuStatsSnapshot,
}

/// Pool of reusable traversal workspaces for the functional execution of
/// kernel blocks (one per concurrently executing rayon worker).
pub struct WorkspacePool {
    n: usize,
    pool: SegQueue<Fill2Workspace>,
}

impl WorkspacePool {
    /// Pool of workspaces for an `n × n` matrix.
    pub fn new(n: usize) -> Self {
        WorkspacePool {
            n,
            pool: SegQueue::new(),
        }
    }

    /// Runs `f` with a pooled (or fresh) workspace.
    pub fn with<R>(&self, f: impl FnOnce(&mut Fill2Workspace) -> R) -> R {
        let mut ws = self
            .pool
            .pop()
            .unwrap_or_else(|| Fill2Workspace::new(self.n));
        let r = f(&mut ws);
        self.pool.push(ws);
        r
    }
}

/// Charges one fill2 row traversal to a block context: the seed scan plus
/// every frontier step, the scanned edges, and the emitted entries.
pub(crate) fn charge_row(ctx: &mut BlockCtx<'_>, m: &RowMetrics) {
    let items = m.edges + m.emitted as u64;
    ctx.bulk_steps(m.steps + 1, items);
    ctx.mem(items * 4);
}

/// Per-source-row device bytes of traversal state (`c` words of 4 bytes).
pub fn row_state_bytes(n: usize) -> u64 {
    GpuConfig::SYMBOLIC_ROW_WORDS * 4 * n as u64
}

/// Computes the chunk size from currently free device memory, the paper's
/// `chunk_size = L / (c × n)` with `L` the free bytes.
pub fn chunk_size_for(gpu: &Gpu, n: usize) -> usize {
    (gpu.mem.free_bytes() / row_state_bytes(n)) as usize
}

/// Attempts beyond which [`with_oom_backoff`] gives up and surfaces the
/// last [`SimError::OutOfMemory`]. Halving alone terminates at one row;
/// the bound additionally caps floor-level retries (which exist so a
/// *transient* fault at the floor still recovers) against a device that
/// is persistently out of memory.
pub(crate) const MAX_OOM_RETRIES: usize = 32;

/// Runs `attempt(rows)`; on [`SimError::OutOfMemory`] halves `rows`
/// (geometric backoff, floor at one source row) and retries, up to
/// [`MAX_OOM_RETRIES`] attempts. Returns the successful value, the row
/// count that fit, and the number of backoff retries taken. The free-bytes
/// pre-check the engines start from is only a *hint* — the headroom can
/// shrink between check and allocation (injected squeezes model exactly
/// that), so the allocation itself is the arbiter.
pub(crate) fn with_oom_backoff<T>(
    mut rows: usize,
    mut attempt: impl FnMut(usize) -> Result<T, SimError>,
) -> Result<(T, usize, usize), SimError> {
    let mut retries = 0usize;
    loop {
        match attempt(rows) {
            Ok(v) => return Ok((v, rows, retries)),
            Err(e @ SimError::OutOfMemory { .. }) => {
                if retries >= MAX_OOM_RETRIES {
                    return Err(e);
                }
                retries += 1;
                rows = (rows / 2).max(1);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Runs out-of-core GPU symbolic factorization (Algorithm 3).
pub fn symbolic_ooc(gpu: &Gpu, a: &Csr) -> Result<OocOutcome, SimError> {
    symbolic_ooc_traced(gpu, a, &NOOP)
}

/// [`symbolic_ooc`] with telemetry: one `symbolic.chunk` span per stage-1
/// out-of-core iteration (carrying the iteration index, row count, and the
/// iteration's max per-row frontier), and one `symbolic.batch` span per
/// stage-2 output batch.
pub fn symbolic_ooc_traced(
    gpu: &Gpu,
    a: &Csr,
    trace: &dyn TraceSink,
) -> Result<OocOutcome, SimError> {
    symbolic_ooc_run(gpu, a, trace, None, None)
}

/// Full-control entry point: [`symbolic_ooc_traced`] plus optional
/// chunk-granular resume state and a per-chunk checkpoint hook.
pub fn symbolic_ooc_run(
    gpu: &Gpu,
    a: &Csr,
    trace: &dyn TraceSink,
    resume: Option<&SymbolicResume>,
    mut hook: Option<&mut ChunkHook<'_>>,
) -> Result<OocOutcome, SimError> {
    let n = a.n_rows();
    let before = gpu.stats();

    if let Some(r) = resume {
        r.check(n, true).map_err(SimError::BadLaunch)?;
    }

    // The matrix pattern lives on the device for the whole phase
    // (row_ptr + col_idx; symbolic needs no values).
    let a_bytes = (n as u64 + 1 + a.nnz() as u64) * 4;
    let a_dev = gpu.mem.alloc(a_bytes)?;
    gpu.h2d(a_bytes);
    let counts_dev = gpu.mem.alloc(n as u64 * 4)?;

    let chunk_hint = match resume.filter(|r| r.chunk > 0) {
        Some(r) => r.chunk.min(n),
        None => chunk_size_for(gpu, n).min(n),
    };
    if chunk_hint == 0 {
        return Err(SimError::OutOfMemory {
            requested: row_state_bytes(n),
            free: gpu.mem.free_bytes(),
            capacity: gpu.mem.capacity(),
        });
    }
    let mut oom_backoffs = resume.map_or(0, |r| r.oom_backoffs);
    let (state_alloc, chunk, backoffs) = with_oom_backoff(chunk_hint, |rows| {
        gpu.mem.alloc(rows as u64 * row_state_bytes(n))
    })?;
    oom_backoffs += backoffs;
    let mut state_dev = Some(state_alloc);

    let pool = WorkspacePool::new(n);
    let fill_counts: Vec<AtomicU32> = match resume {
        Some(r) => r.fill_counts.iter().map(|&c| AtomicU32::new(c)).collect(),
        None => (0..n).map(|_| AtomicU32::new(0)).collect(),
    };
    let frontiers: Vec<AtomicU64> = match resume {
        Some(r) => r.frontiers.iter().map(|&f| AtomicU64::new(f)).collect(),
        None => (0..n).map(|_| AtomicU64::new(0)).collect(),
    };
    let agg_steps = AtomicU64::new(resume.map_or(0, |r| r.agg_steps));
    let agg_edges = AtomicU64::new(resume.map_or(0, |r| r.agg_edges));

    // ---- Stage 1: count nonzeros per filled row (kernel symbolic_1). ----
    let mut per_iter_max_frontier: Vec<u64> =
        resume.map_or_else(Vec::new, |r| r.per_iter_max_frontier.clone());
    let mut iters = resume.map_or(0, |r| r.iters_done);
    let mut row_start = resume.map_or(0, |r| r.rows_done);
    while row_start < n {
        let start = row_start;
        let rows = chunk.min(n - start);
        trace.span_begin(
            "symbolic.chunk",
            "chunk",
            gpu.now().as_ns(),
            &[("iter", iters.into()), ("rows", rows.into())],
        );
        let clk0 = trace.enabled().then(|| gpu.clocks());
        gpu.launch("symbolic_1", rows, 1024, &|b: usize, ctx: &mut BlockCtx| {
            let src = (start + b) as u32;
            let m = pool.with(|ws| fill2_row(a, src, ws, |_| {}));
            fill_counts[src as usize].store(m.emitted, Ordering::Relaxed);
            frontiers[src as usize].store(m.frontiers, Ordering::Relaxed);
            agg_steps.fetch_add(m.steps, Ordering::Relaxed);
            agg_edges.fetch_add(m.edges, Ordering::Relaxed);
            charge_row(ctx, &m);
        })?;
        let max_frontier = (start..start + rows)
            .map(|r| frontiers[r].load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        per_iter_max_frontier.push(max_frontier);
        trace.span_end(
            "symbolic.chunk",
            "chunk",
            gpu.now().as_ns(),
            &[
                ("iter", iters.into()),
                ("rows", rows.into()),
                ("max_frontier", max_frontier.into()),
            ],
        );
        if let Some((obs0, pred0)) = clk0 {
            let (obs1, pred1) = gpu.clocks();
            if obs1 > obs0 {
                trace.instant(
                    "drift.sample",
                    "drift",
                    obs1,
                    &[
                        ("kind", "symbolic_chunk".into()),
                        ("predicted_ns", AttrValue::F64(pred1 - pred0)),
                        ("observed_ns", AttrValue::F64(obs1 - obs0)),
                    ],
                );
            }
        }
        iters += 1;
        row_start += rows;
        if let Some(h) = hook.as_mut() {
            h(&ChunkProgress {
                rows_done: row_start,
                n_rows: n,
                iters_done: iters,
                chunk,
                oom_backoffs,
                fill_counts: fill_counts
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
                frontiers: frontiers
                    .iter()
                    .map(|f| f.load(Ordering::Relaxed))
                    .collect(),
                agg_steps: agg_steps.load(Ordering::Relaxed),
                agg_edges: agg_edges.load(Ordering::Relaxed),
                agg_frontiers: 0,
                per_iter_max_frontier: per_iter_max_frontier.clone(),
                split: None,
                overflow_rows: Vec::new(),
            })?;
        }
    }
    let num_iter = iters;

    // ---- Device prefix sum over fill_count (line 7). ----
    gpu.launch(
        "prefix_sum",
        n.div_ceil(1024).max(1),
        1024,
        &|_b: usize, ctx: &mut BlockCtx| {
            ctx.step(1024);
            ctx.mem(1024 * 4);
        },
    )?;
    gpu.d2h(n as u64 * 4); // row offsets for host-side assembly

    let counts: Vec<u32> = fill_counts
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    let total_fill: u64 = counts.iter().map(|&c| c as u64).sum();

    // ---- Stage 2: store positions (kernel symbolic_2). ----
    //
    // The paper allocates the whole factorized pattern on the device
    // (Algorithm 3 line 8) and leaves it there for the numeric phase; we
    // do the same when it fits ("resident mode"). When it does not — the
    // truly out-of-core tail case — each batch's positions are streamed
    // back to the host, re-budgeting the freed stage-1 state reservation
    // between traversal state and output per batch.
    if let Some(dev) = state_dev.take() {
        gpu.mem.free(dev)?;
    }
    let resident_out = gpu.mem.alloc(total_fill * 4).ok();
    let streamed_output = resident_out.is_none();
    let collected: SegQueue<(u32, Vec<Idx>)> = SegQueue::new();
    let mut patterns: Vec<Vec<Idx>> = vec![Vec::new(); n];
    let mut start = 0usize;
    while start < n {
        let free = gpu.mem.free_bytes();
        let row_bytes = row_state_bytes(n);
        let mut batch = 0usize;
        let mut batch_nnz: u64 = 0;
        while start + batch < n && batch < chunk {
            let b = counts[start + batch] as u64;
            let out_need = if resident_out.is_some() {
                0
            } else {
                (batch_nnz + b) * 4
            };
            let need = (batch as u64 + 1) * row_bytes + out_need;
            if batch > 0 && need > free {
                break;
            }
            batch_nnz += b;
            batch += 1;
        }
        // The batch is sized against free bytes, but only the allocation
        // itself is authoritative: back off geometrically when it fails.
        let ((state2_dev, out_dev, chunk_nnz), rows, backoffs) = with_oom_backoff(batch, |r| {
            let nnz: u64 = counts[start..start + r].iter().map(|&c| c as u64).sum();
            let state = gpu.mem.alloc(r as u64 * row_bytes)?;
            if resident_out.is_some() {
                return Ok((state, None, nnz));
            }
            match gpu.mem.alloc(nnz * 4) {
                Ok(out) => Ok((state, Some(out), nnz)),
                Err(e) => {
                    let _ = gpu.mem.free(state);
                    Err(e)
                }
            }
        })?;
        oom_backoffs += backoffs;
        trace.span_begin(
            "symbolic.batch",
            "chunk",
            gpu.now().as_ns(),
            &[
                ("start", start.into()),
                ("rows", rows.into()),
                ("nnz", chunk_nnz.into()),
                ("streamed", streamed_output.into()),
            ],
        );
        gpu.launch("symbolic_2", rows, 1024, &|b: usize, ctx: &mut BlockCtx| {
            let src = (start + b) as u32;
            let mut cols = Vec::with_capacity(counts[src as usize] as usize);
            let m = pool.with(|ws| fill2_row(a, src, ws, |c| cols.push(c)));
            charge_row(ctx, &m);
            // In-block bitonic-style ordering of the emitted row.
            let e = m.emitted as u64;
            if e > 1 {
                ctx.step(e * (64 - e.leading_zeros() as u64));
            }
            cols.sort_unstable();
            collected.push((src, cols));
        })?;
        if let Some(dev) = out_dev {
            gpu.d2h(chunk_nnz * 4);
            gpu.mem.free(dev)?;
        }
        gpu.mem.free(state2_dev)?;
        trace.span_end("symbolic.batch", "chunk", gpu.now().as_ns(), &[]);
        while let Some((src, cols)) = collected.pop() {
            patterns[src as usize] = cols;
        }
        start += rows;
    }

    if let Some(dev) = resident_out {
        // Handed to the numeric phase in place (as in the paper); released
        // here because our pipeline re-allocates per phase.
        gpu.mem.free(dev)?;
    }
    gpu.mem.free(counts_dev)?;
    gpu.mem.free(a_dev)?;

    let metrics = SymbolicMetrics {
        // Both stages traverse; report single-traversal metrics (they are
        // the per-stage costs; the clock already charged both).
        steps: agg_steps.load(Ordering::Relaxed),
        edges: agg_edges.load(Ordering::Relaxed),
        frontiers: frontiers.iter().map(|f| f.load(Ordering::Relaxed)).sum(),
    };
    let result = SymbolicResult::from_patterns(a, patterns, metrics);
    let stats = gpu.stats().since(&before);
    Ok(OocOutcome {
        result,
        chunk_size: chunk,
        num_iterations: num_iter,
        per_iter_max_frontier,
        oom_backoffs,
        streamed_output,
        time: stats.now,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::symbolic_cpu;
    use gplu_sim::CostModel;
    use gplu_sparse::gen::random::random_dominant;

    fn gpu_for(a: &Csr) -> Gpu {
        Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
    }

    #[test]
    fn matches_cpu_baseline_pattern() {
        let a = random_dominant(200, 4.0, 17);
        let gpu = gpu_for(&a);
        let ooc = symbolic_ooc(&gpu, &a).expect("fits profile");
        let cpu = symbolic_cpu(&a, &CostModel::default());
        assert_eq!(ooc.result.filled, cpu.result.filled);
        assert_eq!(ooc.result.fill_count, cpu.result.fill_count);
    }

    #[test]
    fn chunking_forces_multiple_iterations() {
        let a = random_dominant(1024, 3.0, 5);
        let gpu = gpu_for(&a);
        let ooc = symbolic_ooc(&gpu, &a).expect("runs");
        assert!(
            ooc.num_iterations >= 2,
            "profile must force out-of-core chunking"
        );
        assert_eq!(ooc.num_iterations, 1024usize.div_ceil(ooc.chunk_size));
        assert_eq!(ooc.per_iter_max_frontier.len(), ooc.num_iterations);
    }

    #[test]
    fn device_memory_is_released() {
        let a = random_dominant(300, 4.0, 9);
        let gpu = gpu_for(&a);
        let _ = symbolic_ooc(&gpu, &a).expect("runs");
        assert_eq!(gpu.mem.used_bytes(), 0, "phase must free all device memory");
        assert!(gpu.mem.peak_bytes() > 0);
    }

    #[test]
    fn stats_record_kernels_and_transfers() {
        let a = random_dominant(500, 4.0, 2);
        let gpu = gpu_for(&a);
        let ooc = symbolic_ooc(&gpu, &a).expect("runs");
        // 2 traversal stages + prefix sum.
        assert!(ooc.stats.kernels_host as usize > 2 * ooc.num_iterations);
        assert!(ooc.stats.h2d_bytes > 0);
        assert!(ooc.stats.d2h_bytes > 0);
        assert!(ooc.time.as_ns() > 0.0);
    }

    #[test]
    fn oom_when_even_one_row_does_not_fit() {
        let a = random_dominant(4096, 3.0, 3);
        // Device barely larger than the matrix itself: no room for state.
        let a_bytes = (4096u64 + 1 + a.nnz() as u64) * 4;
        let gpu = Gpu::new(GpuConfig::v100().with_memory(a_bytes + 4096 * 4 + 1024));
        assert!(matches!(
            symbolic_ooc(&gpu, &a),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn oom_backoff_halves_chunk_until_fit() {
        use gplu_sim::FaultPlan;
        let a = random_dominant(1024, 3.0, 5);
        let plain = symbolic_ooc(&gpu_for(&a), &a).expect("runs");
        // Fail the stage-1 state allocation (ordinal 3: matrix, counts,
        // state) twice: the chunk must halve twice and then fit.
        let gpu = Gpu::with_fault_plan(
            GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
            CostModel::default(),
            FaultPlan::new().oom_on_alloc(3).oom_on_alloc(4),
        );
        let faulted = symbolic_ooc(&gpu, &a).expect("backoff recovers");
        assert_eq!(faulted.oom_backoffs, 2);
        assert_eq!(faulted.chunk_size, (plain.chunk_size / 4).max(1));
        assert_eq!(
            faulted.num_iterations,
            a.n_rows().div_ceil(faulted.chunk_size)
        );
        assert_eq!(faulted.result.filled, plain.result.filled);
        assert_eq!(gpu.stats().injected_oom, 2);
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn injected_oom_on_resident_output_forces_streaming() {
        use gplu_sim::FaultPlan;
        let a = random_dominant(300, 4.0, 9);
        let plain = symbolic_ooc(&gpu_for(&a), &a).expect("runs");
        // Ordinal 4 is the resident-output attempt (matrix, counts,
        // stage-1 state, output): failing it must flip stage 2 into
        // streaming without changing the pattern.
        let gpu = Gpu::with_fault_plan(
            GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
            CostModel::default(),
            FaultPlan::new().oom_on_alloc(4),
        );
        let faulted = symbolic_ooc(&gpu, &a).expect("streams instead");
        assert!(faulted.streamed_output);
        assert_eq!(faulted.result.filled, plain.result.filled);
        assert_eq!(gpu.mem.used_bytes(), 0);
    }

    #[test]
    fn persistent_oom_at_floor_is_a_typed_error() {
        use gplu_sim::FaultPlan;
        let a = random_dominant(200, 4.0, 17);
        let gpu = Gpu::with_fault_plan(
            GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
            CostModel::default(),
            FaultPlan::new().persistent_oom_from(3),
        );
        assert!(matches!(
            symbolic_ooc(&gpu, &a),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn frontier_profile_rises_for_banded_matrix() {
        // For a banded matrix the reach (and thus the frontier count)
        // grows with the row id; the Figure 3 shape must emerge.
        let a = gplu_sparse::gen::random::banded_dominant(1500, 6, 11);
        let gpu = gpu_for(&a);
        let ooc = symbolic_ooc(&gpu, &a).expect("runs");
        let first = ooc
            .per_iter_max_frontier
            .first()
            .copied()
            .expect("non-empty");
        let last = ooc
            .per_iter_max_frontier
            .last()
            .copied()
            .expect("non-empty");
        assert!(
            last >= first,
            "frontier profile should not shrink: {first} -> {last}"
        );
    }
}
