//! Test oracles for symbolic factorization.
//!
//! Two independent computations of the filled pattern, used to certify the
//! fill2 traversal and every GPU variant built on it:
//!
//! * [`fill_by_theorem1`] — literal Theorem 1 (Rose–Tarjan): for each row
//!   `i`, BFS over the graph of `A` restricted to intermediate vertices
//!   `< i`, recording every reached `j` whose path intermediates are also
//!   `< j`. O(n · nnz); fine at oracle scales.
//! * [`fill_by_elimination`] — classical row-merge symbolic Gaussian
//!   elimination: row `i`'s pattern is the closure of merging, for each
//!   `k < i` in the pattern (ascending), the already-filled row `k`
//!   restricted to columns `> k`.

use gplu_sparse::{Csr, Idx};
use std::collections::BTreeSet;

/// Filled pattern by direct Theorem-1 reachability. Returns sorted rows.
pub fn fill_by_theorem1(a: &Csr) -> Vec<Vec<Idx>> {
    let n = a.n_rows();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        // reached[v]: v is reachable from i via intermediates < min(i, ·)…
        // Track the standard invariant: BFS may only pass *through*
        // vertices smaller than i; a reached vertex j is a fill candidate,
        // and the path to it so far used intermediates < i. For j < i the
        // vertex may later be passed through only while it is also < the
        // eventual target — handled by only expanding vertices < i, and
        // only *emitting* j when every intermediate on some path is
        // < min(i, j). The textbook equivalent formulation: j is in the
        // filled row i iff there is a path i -> j through vertices smaller
        // than both endpoints; expanding in increasing-vertex order makes
        // plain BFS over "< i" vertices exact, because any path through an
        // intermediate m with j < m < i can be re-rooted at m, which is
        // itself reached and emitted, and the segment m -> j has
        // intermediates < m… which is the same closure fill2 computes.
        //
        // To stay genuinely independent of fill2's argument, this oracle
        // instead iterates the closure to a fixed point over candidate
        // intermediate sets.
        let mut row: BTreeSet<Idx> = a.row_cols(i).iter().copied().collect();
        row.insert(i as Idx);
        // Fixed-point: j joins row i if some m in row i with m < i and
        // m < j has j in (the current) filled row m. Rows are built in
        // ascending i, so filled rows < i are final.
        loop {
            let mut grew = false;
            let members: Vec<Idx> = row.iter().copied().filter(|&m| (m as usize) < i).collect();
            for m in members {
                for &j in &out[m as usize] as &Vec<Idx> {
                    if j > m && !row.contains(&j) {
                        row.insert(j);
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        out.push(row.into_iter().collect());
    }
    out
}

/// Filled pattern by row-merge symbolic elimination. Returns sorted rows.
pub fn fill_by_elimination(a: &Csr) -> Vec<Vec<Idx>> {
    let n = a.n_rows();
    let mut filled: Vec<Vec<Idx>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut row: BTreeSet<Idx> = a.row_cols(i).iter().copied().collect();
        row.insert(i as Idx);
        // Merge filled rows k for ascending k < i currently in the
        // pattern. Newly inserted columns are always > k, so a single
        // ascending scan with a cursor visits every needed k.
        let mut cursor: Idx = 0;
        while let Some(&k) = row.range(cursor..(i as Idx)).next() {
            for &c in &filled[k as usize] {
                if c > k {
                    row.insert(c);
                }
            }
            cursor = k + 1;
        }
        filled.push(row.into_iter().collect());
    }
    filled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fill2::{fill2_row_sorted, Fill2Workspace};
    use gplu_sparse::convert::coo_to_csr;
    use gplu_sparse::gen::random::random_dominant;
    use gplu_sparse::Coo;
    use proptest::prelude::*;

    fn fill_by_fill2(a: &Csr) -> Vec<Vec<Idx>> {
        let mut ws = Fill2Workspace::new(a.n_rows());
        (0..a.n_rows())
            .map(|i| fill2_row_sorted(a, i as u32, &mut ws).0)
            .collect()
    }

    #[test]
    fn oracles_agree_on_crafted_case() {
        let mut c = Coo::new(4, 4);
        for i in 0..4 {
            c.push(i, i, 1.0);
        }
        c.push(0, 3, 1.0);
        c.push(2, 0, 1.0);
        c.push(3, 0, 1.0);
        let a = coo_to_csr(&c);
        let t1 = fill_by_theorem1(&a);
        let ge = fill_by_elimination(&a);
        assert_eq!(t1, ge);
        assert_eq!(t1[2], vec![0, 2, 3]);
    }

    #[test]
    fn oracles_and_fill2_agree_on_random_matrices() {
        for seed in 0..8 {
            let a = random_dominant(30, 4.0, seed);
            let t1 = fill_by_theorem1(&a);
            let ge = fill_by_elimination(&a);
            let f2 = fill_by_fill2(&a);
            assert_eq!(t1, ge, "theorem1 vs elimination, seed {seed}");
            assert_eq!(ge, f2, "elimination vs fill2, seed {seed}");
        }
    }

    #[test]
    fn diagonal_matrix_has_no_fill() {
        let a = Csr::identity(5);
        for rows in [
            fill_by_theorem1(&a),
            fill_by_elimination(&a),
            fill_by_fill2(&a),
        ] {
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(row, &vec![i as Idx]);
            }
        }
    }

    #[test]
    fn fill_pattern_contains_originals() {
        let a = random_dominant(25, 5.0, 99);
        let ge = fill_by_elimination(&a);
        for (i, row) in ge.iter().enumerate() {
            for &c in a.row_cols(i) {
                assert!(row.binary_search(&c).is_ok(), "original ({i},{c}) lost");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The three independent computations of the filled pattern agree
        /// on arbitrary small matrices with full diagonals.
        #[test]
        fn prop_three_way_pattern_agreement(
            n in 2usize..18,
            density in 1.5f64..5.0,
            seed in 0u64..1000,
        ) {
            let a = random_dominant(n, density, seed);
            let t1 = fill_by_theorem1(&a);
            let ge = fill_by_elimination(&a);
            let f2 = fill_by_fill2(&a);
            prop_assert_eq!(&t1, &ge);
            prop_assert_eq!(&ge, &f2);
        }

        /// Fill is monotone: the filled pattern always contains A.
        #[test]
        fn prop_fill_contains_original(
            n in 2usize..18,
            density in 1.5f64..5.0,
            seed in 0u64..1000,
        ) {
            let a = random_dominant(n, density, seed);
            let ge = fill_by_elimination(&a);
            for (i, row) in ge.iter().enumerate() {
                for &c in a.row_cols(i) {
                    prop_assert!(row.binary_search(&c).is_ok());
                }
            }
        }
    }
}
