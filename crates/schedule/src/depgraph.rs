//! Column dependency graph of the filled matrix.

use gplu_sparse::{Csr, Idx};

/// The dependency DAG: an edge `t → j` (with `t < j` always) means column
/// `j` must be factorized after column `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepGraph {
    /// Out-edge offsets (`ptr[t]..ptr[t+1]` indexes `adj`).
    pub ptr: Vec<usize>,
    /// Out-edge targets, ascending within each source.
    pub adj: Vec<Idx>,
    /// In-degree of each column.
    pub indegree: Vec<u32>,
}

impl DepGraph {
    /// Builds the dependency graph from the filled pattern `As`.
    ///
    /// Every structural entry `(r, c)` with `r ≠ c` contributes the edge
    /// `min(r,c) → max(r,c)`: `c > r` is the paper's U dependency
    /// (`U(r,c) ≠ 0` ⇒ column `c` after column `r`), `c < r` is the
    /// L-side ordering GLU 3.0's relaxed detection adds. Duplicates (a
    /// symmetric pair) are merged.
    pub fn build(filled: &Csr) -> DepGraph {
        let n = filled.n_rows();
        let mut pairs: Vec<(Idx, Idx)> = Vec::with_capacity(filled.nnz());
        for r in 0..n {
            for &c in filled.row_cols(r) {
                let c = c as usize;
                if c != r {
                    let (lo, hi) = if r < c { (r, c) } else { (c, r) };
                    pairs.push((lo as Idx, hi as Idx));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut ptr = vec![0usize; n + 1];
        for &(t, _) in &pairs {
            ptr[t as usize + 1] += 1;
        }
        for i in 0..n {
            ptr[i + 1] += ptr[i];
        }
        let mut adj = vec![0 as Idx; pairs.len()];
        let mut cursor = ptr.clone();
        let mut indegree = vec![0u32; n];
        for (t, j) in pairs {
            adj[cursor[t as usize]] = j;
            cursor[t as usize] += 1;
            indegree[j as usize] += 1;
        }
        DepGraph { ptr, adj, indegree }
    }

    /// Number of columns.
    pub fn n(&self) -> usize {
        self.indegree.len()
    }

    /// Number of dependency edges.
    pub fn n_edges(&self) -> usize {
        self.adj.len()
    }

    /// Out-edges of column `t`.
    #[inline]
    pub fn out(&self, t: usize) -> &[Idx] {
        &self.adj[self.ptr[t]..self.ptr[t + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sparse::convert::coo_to_csr;
    use gplu_sparse::Coo;

    /// Filled pattern:
    /// ```text
    ///   x . x
    ///   . x .
    ///   x . x
    /// ```
    /// Entry (0,2) gives the U edge 0→2; entry (2,0) the L edge 0→2 — the
    /// pair must merge into one edge.
    #[test]
    fn symmetric_pair_merges() {
        let mut c = Coo::new(3, 3);
        for i in 0..3 {
            c.push(i, i, 1.0);
        }
        c.push(0, 2, 1.0);
        c.push(2, 0, 1.0);
        let g = DepGraph::build(&coo_to_csr(&c));
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.out(0), &[2]);
        assert_eq!(g.indegree, vec![0, 0, 1]);
    }

    #[test]
    fn l_only_entry_still_creates_edge() {
        // As(2,1) ≠ 0 with no As(1,2): GLU 3.0's second dependency family.
        let mut c = Coo::new(3, 3);
        for i in 0..3 {
            c.push(i, i, 1.0);
        }
        c.push(2, 1, 1.0);
        let g = DepGraph::build(&coo_to_csr(&c));
        assert_eq!(g.out(1), &[2]);
    }

    #[test]
    fn edges_always_point_upward() {
        let a = gplu_sparse::gen::random::random_dominant(50, 4.0, 5);
        let g = DepGraph::build(&a);
        for t in 0..50 {
            for &j in g.out(t) {
                assert!(j as usize > t, "edge {t} -> {j} must ascend");
            }
        }
    }

    #[test]
    fn diagonal_only_matrix_has_no_edges() {
        let g = DepGraph::build(&Csr::identity(4));
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.indegree, vec![0; 4]);
    }
}
