//! Level schedules.

use crate::depgraph::DepGraph;
use gplu_sparse::Idx;

/// A level schedule: columns grouped so that every column's dependencies
/// lie in strictly earlier levels (the paper's Figure 1(d)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levels {
    /// Level number of each column.
    pub level_of: Vec<u32>,
    /// Columns of each level, ascending within a level.
    pub groups: Vec<Vec<Idx>>,
}

impl Levels {
    /// Builds the grouped representation from per-column level numbers.
    pub fn from_level_of(level_of: Vec<u32>) -> Levels {
        let n_levels = level_of.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        let mut groups: Vec<Vec<Idx>> = vec![Vec::new(); n_levels];
        for (col, &l) in level_of.iter().enumerate() {
            groups[l as usize].push(col as Idx);
        }
        Levels { level_of, groups }
    }

    /// Number of levels (the span of the parallel schedule).
    pub fn n_levels(&self) -> usize {
        self.groups.len()
    }

    /// Widest level (peak column parallelism).
    pub fn max_width(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks the schedule against a dependency graph: every edge must
    /// cross strictly upward in level, and level numbers must be exactly
    /// the longest-path depths (no slack — the paper's recurrence).
    pub fn validate(&self, g: &DepGraph) -> Result<(), String> {
        if self.level_of.len() != g.n() {
            return Err(format!(
                "schedule covers {} columns, graph has {}",
                self.level_of.len(),
                g.n()
            ));
        }
        // Exact longest-path check: level(j) == 1 + max level of parents
        // (0 when no parents). Edges ascend, so one forward scan suffices.
        let mut want = vec![0u32; g.n()];
        for t in 0..g.n() {
            for &j in g.out(t) {
                let j = j as usize;
                want[j] = want[j].max(want[t] + 1);
            }
        }
        for (col, (&got, &want)) in self.level_of.iter().zip(&want).enumerate() {
            if got != want {
                return Err(format!(
                    "column {col}: level {got}, longest-path depth {want}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_columns() {
        let l = Levels::from_level_of(vec![0, 1, 0, 2, 1]);
        assert_eq!(l.n_levels(), 3);
        assert_eq!(l.groups[0], vec![0, 2]);
        assert_eq!(l.groups[1], vec![1, 4]);
        assert_eq!(l.groups[2], vec![3]);
        assert_eq!(l.max_width(), 2);
    }

    #[test]
    fn validate_accepts_longest_path_and_rejects_slack() {
        // Chain 0 -> 1 -> 2.
        let g = DepGraph {
            ptr: vec![0, 1, 2, 2],
            adj: vec![1, 2],
            indegree: vec![0, 1, 1],
        };
        assert!(Levels::from_level_of(vec![0, 1, 2]).validate(&g).is_ok());
        // Padding a level (legal topologically, but not the recurrence).
        assert!(Levels::from_level_of(vec![0, 2, 3]).validate(&g).is_err());
        // Violating the order outright.
        assert!(Levels::from_level_of(vec![0, 0, 1]).validate(&g).is_err());
    }
}
