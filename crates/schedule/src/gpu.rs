//! GPU levelization: Kahn's algorithm with dynamic parallelism — the
//! paper's Algorithm 5 and its second contribution.
//!
//! The whole procedure runs on the device: a host-launched parent `Topo`
//! kernel orchestrates the wavefronts, launching the `update` and
//! `cons_queue` child kernels **from device code** (CUDA dynamic
//! parallelism). Against the prior art that bounced back to the CPU to
//! launch each level's kernels [Saxena et al. 37], every per-level launch
//! pays the ~0.6 µs device-launch overhead instead of the ~5 µs host
//! round-trip — on graphs with thousands of levels this is the difference
//! the paper claims.
//!
//! Structure (Algorithm 5):
//! * `cons_graph` — builds the dependency adjacency on the device,
//! * `cnt_indegree` — counts in-degrees,
//! * `Topo` (parent) — loops: `update` decrements the in-degrees of the
//!   current queue's out-neighbours (atomics), collecting vertices that
//!   hit zero; `cons_queue` compacts them into the next queue and assigns
//!   the level number.

use crate::depgraph::DepGraph;
use crate::levels::Levels;
use crossbeam::queue::SegQueue;
use gplu_sim::{BlockCtx, Gpu, GpuStatsSnapshot, SimError, SimTime};
use gplu_sparse::Idx;
use gplu_trace::{TraceSink, NOOP};
use std::sync::atomic::{AtomicU32, Ordering};

/// Outcome of GPU levelization.
#[derive(Debug, Clone)]
pub struct GpuLevelizeOutcome {
    /// The level schedule.
    pub levels: Levels,
    /// Simulated time of the whole procedure (graph build + topo sort).
    pub time: SimTime,
    /// Device-side child-kernel launches performed by `Topo`.
    pub device_launches: u64,
    /// GPU statistics delta.
    pub stats: GpuStatsSnapshot,
}

/// Runs levelization on the GPU (Algorithm 5).
pub fn levelize_gpu(gpu: &Gpu, g: &DepGraph) -> Result<GpuLevelizeOutcome, SimError> {
    levelize_gpu_traced(gpu, g, &NOOP)
}

/// [`levelize_gpu`] with telemetry: one `levelize.wavefront` span per Kahn
/// wavefront, carrying the wavefront index and its width (the number of
/// queue vertices the `update` child kernel processed), plus a
/// `levelize.width` counter sample per wavefront.
pub fn levelize_gpu_traced(
    gpu: &Gpu,
    g: &DepGraph,
    trace: &dyn TraceSink,
) -> Result<GpuLevelizeOutcome, SimError> {
    let n = g.n();
    let before = gpu.stats();

    // Device storage: adjacency (ptr + adj), in-degrees, level numbers and
    // the two queues.
    let graph_bytes = ((n + 1) as u64 + g.n_edges() as u64) * 4;
    let graph_dev = gpu.mem.alloc(graph_bytes)?;
    gpu.h2d(graph_bytes);
    let work_dev = gpu.mem.alloc(4 * 4 * n as u64)?; // indegree, level, 2 queues

    // cons_graph: the device-side adjacency construction (line 14).
    gpu.launch(
        "cons_graph",
        g.n_edges().div_ceil(1024).max(1),
        1024,
        &|_b: usize, ctx: &mut BlockCtx| {
            ctx.step(1024);
            ctx.mem(1024 * 8);
        },
    )?;

    // cnt_indegree (line 15): one pass over the edges.
    let indegree: Vec<AtomicU32> = g.indegree.iter().map(|&d| AtomicU32::new(d)).collect();
    gpu.launch(
        "cnt_indegree",
        g.n_edges().div_ceil(1024).max(1),
        1024,
        &|_b: usize, ctx: &mut BlockCtx| {
            ctx.step(1024);
            ctx.mem(1024 * 4);
        },
    )?;

    // Topo parent kernel (line 16): one host launch; everything below is
    // device-side child launches.
    gpu.launch("Topo", 1, 32, &|_b: usize, ctx: &mut BlockCtx| {
        ctx.serial(16); // parent bookkeeping
    })?;

    let mut level_of = vec![0u32; n];
    let mut device_launches = 0u64;

    // Initial queue: vertices with no incoming edges (child cons_queue,
    // line 4): scan all in-degrees.
    let found: SegQueue<Idx> = SegQueue::new();
    gpu.launch_device(
        "cons_queue",
        n.div_ceil(1024).max(1),
        1024,
        &|b: usize, ctx: &mut BlockCtx| {
            let start = b * 1024;
            let end = (start + 1024).min(n);
            ctx.step((end - start) as u64);
            ctx.mem((end - start) as u64 * 4);
            for (v, d) in indegree.iter().enumerate().take(end).skip(start) {
                if d.load(Ordering::Relaxed) == 0 {
                    found.push(v as Idx);
                }
            }
        },
    )?;
    device_launches += 1;

    let mut queue: Vec<Idx> = std::iter::from_fn(|| found.pop()).collect();
    queue.sort_unstable();
    for &v in &queue {
        level_of[v as usize] = 0;
    }

    let mut level_num = 1u32;
    let mut scheduled = queue.len();
    while !queue.is_empty() {
        // update<<< >>> (line 7): one block per queue vertex, threads over
        // its out-edges; decrements are atomic.
        let q = std::mem::take(&mut queue);
        trace.span_begin(
            "levelize.wavefront",
            "level",
            gpu.now().as_ns(),
            &[
                ("wavefront", (level_num as u64 - 1).into()),
                ("width", q.len().into()),
            ],
        );
        trace.counter("levelize.width", "level", gpu.now().as_ns(), q.len() as f64);
        gpu.launch_device("update", q.len(), 1024, &|b: usize, ctx: &mut BlockCtx| {
            let v = q[b] as usize;
            let out = g.out(v);
            ctx.step(out.len() as u64);
            ctx.mem(out.len() as u64 * 8);
            for &j in out {
                if indegree[j as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                    found.push(j);
                }
            }
        })?;
        device_launches += 1;

        // cons_queue<<< >>> (line 9): compact the vertices that reached
        // in-degree zero into the next queue and stamp their level. Cost
        // is proportional to the vertices actually compacted.
        let mut next: Vec<Idx> = std::iter::from_fn(|| found.pop()).collect();
        next.sort_unstable();
        gpu.launch_device(
            "cons_queue",
            next.len().div_ceil(1024).max(1),
            1024,
            &|b: usize, ctx: &mut BlockCtx| {
                let items = 1024.min(next.len().saturating_sub(b * 1024)) as u64;
                ctx.step(items);
                ctx.mem(items * 4);
            },
        )?;
        device_launches += 1;

        for &v in &next {
            level_of[v as usize] = level_num;
        }
        trace.span_end(
            "levelize.wavefront",
            "level",
            gpu.now().as_ns(),
            &[("next_width", next.len().into())],
        );
        scheduled += next.len();
        level_num += 1;
        queue = next;
    }

    gpu.d2h(n as u64 * 4); // level numbers back to the host scheduler
    gpu.mem.free(work_dev)?;
    gpu.mem.free(graph_dev)?;

    if scheduled != n {
        // A cycle would mean the dependency graph was not a DAG — edges
        // always ascend, so this is unreachable unless the graph is
        // corrupt.
        return Err(SimError::BadLaunch(format!(
            "topological sort visited {scheduled} of {n} columns (cycle?)"
        )));
    }

    let stats = gpu.stats().since(&before);
    Ok(GpuLevelizeOutcome {
        levels: Levels::from_level_of(level_of),
        time: stats.now,
        device_launches,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::levelize_cpu;
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::v100())
    }

    #[test]
    fn matches_cpu_levels() {
        let a = random_dominant(300, 4.0, 41);
        let g = DepGraph::build(&a);
        let gpu_out = levelize_gpu(&gpu(), &g).expect("runs");
        let cpu_out = levelize_cpu(&g, &CostModel::default());
        assert_eq!(gpu_out.levels.level_of, cpu_out.levels.level_of);
        gpu_out.levels.validate(&g).expect("valid schedule");
    }

    #[test]
    fn kahn_levels_equal_longest_path() {
        // Kahn wavefronts and the longest-path recurrence coincide.
        let a = banded_dominant(500, 3, 42);
        let g = DepGraph::build(&a);
        let out = levelize_gpu(&gpu(), &g).expect("runs");
        out.levels.validate(&g).expect("wavefront == longest path");
    }

    #[test]
    fn device_launches_scale_with_levels() {
        let a = banded_dominant(400, 2, 43);
        let g = DepGraph::build(&a);
        let out = levelize_gpu(&gpu(), &g).expect("runs");
        // Initial cons_queue + (update + cons_queue) per non-empty level.
        assert_eq!(out.device_launches, 1 + 2 * out.levels.n_levels() as u64);
    }

    #[test]
    fn all_independent_columns_is_one_level() {
        let g = DepGraph::build(&gplu_sparse::Csr::identity(64));
        let out = levelize_gpu(&gpu(), &g).expect("runs");
        assert_eq!(out.levels.n_levels(), 1);
        assert_eq!(out.levels.max_width(), 64);
    }

    #[test]
    fn frees_device_memory() {
        let a = random_dominant(200, 3.0, 44);
        let g = DepGraph::build(&a);
        let gpu = gpu();
        levelize_gpu(&gpu, &g).expect("runs");
        assert_eq!(gpu.mem.used_bytes(), 0);
    }
}
