//! # gplu-schedule
//!
//! The *scheduling* step between symbolic and numeric factorization: build
//! the column dependency graph of the filled matrix and group columns into
//! **levels** whose members can be factorized concurrently
//! (*levelization*, which the paper observes "is essentially a topological
//! sort" — Section 3.3).
//!
//! Dependencies (Section 2.2 + GLU 3.0's relaxed rule): column `j` depends
//! on column `t < j` iff the filled pattern has `As(t, j) ≠ 0` (the U
//! dependency the paper states) **or** `As(j, t) ≠ 0` (the second family
//! the paper defers to GLU 3.0 — the "double-U" orderings that make the
//! level schedule race-free together with atomic column updates). Both
//! families point from the smaller to the larger column id, so the
//! dependency DAG is the symmetrized filled pattern directed small → large.
//!
//! Two levelization engines:
//! * [`levelize_cpu`] — the serial CPU recurrence
//!   `level(k) = max(-1, level(c1), level(c2), …) + 1` every prior LU work
//!   used (the baseline),
//! * [`levelize_gpu`] — the paper's contribution: Kahn's algorithm run
//!   entirely on the GPU with *dynamic parallelism* (Algorithm 5): a
//!   parent `Topo` kernel launches `cons_queue`/`update` child kernels per
//!   level, paying device-launch (not host-launch) overhead.

pub mod cpu;
pub mod depgraph;
pub mod gpu;
pub mod levels;

pub use cpu::{levelize_cpu, CpuLevelizeOutcome};
pub use depgraph::DepGraph;
pub use gpu::{levelize_gpu, levelize_gpu_traced, GpuLevelizeOutcome};
pub use levels::Levels;
