//! Serial CPU levelization — the baseline every prior LU work used
//! (Section 3.3: "previous efforts on LU factorization all performed
//! levelization on CPUs").

use crate::depgraph::DepGraph;
use crate::levels::Levels;
use gplu_sim::{CostModel, SimTime};

/// Outcome of CPU levelization.
#[derive(Debug, Clone)]
pub struct CpuLevelizeOutcome {
    /// The level schedule.
    pub levels: Levels,
    /// Simulated (serial) CPU time.
    pub time: SimTime,
}

/// Computes levels with the serial recurrence
/// `level(k) = max(-1, level(c1), level(c2), …) + 1`.
///
/// Because dependency edges always ascend (column ids), a single forward
/// scan applying the recurrence is exact. The cost is serial — the paper's
/// point is precisely that this chain of dependencies resists
/// parallelisation on the CPU.
pub fn levelize_cpu(g: &DepGraph, cost: &CostModel) -> CpuLevelizeOutcome {
    let mut level_of = vec![0u32; g.n()];
    for t in 0..g.n() {
        for &j in g.out(t) {
            let j = j as usize;
            level_of[j] = level_of[j].max(level_of[t] + 1);
        }
    }
    // One serial item per edge plus one per node (single thread).
    let items = g.n_edges() as u64 + g.n() as u64;
    let time = SimTime::from_ns(items as f64 * cost.cpu_item_ns);
    CpuLevelizeOutcome {
        levels: Levels::from_level_of(level_of),
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sparse::gen::random::random_dominant;

    #[test]
    fn chain_gets_distinct_levels() {
        let g = DepGraph {
            ptr: vec![0, 1, 2, 2],
            adj: vec![1, 2],
            indegree: vec![0, 1, 1],
        };
        let out = levelize_cpu(&g, &CostModel::default());
        assert_eq!(out.levels.level_of, vec![0, 1, 2]);
        assert!(out.time.as_ns() > 0.0);
    }

    #[test]
    fn diamond_merges_at_join() {
        // 0 -> {1, 2} -> 3
        let g = DepGraph {
            ptr: vec![0, 2, 3, 4, 4],
            adj: vec![1, 2, 3, 3],
            indegree: vec![0, 1, 1, 2],
        };
        let out = levelize_cpu(&g, &CostModel::default());
        assert_eq!(out.levels.level_of, vec![0, 1, 1, 2]);
    }

    #[test]
    fn validates_on_random_matrix() {
        let a = random_dominant(120, 4.0, 6);
        let g = DepGraph::build(&a);
        let out = levelize_cpu(&g, &CostModel::default());
        out.levels.validate(&g).expect("exact longest-path levels");
    }
}
