//! # gplu-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md §4 for the index), plus Criterion wall-clock benches.
//!
//! Shared here: suite preparation (analog generation + the scaled GPU
//! profile per DESIGN.md §2/§6), simple fixed-width table printing, and
//! argument handling (`--scale N`, `--quick`).

use gplu_sim::{CostModel, Gpu, GpuConfig};
use gplu_sparse::gen::suite::SuiteEntry;
use gplu_sparse::Csr;

pub mod args;
pub mod table;

pub use args::Args;
pub use table::Table;

/// A generated experiment input: the analog matrix plus the matched GPU
/// profile.
pub struct Prepared {
    /// Suite entry it came from.
    pub entry: SuiteEntry,
    /// The analog matrix.
    pub matrix: Csr,
    /// Scale divisor used.
    pub scale: usize,
}

impl Prepared {
    /// Generates the analog for `entry` at `scale`.
    pub fn new(entry: SuiteEntry, scale: usize) -> Prepared {
        let matrix = entry.generate(scale);
        Prepared {
            entry,
            matrix,
            scale,
        }
    }

    /// The cost model for this scale: fixed latencies shrink with the
    /// matrix (DESIGN.md §6), and the UVM fault-group block shrinks
    /// with it too (per-byte fault-service cost invariant), so Table 3's
    /// fault-time fractions carry over.
    pub fn cost(&self) -> CostModel {
        let block = (2 * 1024 * 1024 / self.scale as u64).max(4096);
        CostModel::default()
            .scaled_latencies(self.scale)
            .with_um_page_bytes(block)
    }

    /// GPU for the symbolic-phase experiments: device memory sized so the
    /// symbolic intermediates (`24·n²` bytes) do **not** fit (forcing
    /// out-of-core chunking / UM oversubscription) while the factored
    /// matrix of `fill_nnz` entries does (the paper's assumption for the
    /// numeric phase).
    pub fn gpu_symbolic(&self, fill_nnz: usize) -> Gpu {
        let n = self.matrix.n_rows();
        let base = GpuConfig::v100_symbolic_profile(n, self.matrix.nnz());
        let csc_bytes = ((n + 1) as u64 + 2 * fill_nnz as u64) * 4;
        // Room for the factor + level data + a generous numeric headroom.
        let numeric_need = csc_bytes + 8 * n as u64 + 256 * n as u64 * 4;
        let mem = base.device_memory.max(numeric_need);
        debug_assert!(
            mem < 24 * (n as u64) * (n as u64) || n < 256,
            "profile would fit the whole symbolic intermediate state"
        );
        Gpu::with_cost(base.with_memory(mem), self.cost())
    }

    /// GPU for the numeric-format experiments (Table 4 / Figure 8): free
    /// memory after the factor reproduces the paper's dense-format column
    /// limit `M = ⌊8·10⁹ / (4·n_paper)⌋`.
    pub fn gpu_numeric(&self, fill_nnz: usize) -> Gpu {
        let n = self.matrix.n_rows();
        let m_paper = (GpuConfig::NUMERIC_BUDGET_BYTES / (self.entry.paper_n as u64 * 4)) as usize;
        let csc_bytes = ((n + 1) as u64 + 2 * fill_nnz as u64) * 4;
        let mem = csc_bytes + n as u64 * 4 + m_paper as u64 * n as u64 * 4 + 4096;
        Gpu::with_cost(GpuConfig::v100().with_memory(mem), self.cost())
    }
}

/// Pre-computes the fill size of a prepared matrix (host-side symbolic on
/// the pre-processed matrix) — used to size device profiles before the
/// measured runs.
pub fn fill_size_of(prep: &Prepared) -> (Csr, usize) {
    let pre = gplu_core::preprocess(
        &prep.matrix,
        &gplu_core::PreprocessOptions::default(),
        &CostModel::default(),
    )
    .expect("suite analogs preprocess cleanly");
    let sym = gplu_symbolic::symbolic_cpu(&pre.matrix, &CostModel::default());
    (pre.matrix, sym.result.fill_nnz())
}

/// Geometric mean of a slice (used for speedup summaries).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sparse::gen::suite::paper_suite;

    #[test]
    fn prepared_profiles_force_out_of_core() {
        let prep = Prepared::new(paper_suite()[11].clone(), 256); // OT2
        let (_, fill) = fill_size_of(&prep);
        let gpu = prep.gpu_symbolic(fill);
        let n = prep.matrix.n_rows() as u64;
        assert!(
            gpu.mem.capacity() < 24 * n * n,
            "intermediates must not fit"
        );
    }

    #[test]
    fn numeric_profile_reproduces_paper_m() {
        use gplu_sparse::gen::suite::large_suite;
        let prep = Prepared::new(large_suite()[0].clone(), 4096); // hugetrace-00020
        let (_, fill) = fill_size_of(&prep);
        let gpu = prep.gpu_numeric(fill);
        let n = prep.matrix.n_rows();
        let csc_bytes = ((n + 1) as u64 + 2 * fill as u64) * 4;
        let free_for_buffers = gpu.mem.capacity() - csc_bytes - n as u64 * 4;
        let m = (free_for_buffers / (n as u64 * 4)) as usize;
        assert!(
            (123..=125).contains(&m),
            "hugetrace M should be ~124, got {m}"
        );
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
