//! **Figure 5**: normalized end-to-end times — out-of-core GPU vs the
//! *optimized* (prefetching) unified-memory implementation, on the 7
//! smallest-`n` matrices of Table 2.
//!
//! Paper band: out-of-core is 1.06–2.22× faster, with the gap largest for
//! the sparsest matrices (R15, OT2) and smallest for the densest (WI, MI).
//!
//! Usage: `fig5_um_compare [--scale N]`

use gplu_baseline::factorize_um_pipeline;
use gplu_bench::{fill_size_of, geomean, Args, Prepared, Table};
use gplu_core::{LuFactorization, LuOptions};
use gplu_sparse::gen::suite::{um_suite, DEFAULT_SCALE};

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_SCALE);
    println!("Figure 5: out-of-core vs unified memory w/ prefetching (scale 1/{scale})\n");

    let mut t = Table::new([
        "matrix", "abbr", "nnz/n", "um.sym", "um.num", "ooc.sym", "ooc.num", "ooc.norm", "speedup",
    ]);
    let mut speedups = Vec::new();
    for entry in um_suite() {
        if !args.selected(entry.abbr) {
            continue;
        }
        let prep = Prepared::new(entry.clone(), scale);
        let (_, fill) = fill_size_of(&prep);

        let gpu_um = prep.gpu_symbolic(fill);
        let um = factorize_um_pipeline(&gpu_um, &prep.matrix, true, &LuOptions::default())
            .expect("um pipeline ok");

        let gpu_ooc = prep.gpu_symbolic(fill);
        let ooc = LuFactorization::compute(&gpu_ooc, &prep.matrix, &LuOptions::default())
            .expect("ooc pipeline ok");
        assert_eq!(um.lu.vals, ooc.lu.vals, "{}: engines disagree", entry.abbr);

        let s = um.report.gpu_total().ratio(ooc.report.gpu_total());
        speedups.push(s);
        t.row([
            entry.name.to_string(),
            entry.abbr.to_string(),
            format!("{:.1}", prep.matrix.density()),
            format!("{}", um.report.symbolic + um.report.levelize),
            format!("{}", um.report.numeric),
            format!("{}", ooc.report.symbolic + ooc.report.levelize),
            format!("{}", ooc.report.numeric),
            format!("{:.3}", ooc.report.gpu_total().ratio(um.report.gpu_total())),
            format!("{s:.2}x"),
        ]);
    }
    t.print();
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(0.0f64, f64::max);
    println!(
        "\nooc speedup over prefetched UM: {min:.2}-{max:.2}x (geomean {:.2}x); paper: 1.06-2.22x",
        geomean(&speedups)
    );
}
