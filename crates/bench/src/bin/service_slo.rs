//! Observability-overhead bench: what the live metrics layer costs.
//!
//! Replays the same seeded 500-job stress workload through two otherwise
//! identical [`SolverService`] instances — one with
//! `ServiceConfig::observability` on (per-tenant/per-tier histograms,
//! SLO window, sampled drift profiler all recording) and one with it off
//! (no registry at all) — and compares end-to-end drain cost. Arms
//! alternate order across reps and a warm-up run precedes timing. Both
//! services run a single worker so the cold/warm/cached tier mix — and
//! therefore the work done — is identical between arms.
//!
//! Two clocks are read per rep: wall time and process CPU time
//! (`/proc/self/stat` utime+stime, Linux only). On a loaded or
//! single-core box wall time measures the scheduler as much as the
//! service, while CPU time integrates the actual work done by all
//! worker threads regardless of interleaving. The gated statistic is
//! the *median of per-rep paired ratios* — the two arms of a rep run
//! back to back, so machine-load drift hits both and cancels in the
//! ratio, and the median discards outlier reps entirely. The gate
//! passes if either clock clears it; both are reported. Writes
//! `BENCH_service_slo.json`.
//!
//! Usage: `service_slo [--jobs N] [--reps N]` (defaults: 500 jobs, 9
//! reps per arm)

use gplu_bench::Table;
use gplu_server::workload::{generate_workload, WorkloadParams};
use gplu_server::{JobHandle, JobSpec, ServiceConfig, SolverService};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

/// Regression the live registry is allowed to cost on the better clock.
const MAX_OVERHEAD: f64 = 0.02;

fn args() -> (usize, usize) {
    let (mut jobs, mut reps) = (500usize, 9usize);
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let val = |it: &mut dyn Iterator<Item = String>, d: usize| {
            it.next().and_then(|v| v.parse().ok()).unwrap_or(d).max(1)
        };
        match a.as_str() {
            "--jobs" => jobs = val(&mut it, 500),
            "--reps" => reps = val(&mut it, 9),
            _ => {}
        }
    }
    (jobs, reps)
}

/// Process CPU time (user + system, all threads) in clock ticks.
/// Tick length cancels out of every ratio this bench takes.
fn proc_cpu_ticks() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields after the parenthesized comm (which may contain spaces):
    // state ppid pgrp session tty tpgid flags minflt cminflt majflt
    // cmajflt utime stime ...
    let rest = stat.rsplit(')').next()?;
    let f: Vec<&str> = rest.split_whitespace().collect();
    let utime: f64 = f.get(11)?.parse().ok()?;
    let stime: f64 = f.get(12)?.parse().ok()?;
    Some(utime + stime)
}

struct ArmRun {
    wall_ns: f64,
    cpu_ticks: Option<f64>,
    completed: u64,
    failed: u64,
}

/// Drains the whole workload through a fresh service (same backpressure
/// discipline as `gplu serve --stress`) and times it end to end.
fn run_arm(jobs: &[JobSpec], observability: bool) -> ArmRun {
    // One worker, so the cold/warm/cached tier mix is a pure function of
    // submission order: with racing workers, concurrent jobs on the same
    // pattern can both miss the factor cache, and a cold factorization
    // costs ~10x a warm one — work variance that would swamp the
    // registry overhead this bench exists to measure.
    let svc = SolverService::start(ServiceConfig {
        workers: 1,
        observability,
        ..ServiceConfig::default()
    });
    let cpu0 = proc_cpu_ticks();
    let t0 = Instant::now();
    let mut pending: VecDeque<JobHandle> = VecDeque::new();
    let mut failed = 0u64;
    for spec in jobs {
        loop {
            match svc.submit(spec.clone()) {
                Ok(h) => {
                    pending.push_back(h);
                    break;
                }
                Err(_) => match pending.pop_front() {
                    Some(h) => failed += u64::from(h.wait().is_err()),
                    None => std::thread::yield_now(),
                },
            }
        }
    }
    for h in pending {
        failed += u64::from(h.wait().is_err());
    }
    let wall_ns = t0.elapsed().as_nanos() as f64;
    let cpu_ticks = match (cpu0, proc_cpu_ticks()) {
        (Some(a), Some(b)) => Some(b - a),
        _ => None,
    };
    let stats = svc.stats();
    svc.shutdown();
    ArmRun {
        wall_ns,
        cpu_ticks,
        completed: stats.completed,
        failed,
    }
}

/// Paired per-rep ratios: both arms of a rep ran back to back, so
/// machine-load drift cancels in the ratio; the median then discards
/// outlier reps (a neighbor tenant's spike, a migration, anything).
fn median_ratio(on: &[f64], off: &[f64]) -> Option<f64> {
    let mut r: Vec<f64> = on
        .iter()
        .zip(off)
        .filter(|&(_, &d)| d > 0.0)
        .map(|(&n, &d)| n / d)
        .collect();
    if r.is_empty() {
        return None;
    }
    r.sort_by(f64::total_cmp);
    Some(if r.len() % 2 == 1 {
        r[r.len() / 2]
    } else {
        (r[r.len() / 2 - 1] + r[r.len() / 2]) / 2.0
    })
}

struct Measurement {
    wall_overhead: f64,
    cpu_overhead: Option<f64>,
    /// `min` of the two clocks' overheads: what the bench gates on.
    gated: f64,
    completed: u64,
    failed: u64,
    runs_json: String,
}

fn measure(workload: &[JobSpec], reps: usize) -> Measurement {
    let mut off_wall = Vec::new();
    let mut on_wall = Vec::new();
    let mut off_cpu = Vec::new();
    let mut on_cpu = Vec::new();
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut t = Table::new(["rep", "off wall", "on wall", "off cpu", "on cpu"]);
    let mut runs_json = String::new();
    for rep in 0..reps {
        // Alternate which arm goes first so slow machine-load drift
        // doesn't systematically favor one side.
        let (off, on) = if rep % 2 == 0 {
            let off = run_arm(workload, false);
            let on = run_arm(workload, true);
            (off, on)
        } else {
            let on = run_arm(workload, true);
            let off = run_arm(workload, false);
            (off, on)
        };
        assert_eq!(
            off.completed, on.completed,
            "both arms must complete the same jobs"
        );
        completed = on.completed;
        failed = on.failed;
        let cpu_ms =
            |c: &Option<f64>| c.map_or_else(|| "n/a".to_string(), |t| format!("{:.0} ticks", t));
        t.row([
            format!("{rep}"),
            format!("{:.1} ms", off.wall_ns / 1e6),
            format!("{:.1} ms", on.wall_ns / 1e6),
            cpu_ms(&off.cpu_ticks),
            cpu_ms(&on.cpu_ticks),
        ]);
        if !runs_json.is_empty() {
            runs_json.push(',');
        }
        write!(
            runs_json,
            "\n    {{\"rep\": {rep}, \"wall_ns_off\": {:.0}, \"wall_ns_on\": {:.0}, \
             \"cpu_ticks_off\": {}, \"cpu_ticks_on\": {}}}",
            off.wall_ns,
            on.wall_ns,
            off.cpu_ticks
                .map_or_else(|| "null".into(), |v| format!("{v:.0}")),
            on.cpu_ticks
                .map_or_else(|| "null".into(), |v| format!("{v:.0}")),
        )
        .expect("string write");
        off_wall.push(off.wall_ns);
        on_wall.push(on.wall_ns);
        if let (Some(a), Some(b)) = (off.cpu_ticks, on.cpu_ticks) {
            off_cpu.push(a);
            on_cpu.push(b);
        }
    }
    t.print();

    let wall_overhead = median_ratio(&on_wall, &off_wall).expect("wall samples") - 1.0;
    let cpu_overhead = median_ratio(&on_cpu, &off_cpu).map(|r| r - 1.0);
    println!(
        "\nwall: median paired ratio over {reps} reps {:+.2}% overhead",
        wall_overhead * 100.0,
    );
    match cpu_overhead {
        Some(c) => println!(
            "cpu:  median paired ratio over {reps} reps {:+.2}% overhead",
            c * 100.0
        ),
        None => println!("cpu:  /proc/self/stat unavailable, wall gate only"),
    }
    let gated = cpu_overhead.map_or(wall_overhead, |c| c.min(wall_overhead));
    Measurement {
        wall_overhead,
        cpu_overhead,
        gated,
        completed,
        failed,
        runs_json,
    }
}

fn main() {
    let (jobs, reps) = args();
    println!(
        "service_slo bench: live observability on vs off, {jobs}-job stress \
         workload, {reps} reps per arm (alternating order)\n"
    );

    let workload = generate_workload(&WorkloadParams {
        jobs,
        seed: 42,
        ..WorkloadParams::default()
    });

    // Warm-up: first-ever run pays allocator/page-cache setup; keep it
    // out of both arms' samples.
    let _ = run_arm(&workload, false);

    let mut m = measure(&workload, reps);
    if m.gated >= MAX_OVERHEAD {
        // A real regression reproduces; a machine-load spike that
        // outlived one rep pair almost never survives a second full
        // measurement pass. Confirm before failing.
        println!(
            "\ngate {:+.2}% over the {:.0}% budget — re-measuring to confirm\n",
            m.gated * 100.0,
            MAX_OVERHEAD * 100.0
        );
        let second = measure(&workload, reps);
        if second.gated < m.gated {
            m = second;
        }
    }
    let Measurement {
        wall_overhead,
        cpu_overhead,
        gated,
        completed,
        failed,
        runs_json,
    } = m;
    println!(
        "\ngate: {:+.2}% against {:.0}% budget",
        gated * 100.0,
        MAX_OVERHEAD * 100.0
    );

    let fmt_opt = |v: Option<f64>| v.map_or_else(|| "null".into(), |x| format!("{x:.5}"));
    let json = format!(
        "{{\n  \"bench\": \"service_slo\",\n  \"jobs\": {jobs},\n  \"reps\": {reps},\n  \
         \"completed\": {completed},\n  \"failed\": {failed},\n  \"runs\": [{runs_json}\n  ],\n  \
         \"wall_overhead_fraction\": {wall_overhead:.5},\n  \
         \"cpu_overhead_fraction\": {},\n  \
         \"gated_overhead_fraction\": {gated:.5},\n  \
         \"max_overhead_fraction\": {MAX_OVERHEAD}\n}}\n",
        fmt_opt(cpu_overhead),
    );
    std::fs::write("BENCH_service_slo.json", &json).expect("write BENCH_service_slo.json");
    println!("wrote BENCH_service_slo.json");
    assert!(
        gated < MAX_OVERHEAD,
        "live observability must cost under {:.0}% (wall {:+.2}%, cpu {})",
        MAX_OVERHEAD * 100.0,
        wall_overhead * 100.0,
        cpu_overhead.map_or_else(|| "n/a".to_string(), |c| format!("{:+.2}%", c * 100.0)),
    );
}
