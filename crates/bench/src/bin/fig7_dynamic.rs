//! **Figure 7**: symbolic-phase execution times of the dynamic parallelism
//! assignment implementation (Algorithm 4) vs the naive out-of-core
//! implementation (Algorithm 3), on the pre2 and audikw_1 analogs.
//!
//! Paper band: dynamic is up to ~10 % faster; the gain is limited because
//! the high-frontier suffix of the rows still dominates.
//!
//! Usage: `fig7_dynamic [--scale N]`

use gplu_bench::{fill_size_of, Args, Prepared, Table};
use gplu_sparse::gen::suite::{frontier_pair, DEFAULT_SCALE};
use gplu_symbolic::{symbolic_ooc, symbolic_ooc_dynamic};

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_SCALE);
    println!("Figure 7: dynamic parallelism assignment vs naive out-of-core (scale 1/{scale})\n");

    let mut t = Table::new([
        "matrix",
        "abbr",
        "naive",
        "dynamic",
        "improvement",
        "n1/n",
        "chunk1",
        "chunk2",
        "iters(naive)",
        "iters(dyn)",
        "overflow rows",
    ]);
    for entry in frontier_pair() {
        if !args.selected(entry.abbr) {
            continue;
        }
        let prep = Prepared::new(entry.clone(), scale);
        let (pre, fill) = fill_size_of(&prep);

        let gpu = prep.gpu_symbolic(fill);
        let naive = symbolic_ooc(&gpu, &pre).expect("naive ok");

        let gpu = prep.gpu_symbolic(fill);
        let dynamic = symbolic_ooc_dynamic(&gpu, &pre).expect("dynamic ok");
        assert_eq!(naive.result.filled, dynamic.result.filled);

        let improvement = (1.0 - dynamic.time.ratio(naive.time)) * 100.0;
        t.row([
            entry.name.to_string(),
            entry.abbr.to_string(),
            format!("{}", naive.time),
            format!("{}", dynamic.time),
            format!("{improvement:.1}%"),
            format!("{:.2}", dynamic.split.n1 as f64 / pre.n_rows() as f64),
            dynamic.split.chunk1.to_string(),
            dynamic.split.chunk2.to_string(),
            naive.num_iterations.to_string(),
            dynamic.num_iterations.to_string(),
            dynamic.overflows.to_string(),
        ]);
    }
    t.print();
    println!("\nPaper: the dynamic implementation achieves up to 10% better performance;");
    println!("the improvement is limited because high-frontier steps bound the rest.");
}
