//! **Figure 4**: normalized end-to-end execution times (symbolic and
//! numeric phases separated) — our out-of-core GPU implementation vs the
//! modified GLU 3.0 baseline, over the 18 Table 2 analogs.
//!
//! Paper bands: speedups 1.13–32.65×, larger for denser matrices
//! (higher `nnz/n`).
//!
//! Usage: `fig4_end_to_end [--scale N] [--quick] [--only OT2,WI]`
//!
//! Besides the printed table, every out-of-core run's machine-readable
//! [`RunReport`] is written to `BENCH_fig4_end_to_end.json` — phase
//! timings, per-level records, GPU counters — for downstream tooling.

use gplu_baseline::factorize_glu30;
use gplu_bench::{fill_size_of, geomean, Args, Prepared, Table};
use gplu_core::{LuFactorization, LuOptions, PreprocessOptions, RunReport, SymbolicEngine};
use gplu_sparse::gen::suite::{paper_suite, DEFAULT_SCALE};
use gplu_trace::{JsonValue, Recorder};

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_SCALE);
    println!("Figure 4: out-of-core GPU vs modified GLU 3.0 (scale 1/{scale})");
    println!("(times are simulated; \"norm\" columns are normalized to the GLU3.0 total)\n");

    let mut table = Table::new([
        "matrix", "abbr", "n", "nnz/n", "glu.sym", "glu.num", "ooc.sym", "ooc.num", "ooc.norm",
        "speedup",
    ]);
    let mut speedups = Vec::new();
    let mut reports: Vec<JsonValue> = Vec::new();

    for entry in paper_suite() {
        if !args.selected(entry.abbr) {
            continue;
        }
        let prep = Prepared::new(entry.clone(), scale);
        let (_, fill) = fill_size_of(&prep);

        let gpu_base = prep.gpu_symbolic(fill);
        let base = factorize_glu30(&gpu_base, &prep.matrix, &PreprocessOptions::default())
            .expect("baseline factorizes");

        let gpu_ours = prep.gpu_symbolic(fill);
        let opts = LuOptions {
            symbolic: SymbolicEngine::OocDynamic,
            ..Default::default()
        };
        let recorder = Recorder::new();
        let ours = LuFactorization::compute_traced(&gpu_ours, &prep.matrix, &opts, &recorder)
            .expect("end-to-end factorizes");

        assert_eq!(
            base.lu.vals, ours.lu.vals,
            "{}: engines disagree",
            entry.abbr
        );

        let base_total = base.report.gpu_total();
        let ours_total = ours.report.gpu_total();
        let speedup = base_total.ratio(ours_total);
        speedups.push(speedup);

        let run = RunReport::new(
            prep.matrix.n_rows(),
            prep.matrix.nnz(),
            ours.report.clone(),
            &recorder.into_events(),
        );
        reports.push(
            JsonValue::obj()
                .set("matrix", entry.name)
                .set("abbr", entry.abbr)
                .set("speedup_vs_glu30", speedup)
                .set("report", run.to_json()),
        );

        table.row([
            entry.name.to_string(),
            entry.abbr.to_string(),
            prep.matrix.n_rows().to_string(),
            format!("{:.1}", prep.matrix.density()),
            format!("{}", base.report.symbolic + base.report.levelize),
            format!("{}", base.report.numeric),
            format!("{}", ours.report.symbolic + ours.report.levelize),
            format!("{}", ours.report.numeric),
            format!("{:.3}", ours_total.ratio(base_total)),
            format!("{speedup:.2}x"),
        ]);
    }

    table.print();
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(0.0f64, f64::max);
    println!(
        "\nspeedup range {min:.2}-{max:.2}x (geomean {:.2}x); paper reports 1.13-32.65x",
        geomean(&speedups)
    );

    let out_path = "BENCH_fig4_end_to_end.json";
    let doc = JsonValue::obj()
        .set("benchmark", "fig4_end_to_end")
        .set("scale", scale)
        .set("runs", reports);
    match std::fs::write(out_path, doc.to_pretty()) {
        Ok(()) => println!("per-run telemetry: {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
