//! Tiered-cache latency bench: what each cache tier is worth.
//!
//! Runs the same hot pattern set through the four service paths a
//! restart can land on — cold build, device-tier warm hit, host-tier
//! rescue (rewarmed restart), disk-tier rescue (cold-memory restart) —
//! plus the boot-time cost of `--rewarm` itself, and reports per-job
//! wall latency for each. One worker and sequential submission keep the
//! tier mix a pure function of the scenario: every job's tier is
//! asserted, so the bench measures what it claims to. Writes
//! `BENCH_cache_tiers.json`.
//!
//! Usage: `cache_tiers [--patterns N] [--reps N] [--n N]`
//! (defaults: 6 patterns of n=320, 5 reps)

use gplu_bench::Table;
use gplu_server::{ExecTier, JobKind, JobSpec, ServiceConfig, SolverService};
use gplu_sparse::gen::circuit::{circuit, CircuitParams};
use gplu_sparse::Csr;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn args() -> (usize, usize, usize) {
    let (mut patterns, mut reps, mut n) = (6usize, 5usize, 320usize);
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let val = |it: &mut dyn Iterator<Item = String>, d: usize| {
            it.next().and_then(|v| v.parse().ok()).unwrap_or(d).max(1)
        };
        match a.as_str() {
            "--patterns" => patterns = val(&mut it, 6),
            "--reps" => reps = val(&mut it, 5),
            "--n" => n = val(&mut it, 320),
            _ => {}
        }
    }
    (patterns, reps, n)
}

/// Self-cleaning scratch directory for the disk tier.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "gplu-bench-cache-tiers-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn drift(base: &Csr, version: u64) -> Csr {
    let mut m = base.clone();
    for (k, v) in m.vals.iter_mut().enumerate() {
        let wob = ((k as u64)
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(version.wrapping_mul(7919))
            % 97) as f64;
        *v *= 1.0 + wob / 1000.0;
    }
    m
}

fn config(dir: &TempDir, rewarm: bool) -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        cache_dir: Some(dir.0.clone()),
        rewarm,
        ..Default::default()
    }
}

/// One factorize round over all patterns; returns total wall ns and
/// asserts every job landed on `want`.
fn round(svc: &SolverService, patterns: &[Csr], version: u64, want: ExecTier) -> f64 {
    let mut total = 0.0f64;
    for (pi, base) in patterns.iter().enumerate() {
        let a = drift(base, version);
        let t0 = Instant::now();
        let r = svc
            .submit(JobSpec::new(a, JobKind::Factorize).hot())
            .expect("submit")
            .wait()
            .expect("job completes");
        total += t0.elapsed().as_nanos() as f64;
        assert_eq!(
            r.tier, want,
            "pattern {pi} v{version}: scenario expected {want:?}"
        );
    }
    total
}

#[derive(Default)]
struct Samples {
    cold: Vec<f64>,
    warm: Vec<f64>,
    host: Vec<f64>,
    disk: Vec<f64>,
    rewarm_boot: Vec<f64>,
    cold_boot: Vec<f64>,
}

fn median(xs: &[f64]) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    if s.len() % 2 == 1 {
        s[s.len() / 2]
    } else {
        (s[s.len() / 2 - 1] + s[s.len() / 2]) / 2.0
    }
}

fn main() {
    let (npat, reps, n) = args();
    println!(
        "cache_tiers bench: cold vs device vs host vs disk rescue latency, \
         {npat} patterns (n={n}), {reps} reps\n"
    );

    let patterns: Vec<Csr> = (0..npat as u64)
        .map(|s| {
            circuit(&CircuitParams {
                n,
                nnz_per_row: 6.0,
                seed: 7000 + s,
                ..Default::default()
            })
        })
        .collect();

    let mut s = Samples::default();
    for rep in 0..reps {
        let dir = TempDir::new("run");

        // Cold builds + device-tier warm hits, and the durable seed for
        // the two restart scenarios below.
        let svc = SolverService::start(config(&dir, false));
        s.cold.push(round(&svc, &patterns, 0, ExecTier::Cold));
        s.warm
            .push(round(&svc, &patterns, 1 + rep as u64, ExecTier::Warm));
        assert!(svc.drain(), "plans must be durable before restart");
        svc.shutdown();

        // Rewarmed restart: boot pays the decode, jobs hit the host tier.
        let t0 = Instant::now();
        let svc = SolverService::start(config(&dir, true));
        s.rewarm_boot.push(t0.elapsed().as_nanos() as f64);
        s.host
            .push(round(&svc, &patterns, 10 + rep as u64, ExecTier::WarmHost));
        svc.shutdown();

        // Cold-memory restart: boot is free, first touches decode from disk.
        let t0 = Instant::now();
        let svc = SolverService::start(config(&dir, false));
        s.cold_boot.push(t0.elapsed().as_nanos() as f64);
        s.disk
            .push(round(&svc, &patterns, 20 + rep as u64, ExecTier::WarmDisk));
        svc.shutdown();
    }

    let per_job = npat as f64;
    let (cold, warm, host, disk) = (
        median(&s.cold) / per_job,
        median(&s.warm) / per_job,
        median(&s.host) / per_job,
        median(&s.disk) / per_job,
    );
    let (rewarm_boot, cold_boot) = (median(&s.rewarm_boot), median(&s.cold_boot));

    let mut t = Table::new(["tier", "median ns/job", "vs cold"]);
    for (name, ns) in [
        ("cold build", cold),
        ("device hit (warm)", warm),
        ("host rescue (warm_host)", host),
        ("disk rescue (warm_disk)", disk),
    ] {
        t.row([
            name.to_string(),
            format!("{ns:.0}"),
            format!("{:.2}x", cold / ns.max(1.0)),
        ]);
    }
    t.print();
    println!(
        "\nrewarm boot: {:.1} ms for {npat} plans ({:.1} ms cold boot)",
        rewarm_boot / 1e6,
        cold_boot / 1e6
    );
    // The tiers must actually be ordered, or the tiering buys nothing:
    // a disk rescue may cost decode time but must beat a cold rebuild.
    assert!(
        disk < cold,
        "disk rescue ({disk:.0} ns) must beat a cold build ({cold:.0} ns)"
    );

    let mut json = String::from("{\n  \"bench\": \"cache_tiers\",\n");
    let _ = write!(
        json,
        "  \"patterns\": {npat},\n  \"n\": {n},\n  \"reps\": {reps},\n  \
         \"median_ns_per_job\": {{\n    \"cold\": {cold:.0},\n    \"warm\": {warm:.0},\n    \
         \"warm_host\": {host:.0},\n    \"warm_disk\": {disk:.0}\n  }},\n  \
         \"speedup_vs_cold\": {{\n    \"warm\": {:.3},\n    \"warm_host\": {:.3},\n    \
         \"warm_disk\": {:.3}\n  }},\n  \"boot_ns\": {{\n    \"rewarm\": {rewarm_boot:.0},\n    \
         \"cold\": {cold_boot:.0}\n  }}\n}}\n",
        cold / warm.max(1.0),
        cold / host.max(1.0),
        cold / disk.max(1.0),
    );
    std::fs::write("BENCH_cache_tiers.json", &json).expect("write BENCH_cache_tiers.json");
    println!("wrote BENCH_cache_tiers.json");
}
