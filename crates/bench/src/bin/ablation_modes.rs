//! **Ablation: GLU 3.0's adaptive kernel modes.** The numeric phase
//! classifies each level as type A/B/C and shapes its launch accordingly
//! (paper Section 2.2). This ablation forces every level into a single
//! mode and compares against the adaptive classifier.
//!
//! Usage: `ablation_modes [--scale N]`

use gplu_bench::{fill_size_of, Args, Prepared, Table};
use gplu_numeric::{classify_schedule, factorize_gpu_sparse_forced, LevelType};
use gplu_schedule::{levelize_cpu, DepGraph};
use gplu_sim::CostModel;
use gplu_sparse::convert::csr_to_csc;
use gplu_sparse::gen::suite::{large_suite, paper_suite, DEFAULT_LARGE_SCALE, DEFAULT_SCALE};
use gplu_symbolic::symbolic_cpu;

fn main() {
    let args = Args::parse();
    println!("Ablation: adaptive A/B/C kernel modes vs forced single modes\n");

    let mut t = Table::new([
        "matrix",
        "mode mix (A/B/C)",
        "adaptive",
        "all-A",
        "all-B",
        "all-C",
        "best forced / adaptive",
    ]);
    let cases = [
        (
            paper_suite()
                .into_iter()
                .find(|e| e.abbr == "WI")
                .expect("WI"),
            args.scale_or(DEFAULT_SCALE),
        ),
        (
            large_suite().into_iter().next().expect("HT20"),
            args.scale_or(DEFAULT_LARGE_SCALE),
        ),
    ];
    for (entry, scale) in cases {
        let prep = Prepared::new(entry.clone(), scale);
        let (pre, fill) = fill_size_of(&prep);
        let sym = symbolic_cpu(&pre, &CostModel::default());
        let pattern = csr_to_csc(&sym.result.filled);
        let levels =
            levelize_cpu(&DepGraph::build(&sym.result.filled), &CostModel::default()).levels;
        let (_, mix) = classify_schedule(&pattern, &levels);

        let run = |force: Option<LevelType>| {
            let gpu = prep.gpu_numeric(fill);
            factorize_gpu_sparse_forced(&gpu, &pattern, &levels, force)
                .expect("factorizes")
                .time
        };
        let adaptive = run(None);
        let a = run(Some(LevelType::A));
        let b = run(Some(LevelType::B));
        let c = run(Some(LevelType::C));
        let best_forced = [a, b, c].into_iter().fold(a, |acc, t| acc.min_time(t));

        t.row([
            entry.name.to_string(),
            format!("{}/{}/{}", mix.a, mix.b, mix.c),
            format!("{adaptive}"),
            format!("{a}"),
            format!("{b}"),
            format!("{c}"),
            format!("{:.2}x", best_forced.as_ns() / adaptive.as_ns()),
        ]);
    }
    t.print();
    println!("\nForcing all-A or all-B is catastrophic on heavy tails (10-75x); the");
    println!("adaptive classifier stays within ~10% of the best forced mode on every");
    println!("input without knowing the schedule shape in advance.");
}

/// Tiny helper because `SimTime` has `max` but the ablation wants `min`.
trait MinTime {
    fn min_time(self, other: Self) -> Self;
}
impl MinTime for gplu_sim::SimTime {
    fn min_time(self, other: Self) -> Self {
        if self.as_ns() <= other.as_ns() {
            self
        } else {
            other
        }
    }
}
