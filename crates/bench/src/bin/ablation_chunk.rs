//! **Ablation: chunk sizing.** Algorithm 3 derives
//! `chunk_size = L/(c·n)` from free device memory. This sweep shrinks the
//! device and watches the chunk, the iteration count, the launch count and
//! the symbolic time respond — quantifying how much out-of-core-ness
//! actually costs (the paper's implicit claim is "not much": explicit
//! chunking stays near compute-bound).
//!
//! Usage: `ablation_chunk [--scale N]`

use gplu_bench::{Args, Prepared, Table};
use gplu_core::{preprocess, PreprocessOptions};
use gplu_sim::{Gpu, GpuConfig};
use gplu_sparse::gen::suite::{paper_suite, DEFAULT_SCALE};
use gplu_symbolic::symbolic_ooc;

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_SCALE);
    let entry = paper_suite()
        .into_iter()
        .find(|e| e.abbr == "MI")
        .expect("MI in suite");
    let prep = Prepared::new(entry.clone(), scale);
    let pre =
        preprocess(&prep.matrix, &PreprocessOptions::default(), &prep.cost()).expect("preprocess");
    let n = pre.matrix.n_rows() as u64;

    println!(
        "Ablation: device memory -> chunk size -> symbolic time ({} analog, scale 1/{scale})\n",
        entry.name
    );
    let mut t = Table::new([
        "device",
        "chunk",
        "iterations",
        "launches",
        "xfer KiB",
        "symbolic",
        "vs best",
    ]);
    let full_state = 24 * n * n;
    let mut results = Vec::new();
    for divisor in [2u64, 4, 8, 16, 32, 64, 128] {
        let mem = (full_state / divisor).max(256 * 1024);
        let gpu = Gpu::with_cost(GpuConfig::v100().with_memory(mem), prep.cost());
        match symbolic_ooc(&gpu, &pre.matrix) {
            Ok(out) => results.push((mem, out)),
            Err(e) => println!("  {:>6} MiB: {e}", mem >> 20),
        }
    }
    let best = results
        .iter()
        .map(|(_, o)| o.time.as_ns())
        .fold(f64::INFINITY, f64::min);
    for (mem, out) in &results {
        t.row([
            format!("{:.2} MiB", *mem as f64 / (1 << 20) as f64),
            out.chunk_size.to_string(),
            out.num_iterations.to_string(),
            out.stats.kernels_host.to_string(),
            ((out.stats.h2d_bytes + out.stats.d2h_bytes) >> 10).to_string(),
            format!("{}", out.time),
            format!("{:.2}x", out.time.as_ns() / best),
        ]);
    }
    t.print();
    println!("\nHalving memory repeatedly multiplies iterations but the symbolic time");
    println!("moves by far less — the out-of-core design's overhead is launches, not");
    println!("recomputation, which is the premise behind Algorithm 3.");
}
