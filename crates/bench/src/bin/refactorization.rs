//! Tiered-serving bench: what the `gplu-server` factor cache actually
//! buys on repeat traffic. For each pattern the three tiers are timed on
//! the **simulated** clock:
//!
//! * *cold* — the full pipeline (preprocess + symbolic + levelize +
//!   numeric), what a cache miss costs,
//! * *warm* — [`RefactorPlan::refactorize`] on drifted values (value
//!   scatter + numeric kernels on the cached pattern artifacts),
//! * *cached solve* — batched triangular solve against cached factors,
//!   what a full (pattern + value) hit costs.
//!
//! Warm results are asserted bit-identical to a cold factorization of the
//! same drifted values before anything is timed. Writes
//! `BENCH_refactorization.json` and prints a table.
//!
//! Usage: `refactorization [--reps N]` (default 5 value versions per
//! pattern)

use gplu_bench::{geomean, Table};
use gplu_core::{LuFactorization, LuOptions};
use gplu_numeric::TriSolvePlan;
use gplu_sim::{Gpu, GpuConfig};
use gplu_sparse::gen::circuit::{circuit, CircuitParams};
use gplu_sparse::gen::mesh::{mesh, MeshParams};
use gplu_sparse::gen::random::banded_dominant;
use gplu_sparse::Csr;
use std::fmt::Write as _;

fn reps_from_args() -> usize {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--reps" {
            return it.next().and_then(|v| v.parse().ok()).unwrap_or(5).max(1);
        }
    }
    5
}

/// The same deterministic value drift the service workload applies:
/// identical structure, perturbed entries.
fn drift_values(base: &Csr, version: u64) -> Csr {
    let mut m = base.clone();
    for (k, v) in m.vals.iter_mut().enumerate() {
        let wob = ((k as u64)
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(version.wrapping_mul(7919))
            % 97) as f64;
        *v *= 1.0 + wob / 1000.0;
    }
    m
}

fn gpu_for(a: &Csr) -> Gpu {
    Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
}

struct Row {
    name: &'static str,
    n: usize,
    nnz: usize,
    cold_ns: f64,
    warm_ns: f64,
    solve_ns: f64,
}

fn main() {
    let reps = reps_from_args();
    println!("tiered-serving bench: cold factorize vs warm refactorize vs cached solve ({reps} value versions per pattern)\n");

    let inputs: Vec<(&'static str, Csr)> = vec![
        (
            "circuit-2k",
            circuit(&CircuitParams {
                n: 2000,
                nnz_per_row: 8.0,
                seed: 11,
                ..Default::default()
            }),
        ),
        (
            "mesh-40x40",
            mesh(&MeshParams {
                nx: 40,
                ny: 40,
                nz: 1,
                dof: 1,
                keep: 0.95,
                seed: 12,
            }),
        ),
        ("banded-4k", banded_dominant(4000, 2, 13)),
    ];

    let opts = LuOptions::default();
    let mut t = Table::new([
        "pattern",
        "n",
        "nnz",
        "cold sim",
        "warm sim",
        "solve sim",
        "warm spdup",
        "solve spdup",
    ]);
    let mut rows_json = String::new();
    let mut warm_speedups = Vec::new();
    let mut solve_speedups = Vec::new();

    for (name, a) in &inputs {
        // Cold reference: full pipeline on the base values.
        let gpu = gpu_for(a);
        let f0 = LuFactorization::compute(&gpu, a, &opts).expect("cold factorization");
        let plan = f0.refactor_plan(a, &opts).expect("refactor plan");
        let solve_plan = TriSolvePlan::new(&f0.lu);
        let b = a.spmv(&vec![1.0; a.n_rows()]);

        let mut cold_ns = Vec::new();
        let mut warm_ns = Vec::new();
        let mut solve_ns = Vec::new();
        for version in 0..reps as u64 {
            let a_v = drift_values(a, version);

            let gpu_cold = gpu_for(&a_v);
            let cold =
                LuFactorization::compute(&gpu_cold, &a_v, &opts).expect("cold factorization");
            cold_ns.push(cold.report.total().as_ns());

            let gpu_warm = gpu_for(&a_v);
            let warm = plan
                .refactorize(&gpu_warm, &a_v)
                .expect("warm refactorization");
            warm_ns.push(warm.report.total().as_ns());
            assert_eq!(
                cold.lu.vals, warm.lu.vals,
                "{name} v{version}: warm factors must be bit-identical to cold"
            );

            // Cached-solve tier: the factors already exist; the job only
            // pays the batched triangular solve.
            let gpu_solve = gpu_for(&a_v);
            let (_, ts) = warm
                .solve_many_on_gpu(&gpu_solve, &solve_plan, std::slice::from_ref(&b))
                .expect("cached solve");
            solve_ns.push(ts.as_ns());
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let row = Row {
            name,
            n: a.n_rows(),
            nnz: a.nnz(),
            cold_ns: avg(&cold_ns),
            warm_ns: avg(&warm_ns),
            solve_ns: avg(&solve_ns),
        };
        let warm_speedup = row.cold_ns / row.warm_ns;
        let solve_speedup = row.cold_ns / row.solve_ns;
        warm_speedups.push(warm_speedup);
        solve_speedups.push(solve_speedup);

        t.row([
            row.name.to_string(),
            row.n.to_string(),
            row.nnz.to_string(),
            format!("{:.3} ms", row.cold_ns / 1e6),
            format!("{:.3} ms", row.warm_ns / 1e6),
            format!("{:.3} ms", row.solve_ns / 1e6),
            format!("{warm_speedup:.2}x"),
            format!("{solve_speedup:.2}x"),
        ]);

        if !rows_json.is_empty() {
            rows_json.push(',');
        }
        write!(
            rows_json,
            "\n    {{\"name\": \"{}\", \"n\": {}, \"nnz\": {}, \
             \"cold_sim_ns\": {:.1}, \"warm_sim_ns\": {:.1}, \"cached_solve_sim_ns\": {:.1}, \
             \"warm_speedup\": {:.4}, \"cached_solve_speedup\": {:.4}}}",
            row.name,
            row.n,
            row.nnz,
            row.cold_ns,
            row.warm_ns,
            row.solve_ns,
            warm_speedup,
            solve_speedup,
        )
        .expect("string write");
    }

    t.print();
    let warm_geo = geomean(&warm_speedups);
    let solve_geo = geomean(&solve_speedups);
    println!(
        "\nspeedup over cold factorization: warm refactorize geomean {warm_geo:.2}x, \
         cached solve geomean {solve_geo:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"refactorization\",\n  \"reps\": {reps},\n  \
         \"matrices\": [{rows_json}\n  ],\n  \"geomean_warm_speedup\": {warm_geo:.4},\n  \
         \"geomean_cached_solve_speedup\": {solve_geo:.4}\n}}\n"
    );
    std::fs::write("BENCH_refactorization.json", &json).expect("write BENCH_refactorization.json");
    println!("wrote BENCH_refactorization.json");
    assert!(
        warm_geo >= 3.0,
        "warm refactorization must be at least 3x faster than cold (got {warm_geo:.2}x)"
    );
}
