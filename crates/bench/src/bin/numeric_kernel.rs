//! Head-to-head of the two sorted-CSC numeric kernels: binary-search
//! access (the paper's Algorithm 6) vs merge-join access (the `O(nnz)`
//! streaming refinement). Measures **both** clocks on the Table 4 analog
//! suite:
//!
//! * *wall-clock* of the engine call — the host actually performs every
//!   probe / cursor advance, so this is a real measurement of the access
//!   discipline's location work,
//! * *simulated* device time — the cost model's verdict, where binary
//!   search pays `probe_flop_items` and merge does not.
//!
//! Writes `BENCH_numeric_kernel.json` next to the working directory and
//! prints a table. Both engines must agree bitwise on every matrix, or
//! the run aborts.
//!
//! Usage: `numeric_kernel [--scale N] [--reps N] [--only A,B]`
//! (default scale 1/1024, 5 repetitions per engine)

use gplu_bench::{fill_size_of, geomean, Args, Prepared, Table};
use gplu_numeric::{factorize_gpu_merge, factorize_gpu_sparse, NumericOutcome};
use gplu_schedule::{levelize_cpu, DepGraph, Levels};
use gplu_sim::{CostModel, Gpu};
use gplu_sparse::convert::csr_to_csc;
use gplu_sparse::gen::suite::{large_suite, DEFAULT_LARGE_SCALE};
use gplu_sparse::Csc;
use gplu_symbolic::symbolic_cpu;
use std::fmt::Write as _;
use std::time::Instant;

/// One engine's measurements on one matrix.
struct Measured {
    wall_ms_median: f64,
    wall_ms_min: f64,
    sim_ns: f64,
    outcome: NumericOutcome,
}

fn measure(
    reps: usize,
    gpu_of: impl Fn() -> Gpu,
    run: impl Fn(&Gpu) -> NumericOutcome,
) -> Measured {
    let mut walls: Vec<f64> = (0..reps)
        .map(|_| {
            let gpu = gpu_of();
            let start = Instant::now();
            let _ = run(&gpu);
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let gpu = gpu_of();
    let outcome = run(&gpu);
    Measured {
        wall_ms_median: walls[walls.len() / 2],
        wall_ms_min: walls[0],
        sim_ns: outcome.time.as_ns(),
        outcome,
    }
}

fn reps_from_args() -> usize {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--reps" {
            return it.next().and_then(|v| v.parse().ok()).unwrap_or(5);
        }
    }
    5
}

fn prepare(prep: &Prepared) -> (Csc, Levels, usize) {
    let (pre, fill) = fill_size_of(prep);
    let sym = symbolic_cpu(&pre, &CostModel::default());
    let pattern = csr_to_csc(&sym.result.filled);
    let levels = levelize_cpu(&DepGraph::build(&sym.result.filled), &CostModel::default()).levels;
    (pattern, levels, fill)
}

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_LARGE_SCALE);
    let reps = reps_from_args();
    println!(
        "numeric kernel head-to-head: binary-search vs merge-join CSC (scale 1/{scale}, {reps} reps)\n"
    );

    let mut t = Table::new([
        "matrix",
        "n",
        "fill nnz",
        "probes",
        "merge steps",
        "bs wall",
        "mg wall",
        "wall spdup",
        "bs sim",
        "mg sim",
        "sim spdup",
    ]);
    let mut rows = String::new();
    let mut wall_speedups = Vec::new();
    let mut sim_speedups = Vec::new();

    for entry in large_suite() {
        if !args.selected(entry.abbr) {
            continue;
        }
        let prep = Prepared::new(entry.clone(), scale);
        let (pattern, levels, fill) = prepare(&prep);
        let n = pattern.n_cols();

        let bs = measure(
            reps,
            || prep.gpu_numeric(fill),
            |gpu| factorize_gpu_sparse(gpu, &pattern, &levels).expect("bsearch ok"),
        );
        let mg = measure(
            reps,
            || prep.gpu_numeric(fill),
            |gpu| factorize_gpu_merge(gpu, &pattern, &levels).expect("merge ok"),
        );
        assert_eq!(
            bs.outcome.lu.vals, mg.outcome.lu.vals,
            "{}: engines disagree",
            entry.abbr
        );
        assert!(
            bs.outcome.probes > 0,
            "{}: Algorithm 6 must probe",
            entry.abbr
        );
        assert_eq!(mg.outcome.probes, 0);

        let wall_speedup = bs.wall_ms_median / mg.wall_ms_median;
        let sim_speedup = bs.sim_ns / mg.sim_ns;
        wall_speedups.push(wall_speedup);
        sim_speedups.push(sim_speedup);

        t.row([
            entry.abbr.to_string(),
            n.to_string(),
            fill.to_string(),
            bs.outcome.probes.to_string(),
            mg.outcome.merge_steps.to_string(),
            format!("{:.2} ms", bs.wall_ms_median),
            format!("{:.2} ms", mg.wall_ms_median),
            format!("{wall_speedup:.2}x"),
            format!("{:.2} ms", bs.sim_ns / 1e6),
            format!("{:.2} ms", mg.sim_ns / 1e6),
            format!("{sim_speedup:.2}x"),
        ]);

        if !rows.is_empty() {
            rows.push(',');
        }
        write!(
            rows,
            "\n    {{\"name\": \"{}\", \"abbr\": \"{}\", \"n\": {}, \"fill_nnz\": {}, \
             \"binary_search\": {{\"wall_ms_median\": {:.4}, \"wall_ms_min\": {:.4}, \
             \"sim_time_ns\": {:.1}, \"probes\": {}}}, \
             \"merge\": {{\"wall_ms_median\": {:.4}, \"wall_ms_min\": {:.4}, \
             \"sim_time_ns\": {:.1}, \"merge_steps\": {}}}, \
             \"wall_speedup\": {:.4}, \"sim_speedup\": {:.4}}}",
            entry.name,
            entry.abbr,
            n,
            fill,
            bs.wall_ms_median,
            bs.wall_ms_min,
            bs.sim_ns,
            bs.outcome.probes,
            mg.wall_ms_median,
            mg.wall_ms_min,
            mg.sim_ns,
            mg.outcome.merge_steps,
            wall_speedup,
            sim_speedup,
        )
        .expect("string write");
    }

    t.print();
    println!(
        "\nmerge-join speedup over binary search: wall-clock geomean {:.2}x, simulated geomean {:.2}x",
        geomean(&wall_speedups),
        geomean(&sim_speedups)
    );

    let json = format!(
        "{{\n  \"bench\": \"numeric_kernel\",\n  \"scale\": {scale},\n  \"reps\": {reps},\n  \
         \"matrices\": [{rows}\n  ],\n  \"geomean_wall_speedup\": {:.4},\n  \
         \"geomean_sim_speedup\": {:.4}\n}}\n",
        geomean(&wall_speedups),
        geomean(&sim_speedups)
    );
    std::fs::write("BENCH_numeric_kernel.json", &json).expect("write BENCH_numeric_kernel.json");
    println!("wrote BENCH_numeric_kernel.json");
}
