//! **Table 3**: GPU page-fault groups and the percentage of time spent
//! servicing them, for the unified-memory symbolic implementations with
//! ("wp") and without ("wo p") prefetching, against the out-of-core
//! implementation's data-movement share ("pc. ooc").
//!
//! Paper bands: thousands of fault groups; 33–86 % of time servicing
//! faults without prefetching, 19–65 % with; ≤0.33 % data-movement share
//! for out-of-core. (Absolute group counts scale with the matrix size;
//! the percentages are the scale-free comparison.)
//!
//! Usage: `table3_page_faults [--scale N]`

use gplu_bench::{fill_size_of, Args, Prepared, Table};
use gplu_sparse::gen::suite::{um_suite, DEFAULT_SCALE};
use gplu_symbolic::{symbolic_ooc, symbolic_um, UmMode};

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_SCALE);
    println!("Table 3: GPU page-fault groups and fault-service time shares (scale 1/{scale})\n");

    let mut t = Table::new([
        "matrix",
        "# faults wo p",
        "faults wp",
        "pc. wo p(%)",
        "pc. wp(%)",
        "pc. ooc(%)",
    ]);
    for entry in um_suite() {
        if !args.selected(entry.abbr) {
            continue;
        }
        let prep = Prepared::new(entry.clone(), scale);
        let (pre, fill) = fill_size_of(&prep);

        let gpu = prep.gpu_symbolic(fill);
        let wo = symbolic_um(&gpu, &pre, UmMode::NoPrefetch).expect("um wo ok");

        let gpu = prep.gpu_symbolic(fill);
        let wp = symbolic_um(&gpu, &pre, UmMode::Prefetch).expect("um wp ok");

        let gpu = prep.gpu_symbolic(fill);
        let ooc = symbolic_ooc(&gpu, &pre).expect("ooc ok");

        t.row([
            entry.abbr.to_string(),
            wo.fault_groups.to_string(),
            wp.fault_groups.to_string(),
            format!("{:.2}", wo.fault_time_fraction * 100.0),
            format!("{:.2}", wp.fault_time_fraction * 100.0),
            format!("{:.2}", ooc.stats.xfer_time_fraction() * 100.0),
        ]);
    }
    t.print();
    println!("\nPaper (full-size matrices): faults wo p 12803-24977, wp 3848-8569;");
    println!("pc. wo p 33.11-86.21%, pc. wp 19.54-65.46%, pc. ooc 0.01-0.33%.");
}
