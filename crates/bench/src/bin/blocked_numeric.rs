//! Head-to-head of the two streaming CSC numeric kernels: merge-join
//! access vs the supernode-blocked BLAS-3 engine, across the four
//! structural classes the blocking pass cares about (circuit, mesh,
//! banded, delaunay-class planar fill). Measures **both** clocks:
//!
//! * *wall-clock* of the engine call — the host performs every cursor
//!   advance either way, so this is a real measurement of the shared
//!   arithmetic plus the blocking bookkeeping,
//! * *simulated* device time — the cost model's verdict, where blocked
//!   columns run their flops at the pipelined GEMM rate and fetch source
//!   tiles once per block instead of once per column.
//!
//! Both engines are measured on the **captured-schedule replay** path
//! (a prebuilt pivot cache, so levels tail-launch device-side per the
//! paper's Algorithm 5) — the configuration the end-to-end loop actually
//! runs on every factorization after the first. On a cold host-launched
//! run the 5 µs-per-level launch overhead swamps every numeric engine
//! alike, which measures the launch discipline, not the access
//! discipline.
//!
//! Also reports the blocking plan's shape (block count, blocked-column
//! share, mean width), the BLAS-3 vs streaming byte split of the blocked
//! run, and which engine the `Auto` crossover would pick. Both engines
//! must agree bitwise on every matrix, or the run aborts.
//!
//! Writes `BENCH_blocked_numeric.json` and prints a table.
//!
//! Usage: `blocked_numeric [--reps N]` (default 5 repetitions per engine)

use gplu_bench::{geomean, Table};
use gplu_numeric::outcome::column_cost_estimate_cached;
use gplu_numeric::{
    factorize_gpu_blocked_run_cached, factorize_gpu_merge_run_cached, BlockPlan, NumericOutcome,
    PivotCache, PivotRule, DEFAULT_BLOCK_THRESHOLD,
};
use gplu_schedule::{levelize_cpu, DepGraph, Levels};
use gplu_sim::{CostModel, Gpu, GpuConfig};
use gplu_sparse::gen::{circuit, mesh, planar, random};
use gplu_sparse::{Csc, Csr};
use gplu_symbolic::symbolic_cpu;
use gplu_trace::NOOP;
use std::fmt::Write as _;
use std::time::Instant;

/// One engine's measurements on one matrix.
struct Measured {
    wall_ms_median: f64,
    wall_ms_min: f64,
    sim_ns: f64,
    outcome: NumericOutcome,
}

fn measure(reps: usize, run: impl Fn(&Gpu) -> NumericOutcome) -> Measured {
    let mut walls: Vec<f64> = (0..reps)
        .map(|_| {
            let gpu = Gpu::new(GpuConfig::v100());
            let start = Instant::now();
            let _ = run(&gpu);
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let outcome = run(&Gpu::new(GpuConfig::v100()));
    Measured {
        wall_ms_median: walls[walls.len() / 2],
        wall_ms_min: walls[0],
        sim_ns: outcome.time.as_ns(),
        outcome,
    }
}

fn reps_from_args() -> usize {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--reps" {
            return it.next().and_then(|v| v.parse().ok()).unwrap_or(5);
        }
    }
    5
}

/// Preprocess + symbolic + levelize: the shared front half of the
/// pipeline, identical for both engines.
fn prepare(a: &Csr) -> (Csc, Levels) {
    let pre = gplu_core::preprocess(
        a,
        &gplu_core::PreprocessOptions::default(),
        &CostModel::default(),
    )
    .expect("suite analogs preprocess cleanly");
    let sym = symbolic_cpu(&pre.matrix, &CostModel::default());
    let pattern = gplu_sparse::convert::csr_to_csc(&sym.result.filled);
    let levels = levelize_cpu(&DepGraph::build(&sym.result.filled), &CostModel::default()).levels;
    (pattern, levels)
}

/// The blocked run's memory traffic, split into BLAS-3 tile fetches
/// (supernode-member columns, amortized by block width) and plain
/// streaming bytes (singletons) — computed from the same per-column item
/// estimate the engines themselves price with.
fn byte_split(pattern: &Csc, cache: &PivotCache, plan: &BlockPlan, cost: &CostModel) -> (u64, u64) {
    let (mut blas3, mut streaming) = (0u64, 0u64);
    for j in 0..pattern.n_cols() {
        let items = column_cost_estimate_cached(pattern, cache, j).1;
        let width = plan.width_of(j) as u64;
        if width >= 2 {
            blas3 += cost.tiled_mem_bytes(items, width);
        } else {
            streaming += items * 8;
        }
    }
    (blas3, streaming)
}

fn main() {
    let reps = reps_from_args();
    println!("blocked numeric head-to-head: merge-join vs supernode-blocked CSC ({reps} reps)\n");

    // The three sparse-fill classes at n=2000; the dense-fill delaunay
    // class at n=8000, where the filled update streams (not launches)
    // dominate the replayed numeric phase.
    let suite: Vec<(&str, &str, Csr)> = vec![
        (
            "circuit",
            "circuit",
            circuit::circuit(&circuit::CircuitParams {
                n: 2000,
                nnz_per_row: 6.0,
                seed: 11,
                ..Default::default()
            }),
        ),
        (
            "mesh",
            "mesh",
            mesh::mesh(&mesh::MeshParams::for_target(2000, 5.0, 12)),
        ),
        ("banded", "banded", random::banded_dominant(2000, 8, 13)),
        (
            "delaunay",
            "planar",
            planar::planar(&planar::PlanarParams::for_target(8000, 6.0, 14)),
        ),
    ];

    let mut t = Table::new([
        "matrix",
        "n",
        "fill nnz",
        "blocks",
        "blk cols",
        "mean w",
        "auto",
        "mg wall",
        "bk wall",
        "mg sim",
        "bk sim",
        "sim spdup",
    ]);
    let mut rows = String::new();
    let mut sim_speedups = Vec::new();
    let cost = CostModel::default();

    for (name, class, a) in &suite {
        let (pattern, levels) = prepare(a);
        let cache = PivotCache::build(&pattern);
        let plan = BlockPlan::detect(&pattern, &cache, DEFAULT_BLOCK_THRESHOLD);
        let fill = pattern.nnz();
        let fill_density = fill as f64 / pattern.n_cols().max(1) as f64;
        let auto_blocked = cost.blocked_crossover(fill_density, plan.mean_width());
        let (blas3_bytes, streaming_bytes) = byte_split(&pattern, &cache, &plan, &cost);

        let mg = measure(reps, |gpu| {
            factorize_gpu_merge_run_cached(
                gpu,
                &pattern,
                &levels,
                &NOOP,
                None,
                None,
                Some(&cache),
                PivotRule::Exact,
            )
            .expect("merge ok")
        });
        let bk = measure(reps, |gpu| {
            factorize_gpu_blocked_run_cached(
                gpu,
                &pattern,
                &levels,
                &plan,
                &NOOP,
                None,
                None,
                Some(&cache),
                PivotRule::Exact,
            )
            .expect("blocked ok")
        });
        assert_eq!(
            mg.outcome.lu.vals, bk.outcome.lu.vals,
            "{name}: engines disagree"
        );
        assert_eq!(bk.outcome.probes, 0);

        let sim_speedup = mg.sim_ns / bk.sim_ns;
        sim_speedups.push(sim_speedup);

        t.row([
            name.to_string(),
            pattern.n_cols().to_string(),
            fill.to_string(),
            plan.n_blocks().to_string(),
            plan.blocked_cols().to_string(),
            format!("{:.2}", plan.mean_width()),
            if auto_blocked { "blocked" } else { "merge" }.to_string(),
            format!("{:.2} ms", mg.wall_ms_median),
            format!("{:.2} ms", bk.wall_ms_median),
            format!("{:.2} ms", mg.sim_ns / 1e6),
            format!("{:.2} ms", bk.sim_ns / 1e6),
            format!("{sim_speedup:.2}x"),
        ]);

        if !rows.is_empty() {
            rows.push(',');
        }
        write!(
            rows,
            "\n    {{\"name\": \"{name}\", \"class\": \"{class}\", \"n\": {}, \"fill_nnz\": {fill}, \
             \"fill_density\": {fill_density:.4}, \
             \"plan\": {{\"blocks\": {}, \"blocked_cols\": {}, \"mean_width\": {:.4}, \
             \"blas3_bytes\": {blas3_bytes}, \"streaming_bytes\": {streaming_bytes}}}, \
             \"auto_picks\": \"{}\", \
             \"merge\": {{\"wall_ms_median\": {:.4}, \"wall_ms_min\": {:.4}, \
             \"sim_time_ns\": {:.1}, \"merge_steps\": {}}}, \
             \"blocked\": {{\"wall_ms_median\": {:.4}, \"wall_ms_min\": {:.4}, \
             \"sim_time_ns\": {:.1}, \"merge_steps\": {}, \"gemm_tiles\": {}}}, \
             \"sim_speedup\": {sim_speedup:.4}}}",
            pattern.n_cols(),
            plan.n_blocks(),
            plan.blocked_cols(),
            plan.mean_width(),
            if auto_blocked { "blocked" } else { "merge" },
            mg.wall_ms_median,
            mg.wall_ms_min,
            mg.sim_ns,
            mg.outcome.merge_steps,
            bk.wall_ms_median,
            bk.wall_ms_min,
            bk.sim_ns,
            bk.outcome.merge_steps,
            bk.outcome.gemm_tiles,
        )
        .expect("string write");
    }

    t.print();
    println!(
        "\nblocked speedup over merge-join: simulated geomean {:.2}x",
        geomean(&sim_speedups)
    );

    let json = format!(
        "{{\n  \"bench\": \"blocked_numeric\",\n  \"reps\": {reps},\n  \
         \"block_threshold\": {DEFAULT_BLOCK_THRESHOLD},\n  \
         \"matrices\": [{rows}\n  ],\n  \"geomean_sim_speedup\": {:.4}\n}}\n",
        geomean(&sim_speedups)
    );
    std::fs::write("BENCH_blocked_numeric.json", &json).expect("write BENCH_blocked_numeric.json");
    println!("wrote BENCH_blocked_numeric.json");
}
