//! **Ablation: fill-reducing ordering.** The pre-processing box of the
//! paper's Figure 2 ("row and column permutations ... to reduce
//! fill-ins") — how much the ordering choice moves fill, the level
//! schedule and every downstream phase.
//!
//! Usage: `ablation_ordering [--scale N] [--only ABBR,..]`

use gplu_bench::{Args, Prepared, Table};
use gplu_core::{LuFactorization, LuOptions};
use gplu_sparse::gen::suite::{paper_suite, DEFAULT_SCALE};
use gplu_sparse::ordering::OrderingKind;

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_SCALE);
    println!("Ablation: ordering choice across the pipeline (scale 1/{scale})\n");

    let mut t = Table::new([
        "matrix",
        "ordering",
        "fill nnz",
        "fill ratio",
        "levels",
        "sym",
        "num",
        "total",
    ]);
    for abbr in ["OT2", "BB", "WI"] {
        if !args.selected(abbr) {
            continue;
        }
        let entry = paper_suite()
            .into_iter()
            .find(|e| e.abbr == abbr)
            .expect("known abbr");
        let prep = Prepared::new(entry.clone(), scale);
        let (_, fill) = gplu_bench::fill_size_of(&prep);
        for (name, kind) in [
            ("natural", OrderingKind::Natural),
            ("rcm", OrderingKind::Rcm),
            ("amd", OrderingKind::MinDegree),
        ] {
            let gpu = prep.gpu_symbolic(fill * 8); // headroom: natural order fills far more
            let opts = LuOptions::default().with_ordering(kind);
            match LuFactorization::compute(&gpu, &prep.matrix, &opts) {
                Ok(f) => {
                    t.row([
                        entry.abbr.to_string(),
                        name.to_string(),
                        f.report.fill_nnz.to_string(),
                        format!(
                            "{:.1}x",
                            f.report.fill_nnz as f64 / prep.matrix.nnz() as f64
                        ),
                        f.report.n_levels.to_string(),
                        format!("{}", f.report.symbolic),
                        format!("{}", f.report.numeric),
                        format!("{}", f.report.total()),
                    ]);
                }
                Err(e) => {
                    t.row([
                        entry.abbr.to_string(),
                        name.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("{e}"),
                    ]);
                }
            }
        }
    }
    t.print();
    println!("\nAMD keeps fill (and thus symbolic reach and numeric flops) lowest on the");
    println!("circuit-style matrices; RCM is competitive on meshes; natural order shows");
    println!("why the paper's pipeline runs a fill-reducing permutation first.");
}
