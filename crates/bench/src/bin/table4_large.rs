//! **Table 4**: the four huge matrices of the numeric-format experiment —
//! paper sizes, their analogs, and the maximal number of parallel thread
//! blocks `M = L/(n·sizeof)` of the dense-format (original) numeric
//! implementation, which falls below `TB_max = 160`.
//!
//! These matrices are rank-deficient; as in the paper, zero diagonals are
//! replaced with 1000 during pre-processing.
//!
//! Usage: `table4_large [--scale N]` (default scale 1/1024)

use gplu_bench::{fill_size_of, Args, Prepared, Table};
use gplu_sim::GpuConfig;
use gplu_sparse::gen::suite::{large_suite, DEFAULT_LARGE_SCALE};

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_LARGE_SCALE);
    println!("Table 4: huge matrices and the dense-format block limit (scale 1/{scale})\n");

    let mut t = Table::new([
        "matrix",
        "paper order",
        "paper nnz",
        "paper max #blocks",
        "analog n",
        "analog nnz",
        "repaired diagonals",
        "analog max #blocks",
    ]);
    for entry in large_suite() {
        if !args.selected(entry.abbr) {
            continue;
        }
        let prep = Prepared::new(entry.clone(), scale);
        let (pre, fill) = fill_size_of(&prep);
        let n = pre.n_rows();

        // Paper M from the 8 GB numeric budget.
        let m_paper = (GpuConfig::NUMERIC_BUDGET_BYTES / (entry.paper_n as u64 * 4)) as usize;

        // Analog M from the scaled numeric profile (free memory after the
        // resident CSC factor).
        let gpu = prep.gpu_numeric(fill);
        let csc_bytes = ((n + 1) as u64 + 2 * fill as u64) * 4;
        let free = gpu.mem.capacity() - csc_bytes - n as u64 * 4;
        let m_analog = (free / (n as u64 * 4)) as usize;

        let repaired = (0..prep.matrix.n_rows())
            .filter(|&i| prep.matrix.get(i, i).is_none())
            .count();

        t.row([
            entry.name.to_string(),
            entry.paper_n.to_string(),
            entry.paper_nnz.to_string(),
            m_paper.to_string(),
            n.to_string(),
            prep.matrix.nnz().to_string(),
            repaired.to_string(),
            m_analog.to_string(),
        ]);
        assert!(
            m_analog < gpu.config().tb_max,
            "{}: dense format must be block-starved",
            entry.abbr
        );
    }
    t.print();
    println!("\nPaper max #blocks: 124 / 119 / 109 / 102 — all below TB_max = 160, so the");
    println!("original (dense-format) numeric implementation cannot fill the device.");
}
