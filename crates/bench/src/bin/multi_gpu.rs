//! Multi-GPU fleet scaling bench: strong and weak scaling of the full
//! end-to-end pipeline across 1/2/4/8 simulated devices.
//!
//! **Strong scaling** runs one fixed block-diagonal matrix (many
//! independent banded chains, so the level schedule is wide enough that
//! a single device is wave-limited) at every fleet size and reports the
//! simulated makespan, speedup over one device, and parallel
//! efficiency. **Weak scaling** grows the matrix with the fleet — a
//! fixed number of chains per device — so ideal scaling holds the
//! makespan flat. Both use [`gplu_sim::CostModel::scaled_latencies`] so
//! the divisible per-level compute dominates fixed launch/interconnect
//! latencies, as it does at production matrix sizes.
//!
//! Every fleet run is checked **bit-identical** to the single-device
//! factorization (same `LU` value bits), and the strong-scaling run
//! asserts at least 1.8x speedup on 4 devices — the CI `multi_gpu` job
//! gates on both. Writes `BENCH_multi_gpu.json`.
//!
//! Usage: `multi_gpu [--chains N] [--chain-n N] [--band N]`
//! (defaults: 2048 chains of n=10, band 6; weak scaling uses
//! `chains / 8` chains per device)

use gplu_bench::Table;
use gplu_core::{LuFactorization, LuOptions};
use gplu_sim::{CostModel, DeviceFleet, GpuConfig};
use gplu_sparse::gen::random::banded_dominant;
use gplu_sparse::{Coo, Csr};
use std::fmt::Write as _;

const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn args() -> (usize, usize, usize) {
    let (mut chains, mut chain_n, mut band) = (2048usize, 10usize, 6usize);
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let val = |it: &mut dyn Iterator<Item = String>, d: usize| {
            it.next().and_then(|v| v.parse().ok()).unwrap_or(d).max(1)
        };
        match a.as_str() {
            "--chains" => chains = val(&mut it, 2048),
            "--chain-n" => chain_n = val(&mut it, 10),
            "--band" => band = val(&mut it, 6),
            _ => {}
        }
    }
    (chains.max(8), chain_n, band)
}

/// Block-diagonal matrix of `blocks` independent banded chains: every
/// chain contributes one column to each level, so the schedule is
/// `blocks` wide — the shape that exposes fleet parallelism.
fn block_banded(blocks: usize, m: usize, band: usize, seed: u64) -> Csr {
    let n = blocks * m;
    let mut coo = Coo::new(n, n);
    for b in 0..blocks {
        let base = b * m;
        let block = banded_dominant(m, band, seed.wrapping_add(b as u64));
        for i in 0..m {
            for (j, v) in block.row_iter(i) {
                coo.push(base + i, base + j, v);
            }
        }
    }
    gplu_sparse::gen::assemble_dominant(coo, 1.0)
}

struct Run {
    devices: usize,
    n: usize,
    makespan_ns: f64,
    numeric_ns: f64,
    exchange_legs: u64,
    exchange_bytes: u64,
}

/// Factorizes `a` on a `k`-device fleet and checks the value bits
/// against the single-device reference factor.
fn run_fleet(a: &Csr, k: usize, cost: &CostModel, reference: Option<&LuFactorization>) -> Run {
    let fleet = DeviceFleet::with_cost(k, GpuConfig::v100(), cost.clone());
    let f = LuFactorization::compute_fleet(&fleet, a, &LuOptions::default()).expect("fleet run");
    if let Some(base) = reference {
        assert_eq!(
            base.lu.vals.len(),
            f.lu.vals.len(),
            "{k}-device fill pattern diverged"
        );
        let identical = base
            .lu
            .vals
            .iter()
            .zip(&f.lu.vals)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(identical, "{k}-device LU values are not bit-identical");
    }
    let ic = fleet.stats().interconnect;
    Run {
        devices: k,
        n: a.n_rows(),
        makespan_ns: f.report.total().as_ns(),
        numeric_ns: f.report.numeric.as_ns(),
        exchange_legs: ic.exchanges,
        exchange_bytes: ic.bytes,
    }
}

fn main() {
    let (chains, chain_n, band) = args();
    let cost = CostModel::default().scaled_latencies(10);
    let opts = LuOptions::default();

    // Strong scaling: one matrix, growing fleet.
    let a = block_banded(chains, chain_n, band, 71);
    println!(
        "multi-GPU fleet scaling: {} chains of n={chain_n} (n = {}, nnz = {})\n",
        chains,
        a.n_rows(),
        a.nnz()
    );
    let single_gpu = gplu_sim::Gpu::with_cost(GpuConfig::v100(), cost.clone());
    let reference = LuFactorization::compute(&single_gpu, &a, &opts).expect("reference");

    let mut t = Table::new(["devices", "makespan", "speedup", "efficiency", "exchange"]);
    let strong: Vec<Run> = DEVICE_COUNTS
        .iter()
        .map(|&k| run_fleet(&a, k, &cost, Some(&reference)))
        .collect();
    let base_ns = strong[0].makespan_ns;
    for r in &strong {
        let speedup = base_ns / r.makespan_ns;
        t.row([
            r.devices.to_string(),
            format!("{:.1} us", r.makespan_ns / 1e3),
            format!("{speedup:.2}x"),
            format!("{:.0}%", 100.0 * speedup / r.devices as f64),
            format!("{} legs / {} B", r.exchange_legs, r.exchange_bytes),
        ]);
    }
    t.print();

    let speedup_at = |runs: &[Run], k: usize| {
        let r = runs.iter().find(|r| r.devices == k).expect("device count");
        runs[0].makespan_ns / r.makespan_ns
    };
    let strong_4 = speedup_at(&strong, 4);
    assert!(
        strong_4 >= 1.8,
        "strong scaling at 4 devices is {strong_4:.2}x, below the 1.8x floor"
    );

    // Weak scaling: chains per device held fixed, matrix grows with the
    // fleet; ideal scaling holds the makespan flat (efficiency 1.0).
    let per_device = (chains / 8).max(1);
    println!("\nweak scaling: {per_device} chains per device");
    let mut t = Table::new(["devices", "n", "makespan", "efficiency", "numeric eff."]);
    let weak: Vec<Run> = DEVICE_COUNTS
        .iter()
        .map(|&k| {
            let a = block_banded(per_device * k, chain_n, band, 72);
            run_fleet(&a, k, &cost, None)
        })
        .collect();
    let weak_base = weak[0].makespan_ns;
    let weak_numeric_base = weak[0].numeric_ns;
    for r in &weak {
        t.row([
            r.devices.to_string(),
            r.n.to_string(),
            format!("{:.1} us", r.makespan_ns / 1e3),
            format!("{:.0}%", 100.0 * weak_base / r.makespan_ns),
            format!("{:.0}%", 100.0 * weak_numeric_base / r.numeric_ns),
        ]);
    }
    t.print();
    println!(
        "\nweak efficiency declines by design: the factor is fully replicated at\n\
         every level barrier, so each device pays an O(n) apply/exchange term for\n\
         the whole level, not just its shard — the replication that buys the\n\
         strong-scaling win above and bit-identical results.\n\
         all fleet runs bit-identical to the single-device factorization"
    );

    let run_json = |runs: &[Run], base: f64| {
        let mut s = String::from("[\n");
        for (i, r) in runs.iter().enumerate() {
            let _ = writeln!(
                s,
                "      {{ \"devices\": {}, \"n\": {}, \"makespan_ns\": {:.0}, \
                 \"numeric_ns\": {:.0}, \"speedup\": {:.3}, \"exchange_legs\": {}, \
                 \"exchange_bytes\": {} }}{}",
                r.devices,
                r.n,
                r.makespan_ns,
                r.numeric_ns,
                base / r.makespan_ns,
                r.exchange_legs,
                r.exchange_bytes,
                if i + 1 < runs.len() { "," } else { "" }
            );
        }
        s.push_str("    ]");
        s
    };
    let mut json = String::from("{\n  \"bench\": \"multi_gpu\",\n");
    let _ = write!(
        json,
        "  \"chains\": {chains},\n  \"chain_n\": {chain_n},\n  \"band\": {band},\n  \
         \"bit_identical\": true,\n  \"strong\": {{\n    \"n\": {},\n    \"nnz\": {},\n    \
         \"speedup_at_4\": {strong_4:.3},\n    \"speedup_at_8\": {:.3},\n    \"runs\": {}\n  }},\n  \
         \"weak\": {{\n    \"chains_per_device\": {per_device},\n    \
         \"efficiency_at_4\": {:.3},\n    \"numeric_efficiency_at_4\": {:.3},\n    \
         \"runs\": {}\n  }}\n}}\n",
        a.n_rows(),
        a.nnz(),
        speedup_at(&strong, 8),
        run_json(&strong, base_ns),
        weak_base / weak.iter().find(|r| r.devices == 4).unwrap().makespan_ns,
        weak_numeric_base / weak.iter().find(|r| r.devices == 4).unwrap().numeric_ns,
        run_json(&weak, weak_base),
    );
    std::fs::write("BENCH_multi_gpu.json", &json).expect("write BENCH_multi_gpu.json");
    println!("wrote BENCH_multi_gpu.json");
}
