//! **Table 2**: the 18 input matrices whose symbolic-factorization memory
//! requirements exceed the GPU's device memory — paper sizes side by side
//! with the generated analogs at the chosen scale.
//!
//! Usage: `table2_matrices [--scale N]`

use gplu_bench::{Args, Prepared, Table};
use gplu_sparse::gen::suite::{paper_suite, DEFAULT_SCALE};

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_SCALE);
    println!("Table 2: input matrices (analogs at scale 1/{scale})\n");

    let mut t = Table::new([
        "matrix",
        "abbr",
        "paper n",
        "paper nnz",
        "paper nnz/n",
        "analog n",
        "analog nnz",
        "analog nnz/n",
        "intermediates",
        "device mem",
    ]);
    for entry in paper_suite() {
        if !args.selected(entry.abbr) {
            continue;
        }
        let prep = Prepared::new(entry.clone(), scale);
        let n = prep.matrix.n_rows() as u64;
        // The paper's point: traversal state for all rows (c·4·n per row)
        // exceeds device memory.
        let intermediates = 24 * n * n;
        let gpu = prep.gpu_symbolic(prep.matrix.nnz() * 4);
        t.row([
            entry.name.to_string(),
            entry.abbr.to_string(),
            entry.paper_n.to_string(),
            entry.paper_nnz.to_string(),
            format!("{:.1}", entry.paper_density()),
            prep.matrix.n_rows().to_string(),
            prep.matrix.nnz().to_string(),
            format!("{:.1}", prep.matrix.density()),
            format!("{:.1} MiB", intermediates as f64 / (1 << 20) as f64),
            format!("{:.1} MiB", gpu.mem.capacity() as f64 / (1 << 20) as f64),
        ]);
        assert!(
            intermediates > gpu.mem.capacity(),
            "{}: symbolic intermediates must exceed device memory",
            entry.abbr
        );
    }
    t.print();
    println!("\nEvery row satisfies the Table 2 selection criterion: the symbolic");
    println!("intermediate state (c=6 words x n per source row, all rows) exceeds");
    println!("the device memory of the scaled profile.");
}
