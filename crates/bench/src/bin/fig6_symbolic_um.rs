//! **Figure 6**: symbolic-phase times only — out-of-core GPU vs unified
//! memory with and without prefetching, on the 7 Figure 5 matrices.
//!
//! Paper shape: the no-prefetch UM version is strictly worse than the
//! prefetched one, and both lose to out-of-core — by more for sparser
//! matrices (R15, OT2), where there is little computation to amortise the
//! page-fault service time.
//!
//! Usage: `fig6_symbolic_um [--scale N]`

use gplu_bench::{fill_size_of, Args, Prepared, Table};
use gplu_sparse::gen::suite::{um_suite, DEFAULT_SCALE};
use gplu_symbolic::{symbolic_ooc, symbolic_um, UmMode};

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_SCALE);
    println!("Figure 6: symbolic phase, out-of-core vs UM w/ and w/o prefetch (scale 1/{scale})\n");

    let mut t = Table::new([
        "matrix",
        "abbr",
        "nnz/n",
        "ooc",
        "um w/ p",
        "um w/o p",
        "w/p norm",
        "w/o p norm",
    ]);
    for entry in um_suite() {
        if !args.selected(entry.abbr) {
            continue;
        }
        let prep = Prepared::new(entry.clone(), scale);
        let (pre, fill) = fill_size_of(&prep);

        let gpu = prep.gpu_symbolic(fill);
        let ooc = symbolic_ooc(&gpu, &pre).expect("ooc ok");

        let gpu = prep.gpu_symbolic(fill);
        let wp = symbolic_um(&gpu, &pre, UmMode::Prefetch).expect("um wp ok");

        let gpu = prep.gpu_symbolic(fill);
        let wo = symbolic_um(&gpu, &pre, UmMode::NoPrefetch).expect("um wo ok");

        assert_eq!(ooc.result.filled, wp.result.filled);
        assert_eq!(ooc.result.filled, wo.result.filled);

        t.row([
            entry.name.to_string(),
            entry.abbr.to_string(),
            format!("{:.1}", prep.matrix.density()),
            format!("{}", ooc.time),
            format!("{}", wp.time),
            format!("{}", wo.time),
            format!("{:.2}", wp.time.ratio(ooc.time)),
            format!("{:.2}", wo.time.ratio(ooc.time)),
        ]);
    }
    t.print();
    println!("\n(norm columns: UM symbolic time / out-of-core symbolic time; paper");
    println!("shows both above 1, without-prefetch worst, gap largest for R15/OT2)");
}
