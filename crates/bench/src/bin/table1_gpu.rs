//! **Table 1**: specifications of the (simulated) Nvidia Tesla V100, plus
//! the cost-model constants the simulator prices it with.

use gplu_bench::Table;
use gplu_sim::{CostModel, GpuConfig};

fn main() {
    let g = GpuConfig::v100();
    println!("Table 1: specifications of the simulated GPU\n");
    let mut t = Table::new(["property", "value"]);
    t.row(["GPU", g.name.as_str()]);
    t.row(["#SM".to_string(), g.sm_count.to_string()]);
    t.row(["FP32 CUDA Cores/GPU".to_string(), g.fp32_cores.to_string()]);
    t.row([
        "Max Thread Block Size".to_string(),
        g.max_threads_per_block.to_string(),
    ]);
    t.row(["Warp size".to_string(), g.warp_size.to_string()]);
    t.row([
        "Max concurrent thread blocks (TB_max)".to_string(),
        g.tb_max.to_string(),
    ]);
    t.row([
        "Device memory".to_string(),
        format!("{} GiB", g.device_memory as f64 / (1u64 << 30) as f64),
    ]);
    t.row([
        "sizeof(data type)".to_string(),
        format!("{} B (float)", g.data_bytes),
    ]);
    t.print();

    let c = CostModel::default();
    println!("\nCost model (frozen constants, see gplu_sim::cost):\n");
    let mut t = Table::new(["constant", "value"]);
    t.row([
        "host kernel launch".to_string(),
        format!("{:.1} µs", c.host_launch_ns / 1e3),
    ]);
    t.row([
        "device (dynamic parallelism) launch".to_string(),
        format!("{:.2} µs", c.device_launch_ns / 1e3),
    ]);
    t.row([
        "block step latency".to_string(),
        format!("{} ns", c.block_step_ns),
    ]);
    t.row([
        "block item cost".to_string(),
        format!("{} ns", c.block_item_ns),
    ]);
    t.row([
        "HBM bandwidth".to_string(),
        format!("{:.0} GB/s", 1.0 / c.hbm_ns_per_byte),
    ]);
    t.row([
        "PCIe bandwidth".to_string(),
        format!(
            "{:.0} GB/s (+{:.0} µs latency)",
            1.0 / c.pcie_ns_per_byte,
            c.pcie_latency_ns / 1e3
        ),
    ]);
    t.row([
        "UM page / fault-group service".to_string(),
        format!(
            "{} KiB / {:.0} µs",
            c.um_page_bytes / 1024,
            c.um_fault_group_ns / 1e3
        ),
    ]);
    t.row([
        "CPU baseline".to_string(),
        format!(
            "{} threads x {:.1} ns/item ({}% eff.)",
            c.cpu_threads,
            c.cpu_item_ns,
            (c.cpu_efficiency * 100.0) as u32
        ),
    ]);
    t.print();
}
