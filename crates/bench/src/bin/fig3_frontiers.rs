//! **Figure 3**: frontier size (y-axis) per out-of-core iteration (x-axis)
//! for the pre2 and audikw_1 analogs — the observation motivating
//! Algorithm 4's dynamic parallelism assignment: frontier counts are small
//! for early source rows and large for the last few iterations.
//!
//! Usage: `fig3_frontiers [--scale N]`

use gplu_bench::{Args, Prepared};
use gplu_core::{preprocess, PreprocessOptions};
use gplu_sim::CostModel;
use gplu_sparse::gen::suite::{frontier_pair, DEFAULT_SCALE};
use gplu_symbolic::frontier::{bucket_max, frontier_profile, split_point};

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_SCALE);
    println!("Figure 3: frontier size per out-of-core iteration (scale 1/{scale})\n");

    for entry in frontier_pair() {
        if !args.selected(entry.abbr) {
            continue;
        }
        let prep = Prepared::new(entry.clone(), scale);
        let pre = preprocess(
            &prep.matrix,
            &PreprocessOptions::default(),
            &CostModel::default(),
        )
        .expect("preprocesses");
        let profile = frontier_profile(&pre.matrix);

        // Bucket into the out-of-core iterations the naive Algorithm 3
        // would use on the scaled profile.
        let iterations = 24usize;
        let buckets = bucket_max(&profile, iterations);
        let peak = buckets.iter().copied().max().unwrap_or(1).max(1);

        println!(
            "{} ({}): n = {}, peak per-row frontier = {}",
            entry.name,
            entry.abbr,
            pre.matrix.n_rows(),
            peak
        );
        for (i, &b) in buckets.iter().enumerate() {
            let bar = "#".repeat((b * 48 / peak) as usize);
            println!("  iter {i:>3}  {b:>8}  {bar}");
        }
        let n1 = split_point(&profile, 0.5);
        println!(
            "  Algorithm 4 split (first row above 50% of max): n1 = {} ({}% of rows)\n",
            n1,
            n1 * 100 / profile.len().max(1)
        );
    }
    println!("Paper's observation: the number of frontiers is large for the last few");
    println!("iterations and small otherwise; the split point feeds Algorithm 4.");
}
