//! **Figure 8**: normalized numeric-factorization times — the binary-search
//! sorted-CSC implementation (Algorithm 6) vs the original dense-format
//! implementation, on the four Table 4 analogs.
//!
//! Paper band: the binary-search implementation is 2.88–3.33× faster,
//! because the dense format caps parallel columns at `M ≈ 102–124 < 160`
//! while CSC runs all `TB_max` blocks (the paper fixes the binary-search
//! version at 160 blocks).
//!
//! Usage: `fig8_binary_search [--scale N]` (default scale 1/1024)

use gplu_bench::{fill_size_of, geomean, Args, Prepared, Table};
use gplu_numeric::{factorize_gpu_dense, factorize_gpu_sparse};
use gplu_schedule::{levelize_cpu, DepGraph};
use gplu_sim::CostModel;
use gplu_sparse::convert::csr_to_csc;
use gplu_sparse::gen::suite::{large_suite, DEFAULT_LARGE_SCALE};
use gplu_symbolic::symbolic_cpu;

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_LARGE_SCALE);
    println!("Figure 8: binary-search CSC vs dense-format numeric (scale 1/{scale})\n");

    let mut t = Table::new([
        "matrix", "abbr", "n", "fill nnz", "M(dense)", "batches", "dense", "sparse", "norm",
        "speedup",
    ]);
    let mut speedups = Vec::new();
    for entry in large_suite() {
        if !args.selected(entry.abbr) {
            continue;
        }
        let prep = Prepared::new(entry.clone(), scale);
        let (pre, fill) = fill_size_of(&prep);

        // Shared symbolic + schedule (not measured here).
        let sym = symbolic_cpu(&pre, &CostModel::default());
        let pattern = csr_to_csc(&sym.result.filled);
        let dep = DepGraph::build(&sym.result.filled);
        let levels = levelize_cpu(&dep, &CostModel::default()).levels;

        let gpu = prep.gpu_numeric(fill);
        let dense = factorize_gpu_dense(&gpu, &pattern, &levels).expect("dense ok");

        let gpu = prep.gpu_numeric(fill);
        let sparse = factorize_gpu_sparse(&gpu, &pattern, &levels).expect("sparse ok");
        assert_eq!(
            dense.lu.vals, sparse.lu.vals,
            "{}: formats disagree",
            entry.abbr
        );

        let s = dense.time.ratio(sparse.time);
        speedups.push(s);
        t.row([
            entry.name.to_string(),
            entry.abbr.to_string(),
            pre.n_rows().to_string(),
            fill.to_string(),
            dense.m_limit.map(|m| m.to_string()).unwrap_or_default(),
            dense.batches.to_string(),
            format!("{}", dense.time),
            format!("{}", sparse.time),
            format!("{:.3}", sparse.time.ratio(dense.time)),
            format!("{s:.2}x"),
        ]);
    }
    t.print();
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(0.0f64, f64::max);
    println!(
        "\nbinary-search speedup over dense format: {min:.2}-{max:.2}x (geomean {:.2}x);",
        geomean(&speedups)
    );
    println!("paper reports 2.88-3.33x.");
}
