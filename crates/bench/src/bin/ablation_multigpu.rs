//! **Extension: multi-GPU symbolic scaling.** The paper's related work
//! (GSOFA) distributes symbolic factorization across up to 264 GPUs; this
//! experiment scales our out-of-core engine across 1–8 simulated devices
//! and compares the blocked vs strided row partitions under the Figure 3
//! work skew.
//!
//! Usage: `ablation_multigpu [--scale N]`

use gplu_bench::{fill_size_of, Args, Prepared, Table};
use gplu_sim::Gpu;
use gplu_sparse::gen::suite::{frontier_pair, DEFAULT_SCALE};
use gplu_symbolic::{symbolic_multi_gpu, Partition};

fn main() {
    let args = Args::parse();
    let scale = args.scale_or(DEFAULT_SCALE);
    println!("Extension: multi-GPU out-of-core symbolic factorization (scale 1/{scale})\n");

    for entry in frontier_pair() {
        if !args.selected(entry.abbr) {
            continue;
        }
        let prep = Prepared::new(entry.clone(), scale);
        let (pre, fill) = fill_size_of(&prep);
        println!("{} ({}), n = {}:", entry.name, entry.abbr, pre.n_rows());
        let mut t = Table::new(["devices", "partition", "makespan", "speedup", "efficiency"]);
        let mut base = None;
        for k in [1usize, 2, 4, 8] {
            for partition in [Partition::Blocked, Partition::Strided] {
                if k == 1 && partition == Partition::Strided {
                    continue; // identical to blocked at k = 1
                }
                let fleet: Vec<Gpu> = (0..k)
                    .map(|_| {
                        let (p, f) = (&prep, fill);
                        p.gpu_symbolic(f)
                    })
                    .collect();
                let out = symbolic_multi_gpu(&fleet, &pre, partition).expect("multi-gpu ok");
                let base_ns = *base.get_or_insert(out.time.as_ns());
                t.row([
                    k.to_string(),
                    format!("{partition:?}"),
                    format!("{}", out.time),
                    format!("{:.2}x", base_ns / out.time.as_ns()),
                    format!("{:.0}%", out.efficiency * 100.0),
                ]);
            }
        }
        t.print();
        println!();
    }
    println!("Strided partitioning rides the Figure 3 skew (late rows are heavy), so it");
    println!("scales near-linearly where blocked ranges leave early devices idle.");
}
