//! Cost and payoff of the robustness ladder: what threshold pivoting and
//! the residual gate charge on polite (diagonally dominant) traffic, and
//! what they buy on the adversarial hard corpus.
//!
//! Two experiments:
//!
//! * **overhead** — the dominant families under `NoPivot` vs
//!   `Threshold{tau=0.1}`: the discovery pre-pass finds nothing to swap,
//!   so its cost (plus the gate's probe solves) is pure overhead and must
//!   stay small (the acceptance bar is < 10% wall regression);
//! * **payoff** — every [`HardKind`] family under each policy, classified
//!   into the three-state contract (gate pass / recovered / typed
//!   rejection). No-pivot LU should be rejected by the gate on much of
//!   this corpus; threshold pivoting should convert those rejections into
//!   verified factorizations.
//!
//! Writes `BENCH_pivoting.json` and prints two tables.
//!
//! Usage: `pivoting [--reps N]` (default 5 repetitions per configuration)

use gplu_bench::Table;
use gplu_core::{GpluError, LuFactorization, LuOptions};
use gplu_numeric::{PivotPolicy, DEFAULT_PIVOT_TAU};
use gplu_sim::{Gpu, GpuConfig};
use gplu_sparse::gen::hard::HardKind;
use gplu_sparse::gen::{circuit, mesh, random};
use gplu_sparse::Csr;
use std::fmt::Write as _;
use std::time::Instant;

const THRESHOLD: PivotPolicy = PivotPolicy::Threshold {
    tau: DEFAULT_PIVOT_TAU,
};

fn reps_from_args() -> usize {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--reps" {
            return it.next().and_then(|v| v.parse().ok()).unwrap_or(5);
        }
    }
    5
}

fn gpu_for(a: &Csr) -> Gpu {
    Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
}

struct Measured {
    wall_ms_median: f64,
    sim_ns: f64,
    swaps: u64,
    result: Result<LuFactorization, GpluError>,
}

fn measure(a: &Csr, opts: &LuOptions, reps: usize) -> Measured {
    let mut walls: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            let _ = LuFactorization::compute(&gpu_for(a), a, opts);
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    walls.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
    let result = LuFactorization::compute(&gpu_for(a), a, opts);
    let (sim_ns, swaps) = match &result {
        Ok(f) => (f.report.total().as_ns(), f.report.pivot_swaps as u64),
        Err(_) => (0.0, 0),
    };
    Measured {
        wall_ms_median: walls[walls.len() / 2],
        sim_ns,
        swaps,
        result,
    }
}

/// Three-state classification of a pipeline outcome on hard traffic.
fn state(m: &Measured) -> &'static str {
    match &m.result {
        Ok(f) if f.report.recovery.is_empty() => "gate-pass",
        Ok(_) => "recovered",
        Err(_) => "rejected",
    }
}

fn main() {
    let reps = reps_from_args();
    println!("pivoting cost/payoff: NoPivot vs Threshold(tau={DEFAULT_PIVOT_TAU}) ({reps} reps)\n");

    // ---- Overhead on polite traffic ------------------------------------
    let dominant: Vec<(&str, Csr)> = vec![
        (
            "circuit",
            circuit::circuit(&circuit::CircuitParams {
                n: 1500,
                nnz_per_row: 6.0,
                seed: 21,
                ..Default::default()
            }),
        ),
        (
            "mesh",
            mesh::mesh(&mesh::MeshParams::for_target(1500, 5.0, 22)),
        ),
        ("banded", random::banded_dominant(1500, 8, 23)),
        ("random", random::random_dominant(1500, 5.0, 24)),
    ];

    let mut t = Table::new([
        "matrix", "n", "np wall", "th wall", "overhead", "np sim", "th sim", "swaps",
    ]);
    let mut overhead_rows = String::new();
    let mut worst_overhead: f64 = 0.0;
    for (name, a) in &dominant {
        let np = measure(a, &LuOptions::default(), reps);
        let th = measure(a, &LuOptions::default().with_pivot(THRESHOLD), reps);
        assert!(
            np.result.is_ok() && th.result.is_ok(),
            "{name}: dominant corpus must pass"
        );
        let overhead = th.wall_ms_median / np.wall_ms_median - 1.0;
        worst_overhead = worst_overhead.max(overhead);
        t.row([
            name.to_string(),
            a.n_rows().to_string(),
            format!("{:.2} ms", np.wall_ms_median),
            format!("{:.2} ms", th.wall_ms_median),
            format!("{:+.1}%", overhead * 100.0),
            format!("{:.2} ms", np.sim_ns / 1e6),
            format!("{:.2} ms", th.sim_ns / 1e6),
            th.swaps.to_string(),
        ]);
        if !overhead_rows.is_empty() {
            overhead_rows.push(',');
        }
        write!(
            overhead_rows,
            "\n    {{\"name\": \"{name}\", \"n\": {}, \
             \"nopivot\": {{\"wall_ms_median\": {:.4}, \"sim_time_ns\": {:.1}}}, \
             \"threshold\": {{\"wall_ms_median\": {:.4}, \"sim_time_ns\": {:.1}, \
             \"swaps\": {}}}, \"wall_overhead\": {overhead:.4}}}",
            a.n_rows(),
            np.wall_ms_median,
            np.sim_ns,
            th.wall_ms_median,
            th.sim_ns,
            th.swaps,
        )
        .expect("string write");
    }
    t.print();
    println!(
        "\nworst-case wall overhead on dominant traffic: {:+.1}%\n",
        worst_overhead * 100.0
    );

    // ---- Payoff on the hard corpus -------------------------------------
    let policies: [(&str, LuOptions); 4] = [
        ("nopivot", LuOptions::default()),
        (
            "static",
            LuOptions::default().with_pivot(PivotPolicy::Static { threshold: 1e-8 }),
        ),
        ("threshold", LuOptions::default().with_pivot(THRESHOLD)),
        ("escalate", {
            let mut o = LuOptions::default();
            o.gate.escalate = true;
            o
        }),
    ];
    let seeds = [41u64, 42, 43];
    let mut t = Table::new(["family", "policy", "pass", "recovered", "rejected", "swaps"]);
    let mut hard_rows = String::new();
    for kind in HardKind::ALL {
        for (pname, opts) in &policies {
            let (mut pass, mut rec, mut rej, mut swaps) = (0u32, 0u32, 0u32, 0u64);
            for &seed in &seeds {
                let a = kind.generate(400, seed);
                let m = measure(&a, opts, 1);
                match state(&m) {
                    "gate-pass" => pass += 1,
                    "recovered" => rec += 1,
                    _ => rej += 1,
                }
                swaps += m.swaps;
            }
            t.row([
                kind.name().to_string(),
                pname.to_string(),
                pass.to_string(),
                rec.to_string(),
                rej.to_string(),
                swaps.to_string(),
            ]);
            if !hard_rows.is_empty() {
                hard_rows.push(',');
            }
            write!(
                hard_rows,
                "\n    {{\"family\": \"{}\", \"policy\": \"{pname}\", \"instances\": {}, \
                 \"gate_pass\": {pass}, \"recovered\": {rec}, \"rejected\": {rej}, \
                 \"swaps\": {swaps}}}",
                kind.name(),
                seeds.len(),
            )
            .expect("string write");
        }
    }
    t.print();

    let json = format!(
        "{{\n  \"bench\": \"pivoting\",\n  \"reps\": {reps},\n  \
         \"tau\": {DEFAULT_PIVOT_TAU},\n  \
         \"dominant_overhead\": [{overhead_rows}\n  ],\n  \
         \"worst_wall_overhead\": {worst_overhead:.4},\n  \
         \"hard_corpus\": [{hard_rows}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_pivoting.json", &json).expect("write BENCH_pivoting.json");
    println!("\nwrote BENCH_pivoting.json");
}
