//! Minimal argument handling shared by the experiment binaries.

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Scale divisor for the matrix analogs (`--scale N`).
    pub scale: Option<usize>,
    /// Quick mode: fewer/smaller matrices (`--quick`).
    pub quick: bool,
    /// Restrict to matrices whose abbreviation is listed (`--only A,B`).
    pub only: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`, ignoring unknown flags (each binary prints
    /// its own usage note).
    pub fn parse() -> Args {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Args {
        let mut args = Args {
            scale: None,
            quick: false,
            only: Vec::new(),
        };
        let mut it = iter.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    args.scale = it.next().and_then(|v| v.parse().ok());
                }
                "--quick" => args.quick = true,
                "--only" => {
                    if let Some(list) = it.next() {
                        args.only = list.split(',').map(|s| s.trim().to_string()).collect();
                    }
                }
                _ => {}
            }
        }
        args
    }

    /// Effective scale, given the experiment's default.
    pub fn scale_or(&self, default: usize) -> usize {
        let s = self.scale.unwrap_or(default);
        if self.quick {
            s * 4
        } else {
            s
        }
    }

    /// Whether a matrix abbreviation is selected.
    pub fn selected(&self, abbr: &str) -> bool {
        self.only.is_empty() || self.only.iter().any(|o| o.eq_ignore_ascii_case(abbr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_scale_and_quick() {
        let a = parse("--scale 64 --quick");
        assert_eq!(a.scale, Some(64));
        assert!(a.quick);
        assert_eq!(a.scale_or(128), 256, "quick multiplies the scale by 4");
    }

    #[test]
    fn default_scale_used_when_absent() {
        let a = parse("");
        assert_eq!(a.scale_or(128), 128);
    }

    #[test]
    fn only_filters() {
        let a = parse("--only OT2,wi");
        assert!(a.selected("OT2"));
        assert!(a.selected("WI"));
        assert!(!a.selected("PR"));
        let all = parse("");
        assert!(all.selected("anything"));
    }
}
