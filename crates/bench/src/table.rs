//! Fixed-width table printing for the experiment binaries.

/// A simple left-padded text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["matrix", "speedup"]);
        t.row(["OT2", "1.13"]);
        t.row(["windtunnel_evap3d", "32.65"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("matrix"));
        assert!(lines[3].contains("32.65"));
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
