//! Wall-clock benches of levelization: the serial CPU recurrence vs the
//! GPU Kahn sort with dynamic parallelism (Algorithm 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gplu_bench::Prepared;
use gplu_schedule::{levelize_cpu, levelize_gpu, DepGraph};
use gplu_sim::{CostModel, Gpu, GpuConfig};
use gplu_sparse::gen::suite::paper_suite;
use gplu_symbolic::symbolic_cpu;

fn bench_levelize(c: &mut Criterion) {
    let mut group = c.benchmark_group("levelize");
    group.sample_size(10);
    for abbr in ["OT2", "MI"] {
        let entry = paper_suite()
            .into_iter()
            .find(|e| e.abbr == abbr)
            .expect("known abbr");
        let prep = Prepared::new(entry, 256);
        let (pre, _) = gplu_bench::fill_size_of(&prep);
        let sym = symbolic_cpu(&pre, &CostModel::default());
        let dep = DepGraph::build(&sym.result.filled);

        group.bench_with_input(BenchmarkId::new("cpu_serial", abbr), &dep, |b, g| {
            b.iter(|| levelize_cpu(g, &CostModel::default()))
        });
        group.bench_with_input(BenchmarkId::new("gpu_kahn", abbr), &dep, |b, g| {
            b.iter(|| levelize_gpu(&Gpu::new(GpuConfig::v100()), g).expect("ok"))
        });
        group.bench_with_input(
            BenchmarkId::new("build_graph", abbr),
            &sym.result.filled,
            |b, f| b.iter(|| DepGraph::build(f)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_levelize);
criterion_main!(benches);
