//! Wall-clock benches of the full pipelines (the Figure 4 pair): the
//! end-to-end GPU pipeline vs the modified GLU 3.0 baseline, plus the
//! solve path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gplu_baseline::factorize_glu30;
use gplu_bench::Prepared;
use gplu_core::{LuFactorization, LuOptions, PreprocessOptions};
use gplu_sparse::gen::suite::paper_suite;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for abbr in ["OT2", "GO"] {
        let entry = paper_suite()
            .into_iter()
            .find(|e| e.abbr == abbr)
            .expect("known abbr");
        let prep = Prepared::new(entry, 256);
        let (_, fill) = gplu_bench::fill_size_of(&prep);

        group.bench_with_input(BenchmarkId::new("ours", abbr), &prep.matrix, |b, a| {
            b.iter(|| {
                LuFactorization::compute(&prep.gpu_symbolic(fill), a, &LuOptions::default())
                    .expect("ok")
            })
        });
        group.bench_with_input(BenchmarkId::new("glu30", abbr), &prep.matrix, |b, a| {
            b.iter(|| {
                factorize_glu30(&prep.gpu_symbolic(fill), a, &PreprocessOptions::default())
                    .expect("ok")
            })
        });

        let f = LuFactorization::compute(
            &prep.gpu_symbolic(fill),
            &prep.matrix,
            &LuOptions::default(),
        )
        .expect("ok");
        let rhs = vec![1.0; prep.matrix.n_rows()];
        group.bench_with_input(BenchmarkId::new("solve", abbr), &f, |b, f| {
            b.iter(|| f.solve(&rhs).expect("ok"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
