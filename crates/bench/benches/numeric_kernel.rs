//! Wall-clock benches of the per-column kernel core itself: the three
//! access disciplines of `process_column` over one filled pattern, plus
//! the cost of building the `PivotCache` they share. This isolates the
//! location work (binary search vs merge-join) from the engine/simulator
//! machinery the `numeric` bench includes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gplu_bench::Prepared;
use gplu_numeric::values::ValueStore;
use gplu_numeric::{AccessDiscipline, PivotCache};
use gplu_sim::CostModel;
use gplu_sparse::convert::csr_to_csc;
use gplu_sparse::gen::suite::large_suite;
use gplu_symbolic::symbolic_cpu;

fn bench_numeric_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("numeric_kernel");
    group.sample_size(20);
    let entry = large_suite().into_iter().next().expect("suite non-empty"); // hugetrace
    let prep = Prepared::new(entry, 4096);
    let (pre, _fill) = gplu_bench::fill_size_of(&prep);
    let sym = symbolic_cpu(&pre, &CostModel::default());
    let pattern = csr_to_csc(&sym.result.filled);
    let n = pattern.n_cols();
    let cache = PivotCache::build(&pattern);

    group.bench_with_input(
        BenchmarkId::new("pivot_cache_build", "HT20"),
        &pattern,
        |b, p| b.iter(|| PivotCache::build(black_box(p))),
    );
    for (name, discipline) in [
        ("binary_search", AccessDiscipline::BinarySearch),
        ("merge", AccessDiscipline::Merge),
        ("dense", AccessDiscipline::Dense),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "HT20"), &pattern, |b, p| {
            b.iter(|| {
                let vals = ValueStore::new(&p.vals);
                for j in 0..n {
                    gplu_numeric::outcome::process_column(p, &vals, j, discipline, &cache)
                        .expect("column ok");
                }
                vals
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_numeric_kernel);
criterion_main!(benches);
