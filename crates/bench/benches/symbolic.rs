//! Wall-clock benches of the symbolic-factorization engines (companion to
//! Figures 4/6: the simulated-time comparisons live in the `fig*`
//! binaries; these measure the real Rust implementations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gplu_bench::Prepared;
use gplu_sim::CostModel;
use gplu_sparse::gen::suite::paper_suite;
use gplu_symbolic::{symbolic_cpu, symbolic_ooc, symbolic_ooc_dynamic, symbolic_um, UmMode};

fn bench_symbolic(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic");
    group.sample_size(10);
    for abbr in ["OT2", "WI"] {
        let entry = paper_suite()
            .into_iter()
            .find(|e| e.abbr == abbr)
            .expect("known abbr");
        let prep = Prepared::new(entry, 256);
        let (pre, fill) = gplu_bench::fill_size_of(&prep);

        group.bench_with_input(BenchmarkId::new("cpu", abbr), &pre, |b, a| {
            b.iter(|| symbolic_cpu(a, &CostModel::default()))
        });
        group.bench_with_input(BenchmarkId::new("ooc", abbr), &pre, |b, a| {
            b.iter(|| symbolic_ooc(&prep.gpu_symbolic(fill), a).expect("ok"))
        });
        group.bench_with_input(BenchmarkId::new("ooc_dynamic", abbr), &pre, |b, a| {
            b.iter(|| symbolic_ooc_dynamic(&prep.gpu_symbolic(fill), a).expect("ok"))
        });
        group.bench_with_input(BenchmarkId::new("um_prefetch", abbr), &pre, |b, a| {
            b.iter(|| symbolic_um(&prep.gpu_symbolic(fill), a, UmMode::Prefetch).expect("ok"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_symbolic);
criterion_main!(benches);
