//! Wall-clock benches of the sparse-format substrate: conversions,
//! binary-search access (Algorithm 6's primitive), orderings and
//! triangular solves — the building blocks every experiment leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gplu_numeric::factorize_seq;
use gplu_sim::CostModel;
use gplu_sparse::convert::{csc_to_csr, csr_to_csc};
use gplu_sparse::gen::random::random_dominant;
use gplu_sparse::ordering::{amd_order, rcm_order};
use gplu_sparse::triangular::solve_lu;
use gplu_symbolic::symbolic_cpu;

fn bench_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("formats");
    group.sample_size(20);
    let a = random_dominant(4000, 8.0, 77);
    let csc = csr_to_csc(&a);

    group.bench_with_input(BenchmarkId::new("csr_to_csc", "n4k"), &a, |b, a| {
        b.iter(|| csr_to_csc(a))
    });
    group.bench_with_input(BenchmarkId::new("csc_to_csr", "n4k"), &csc, |b, m| {
        b.iter(|| csc_to_csr(m))
    });
    group.bench_with_input(
        BenchmarkId::new("binary_search_column", "n4k"),
        &csc,
        |b, m| {
            b.iter(|| {
                let mut hits = 0u64;
                for j in (0..m.n_cols()).step_by(7) {
                    if m.find_in_col(j / 2, j).0.is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        },
    );
    group.bench_with_input(BenchmarkId::new("amd_order", "n4k"), &a, |b, a| {
        b.iter(|| amd_order(a))
    });
    group.bench_with_input(BenchmarkId::new("rcm_order", "n4k"), &a, |b, a| {
        b.iter(|| rcm_order(a))
    });

    // Triangular solve on a real factor.
    let small = random_dominant(1500, 5.0, 78);
    let sym = symbolic_cpu(&small, &CostModel::default());
    let mut lu = csr_to_csc(&sym.result.filled);
    factorize_seq(&mut lu).expect("factorizes");
    let rhs = vec![1.0; 1500];
    group.bench_with_input(
        BenchmarkId::new("triangular_solve", "n1.5k"),
        &lu,
        |b, lu| b.iter(|| solve_lu(lu, &rhs).expect("ok")),
    );
    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
