//! Wall-clock benches of the numeric engines: sequential reference, the
//! dense-format GPU kernel and the binary-search CSC kernel (the Figure 8
//! pair).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gplu_bench::Prepared;
use gplu_numeric::{factorize_gpu_dense, factorize_gpu_sparse, factorize_seq};
use gplu_schedule::{levelize_cpu, DepGraph};
use gplu_sim::CostModel;
use gplu_sparse::convert::csr_to_csc;
use gplu_sparse::gen::suite::large_suite;
use gplu_symbolic::symbolic_cpu;

fn bench_numeric(c: &mut Criterion) {
    let mut group = c.benchmark_group("numeric");
    group.sample_size(10);
    let entry = large_suite().into_iter().next().expect("suite non-empty"); // hugetrace
    let prep = Prepared::new(entry, 4096);
    let (pre, fill) = gplu_bench::fill_size_of(&prep);
    let sym = symbolic_cpu(&pre, &CostModel::default());
    let pattern = csr_to_csc(&sym.result.filled);
    let levels = levelize_cpu(&DepGraph::build(&sym.result.filled), &CostModel::default()).levels;

    group.bench_with_input(BenchmarkId::new("seq", "HT20"), &pattern, |b, p| {
        b.iter(|| {
            let mut lu = p.clone();
            factorize_seq(&mut lu).expect("ok")
        })
    });
    group.bench_with_input(BenchmarkId::new("gpu_dense", "HT20"), &pattern, |b, p| {
        b.iter(|| factorize_gpu_dense(&prep.gpu_numeric(fill), p, &levels).expect("ok"))
    });
    group.bench_with_input(
        BenchmarkId::new("gpu_sparse_bsearch", "HT20"),
        &pattern,
        |b, p| b.iter(|| factorize_gpu_sparse(&prep.gpu_numeric(fill), p, &levels).expect("ok")),
    );
    group.finish();
}

criterion_group!(benches, bench_numeric);
criterion_main!(benches);
