//! Crash-consistent checkpoint/resume policy for the pipeline.
//!
//! The mechanism (snapshot container, checksums, atomic store) lives in
//! `gplu-checkpoint`; this module owns the *policy*: what state each
//! phase must persist for a later run to reproduce the factorization
//! bit-for-bit, when snapshots are cut, and how a `--resume` run
//! validates and replays one.
//!
//! # Schema
//!
//! Every snapshot is self-describing: a [`section::META`] mark says how
//! far the run had progressed, and the loader reads exactly the sections
//! that mark implies. Durable sections ([`section::FINGERPRINT`],
//! [`section::PREPROCESS`], [`section::SYMBOLIC`], [`section::LEVELS`],
//! [`section::RECOVERY`]) accumulate in the session's base snapshot as
//! phases complete; partial sections ([`section::SYMBOLIC_PARTIAL`],
//! [`section::NUMERIC`]) are attached only to the snapshot being cut, so
//! they naturally disappear once their phase finishes.
//!
//! # Resume invariants
//!
//! * The matrix fingerprint must match — resuming against a different
//!   matrix is [`GpluError::CheckpointMismatch`], checked before any
//!   state is trusted.
//! * Partial sections carry the engine/format tag that produced them and
//!   are replayed only on the *same* rung; a ladder that lands elsewhere
//!   restarts that phase from its last durable boundary instead. (All
//!   symbolic engines produce identical patterns, so this is a
//!   performance concern, never a correctness one.)
//! * Replayed state is validated (`check`) before use; malformed state
//!   is a typed error, never a panic.
//! * Crash points bracket every write ([`Gpu::crash_point`] before and
//!   after [`CheckpointStore::save`]), so the chaos suite can kill the
//!   run both with and without the snapshot on disk.

use crate::error::GpluError;
use crate::pipeline::{LuOptions, NumericFormat, SymbolicEngine};
use crate::recovery::{Phase, RecoveryAction, RecoveryLog};
use gplu_checkpoint::{
    decode_csr, decode_perm, encode_csr, encode_perm, section, xxh64, CheckpointStore, Dec, Enc,
    Snapshot,
};
use gplu_numeric::{ModeMix, NumericResume};
use gplu_schedule::Levels;
use gplu_sim::{Gpu, SimError, SimTime};
use gplu_sparse::{Csr, Permutation};
use gplu_symbolic::result::SymbolicMetrics;
use gplu_symbolic::{DynamicSplit, SymbolicResult, SymbolicResume};
use gplu_trace::TraceSink;
use std::path::PathBuf;

/// Simulated cost of streaming a snapshot to stable storage
/// (~20 GB/s, an NVMe-class device). Charged via [`Gpu::advance`] so
/// checkpointing shows up honestly in phase timings.
const WRITE_NS_PER_BYTE: f64 = 0.05;

/// Seed for the matrix fingerprint hash.
const MATRIX_FP_SEED: u64 = 0x6770_6c75_6d61_7478; // "gplumatx"
/// Seed for the structure-only pattern fingerprint hash. Distinct from
/// [`MATRIX_FP_SEED`] so a pattern key can never collide with a content
/// key even for an all-zero value array.
const PATTERN_FP_SEED: u64 = 0x6770_6c75_7061_7474; // "gplupatt"
/// Seed for the options fingerprint hash.
const OPTS_FP_SEED: u64 = 0x6770_6c75_6f70_7473; // "gpluopts"

/// User-facing checkpoint configuration (the CLI's `--checkpoint-dir`,
/// `--checkpoint-every`, `--resume`).
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Directory holding snapshots and the manifest.
    pub dir: PathBuf,
    /// Cut a partial snapshot every `every` completed numeric levels /
    /// symbolic chunks (phase boundaries always cut).
    pub every: usize,
    /// Resume from the latest valid snapshot in `dir` if one exists.
    pub resume: bool,
}

impl CheckpointOptions {
    /// Options writing to `dir` with the default cadence.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointOptions {
            dir: dir.into(),
            every: 8,
            resume: false,
        }
    }

    /// Sets the snapshot cadence.
    pub fn every(mut self, n: usize) -> Self {
        self.every = n;
        self
    }

    /// Enables resume-from-latest.
    pub fn resume(mut self, yes: bool) -> Self {
        self.resume = yes;
        self
    }

    /// Rejects configurations that can never work.
    pub fn validate(&self) -> Result<(), GpluError> {
        if self.every == 0 {
            return Err(GpluError::Checkpoint(
                "checkpoint cadence must be at least 1 (a cadence of 0 would never cut a snapshot)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// How far the run had progressed when a snapshot was cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PhaseMark {
    /// Pre-processing done; matrix/permutations durable.
    Preprocessed = 1,
    /// Mid-symbolic: a stage-1 chunk watermark is attached.
    SymbolicPartial = 2,
    /// Symbolic done; filled pattern durable.
    Symbolic = 3,
    /// Levelization done; level schedule durable.
    Levelized = 4,
    /// Mid-numeric: a level watermark + value store is attached. The
    /// final snapshot of a completed run is this mark with
    /// `start_level == n_levels`.
    NumericPartial = 5,
}

impl PhaseMark {
    fn from_u8(v: u8) -> Result<PhaseMark, GpluError> {
        Ok(match v {
            1 => PhaseMark::Preprocessed,
            2 => PhaseMark::SymbolicPartial,
            3 => PhaseMark::Symbolic,
            4 => PhaseMark::Levelized,
            5 => PhaseMark::NumericPartial,
            other => return Err(corrupt(format!("unknown phase mark {other}"))),
        })
    }

    /// Stable name for traces and logs.
    pub fn name(self) -> &'static str {
        match self {
            PhaseMark::Preprocessed => "preprocessed",
            PhaseMark::SymbolicPartial => "symbolic_partial",
            PhaseMark::Symbolic => "symbolic",
            PhaseMark::Levelized => "levelized",
            PhaseMark::NumericPartial => "numeric_partial",
        }
    }
}

fn corrupt(msg: impl Into<String>) -> GpluError {
    GpluError::CheckpointCorrupt(msg.into())
}

/// Stable tag identifying the symbolic engine that produced a partial
/// snapshot.
pub(crate) fn engine_tag(e: SymbolicEngine) -> u8 {
    match e {
        SymbolicEngine::Ooc => 0,
        SymbolicEngine::OocDynamic => 1,
        SymbolicEngine::UmNoPrefetch => 2,
        SymbolicEngine::UmPrefetch => 3,
    }
}

/// Stable tag identifying the numeric format that produced a partial
/// snapshot. Ladder rungs are always concrete by the time a snapshot is
/// cut, so [`NumericFormat::Auto`] never appears on disk.
pub(crate) fn format_tag(f: NumericFormat) -> u8 {
    match f {
        NumericFormat::Dense => 0,
        NumericFormat::Sparse => 1,
        NumericFormat::SparseMerge => 2,
        NumericFormat::SparseBlocked => 3,
        NumericFormat::Auto => 255,
    }
}

/// Structural fingerprint of the input matrix: dimensions and sparsity
/// pattern only, values excluded. Every member of a refactorization
/// family (one circuit, many timesteps of drifting values) maps to the
/// same key — this is the pattern key of the solver service's factor
/// cache, where [`matrix_fingerprint`] would defeat reuse entirely.
pub fn pattern_fingerprint(a: &Csr) -> u64 {
    let mut e = Enc::new();
    e.u64(a.n_rows() as u64);
    e.u64(a.n_cols() as u64);
    e.vec_usize(&a.row_ptr);
    e.vec_u32(&a.col_idx);
    xxh64(&e.into_bytes(), PATTERN_FP_SEED)
}

/// Content fingerprint of the input matrix (structure + values).
pub fn matrix_fingerprint(a: &Csr) -> u64 {
    let mut e = Enc::new();
    e.u64(a.n_rows() as u64);
    e.u64(a.n_cols() as u64);
    e.vec_usize(&a.row_ptr);
    e.vec_u32(&a.col_idx);
    e.vec_f64(&a.vals);
    xxh64(&e.into_bytes(), MATRIX_FP_SEED)
}

/// Fingerprint of the pipeline options. Stored for diagnostics but not
/// enforced: the per-section engine/format tags gate partial-state reuse
/// individually, and durable outputs are option-independent facts about
/// the matrix.
pub fn options_fingerprint(opts: &LuOptions) -> u64 {
    xxh64(format!("{opts:?}").as_bytes(), OPTS_FP_SEED)
}

// ---------------------------------------------------------------------
// Section codecs
// ---------------------------------------------------------------------

fn encode_meta(mark: PhaseMark, clock_ns: f64) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(mark as u8);
    e.f64(clock_ns);
    e.into_bytes()
}

fn decode_meta(b: &[u8]) -> Result<(PhaseMark, f64), GpluError> {
    let mut d = Dec::new(b);
    let mark = PhaseMark::from_u8(d.u8("meta.mark").map_err(corrupt_ck)?)?;
    let clock_ns = d.f64("meta.clock_ns").map_err(corrupt_ck)?;
    expect_drained(&d, "META")?;
    Ok((mark, clock_ns))
}

fn encode_fingerprint(matrix_fp: u64, opts_fp: u64, n: usize, nnz: usize) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(matrix_fp);
    e.u64(opts_fp);
    e.u64(n as u64);
    e.u64(nnz as u64);
    e.into_bytes()
}

struct Fingerprint {
    matrix_fp: u64,
    n: u64,
    nnz: u64,
}

fn decode_fingerprint(b: &[u8]) -> Result<Fingerprint, GpluError> {
    let mut d = Dec::new(b);
    let matrix_fp = d.u64("fp.matrix").map_err(corrupt_ck)?;
    let _opts_fp = d.u64("fp.opts").map_err(corrupt_ck)?;
    let n = d.u64("fp.n").map_err(corrupt_ck)?;
    let nnz = d.u64("fp.nnz").map_err(corrupt_ck)?;
    expect_drained(&d, "FINGERPRINT")?;
    Ok(Fingerprint { matrix_fp, n, nnz })
}

/// Durable pre-processing output: the (possibly diagonal-repaired)
/// permuted matrix and its permutations.
#[derive(Debug, Clone)]
pub struct PreState {
    /// The pre-processed matrix the rest of the pipeline consumes.
    pub matrix: Csr,
    /// Row permutation.
    pub p_row: Permutation,
    /// Column permutation.
    pub p_col: Permutation,
    /// Diagonals repaired so far (pre-processing + numeric-phase bumps).
    pub repaired: usize,
    /// Simulated pre-processing time, for report fidelity on resume.
    pub time_ns: f64,
}

fn encode_preprocess(p: &PreState) -> Vec<u8> {
    let mut e = Enc::new();
    encode_csr(&mut e, &p.matrix);
    encode_perm(&mut e, &p.p_row);
    encode_perm(&mut e, &p.p_col);
    e.u64(p.repaired as u64);
    e.f64(p.time_ns);
    e.into_bytes()
}

fn decode_preprocess(b: &[u8]) -> Result<PreState, GpluError> {
    let mut d = Dec::new(b);
    let matrix = decode_csr(&mut d).map_err(corrupt_ck)?;
    let p_row = decode_perm(&mut d).map_err(corrupt_ck)?;
    let p_col = decode_perm(&mut d).map_err(corrupt_ck)?;
    let repaired = d.u64("pre.repaired").map_err(corrupt_ck)? as usize;
    let time_ns = d.f64("pre.time_ns").map_err(corrupt_ck)?;
    expect_drained(&d, "PREPROCESS")?;
    Ok(PreState {
        matrix,
        p_row,
        p_col,
        repaired,
        time_ns,
    })
}

fn encode_symbolic_partial(engine: u8, r: &SymbolicResume) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(engine);
    e.u64(r.rows_done as u64);
    e.u64(r.iters_done as u64);
    e.u64(r.chunk as u64);
    e.u64(r.oom_backoffs as u64);
    e.vec_u32(&r.fill_counts);
    e.vec_u64(&r.frontiers);
    e.u64(r.agg_steps);
    e.u64(r.agg_edges);
    e.u64(r.agg_frontiers);
    e.vec_u64(&r.per_iter_max_frontier);
    match r.split {
        Some(s) => {
            e.u8(1);
            e.u64(s.n1 as u64);
            e.u64(s.frontier_cap);
            e.u64(s.chunk1 as u64);
            e.u64(s.chunk2 as u64);
        }
        None => e.u8(0),
    }
    e.vec_u32(&r.overflow_rows);
    e.into_bytes()
}

fn decode_symbolic_partial(b: &[u8]) -> Result<(u8, SymbolicResume), GpluError> {
    let mut d = Dec::new(b);
    let engine = d.u8("sym.engine").map_err(corrupt_ck)?;
    let rows_done = d.u64("sym.rows_done").map_err(corrupt_ck)? as usize;
    let iters_done = d.u64("sym.iters_done").map_err(corrupt_ck)? as usize;
    let chunk = d.u64("sym.chunk").map_err(corrupt_ck)? as usize;
    let oom_backoffs = d.u64("sym.oom_backoffs").map_err(corrupt_ck)? as usize;
    let fill_counts = d.vec_u32("sym.fill_counts").map_err(corrupt_ck)?;
    let frontiers = d.vec_u64("sym.frontiers").map_err(corrupt_ck)?;
    let agg_steps = d.u64("sym.agg_steps").map_err(corrupt_ck)?;
    let agg_edges = d.u64("sym.agg_edges").map_err(corrupt_ck)?;
    let agg_frontiers = d.u64("sym.agg_frontiers").map_err(corrupt_ck)?;
    let per_iter_max_frontier = d.vec_u64("sym.per_iter_max_frontier").map_err(corrupt_ck)?;
    let split = match d.u8("sym.has_split").map_err(corrupt_ck)? {
        0 => None,
        1 => Some(DynamicSplit {
            n1: d.u64("sym.split.n1").map_err(corrupt_ck)? as usize,
            frontier_cap: d.u64("sym.split.frontier_cap").map_err(corrupt_ck)?,
            chunk1: d.u64("sym.split.chunk1").map_err(corrupt_ck)? as usize,
            chunk2: d.u64("sym.split.chunk2").map_err(corrupt_ck)? as usize,
        }),
        other => return Err(corrupt(format!("bad split flag {other}"))),
    };
    let overflow_rows = d.vec_u32("sym.overflow_rows").map_err(corrupt_ck)?;
    expect_drained(&d, "SYMBOLIC_PARTIAL")?;
    Ok((
        engine,
        SymbolicResume {
            rows_done,
            iters_done,
            chunk,
            oom_backoffs,
            fill_counts,
            frontiers,
            agg_steps,
            agg_edges,
            agg_frontiers,
            per_iter_max_frontier,
            split,
            overflow_rows,
        },
    ))
}

/// Durable symbolic output plus the report facts a resumed run can no
/// longer observe.
#[derive(Debug, Clone)]
pub struct SymbolicDone {
    /// The filled pattern and metrics.
    pub result: SymbolicResult,
    /// Effective stage-1 chunk size (report fidelity).
    pub chunk_size: usize,
    /// Out-of-core iterations taken (report fidelity).
    pub iterations: usize,
}

fn encode_symbolic_done(result: &SymbolicResult, chunk_size: usize, iterations: usize) -> Vec<u8> {
    let mut e = Enc::new();
    encode_csr(&mut e, &result.filled);
    e.vec_u32(&result.fill_count);
    e.u64(result.metrics.steps);
    e.u64(result.metrics.edges);
    e.u64(result.metrics.frontiers);
    e.u64(chunk_size as u64);
    e.u64(iterations as u64);
    e.into_bytes()
}

fn decode_symbolic_done(b: &[u8]) -> Result<SymbolicDone, GpluError> {
    let mut d = Dec::new(b);
    let filled = decode_csr(&mut d).map_err(corrupt_ck)?;
    let fill_count = d.vec_u32("symdone.fill_count").map_err(corrupt_ck)?;
    let steps = d.u64("symdone.steps").map_err(corrupt_ck)?;
    let edges = d.u64("symdone.edges").map_err(corrupt_ck)?;
    let frontiers = d.u64("symdone.frontiers").map_err(corrupt_ck)?;
    let chunk_size = d.u64("symdone.chunk_size").map_err(corrupt_ck)? as usize;
    let iterations = d.u64("symdone.iterations").map_err(corrupt_ck)? as usize;
    expect_drained(&d, "SYMBOLIC")?;
    if fill_count.len() != filled.n_rows() {
        return Err(corrupt(format!(
            "fill_count has {} entries for a {}-row pattern",
            fill_count.len(),
            filled.n_rows()
        )));
    }
    Ok(SymbolicDone {
        result: SymbolicResult {
            filled,
            fill_count,
            metrics: SymbolicMetrics {
                steps,
                edges,
                frontiers,
            },
        },
        chunk_size,
        iterations,
    })
}

fn encode_levels(level_of: &[u32]) -> Vec<u8> {
    let mut e = Enc::new();
    e.vec_u32(level_of);
    e.into_bytes()
}

fn decode_levels(b: &[u8]) -> Result<Vec<u32>, GpluError> {
    let mut d = Dec::new(b);
    let level_of = d.vec_u32("levels.level_of").map_err(corrupt_ck)?;
    expect_drained(&d, "LEVELS")?;
    Ok(level_of)
}

fn encode_numeric(format: u8, r: &NumericResume) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(format);
    e.u64(r.start_level as u64);
    e.vec_f64(&r.vals);
    e.u64(r.mode_mix.a as u64);
    e.u64(r.mode_mix.b as u64);
    e.u64(r.mode_mix.c as u64);
    e.u64(r.probes);
    e.u64(r.merge_steps);
    e.u64(r.batches);
    e.u64(r.gemm_tiles);
    e.into_bytes()
}

fn decode_numeric(b: &[u8]) -> Result<(u8, NumericResume), GpluError> {
    let mut d = Dec::new(b);
    let format = d.u8("num.format").map_err(corrupt_ck)?;
    let start_level = d.u64("num.start_level").map_err(corrupt_ck)? as usize;
    let vals = d.vec_f64("num.vals").map_err(corrupt_ck)?;
    let a = d.u64("num.mix_a").map_err(corrupt_ck)? as usize;
    let b_ = d.u64("num.mix_b").map_err(corrupt_ck)? as usize;
    let c = d.u64("num.mix_c").map_err(corrupt_ck)? as usize;
    let probes = d.u64("num.probes").map_err(corrupt_ck)?;
    let merge_steps = d.u64("num.merge_steps").map_err(corrupt_ck)?;
    let batches = d.u64("num.batches").map_err(corrupt_ck)?;
    let gemm_tiles = d.u64("num.gemm_tiles").map_err(corrupt_ck)?;
    expect_drained(&d, "NUMERIC")?;
    Ok((
        format,
        NumericResume {
            start_level,
            vals,
            mode_mix: ModeMix { a, b: b_, c },
            probes,
            merge_steps,
            batches,
            gemm_tiles,
        },
    ))
}

fn phase_tag(p: Phase) -> u8 {
    match p {
        Phase::Preprocess => 0,
        Phase::Symbolic => 1,
        Phase::Levelize => 2,
        Phase::Numeric => 3,
        Phase::Solve => 4,
        Phase::Cache => 5,
    }
}

fn phase_from_tag(t: u8) -> Result<Phase, GpluError> {
    Ok(match t {
        0 => Phase::Preprocess,
        1 => Phase::Symbolic,
        2 => Phase::Levelize,
        3 => Phase::Numeric,
        4 => Phase::Solve,
        5 => Phase::Cache,
        other => return Err(corrupt(format!("unknown recovery phase tag {other}"))),
    })
}

fn encode_recovery(log: &RecoveryLog) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(log.len() as u32);
    for ev in log.events() {
        e.u8(phase_tag(ev.phase));
        match &ev.action {
            RecoveryAction::ChunkBackoff {
                backoffs,
                final_chunk,
            } => {
                e.u8(0);
                e.u64(*backoffs as u64);
                e.u64(*final_chunk as u64);
            }
            RecoveryAction::StreamedOutput => e.u8(1),
            RecoveryAction::EngineDegraded { from, to } => {
                e.u8(2);
                e.str(from);
                e.str(to);
            }
            RecoveryAction::FormatDegraded { from, to } => {
                e.u8(3);
                e.str(from);
                e.str(to);
            }
            RecoveryAction::PivotRepaired {
                col,
                value,
                magnitude,
            } => {
                e.u8(4);
                e.u64(*col as u64);
                e.f64(*value);
                e.f64(*magnitude);
            }
            RecoveryAction::PivotEscalated { from, to } => {
                e.u8(5);
                e.str(from);
                e.str(to);
            }
            RecoveryAction::PivotPerturbed { cols, max_delta } => {
                e.u8(6);
                e.u64(*cols as u64);
                e.f64(*max_delta);
            }
            RecoveryAction::PatternExpanded { added, rounds } => {
                e.u8(7);
                e.u64(*added as u64);
                e.u64(*rounds as u64);
            }
            RecoveryAction::Resymbolic { abandoned } => {
                e.u8(8);
                e.u64(*abandoned as u64);
            }
            RecoveryAction::DiskEntryRejected { key, reason } => {
                e.u8(9);
                e.u64(*key);
                e.str(reason);
            }
            RecoveryAction::DeviceLost { device, resharded } => {
                e.u8(10);
                e.u64(*device as u64);
                e.u64(*resharded as u64);
            }
        }
    }
    e.into_bytes()
}

fn decode_recovery(b: &[u8]) -> Result<RecoveryLog, GpluError> {
    let mut d = Dec::new(b);
    let count = d.u32("rec.count").map_err(corrupt_ck)?;
    let mut log = RecoveryLog::default();
    for _ in 0..count {
        let phase = phase_from_tag(d.u8("rec.phase").map_err(corrupt_ck)?)?;
        let action = match d.u8("rec.action").map_err(corrupt_ck)? {
            0 => RecoveryAction::ChunkBackoff {
                backoffs: d.u64("rec.backoffs").map_err(corrupt_ck)? as usize,
                final_chunk: d.u64("rec.final_chunk").map_err(corrupt_ck)? as usize,
            },
            1 => RecoveryAction::StreamedOutput,
            2 => RecoveryAction::EngineDegraded {
                from: d.str("rec.from").map_err(corrupt_ck)?,
                to: d.str("rec.to").map_err(corrupt_ck)?,
            },
            3 => RecoveryAction::FormatDegraded {
                from: d.str("rec.from").map_err(corrupt_ck)?,
                to: d.str("rec.to").map_err(corrupt_ck)?,
            },
            4 => RecoveryAction::PivotRepaired {
                col: d.u64("rec.col").map_err(corrupt_ck)? as usize,
                value: d.f64("rec.value").map_err(corrupt_ck)?,
                magnitude: d.f64("rec.magnitude").map_err(corrupt_ck)?,
            },
            5 => RecoveryAction::PivotEscalated {
                from: d.str("rec.from").map_err(corrupt_ck)?,
                to: d.str("rec.to").map_err(corrupt_ck)?,
            },
            6 => RecoveryAction::PivotPerturbed {
                cols: d.u64("rec.cols").map_err(corrupt_ck)? as usize,
                max_delta: d.f64("rec.max_delta").map_err(corrupt_ck)?,
            },
            7 => RecoveryAction::PatternExpanded {
                added: d.u64("rec.added").map_err(corrupt_ck)? as usize,
                rounds: d.u64("rec.rounds").map_err(corrupt_ck)? as usize,
            },
            8 => RecoveryAction::Resymbolic {
                abandoned: d.u64("rec.abandoned").map_err(corrupt_ck)? as usize,
            },
            9 => RecoveryAction::DiskEntryRejected {
                key: d.u64("rec.key").map_err(corrupt_ck)?,
                reason: d.str("rec.reason").map_err(corrupt_ck)?,
            },
            10 => RecoveryAction::DeviceLost {
                device: d.u64("rec.device").map_err(corrupt_ck)? as usize,
                resharded: d.u64("rec.resharded").map_err(corrupt_ck)? as usize,
            },
            other => return Err(corrupt(format!("unknown recovery action tag {other}"))),
        };
        log.record(phase, action);
    }
    expect_drained(&d, "RECOVERY")?;
    Ok(log)
}

fn expect_drained(d: &Dec<'_>, what: &str) -> Result<(), GpluError> {
    if d.remaining() != 0 {
        return Err(corrupt(format!(
            "{what} section has {} trailing byte(s)",
            d.remaining()
        )));
    }
    Ok(())
}

fn corrupt_ck(e: gplu_checkpoint::CheckpointError) -> GpluError {
    GpluError::from(e)
}

// ---------------------------------------------------------------------
// Resume state
// ---------------------------------------------------------------------

/// Everything a resumed run replays, decoded and validated from the
/// latest valid snapshot.
#[derive(Debug)]
pub struct ResumeState {
    /// How far the snapshotted run had progressed.
    pub mark: PhaseMark,
    /// Simulated clock at cut time (restored so resumed timings continue
    /// rather than restart).
    pub clock_ns: f64,
    /// Sequence number of the snapshot this state came from.
    pub seq: u64,
    /// Pre-processing output (present at every mark).
    pub pre: PreState,
    /// Partial symbolic progress (mark == `SymbolicPartial` only).
    pub sym_partial: Option<(u8, SymbolicResume)>,
    /// Completed symbolic output (mark >= `Symbolic`).
    pub symbolic: Option<SymbolicDone>,
    /// Level schedule (mark >= `Levelized`).
    pub level_of: Option<Vec<u32>>,
    /// Partial numeric progress (mark == `NumericPartial` only).
    pub numeric: Option<(u8, NumericResume)>,
    /// Recovery log accumulated before the cut.
    pub recovery: RecoveryLog,
}

impl ResumeState {
    /// Rebuilds the level schedule, if the snapshot has one.
    pub fn levels(&self) -> Option<Levels> {
        self.level_of
            .as_ref()
            .map(|lo| Levels::from_level_of(lo.clone()))
    }
}

fn decode_resume(seq: u64, snap: &Snapshot) -> Result<ResumeState, GpluError> {
    let need = |id: u32, name: &str| {
        snap.section(id)
            .ok_or_else(|| corrupt(format!("snapshot #{seq} lacks required section {name}")))
    };
    let (mark, clock_ns) = decode_meta(need(section::META, "META")?)?;
    let pre = decode_preprocess(need(section::PREPROCESS, "PREPROCESS")?)?;
    let sym_partial = if mark == PhaseMark::SymbolicPartial {
        Some(decode_symbolic_partial(need(
            section::SYMBOLIC_PARTIAL,
            "SYMBOLIC_PARTIAL",
        )?)?)
    } else {
        None
    };
    let symbolic = if mark >= PhaseMark::Symbolic {
        Some(decode_symbolic_done(need(section::SYMBOLIC, "SYMBOLIC")?)?)
    } else {
        None
    };
    let level_of = if mark >= PhaseMark::Levelized {
        Some(decode_levels(need(section::LEVELS, "LEVELS")?)?)
    } else {
        None
    };
    let numeric = if mark == PhaseMark::NumericPartial {
        Some(decode_numeric(need(section::NUMERIC, "NUMERIC")?)?)
    } else {
        None
    };
    let recovery = match snap.section(section::RECOVERY) {
        Some(b) => decode_recovery(b)?,
        None => RecoveryLog::default(),
    };
    Ok(ResumeState {
        mark,
        clock_ns,
        seq,
        pre,
        sym_partial,
        symbolic,
        level_of,
        numeric,
        recovery,
    })
}

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

/// A live checkpointing session for one factorization: accumulates
/// durable sections as phases complete and cuts crash-consistent
/// snapshots at boundaries and in-phase watermarks.
#[derive(Debug)]
pub struct CheckpointSession {
    store: CheckpointStore,
    every: usize,
    next_seq: u64,
    base: Snapshot,
    /// Decoded resume state, if the session was opened with
    /// `resume: true` and a valid snapshot existed. The pipeline `take`s
    /// this to replay it.
    pub resume: Option<ResumeState>,
}

impl CheckpointSession {
    /// Opens (or resumes) a session for factorizing `a` under `lu_opts`.
    ///
    /// With `opts.resume`, the latest valid snapshot is loaded and
    /// verified against the matrix fingerprint; an empty or absent
    /// checkpoint directory silently starts a fresh run (so a single
    /// `--resume` invocation works whether or not a prior run got far
    /// enough to cut anything). A directory where *every* snapshot fails
    /// its checksum is [`GpluError::CheckpointCorrupt`].
    pub fn open(
        opts: &CheckpointOptions,
        a: &Csr,
        lu_opts: &LuOptions,
        gpu: &Gpu,
        trace: &dyn TraceSink,
    ) -> Result<CheckpointSession, GpluError> {
        opts.validate()?;
        let store = CheckpointStore::open(&opts.dir)?;
        let m_fp = matrix_fingerprint(a);
        let o_fp = options_fingerprint(lu_opts);
        let mut base = Snapshot::new();
        base.add_section(
            section::FINGERPRINT,
            encode_fingerprint(m_fp, o_fp, a.n_rows(), a.nnz()),
        );
        let mut resume = None;
        if opts.resume {
            trace.span_begin("checkpoint.load", "checkpoint", gpu.now().as_ns(), &[]);
            let loaded = store.load_latest()?;
            trace.span_end(
                "checkpoint.load",
                "checkpoint",
                gpu.now().as_ns(),
                &[("found", loaded.is_some().into())],
            );
            if let Some((seq, snap)) = loaded {
                trace.span_begin(
                    "checkpoint.verify",
                    "checkpoint",
                    gpu.now().as_ns(),
                    &[("seq", seq.into())],
                );
                let fp = decode_fingerprint(
                    snap.section(section::FINGERPRINT)
                        .ok_or_else(|| corrupt("snapshot lacks FINGERPRINT section"))?,
                )?;
                if fp.matrix_fp != m_fp {
                    return Err(GpluError::CheckpointMismatch(format!(
                        "snapshot #{seq} was cut for a different matrix \
                         (fingerprint {:016x}, n={}, nnz={}; this matrix has \
                         fingerprint {m_fp:016x}, n={}, nnz={})",
                        fp.matrix_fp,
                        fp.n,
                        fp.nnz,
                        a.n_rows(),
                        a.nnz(),
                    )));
                }
                let state = decode_resume(seq, &snap)?;
                // Carry the snapshot's durable sections forward so the
                // next cut doesn't lose completed phases.
                for id in [
                    section::PREPROCESS,
                    section::SYMBOLIC,
                    section::LEVELS,
                    section::RECOVERY,
                ] {
                    if let Some(payload) = snap.section(id) {
                        base.add_section(id, payload.to_vec());
                    }
                }
                trace.span_end(
                    "checkpoint.verify",
                    "checkpoint",
                    gpu.now().as_ns(),
                    &[("mark", state.mark.name().into())],
                );
                resume = Some(state);
            }
        }
        // Never clobber existing snapshots, resumed or not: new cuts go
        // strictly after whatever the directory already holds.
        let next_seq = store.max_seq()? + 1;
        Ok(CheckpointSession {
            store,
            every: opts.every,
            next_seq,
            base,
            resume,
        })
    }

    /// Snapshot cadence (levels / chunks between in-phase cuts).
    pub fn every(&self) -> usize {
        self.every
    }

    /// Installs the durable pre-processing section. Called again after a
    /// numeric-phase diagonal repair so every later snapshot carries the
    /// matrix actually being factorized.
    pub fn set_preprocess(&mut self, p: &PreState) {
        self.base
            .add_section(section::PREPROCESS, encode_preprocess(p));
    }

    /// Installs the durable symbolic section.
    pub fn set_symbolic(&mut self, result: &SymbolicResult, chunk_size: usize, iterations: usize) {
        self.base.add_section(
            section::SYMBOLIC,
            encode_symbolic_done(result, chunk_size, iterations),
        );
    }

    /// Installs the durable level-schedule section.
    pub fn set_levels(&mut self, level_of: &[u32]) {
        self.base
            .add_section(section::LEVELS, encode_levels(level_of));
    }

    /// Re-encodes the recovery log so corrective actions survive a
    /// restart.
    pub fn note_recovery(&mut self, log: &RecoveryLog) {
        self.base
            .add_section(section::RECOVERY, encode_recovery(log));
    }

    /// Builds the symbolic-partial payload for a cut.
    pub fn symbolic_partial_payload(engine: SymbolicEngine, r: &SymbolicResume) -> (u32, Vec<u8>) {
        (
            section::SYMBOLIC_PARTIAL,
            encode_symbolic_partial(engine_tag(engine), r),
        )
    }

    /// Builds the numeric-partial payload for a cut.
    pub fn numeric_partial_payload(format: NumericFormat, r: &NumericResume) -> (u32, Vec<u8>) {
        (section::NUMERIC, encode_numeric(format_tag(format), r))
    }

    /// Cuts a snapshot, from inside a running kernel loop. Crash points
    /// bracket the write; I/O failures surface as
    /// [`SimError::BadLaunch`] so the engine aborts (the pipeline
    /// rewraps them via [`CheckpointSession::cut`]'s mapping).
    pub fn cut_in_kernel(
        &mut self,
        gpu: &Gpu,
        trace: &dyn TraceSink,
        mark: PhaseMark,
        partial: Option<(u32, Vec<u8>)>,
    ) -> Result<(), SimError> {
        // The process may die before the write lands...
        gpu.crash_point()?;
        let mut snap = self.base.clone();
        snap.add_section(section::META, encode_meta(mark, gpu.now().as_ns()));
        if let Some((id, payload)) = partial {
            snap.add_section(id, payload);
        }
        let seq = self.next_seq;
        trace.span_begin(
            "checkpoint.save",
            "checkpoint",
            gpu.now().as_ns(),
            &[("seq", seq.into()), ("mark", mark.name().into())],
        );
        let bytes = self
            .store
            .save(seq, &snap)
            .map_err(|e| SimError::BadLaunch(format!("checkpoint write failed: {e}")))?;
        gpu.advance(SimTime::from_ns(bytes as f64 * WRITE_NS_PER_BYTE));
        trace.span_end(
            "checkpoint.save",
            "checkpoint",
            gpu.now().as_ns(),
            &[("seq", seq.into()), ("bytes", bytes.into())],
        );
        self.next_seq += 1;
        // ...or right after it did.
        gpu.crash_point()?;
        Ok(())
    }

    /// Cuts a snapshot at a phase boundary, mapping errors onto the
    /// pipeline surface ([`GpluError::Crashed`] for injected kills,
    /// [`GpluError::Checkpoint`] for I/O failures).
    pub fn cut(
        &mut self,
        gpu: &Gpu,
        trace: &dyn TraceSink,
        mark: PhaseMark,
        partial: Option<(u32, Vec<u8>)>,
    ) -> Result<(), GpluError> {
        self.cut_in_kernel(gpu, trace, mark, partial)
            .map_err(|e| match e {
                SimError::BadLaunch(msg) => GpluError::Checkpoint(msg),
                other => GpluError::from(other),
            })
    }
}

// Re-exported so integration code can name the section a partial payload
// targets without depending on gplu-checkpoint directly.
pub use gplu_checkpoint::section as section_ids;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::RecoveryEvent;
    use gplu_sim::{Gpu, GpuConfig};
    use gplu_trace::NoopSink;

    fn small() -> Csr {
        let mut coo = gplu_sparse::Coo::new(3, 3);
        for (i, j, v) in [(0, 0, 4.0), (1, 1, 5.0), (2, 0, 1.0), (2, 2, 6.0)] {
            coo.push(i, j, v);
        }
        gplu_sparse::convert::coo_to_csr(&coo)
    }

    fn gpu_for(a: &Csr) -> Gpu {
        Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
    }

    #[test]
    fn matrix_fingerprint_is_sensitive_to_values_and_structure() {
        let a = small();
        let fp = matrix_fingerprint(&a);
        assert_eq!(fp, matrix_fingerprint(&small()), "deterministic");
        let mut b = small();
        b.vals[0] = 4.5;
        assert_ne!(fp, matrix_fingerprint(&b), "value change must show");
        let mut coo = gplu_sparse::Coo::new(3, 3);
        for (i, j, v) in [(0, 0, 4.0), (1, 1, 5.0), (2, 2, 6.0)] {
            coo.push(i, j, v);
        }
        let c = gplu_sparse::convert::coo_to_csr(&coo);
        assert_ne!(fp, matrix_fingerprint(&c), "structure change must show");
    }

    #[test]
    fn pattern_fingerprint_ignores_values_but_not_structure() {
        let a = small();
        let fp = pattern_fingerprint(&a);
        let mut drifted = small();
        for v in &mut drifted.vals {
            *v *= 1.5;
        }
        assert_eq!(
            fp,
            pattern_fingerprint(&drifted),
            "value drift keeps the pattern key"
        );
        assert_ne!(
            fp,
            matrix_fingerprint(&a),
            "pattern and content keys live in different hash domains"
        );
        let mut coo = gplu_sparse::Coo::new(3, 3);
        for (i, j, v) in [(0, 0, 4.0), (1, 1, 5.0), (2, 2, 6.0)] {
            coo.push(i, j, v);
        }
        let diag = gplu_sparse::convert::coo_to_csr(&coo);
        assert_ne!(fp, pattern_fingerprint(&diag), "structure change must show");
    }

    #[test]
    fn meta_and_fingerprint_round_trip() {
        let b = encode_meta(PhaseMark::Levelized, 123.5);
        let (mark, ns) = decode_meta(&b).unwrap();
        assert_eq!(mark, PhaseMark::Levelized);
        assert_eq!(ns, 123.5);
        let f = encode_fingerprint(7, 9, 100, 500);
        let fp = decode_fingerprint(&f).unwrap();
        assert_eq!((fp.matrix_fp, fp.n, fp.nnz), (7, 100, 500));
    }

    #[test]
    fn preprocess_round_trip() {
        let p = PreState {
            matrix: small(),
            p_row: Permutation::from_forward(vec![2, 0, 1]).unwrap(),
            p_col: Permutation::identity(3),
            repaired: 1,
            time_ns: 42.0,
        };
        let b = encode_preprocess(&p);
        let q = decode_preprocess(&b).unwrap();
        assert_eq!(q.matrix.col_idx, p.matrix.col_idx);
        assert_eq!(q.matrix.vals, p.matrix.vals);
        assert_eq!(q.p_row.as_slice(), p.p_row.as_slice());
        assert_eq!(q.repaired, 1);
        assert_eq!(q.time_ns, 42.0);
    }

    #[test]
    fn symbolic_partial_round_trip_with_and_without_split() {
        let r = SymbolicResume {
            rows_done: 2,
            iters_done: 1,
            chunk: 2,
            oom_backoffs: 1,
            fill_counts: vec![3, 2, 0],
            frontiers: vec![1, 2, 0],
            agg_steps: 9,
            agg_edges: 12,
            agg_frontiers: 0,
            per_iter_max_frontier: vec![2],
            split: None,
            overflow_rows: vec![],
        };
        let (tag, q) = decode_symbolic_partial(&encode_symbolic_partial(0, &r)).unwrap();
        assert_eq!(tag, 0);
        assert_eq!(q.fill_counts, r.fill_counts);
        assert_eq!(q.frontiers, r.frontiers);
        assert_eq!(q.chunk, 2);

        let with_split = SymbolicResume {
            split: Some(DynamicSplit {
                n1: 2,
                frontier_cap: 4,
                chunk1: 8,
                chunk2: 2,
            }),
            overflow_rows: vec![1],
            frontiers: vec![],
            ..r
        };
        let (tag, q) = decode_symbolic_partial(&encode_symbolic_partial(1, &with_split)).unwrap();
        assert_eq!(tag, 1);
        assert_eq!(q.split, with_split.split);
        assert_eq!(q.overflow_rows, vec![1]);
    }

    #[test]
    fn numeric_and_levels_round_trip() {
        let r = NumericResume {
            start_level: 3,
            vals: vec![1.0, -2.5, 0.0],
            mode_mix: ModeMix { a: 1, b: 2, c: 0 },
            probes: 7,
            merge_steps: 11,
            batches: 4,
            gemm_tiles: 13,
        };
        let (tag, q) = decode_numeric(&encode_numeric(2, &r)).unwrap();
        assert_eq!(tag, 2);
        assert_eq!(q.start_level, 3);
        assert_eq!(q.vals, r.vals);
        assert_eq!(q.mode_mix, r.mode_mix);
        assert_eq!(
            (q.probes, q.merge_steps, q.batches, q.gemm_tiles),
            (7, 11, 4, 13)
        );

        let lo = vec![0u32, 1, 0, 2];
        assert_eq!(decode_levels(&encode_levels(&lo)).unwrap(), lo);
    }

    #[test]
    fn recovery_log_round_trips_every_action() {
        let mut log = RecoveryLog::default();
        log.record(
            Phase::Symbolic,
            RecoveryAction::ChunkBackoff {
                backoffs: 2,
                final_chunk: 64,
            },
        );
        log.record(Phase::Symbolic, RecoveryAction::StreamedOutput);
        log.record(
            Phase::Symbolic,
            RecoveryAction::EngineDegraded {
                from: "ooc_dynamic".into(),
                to: "ooc".into(),
            },
        );
        log.record(
            Phase::Numeric,
            RecoveryAction::FormatDegraded {
                from: "dense".into(),
                to: "sparse_merge".into(),
            },
        );
        log.record(
            Phase::Numeric,
            RecoveryAction::PivotRepaired {
                col: 5,
                value: 1e-8,
                magnitude: 3e-9,
            },
        );
        log.record(
            Phase::Numeric,
            RecoveryAction::PivotEscalated {
                from: "none".into(),
                to: "threshold(tau=0.1)".into(),
            },
        );
        log.record(
            Phase::Numeric,
            RecoveryAction::PivotPerturbed {
                cols: 3,
                max_delta: 2e-7,
            },
        );
        log.record(
            Phase::Symbolic,
            RecoveryAction::PatternExpanded {
                added: 17,
                rounds: 2,
            },
        );
        log.record(
            Phase::Symbolic,
            RecoveryAction::Resymbolic { abandoned: 400 },
        );
        let decoded = decode_recovery(&encode_recovery(&log)).unwrap();
        assert_eq!(decoded.len(), log.len());
        let evs: Vec<&RecoveryEvent> = decoded.events().iter().collect();
        assert!(matches!(
            evs[0].action,
            RecoveryAction::ChunkBackoff {
                backoffs: 2,
                final_chunk: 64
            }
        ));
        assert!(matches!(
            &evs[4].action,
            RecoveryAction::PivotRepaired { col: 5, value, magnitude }
                if *value == 1e-8 && *magnitude == 3e-9
        ));
        assert!(
            matches!(&evs[5].action, RecoveryAction::PivotEscalated { to, .. } if to.contains("tau=0.1"))
        );
        assert!(matches!(
            &evs[6].action,
            RecoveryAction::PivotPerturbed { cols: 3, max_delta } if *max_delta == 2e-7
        ));
        assert!(matches!(
            evs[7].action,
            RecoveryAction::PatternExpanded {
                added: 17,
                rounds: 2
            }
        ));
        assert!(matches!(
            evs[8].action,
            RecoveryAction::Resymbolic { abandoned: 400 }
        ));
    }

    #[test]
    fn truncated_sections_are_typed_corrupt_errors() {
        let full = encode_meta(PhaseMark::Symbolic, 1.0);
        for cut in 0..full.len() {
            let e = decode_meta(&full[..cut]).unwrap_err();
            assert!(
                matches!(e, GpluError::CheckpointCorrupt(_)),
                "cut at {cut} gave {e:?}"
            );
        }
        // Trailing garbage is equally corrupt.
        let mut padded = full.clone();
        padded.push(0);
        assert!(matches!(
            decode_meta(&padded),
            Err(GpluError::CheckpointCorrupt(_))
        ));
    }

    #[test]
    fn cadence_zero_is_rejected() {
        let opts = CheckpointOptions::new("/tmp/x").every(0);
        assert!(matches!(opts.validate(), Err(GpluError::Checkpoint(_))));
    }

    #[test]
    fn session_survives_an_empty_resume_directory() {
        let dir = tempdir();
        let a = small();
        let gpu = gpu_for(&a);
        let opts = CheckpointOptions::new(&dir).resume(true);
        let sess =
            CheckpointSession::open(&opts, &a, &LuOptions::default(), &gpu, &NoopSink).unwrap();
        assert!(sess.resume.is_none(), "nothing to resume from");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_refuses_a_different_matrix() {
        let dir = tempdir();
        let a = small();
        let gpu = gpu_for(&a);
        let lu_opts = LuOptions::default();
        let mut sess =
            CheckpointSession::open(&CheckpointOptions::new(&dir), &a, &lu_opts, &gpu, &NoopSink)
                .unwrap();
        sess.set_preprocess(&PreState {
            matrix: a.clone(),
            p_row: Permutation::identity(3),
            p_col: Permutation::identity(3),
            repaired: 0,
            time_ns: 0.0,
        });
        sess.cut(&gpu, &NoopSink, PhaseMark::Preprocessed, None)
            .unwrap();

        let mut b = small();
        b.vals[0] = 9.0;
        let err = CheckpointSession::open(
            &CheckpointOptions::new(&dir).resume(true),
            &b,
            &lu_opts,
            &gpu,
            &NoopSink,
        )
        .unwrap_err();
        assert!(matches!(err, GpluError::CheckpointMismatch(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cut_then_resume_replays_the_durable_sections() {
        let dir = tempdir();
        let a = small();
        let gpu = gpu_for(&a);
        let lu_opts = LuOptions::default();
        let mut sess =
            CheckpointSession::open(&CheckpointOptions::new(&dir), &a, &lu_opts, &gpu, &NoopSink)
                .unwrap();
        sess.set_preprocess(&PreState {
            matrix: a.clone(),
            p_row: Permutation::identity(3),
            p_col: Permutation::identity(3),
            repaired: 0,
            time_ns: 5.0,
        });
        let sym = SymbolicResult::from_patterns(
            &a,
            vec![vec![0], vec![1], vec![0, 2]],
            SymbolicMetrics {
                steps: 3,
                edges: 4,
                frontiers: 3,
            },
        );
        sess.set_symbolic(&sym, 2, 2);
        sess.set_levels(&[0, 0, 1]);
        sess.cut(&gpu, &NoopSink, PhaseMark::Levelized, None)
            .unwrap();

        let resumed = CheckpointSession::open(
            &CheckpointOptions::new(&dir).resume(true),
            &a,
            &lu_opts,
            &gpu,
            &NoopSink,
        )
        .unwrap();
        let state = resumed.resume.expect("resume state");
        assert_eq!(state.mark, PhaseMark::Levelized);
        assert_eq!(state.pre.time_ns, 5.0);
        assert_eq!(state.level_of.as_deref(), Some(&[0u32, 0, 1][..]));
        let done = state.symbolic.expect("symbolic section");
        assert_eq!(done.result.filled.col_idx, sym.filled.col_idx);
        assert_eq!(done.result.filled.vals, sym.filled.vals);
        assert_eq!((done.chunk_size, done.iterations), (2, 2));
        assert!(state.numeric.is_none(), "no numeric partial at this mark");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir() -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "gplu-core-ckpt-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }
}
