//! # gplu-core
//!
//! The paper's primary contribution as a library: **end-to-end sparse LU
//! factorization on a (simulated) GPU**, for matrices whose symbolic
//! intermediates exceed device memory.
//!
//! The pipeline (the paper's Figure 2):
//!
//! 1. **Pre-processing** ([`preprocess()`]) — fill-reducing row/column
//!    permutation and diagonal repair, on the host,
//! 2. **Symbolic factorization** — out-of-core on the GPU (Algorithm 3),
//!    optionally with dynamic parallelism assignment (Algorithm 4),
//! 3. **Levelization** — Kahn's topological sort on the GPU with dynamic
//!    parallelism (Algorithm 5),
//! 4. **Numeric factorization** — one thread block per column over the
//!    level schedule, switching from the dense-column format to sorted
//!    CSC with binary search when
//!    `n > L / (TB_max · sizeof(dtype))` (Algorithm 6),
//! 5. **Solve** — the resulting triangular systems, host-side.
//!
//! ```
//! use gplu_core::{LuFactorization, LuOptions};
//! use gplu_sim::{Gpu, GpuConfig};
//! use gplu_sparse::gen::random::random_dominant;
//! use gplu_sparse::verify::check_solution;
//!
//! let a = random_dominant(500, 4.0, 7);
//! let gpu = Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()));
//! let f = LuFactorization::compute(&gpu, &a, &LuOptions::default()).unwrap();
//! let b = a.spmv(&vec![1.0; 500]);
//! let x = f.solve(&b).unwrap();
//! assert!(check_solution(&a, &x, &b, 1e-8));
//! println!("{}", f.report.summary());
//! ```

pub mod checkpoint;
pub mod drift;
pub mod error;
pub mod fleet;
pub mod pipeline;
pub mod plan_codec;
pub mod preprocess;
pub mod recovery;
pub mod refactor;
pub mod report;
pub mod telemetry;

pub use checkpoint::{
    matrix_fingerprint, pattern_fingerprint, CheckpointOptions, CheckpointSession, PhaseMark,
    ResumeState,
};
pub use drift::{DriftProfiler, DriftRow, DriftTable, DRIFT_FLAG_THRESHOLD};
pub use error::GpluError;
pub use gplu_numeric::{PivotPolicy, DEFAULT_PIVOT_TAU};
pub use pipeline::{LuFactorization, LuOptions, NumericFormat, ResidualGate, SymbolicEngine};
pub use plan_codec::{decode_plan, encode_plan, plan_matches, PLAN_SCHEMA_VERSION};
pub use preprocess::{preprocess, PreprocessOptions, PreprocessOutcome};
pub use recovery::{Phase, RecoveryAction, RecoveryEvent, RecoveryLog};
pub use refactor::RefactorPlan;
pub use report::{FleetReport, PhaseReport, PhaseStats};
pub use telemetry::{extract_levels, LevelRecord, RunReport, SCHEMA_VERSION};
