//! Cost-model drift profiler: predicted-vs-observed simulated time per
//! span kind.
//!
//! The planning heuristics (`Auto` format selection, `blocked_crossover`,
//! the symbolic chunk split) all reason about the [`CostModel`]'s
//! *analytic* prices — flop rates, bandwidth roofs, launch overheads —
//! while the simulator actually *schedules* the work (greedy list
//! scheduling onto `tb_max` slots, makespan quantization, fault
//! serialization). The two agree closely when the model is calibrated;
//! when either side rots (a kernel re-priced without re-fitting the
//! model, a scheduler change, a new fault term), they diverge — and
//! nothing noticed, because nothing compared them. This module is the
//! comparator.
//!
//! Instrumented span sites (`gplu-symbolic` chunks, `gplu-numeric` levels
//! and trisolves) emit `drift.sample` instants carrying the span's
//! observed scheduled time and the analytic prediction over the same
//! interval (both clocks come from [`Gpu::clocks`], read atomically).
//! [`DriftProfiler`] is a [`TraceSink`] that folds those samples into
//! per-kind accumulators; [`DriftProfiler::table`] reduces them to a
//! [`DriftTable`] of geometric-mean observed/predicted ratios, flagging
//! any kind whose geomean drifts more than [`DRIFT_FLAG_THRESHOLD`] from
//! parity.
//!
//! Span kinds: `symbolic_chunk`, `numeric_level`, `gemm_tile` (levels
//! that executed BLAS-3 tiles — a distinct pricing path), `trisolve`.
//!
//! [`CostModel`]: gplu_sim::CostModel
//! [`Gpu::clocks`]: gplu_sim::Gpu::clocks

use gplu_trace::{AttrValue, EventKind, JsonValue, TraceSink};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Geomean drift above which a span kind is flagged as mis-calibrated:
/// `|geomean(observed/predicted) - 1| > 0.10`.
pub const DRIFT_FLAG_THRESHOLD: f64 = 0.10;

/// Schema version of the drift table JSON.
pub const DRIFT_SCHEMA_VERSION: u64 = 1;

#[derive(Debug, Default, Clone, Copy)]
struct KindAccum {
    samples: u64,
    predicted_ns: f64,
    observed_ns: f64,
    /// Σ ln(observed/predicted) — the geomean is `exp(sum / samples)`.
    sum_ln_ratio: f64,
}

/// A [`TraceSink`] that accumulates `drift.sample` instants and ignores
/// everything else. Spans, counters and unrelated instants cost one
/// static-string comparison each, so threading the profiler through a hot
/// pipeline is cheap; samples take a short mutex on a four-entry map.
#[derive(Debug, Default)]
pub struct DriftProfiler {
    kinds: Mutex<BTreeMap<&'static str, KindAccum>>,
}

impl DriftProfiler {
    /// An empty profiler.
    pub fn new() -> DriftProfiler {
        DriftProfiler::default()
    }

    /// Reduces the accumulated samples to a drift table, flagging kinds
    /// past `threshold` (conventionally [`DRIFT_FLAG_THRESHOLD`]).
    pub fn table(&self, threshold: f64) -> DriftTable {
        let kinds = self.kinds.lock().expect("drift lock");
        let rows = kinds
            .iter()
            .map(|(kind, acc)| {
                let geomean = (acc.sum_ln_ratio / acc.samples as f64).exp();
                DriftRow {
                    kind: kind.to_string(),
                    samples: acc.samples,
                    predicted_ns: acc.predicted_ns,
                    observed_ns: acc.observed_ns,
                    geomean_ratio: geomean,
                    drift: (geomean - 1.0).abs(),
                    flagged: (geomean - 1.0).abs() > threshold,
                }
            })
            .collect();
        DriftTable { threshold, rows }
    }
}

impl TraceSink for DriftProfiler {
    fn enabled(&self) -> bool {
        true
    }

    fn event(
        &self,
        name: &'static str,
        _cat: &'static str,
        kind: EventKind,
        _ts_ns: f64,
        attrs: &[(&'static str, AttrValue)],
    ) {
        if name != "drift.sample" || !matches!(kind, EventKind::Instant) {
            return;
        }
        let mut span_kind = None;
        let mut predicted = None;
        let mut observed = None;
        for (key, value) in attrs {
            match (*key, value) {
                ("kind", AttrValue::Sym(s)) => span_kind = Some(*s),
                ("predicted_ns", v) => predicted = v.as_f64(),
                ("observed_ns", v) => observed = v.as_f64(),
                _ => {}
            }
        }
        let (Some(span_kind), Some(predicted), Some(observed)) = (span_kind, predicted, observed)
        else {
            return; // malformed sample: drop, don't poison the table
        };
        if observed <= 0.0 {
            return;
        }
        // A zero prediction with observed time is infinite drift; clamp
        // the denominator so the ratio stays finite and screams loudly.
        let ratio = observed / predicted.max(1e-9);
        let mut kinds = self.kinds.lock().expect("drift lock");
        let acc = kinds.entry(span_kind).or_default();
        acc.samples += 1;
        acc.predicted_ns += predicted;
        acc.observed_ns += observed;
        acc.sum_ln_ratio += ratio.ln();
    }
}

/// One span kind's drift summary.
#[derive(Debug, Clone)]
pub struct DriftRow {
    /// Span kind (`symbolic_chunk`, `numeric_level`, `gemm_tile`,
    /// `trisolve`).
    pub kind: String,
    /// Samples accumulated.
    pub samples: u64,
    /// Total analytic (predicted) simulated ns across samples.
    pub predicted_ns: f64,
    /// Total scheduled (observed) simulated ns across samples.
    pub observed_ns: f64,
    /// Geometric mean of per-sample observed/predicted ratios.
    pub geomean_ratio: f64,
    /// `|geomean_ratio - 1|`.
    pub drift: f64,
    /// True when `drift` exceeds the table's threshold.
    pub flagged: bool,
}

/// The reduced drift table the service report embeds.
#[derive(Debug, Clone)]
pub struct DriftTable {
    /// Flagging threshold the rows were evaluated against.
    pub threshold: f64,
    /// One row per span kind that produced samples, sorted by kind.
    pub rows: Vec<DriftRow>,
}

impl DriftTable {
    /// True when any span kind drifted past the threshold.
    pub fn any_flagged(&self) -> bool {
        self.rows.iter().any(|r| r.flagged)
    }

    /// The table as JSON (the `drift` section of the service report).
    pub fn to_json(&self) -> JsonValue {
        let rows: Vec<JsonValue> = self
            .rows
            .iter()
            .map(|r| {
                JsonValue::obj()
                    .set("kind", r.kind.as_str())
                    .set("samples", r.samples)
                    .set("predicted_ns", r.predicted_ns)
                    .set("observed_ns", r.observed_ns)
                    .set("geomean_ratio", r.geomean_ratio)
                    .set("drift", r.drift)
                    .set("flagged", r.flagged)
            })
            .collect();
        JsonValue::obj()
            .set("schema_version", DRIFT_SCHEMA_VERSION)
            .set("threshold", self.threshold)
            .set("kinds", rows)
    }

    /// A terminal-friendly rendering for `serve --stress` summaries.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("cost-model drift (geomean observed/predicted):\n");
        if self.rows.is_empty() {
            out.push_str("  no samples\n");
            return out;
        }
        for r in &self.rows {
            writeln!(
                out,
                "  {:<16} {:>8} samples  ratio {:.4}  drift {:>5.2}%{}",
                r.kind,
                r.samples,
                r.geomean_ratio,
                r.drift * 100.0,
                if r.flagged { "  ** FLAGGED **" } else { "" },
            )
            .expect("string write");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(p: &DriftProfiler, kind: &'static str, predicted: f64, observed: f64) {
        p.instant(
            "drift.sample",
            "drift",
            0.0,
            &[
                ("kind", AttrValue::Sym(kind)),
                ("predicted_ns", AttrValue::F64(predicted)),
                ("observed_ns", AttrValue::F64(observed)),
            ],
        );
    }

    #[test]
    fn accumulates_geomean_per_kind_and_flags_past_threshold() {
        let p = DriftProfiler::new();
        // numeric_level: ratios 2.0 and 0.5 — geomean exactly 1.0.
        sample(&p, "numeric_level", 100.0, 200.0);
        sample(&p, "numeric_level", 100.0, 50.0);
        // trisolve: consistent 20% overshoot.
        sample(&p, "trisolve", 1000.0, 1200.0);
        let table = p.table(DRIFT_FLAG_THRESHOLD);
        assert_eq!(table.rows.len(), 2);
        let level = &table.rows[0];
        assert_eq!(level.kind, "numeric_level");
        assert_eq!(level.samples, 2);
        assert!((level.geomean_ratio - 1.0).abs() < 1e-12);
        assert!(!level.flagged);
        let tri = &table.rows[1];
        assert!((tri.geomean_ratio - 1.2).abs() < 1e-12);
        assert!(tri.flagged);
        assert!(table.any_flagged());
    }

    #[test]
    fn ignores_unrelated_events_and_malformed_samples() {
        let p = DriftProfiler::new();
        p.span_begin("numeric.level", "level", 0.0, &[]);
        p.span_end("numeric.level", "level", 1.0, &[]);
        p.counter("service.queue_depth", "service", 2.0, 4.0);
        p.instant("drift.sample", "drift", 0.0, &[]); // missing attrs
        sample(&p, "trisolve", 100.0, 0.0); // zero observed time
        assert!(p.table(DRIFT_FLAG_THRESHOLD).rows.is_empty());
    }

    #[test]
    fn table_json_has_the_schema_fields() {
        let p = DriftProfiler::new();
        sample(&p, "symbolic_chunk", 10.0, 10.5);
        let json = p.table(DRIFT_FLAG_THRESHOLD).to_json();
        assert_eq!(
            json.get("schema_version").and_then(JsonValue::as_u64),
            Some(DRIFT_SCHEMA_VERSION)
        );
        let kinds = json.get("kinds").and_then(JsonValue::as_arr).expect("arr");
        assert_eq!(kinds.len(), 1);
        assert_eq!(
            kinds[0].get("kind").and_then(JsonValue::as_str),
            Some("symbolic_chunk")
        );
        assert_eq!(kinds[0].get("flagged"), Some(&JsonValue::Bool(false)));
    }
}
