//! The multi-device pipeline: [`LuFactorization::compute_fleet`] runs the
//! same phases as [`LuFactorization::compute`] across a [`DeviceFleet`].
//!
//! Sharding never touches values — symbolic fill counting splits by
//! source-row range and the numeric phase splits each schedule level by
//! column range, but both compute on host-deterministic state, so the
//! factors are **bit-identical** to the single-device pipeline for every
//! engine and device count (the `fleet` integration suite proves it).
//! What the fleet changes is *pricing*: each device's clock advances only
//! for its own shard, and every level barrier / fill-count merge is
//! charged on the NVLink interconnect terms of the cost model.
//!
//! Device deaths (injected OOM or launch faults) reshard the dead
//! device's work onto the survivors and land in the recovery log as
//! [`RecoveryAction::DeviceLost`]; only an injected crash or whole-fleet
//! death is terminal. The fleet path is a cold run: checkpoint/resume and
//! the captured-schedule replay fast path remain single-device features.

use crate::error::GpluError;
use crate::pipeline::{
    add_to_diag, bump_diag, detect_block_plan, format_name, ladder_exhausted, policy_desc,
    trace_recovery, LuFactorization, LuOptions, NumericFormat,
};
use crate::preprocess::{preprocess, PreprocessOutcome};
use crate::recovery::{Phase, RecoveryAction, RecoveryLog};
use crate::report::{FleetReport, PhaseReport};
use gplu_numeric::{
    discover_pivots, factorize_fleet_blocked, factorize_fleet_dense, factorize_fleet_merge,
    factorize_fleet_sparse, BlockPlan, NumericError, PivotPolicy, PivotRule, DEFAULT_PIVOT_TAU,
};
use gplu_schedule::{levelize_gpu_traced, DepGraph, Levels};
use gplu_sim::{DeviceFleet, SimError, SimTime};
use gplu_sparse::convert::csr_to_csc;
use gplu_sparse::perm::permute_csr;
use gplu_sparse::verify::residual_probe;
use gplu_sparse::{Permutation, SparseError};
use gplu_symbolic::{expand_fill, symbolic_fleet, Partition};
use gplu_trace::{AttrValue, TraceSink, NOOP};

/// Advances every live device's clock by `t` — host-side work (ordering,
/// pivot discovery, pattern expansion) blocks the whole fleet equally.
fn advance_all(fleet: &DeviceFleet, t: SimTime) {
    for d in fleet.alive() {
        fleet.device(d).advance(t);
    }
}

/// First live device — the one whose per-phase statistics deltas stand in
/// for "the GPU" in the single-device report fields.
fn rep_device(fleet: &DeviceFleet) -> Result<usize, GpluError> {
    fleet
        .alive()
        .first()
        .copied()
        .ok_or_else(|| GpluError::Sim(SimError::BadLaunch("no live devices in fleet".into())))
}

fn record_device_losses(
    fleet: &DeviceFleet,
    trace: &dyn TraceSink,
    recovery: &mut RecoveryLog,
    phase: Phase,
    died: &[usize],
    resharded: usize,
) {
    for &device in died {
        let action = RecoveryAction::DeviceLost { device, resharded };
        trace_recovery(trace, fleet.makespan().as_ns(), phase, &action);
        recovery.record(phase, action);
    }
}

impl LuFactorization {
    /// Runs the full pipeline across `fleet`. See the module docs for the
    /// sharding discipline; the result is bit-identical to
    /// [`LuFactorization::compute`] on one device with the same options.
    ///
    /// [`crate::PhaseReport::fleet`] carries the per-device accounting
    /// (busy times, deaths, interconnect traffic).
    pub fn compute_fleet(
        fleet: &DeviceFleet,
        a: &gplu_sparse::Csr,
        opts: &LuOptions,
    ) -> Result<Self, GpluError> {
        Self::compute_fleet_traced(fleet, a, opts, &NOOP)
    }

    /// [`LuFactorization::compute_fleet`] with telemetry: the same
    /// `phase.*` spans as the single-device pipeline, with a `devices`
    /// attribute on the per-level numeric spans.
    pub fn compute_fleet_traced(
        fleet: &DeviceFleet,
        a: &gplu_sparse::Csr,
        opts: &LuOptions,
        trace: &dyn TraceSink,
    ) -> Result<Self, GpluError> {
        // The same residual-gated escalation ladder as the single-device
        // `compute_inner`, minus durability (the fleet path is cold).
        let mut rungs: Vec<PivotPolicy> = vec![opts.pivot];
        if opts.gate.enabled && opts.gate.escalate {
            match opts.pivot {
                PivotPolicy::NoPivot | PivotPolicy::Static { .. } => {
                    rungs.push(PivotPolicy::Threshold {
                        tau: DEFAULT_PIVOT_TAU,
                    });
                    rungs.push(PivotPolicy::Threshold { tau: 1.0 });
                }
                PivotPolicy::Threshold { tau } if tau < 1.0 => {
                    rungs.push(PivotPolicy::Threshold { tau: 1.0 });
                }
                PivotPolicy::Threshold { .. } => {}
            }
            let floor = (a.frobenius_norm() * 1e-8).max(f64::MIN_POSITIVE);
            rungs.push(PivotPolicy::Static { threshold: floor });
        }

        let total = rungs.len();
        let mut best_residual = f64::INFINITY;
        for (i, &policy) in rungs.iter().enumerate() {
            let mut seed = RecoveryLog::default();
            if i > 0 {
                let action = RecoveryAction::PivotEscalated {
                    from: policy_desc(rungs[i - 1]),
                    to: policy_desc(policy),
                };
                trace_recovery(trace, fleet.makespan().as_ns(), Phase::Numeric, &action);
                seed.record(Phase::Numeric, action);
            }
            match compute_fleet_once(fleet, a, opts, policy, trace, seed) {
                Ok(mut f) => {
                    if !opts.gate.enabled {
                        return Ok(f);
                    }
                    let r = residual_probe(&f.preprocessed, &f.lu, opts.gate.probes.max(1));
                    f.report.residual = Some(r);
                    let pass = r.is_finite() && r <= opts.gate.threshold;
                    if trace.enabled() {
                        trace.instant(
                            "numeric.residual_gate",
                            "verify",
                            fleet.makespan().as_ns(),
                            &[
                                ("residual", r.into()),
                                ("threshold", opts.gate.threshold.into()),
                                ("pass", pass.into()),
                                ("policy", AttrValue::Str(policy_desc(policy))),
                            ],
                        );
                    }
                    if pass {
                        return Ok(f);
                    }
                    best_residual = best_residual.min(r);
                }
                Err(e @ GpluError::Crashed { .. }) => return Err(e),
                Err(e) => {
                    let escalatable = matches!(
                        e,
                        GpluError::SingularPivot { .. }
                            | GpluError::Sparse(SparseError::ZeroPivot { .. })
                            | GpluError::Sparse(SparseError::ZeroDiagonal { .. })
                    );
                    if !escalatable || i + 1 == total {
                        return Err(e);
                    }
                }
            }
        }
        Err(GpluError::NumericallySingular {
            residual: best_residual,
            threshold: opts.gate.threshold,
            attempts: total,
        })
    }
}

/// One fleet pipeline pass under a fixed pivoting policy.
fn compute_fleet_once(
    fleet: &DeviceFleet,
    a: &gplu_sparse::Csr,
    opts: &LuOptions,
    policy: PivotPolicy,
    trace: &dyn TraceSink,
    seed_recovery: RecoveryLog,
) -> Result<LuFactorization, GpluError> {
    let mut report = PhaseReport::default();
    let mut recovery = seed_recovery;
    let devices = fleet.len();
    let before: Vec<_> = fleet.devices().iter().map(|g| g.stats()).collect();
    let ic_before = fleet.stats().interconnect.clone();
    let mut resharded_rows = 0usize;
    let mut resharded_cols = 0usize;
    let mut dead: Vec<usize> = Vec::new();

    // 1. Pre-processing (host): identical to the single-device pipeline;
    // every live device waits on it.
    let lead = rep_device(fleet)?;
    trace.span_begin("phase.preprocess", "phase", fleet.makespan().as_ns(), &[]);
    let PreprocessOutcome {
        mut matrix,
        mut p_row,
        p_col,
        repaired,
        time,
    } = preprocess(a, &opts.preprocess, fleet.device(lead).cost())?;
    advance_all(fleet, time);
    report.preprocess = time;
    report.repaired_diagonals = repaired;
    trace.span_end(
        "phase.preprocess",
        "phase",
        fleet.makespan().as_ns(),
        &[("repaired_diagonals", repaired.into())],
    );
    report.phase_stats.preprocess = fleet.device(lead).stats().since(&before[lead]);

    // 2. Symbolic fill counting, sharded by source-row range across the
    // live devices (GSoFa-style), with the fill-count merge priced on the
    // interconnect. Device deaths reshard inside `symbolic_fleet`; only a
    // whole-fleet death or an injected crash surfaces as an error.
    let sym_dev = rep_device(fleet)?;
    let sym_before = fleet.device(sym_dev).stats();
    trace.span_begin(
        "phase.symbolic",
        "phase",
        fleet.makespan().as_ns(),
        &[
            ("engine", "FleetOoc".into()),
            ("devices", fleet.n_alive().into()),
        ],
    );
    let sym_out = match symbolic_fleet(fleet, &matrix, Partition::Blocked) {
        Ok(o) => o,
        Err(e @ SimError::Crashed { .. }) => return Err(e.into()),
        Err(e) => return Err(ladder_exhausted(Phase::Symbolic, 1, e)),
    };
    record_device_losses(
        fleet,
        trace,
        &mut recovery,
        Phase::Symbolic,
        &sym_out.died,
        sym_out.resharded_rows,
    );
    dead.extend(&sym_out.died);
    resharded_rows += sym_out.resharded_rows;
    report.symbolic = sym_out.time;
    report.symbolic_iterations = 1;
    trace.span_end(
        "phase.symbolic",
        "phase",
        fleet.makespan().as_ns(),
        &[
            ("engine", "FleetOoc".into()),
            ("devices", fleet.n_alive().into()),
            ("efficiency", sym_out.efficiency.into()),
        ],
    );
    let mut symbolic = sym_out.result;
    report.phase_stats.symbolic = fleet.device(sym_dev).stats().since(&sym_before);

    // 2b. Threshold-pivot discovery: the host pre-pass is identical to
    // the single-device pipeline (it is what keeps the fleet bit-exact
    // under pivoting); a non-closing in-place expansion re-runs the
    // *fleet* symbolic phase on the permuted matrix.
    if let PivotPolicy::Threshold { tau } = policy {
        trace.span_begin(
            "phase.pivot_discovery",
            "phase",
            fleet.makespan().as_ns(),
            &[("tau", tau.into())],
        );
        let disc = discover_pivots(&matrix, tau).map_err(|e| match e {
            SparseError::ZeroPivot { col } => GpluError::SingularPivot {
                col,
                level: usize::MAX,
            },
            other => GpluError::Sparse(other),
        });
        if let Ok(d) = &disc {
            let cost = fleet
                .device(rep_device(fleet)?)
                .cost()
                .pivot_discovery_ns(d.flops);
            advance_all(fleet, SimTime::from_ns(cost));
        }
        trace.span_end(
            "phase.pivot_discovery",
            "phase",
            fleet.makespan().as_ns(),
            &[
                (
                    "swaps",
                    (disc.as_ref().map_or(0, |d| d.swaps) as u64).into(),
                ),
                ("ok", disc.is_ok().into()),
            ],
        );
        let disc = disc?;
        report.pivot_swaps = disc.swaps;
        if disc.swaps > 0 {
            let p_pivot = Permutation::from_forward(disc.pinv).map_err(|e| {
                GpluError::Input(format!("pivot discovery produced a non-bijective map: {e}"))
            })?;
            let id = Permutation::identity(matrix.n_cols());
            matrix = permute_csr(&matrix, &p_pivot, &id);
            p_row = p_row.then(&p_pivot);
            let filled_perm = permute_csr(&symbolic.filled, &p_pivot, &id);
            let budget = 4 * filled_perm.nnz() + 256;
            let expansion = expand_fill(&filled_perm, budget);
            let expand_cost = fleet
                .device(rep_device(fleet)?)
                .cost()
                .pattern_expand_ns((filled_perm.nnz() + expansion.added) as u64);
            advance_all(fleet, SimTime::from_ns(expand_cost));
            if expansion.closed {
                report.pattern_expanded = expansion.added;
                let action = RecoveryAction::PatternExpanded {
                    added: expansion.added,
                    rounds: expansion.rounds,
                };
                trace_recovery(trace, fleet.makespan().as_ns(), Phase::Symbolic, &action);
                recovery.record(Phase::Symbolic, action);
                symbolic.filled = expansion.filled;
            } else {
                let action = RecoveryAction::Resymbolic {
                    abandoned: expansion.added,
                };
                trace_recovery(trace, fleet.makespan().as_ns(), Phase::Symbolic, &action);
                recovery.record(Phase::Symbolic, action);
                let re = match symbolic_fleet(fleet, &matrix, Partition::Blocked) {
                    Ok(o) => o,
                    Err(e @ SimError::Crashed { .. }) => return Err(e.into()),
                    Err(e) => return Err(ladder_exhausted(Phase::Symbolic, 1, e)),
                };
                record_device_losses(
                    fleet,
                    trace,
                    &mut recovery,
                    Phase::Symbolic,
                    &re.died,
                    re.resharded_rows,
                );
                dead.extend(&re.died);
                resharded_rows += re.resharded_rows;
                report.symbolic += re.time;
                symbolic = re.result;
            }
        }
    }
    report.fill_nnz = symbolic.fill_nnz();
    report.new_fill_ins = symbolic.new_fill_ins(&matrix);

    // 3. Levelization on the representative device (the dependency DAG is
    // global state every device needs; replicating the run would change
    // nothing), then a barrier so the whole fleet enters the numeric
    // phase together.
    let lvl_dev = rep_device(fleet)?;
    let lvl_before = fleet.device(lvl_dev).stats();
    trace.span_begin("phase.levelize", "phase", fleet.makespan().as_ns(), &[]);
    let dep = DepGraph::build(&symbolic.filled);
    let lvl = levelize_gpu_traced(fleet.device(lvl_dev), &dep, trace).map_err(|e| match e {
        SimError::OutOfMemory { .. } => GpluError::DeviceOom {
            phase: Phase::Levelize,
            attempts: 1,
        },
        other => GpluError::from(other),
    })?;
    fleet.barrier();
    report.levelize = lvl.time;
    report.n_levels = lvl.levels.n_levels();
    report.max_level_width = lvl.levels.max_width();
    trace.span_end(
        "phase.levelize",
        "phase",
        fleet.makespan().as_ns(),
        &[
            ("levels", report.n_levels.into()),
            ("max_width", report.max_level_width.into()),
        ],
    );
    report.phase_stats.levelize = fleet.device(lvl_dev).stats().since(&lvl_before);
    let levels: Levels = lvl.levels;

    // 4. Numeric factorization, each level's columns sharded across the
    // live devices, with the boundary-column all-gather priced at every
    // level barrier. The format ladder and singular-pivot repair mirror
    // the single-device pipeline.
    let mut pattern = csr_to_csc(&symbolic.filled);
    let num_dev = rep_device(fleet)?;
    let mut block_plan: Option<BlockPlan> = None;
    let format_ladder: &[NumericFormat] = match opts.format {
        NumericFormat::Auto => {
            if fleet
                .device(num_dev)
                .config()
                .should_use_sparse_format(matrix.n_rows())
            {
                let plan =
                    detect_block_plan(fleet.device(num_dev), &pattern, opts.block_threshold, trace);
                let fill_density = pattern.nnz() as f64 / pattern.n_cols().max(1) as f64;
                if fleet
                    .device(num_dev)
                    .cost()
                    .blocked_crossover(fill_density, plan.mean_width())
                {
                    block_plan = Some(plan);
                    &[NumericFormat::SparseBlocked, NumericFormat::SparseMerge]
                } else {
                    &[NumericFormat::SparseMerge]
                }
            } else {
                &[NumericFormat::Dense, NumericFormat::SparseMerge]
            }
        }
        NumericFormat::Dense => &[NumericFormat::Dense, NumericFormat::SparseMerge],
        NumericFormat::Sparse => &[NumericFormat::Sparse],
        NumericFormat::SparseMerge => &[NumericFormat::SparseMerge],
        NumericFormat::SparseBlocked => {
            block_plan = Some(detect_block_plan(
                fleet.device(num_dev),
                &pattern,
                opts.block_threshold,
                trace,
            ));
            &[NumericFormat::SparseBlocked, NumericFormat::SparseMerge]
        }
    };
    // Block detection advanced only the representative clock; re-sync.
    fleet.barrier();
    let num_before = fleet.device(num_dev).stats();
    trace.span_begin(
        "phase.numeric",
        "phase",
        fleet.makespan().as_ns(),
        &[
            ("format", format_name(opts.format).into()),
            ("devices", fleet.n_alive().into()),
        ],
    );
    let rule = match policy {
        PivotPolicy::Static { threshold } => PivotRule::Perturb { threshold },
        _ => PivotRule::Exact,
    };
    let mut repair_attempted = false;
    let (numeric_fleet, used_format) = 'numeric: loop {
        let mut last_err: Option<SimError> = None;
        let mut attempts = 0usize;
        for (i, &format) in format_ladder.iter().enumerate() {
            if i > 0 {
                for d in fleet.alive() {
                    fleet.device(d).mem.reset();
                }
                let action = RecoveryAction::FormatDegraded {
                    from: format_name(format_ladder[i - 1]).to_string(),
                    to: format_name(format).to_string(),
                };
                trace_recovery(trace, fleet.makespan().as_ns(), Phase::Numeric, &action);
                recovery.record(Phase::Numeric, action);
            }
            attempts += 1;
            let run = match format {
                NumericFormat::Dense => {
                    factorize_fleet_dense(fleet, &pattern, &levels, trace, rule)
                }
                NumericFormat::Sparse => {
                    factorize_fleet_sparse(fleet, &pattern, &levels, trace, rule)
                }
                NumericFormat::SparseBlocked => factorize_fleet_blocked(
                    fleet,
                    &pattern,
                    &levels,
                    block_plan.as_ref().expect("blocked rung carries a plan"),
                    trace,
                    rule,
                ),
                NumericFormat::Auto | NumericFormat::SparseMerge => {
                    factorize_fleet_merge(fleet, &pattern, &levels, trace, rule)
                }
            };
            match run {
                Ok(out) => break 'numeric (out, format),
                Err(NumericError::Sim(e)) => {
                    if matches!(e, SimError::Crashed { .. }) {
                        return Err(e.into());
                    }
                    last_err = Some(e);
                }
                Err(NumericError::SingularPivot { col, level }) => {
                    let value = opts.preprocess.repair_value;
                    let old = if opts.preprocess.repair_singular && !repair_attempted {
                        bump_diag(&mut matrix, &mut pattern, col, value)
                    } else {
                        None
                    };
                    if let Some(old) = old {
                        repair_attempted = true;
                        for d in fleet.alive() {
                            fleet.device(d).mem.reset();
                        }
                        let action = RecoveryAction::PivotRepaired {
                            col,
                            value,
                            magnitude: (value - old).abs(),
                        };
                        trace_recovery(trace, fleet.makespan().as_ns(), Phase::Numeric, &action);
                        recovery.record(Phase::Numeric, action);
                        report.repaired_diagonals += 1;
                        continue 'numeric;
                    }
                    return Err(GpluError::SingularPivot { col, level });
                }
                Err(NumericError::Input(msg)) => return Err(GpluError::Input(msg)),
            }
        }
        let last = last_err.unwrap_or(SimError::BadLaunch("no numeric format ran".into()));
        return Err(ladder_exhausted(Phase::Numeric, attempts, last));
    };
    record_device_losses(
        fleet,
        trace,
        &mut recovery,
        Phase::Numeric,
        &numeric_fleet.died,
        numeric_fleet.resharded_cols,
    );
    dead.extend(&numeric_fleet.died);
    resharded_cols += numeric_fleet.resharded_cols;
    let numeric = numeric_fleet.outcome;
    report.numeric = numeric.time;
    report.mode_mix = (numeric.mode_mix.a, numeric.mode_mix.b, numeric.mode_mix.c);
    report.m_limit = numeric.m_limit;
    report.probes = numeric.probes;
    report.merge_steps = numeric.merge_steps;
    report.gemm_tiles = numeric.gemm_tiles;
    trace.span_end(
        "phase.numeric",
        "phase",
        fleet.makespan().as_ns(),
        &[
            ("format", format_name(used_format).into()),
            ("mode_a", numeric.mode_mix.a.into()),
            ("mode_b", numeric.mode_mix.b.into()),
            ("mode_c", numeric.mode_mix.c.into()),
            ("devices", fleet.n_alive().into()),
        ],
    );
    report.phase_stats.numeric = fleet.device(num_dev).stats().since(&num_before);
    if !numeric.perturbations.is_empty() {
        let mut max_delta = 0.0f64;
        for &(col, delta) in &numeric.perturbations {
            add_to_diag(&mut matrix, col, delta);
            max_delta = max_delta.max(delta.abs());
        }
        let action = RecoveryAction::PivotPerturbed {
            cols: numeric.perturbations.len(),
            max_delta,
        };
        trace_recovery(trace, fleet.makespan().as_ns(), Phase::Numeric, &action);
        recovery.record(Phase::Numeric, action);
    }

    let ic = fleet.stats().interconnect;
    dead.sort_unstable();
    dead.dedup();
    report.fleet = Some(FleetReport {
        devices,
        dead,
        per_device_ns: fleet
            .devices()
            .iter()
            .zip(&before)
            .map(|(g, b)| g.stats().since(b).now.as_ns())
            .collect(),
        resharded_rows,
        resharded_cols,
        exchanges: ic.exchanges - ic_before.exchanges,
        exchange_bytes: ic.bytes - ic_before.bytes,
        exchange_ns: (ic.time - ic_before.time).as_ns(),
    });
    report.recovery = recovery;

    Ok(LuFactorization {
        lu: numeric.lu,
        preprocessed: matrix,
        p_row,
        p_col,
        levels,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::RunReport;
    use gplu_sim::{FaultPlan, Gpu, GpuConfig};
    use gplu_sparse::gen::random::random_dominant;
    use gplu_trace::{JsonValue, Recorder};

    fn bits_equal(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn fleet_run_is_bit_identical_and_reports_the_fleet_section() {
        let a = random_dominant(150, 4.0, 5);
        let opts = LuOptions::default();
        let single =
            LuFactorization::compute(&Gpu::new(GpuConfig::v100()), &a, &opts).expect("single");
        let fleet = DeviceFleet::new(4, GpuConfig::v100());
        let f = LuFactorization::compute_fleet(&fleet, &a, &opts).expect("fleet");
        assert!(bits_equal(&single.lu.vals, &f.lu.vals));
        let fr = f.report.fleet.as_ref().expect("fleet report");
        assert_eq!(fr.devices, 4);
        assert!(fr.dead.is_empty());
        assert!(fr.exchanges > 0, "level barriers price the exchange");
        assert_eq!(fr.per_device_ns.len(), 4);
        assert!(fr.per_device_ns.iter().all(|&ns| ns > 0.0));
        // A single-device run has no fleet section at all.
        assert!(single.report.fleet.is_none());
    }

    #[test]
    fn traced_fleet_run_feeds_the_run_report_fleet_json() {
        let a = random_dominant(120, 4.0, 9);
        let fleet = DeviceFleet::new(2, GpuConfig::v100());
        let rec = Recorder::new();
        let f = LuFactorization::compute_fleet_traced(&fleet, &a, &LuOptions::default(), &rec)
            .expect("fleet");
        let events = rec.into_events();
        assert!(
            events
                .iter()
                .any(|e| e.attrs.iter().any(|(k, _)| *k == "devices")),
            "fleet spans must carry the device-count attribute"
        );
        let json = RunReport::new(a.n_rows(), a.nnz(), f.report.clone(), &events).to_json();
        let fl = json.get("fleet").expect("fleet section in the run report");
        assert_eq!(fl.get("devices").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(
            fl.get("per_device_ns")
                .and_then(JsonValue::as_arr)
                .map(<[JsonValue]>::len),
            Some(2)
        );
    }

    #[test]
    fn dead_device_lands_in_the_recovery_log() {
        let a = random_dominant(200, 4.0, 7);
        let plans = FaultPlan::parse_fleet("dev=1:oom:alloc=1:persistent", 4).expect("plans");
        let fleet = DeviceFleet::with_fault_plans(
            4,
            GpuConfig::v100(),
            gplu_sim::CostModel::default(),
            &plans,
        );
        let f = LuFactorization::compute_fleet(&fleet, &a, &LuOptions::default())
            .expect("survivors absorb the shard");
        let fr = f.report.fleet.as_ref().expect("fleet report");
        assert_eq!(fr.dead, vec![1]);
        assert!(f.report.recovery.events().iter().any(|e| matches!(
            e.action,
            RecoveryAction::DeviceLost { device: 1, resharded } if resharded > 0
        )));
    }
}
