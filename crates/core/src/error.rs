//! Pipeline error type.
//!
//! [`GpluError`] is the whole public failure surface of the pipeline:
//! `factorize` either returns a verified factorization or one of these —
//! never a panic. The structured variants ([`GpluError::DeviceOom`],
//! [`GpluError::SingularPivot`], [`GpluError::RecoveryExhausted`]) tell
//! callers *why* recovery stopped, not just that it did.

use crate::recovery::Phase;
use gplu_numeric::NumericError;
use gplu_sim::SimError;
use gplu_sparse::SparseError;
use std::fmt;

/// Errors from the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum GpluError {
    /// A matrix-side failure (singular, malformed, zero pivot, …).
    Sparse(SparseError),
    /// A device-side failure (out of memory, bad launch, …).
    Sim(SimError),
    /// The input violates a pipeline precondition.
    Input(String),
    /// Device memory was exhausted in `phase` and no further backoff or
    /// degradation was available.
    DeviceOom {
        /// Phase that ran out of memory.
        phase: Phase,
        /// How many engine/format attempts were made before giving up.
        attempts: usize,
    },
    /// A zero or non-finite pivot that the pipeline did not (or could
    /// not) repair.
    SingularPivot {
        /// Column whose pivot broke.
        col: usize,
        /// Level-schedule group executing at the time (`usize::MAX`
        /// outside a level schedule, e.g. in a triangular solve).
        level: usize,
    },
    /// The factorization could not pass the residual acceptance gate (or
    /// kept producing singular pivots) after every rung of the pivoting
    /// escalation ladder. This is the "no wrong answers" rejection: the
    /// factors were computed but failed verification, and the pipeline
    /// refuses to return them.
    NumericallySingular {
        /// Best relative residual achieved across the ladder
        /// (`f64::INFINITY` when every attempt died before the gate).
        residual: f64,
        /// The gate threshold the residual had to clear.
        threshold: f64,
        /// Number of ladder rungs attempted.
        attempts: usize,
    },
    /// A warm refactorization's new values no longer satisfy the
    /// threshold-pivoting row order captured in its plan. Replaying the
    /// plan would apply a stale pivot sequence, so the caller must run a
    /// cold factorization (and may rebuild the plan from it).
    StalePivotOrder {
        /// First column whose threshold winner differs from the plan's.
        col: usize,
        /// The threshold the captured order no longer clears.
        tau: f64,
    },
    /// Every rung of the recovery ladder for `phase` failed; `last` is
    /// the final rung's error.
    RecoveryExhausted {
        /// Phase whose ladder was exhausted.
        phase: Phase,
        /// Total attempts across the ladder.
        attempts: usize,
        /// Stringified error from the last attempt.
        last: String,
    },
    /// The process was killed at an injected crash point (fault plan
    /// `crash:at=N`). Terminal by design: no ladder degrades around it —
    /// a later run resumes from the last durable checkpoint.
    Crashed {
        /// Crash-point ordinal (1-based) the kill fired on.
        ordinal: u64,
    },
    /// A checkpoint snapshot failed its checksum or structural
    /// validation and no older valid snapshot was available.
    CheckpointCorrupt(String),
    /// A `--resume` snapshot was written for a different matrix than the
    /// one being factorized.
    CheckpointMismatch(String),
    /// Checkpoint configuration or I/O failure (bad flag combination,
    /// unwritable directory, failed write).
    Checkpoint(String),
    /// The solver service's bounded admission queue is full — the typed
    /// backpressure signal: resubmit later or shed load upstream.
    QueueFull {
        /// Jobs queued when admission was refused.
        depth: usize,
        /// The queue's configured capacity.
        cap: usize,
    },
    /// A queued job's deadline passed before a worker could start it; the
    /// job was dropped without running.
    DeadlineExceeded {
        /// How long the job waited, in wall-clock nanoseconds.
        waited_ns: u64,
        /// The deadline it missed, in wall-clock nanoseconds.
        deadline_ns: u64,
    },
    /// The job was cancelled by its submitter before a worker started it.
    Cancelled,
    /// The service shed this job at admission: it is running degraded
    /// (e.g. the persistent cache tier is down) and under queue pressure,
    /// and the job's tenant is not on the protected list. Distinct from
    /// [`GpluError::QueueFull`] so clients can tell "retry soon" from
    /// "reduce load until the degradation clears".
    LoadShed {
        /// Tenant whose job was shed.
        tenant: String,
        /// Queue depth at the shed decision.
        depth: usize,
    },
    /// The solver service has quarantined this job's sparsity pattern:
    /// earlier jobs on the same pattern kept failing numeric acceptance,
    /// so the service fast-rejects it without burning GPU time. Submit
    /// with stronger pivoting options or a repaired matrix to retry.
    Quarantined {
        /// Structure-only fingerprint of the quarantined pattern.
        pattern_fp: u64,
        /// Numeric rejections recorded against the pattern.
        strikes: u32,
    },
}

impl fmt::Display for GpluError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpluError::Sparse(e) => write!(f, "sparse error: {e}"),
            GpluError::Sim(e) => write!(f, "simulator error: {e}"),
            GpluError::Input(msg) => write!(f, "invalid input: {msg}"),
            GpluError::DeviceOom { phase, attempts } => write!(
                f,
                "device out of memory in {phase} phase after {attempts} attempt(s)"
            ),
            GpluError::SingularPivot { col, level } if *level == usize::MAX => {
                write!(f, "singular pivot in column {col}")
            }
            GpluError::SingularPivot { col, level } => {
                write!(f, "singular pivot in column {col} (level {level})")
            }
            GpluError::NumericallySingular {
                residual,
                threshold,
                attempts,
            } => write!(
                f,
                "numerically singular: residual {residual:.3e} failed the {threshold:.1e} \
                 acceptance gate after {attempts} pivoting attempt(s)"
            ),
            GpluError::StalePivotOrder { col, tau } => write!(
                f,
                "stale pivot order: column {col} no longer clears the plan's \
                 pivot threshold (tau={tau}) — run a cold factorization"
            ),
            GpluError::RecoveryExhausted {
                phase,
                attempts,
                last,
            } => write!(
                f,
                "recovery exhausted in {phase} phase after {attempts} attempt(s): {last}"
            ),
            GpluError::Crashed { ordinal } => {
                write!(f, "process killed at injected crash point #{ordinal}")
            }
            GpluError::CheckpointCorrupt(msg) => write!(f, "checkpoint corrupt: {msg}"),
            GpluError::CheckpointMismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
            GpluError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            GpluError::QueueFull { depth, cap } => {
                write!(
                    f,
                    "service queue full ({depth} of {cap} slots) — backpressure"
                )
            }
            GpluError::DeadlineExceeded {
                waited_ns,
                deadline_ns,
            } => write!(
                f,
                "deadline exceeded: waited {waited_ns} ns against a {deadline_ns} ns deadline"
            ),
            GpluError::Cancelled => write!(f, "job cancelled before execution"),
            GpluError::LoadShed { tenant, depth } => write!(
                f,
                "load shed: tenant `{tenant}` job dropped at queue depth {depth} \
                 while the service is degraded"
            ),
            GpluError::Quarantined {
                pattern_fp,
                strikes,
            } => write!(
                f,
                "pattern {pattern_fp:#018x} is quarantined after {strikes} numeric rejection(s)"
            ),
        }
    }
}

impl std::error::Error for GpluError {}

impl From<SparseError> for GpluError {
    fn from(e: SparseError) -> Self {
        GpluError::Sparse(e)
    }
}

impl From<SimError> for GpluError {
    fn from(e: SimError) -> Self {
        match e {
            // An injected kill keeps its identity across every layer so
            // callers (and the chaos suite) can distinguish "the process
            // died as scheduled" from a genuine device failure.
            SimError::Crashed { ordinal } => GpluError::Crashed { ordinal },
            other => GpluError::Sim(other),
        }
    }
}

impl From<NumericError> for GpluError {
    fn from(e: NumericError) -> Self {
        match e {
            NumericError::Sim(s) => GpluError::from(s),
            NumericError::SingularPivot { col, level } => GpluError::SingularPivot { col, level },
            NumericError::Input(msg) => GpluError::Input(msg),
        }
    }
}

impl From<gplu_checkpoint::CheckpointError> for GpluError {
    fn from(e: gplu_checkpoint::CheckpointError) -> Self {
        match e {
            gplu_checkpoint::CheckpointError::Corrupt(msg) => GpluError::CheckpointCorrupt(msg),
            gplu_checkpoint::CheckpointError::Io(msg) => GpluError::Checkpoint(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: GpluError = SparseError::ZeroPivot { col: 2 }.into();
        assert!(e.to_string().contains("column 2"));
        let e: GpluError = SimError::InvalidHandle(7).into();
        assert!(e.to_string().contains("7"));
        let e = GpluError::Input("empty matrix".into());
        assert!(e.to_string().contains("empty matrix"));
    }

    #[test]
    fn numeric_errors_map_onto_the_unified_surface() {
        let e: GpluError = NumericError::SingularPivot { col: 4, level: 1 }.into();
        assert_eq!(e, GpluError::SingularPivot { col: 4, level: 1 });
        let e: GpluError = NumericError::Sim(SimError::InvalidHandle(3)).into();
        assert!(matches!(e, GpluError::Sim(_)));
        let e: GpluError = NumericError::Input("bad rhs".into()).into();
        assert!(matches!(e, GpluError::Input(_)));
    }

    #[test]
    fn structured_variants_display_their_context() {
        let e = GpluError::DeviceOom {
            phase: Phase::Symbolic,
            attempts: 2,
        };
        assert!(e.to_string().contains("symbolic"));
        assert!(e.to_string().contains("2 attempt"));
        let e = GpluError::RecoveryExhausted {
            phase: Phase::Numeric,
            attempts: 3,
            last: "out of device memory".into(),
        };
        assert!(e.to_string().contains("numeric"));
        assert!(e.to_string().contains("out of device memory"));
        let e = GpluError::SingularPivot {
            col: 9,
            level: usize::MAX,
        };
        assert!(!e.to_string().contains("level"));
        let e = GpluError::NumericallySingular {
            residual: 0.37,
            threshold: 1e-6,
            attempts: 4,
        };
        assert!(e.to_string().contains("3.700e-1"));
        assert!(e.to_string().contains("1.0e-6"));
        assert!(e.to_string().contains("4 pivoting attempt"));
        let e = GpluError::StalePivotOrder { col: 12, tau: 0.1 };
        assert!(e.to_string().contains("column 12"));
        assert!(e.to_string().contains("tau=0.1"));
        assert!(e.to_string().contains("cold factorization"));
    }

    #[test]
    fn service_variants_display_their_context() {
        let e = GpluError::QueueFull { depth: 64, cap: 64 };
        assert!(e.to_string().contains("64 of 64"));
        assert!(e.to_string().contains("backpressure"));
        let e = GpluError::DeadlineExceeded {
            waited_ns: 5_000,
            deadline_ns: 1_000,
        };
        assert!(e.to_string().contains("5000 ns"));
        assert!(e.to_string().contains("1000 ns deadline"));
        assert!(GpluError::Cancelled.to_string().contains("cancelled"));
        let e = GpluError::Quarantined {
            pattern_fp: 0xabcd,
            strikes: 3,
        };
        assert!(e.to_string().contains("0x000000000000abcd"));
        assert!(e.to_string().contains("3 numeric rejection"));
        // The service variants must stay comparable for test assertions.
        assert_eq!(GpluError::Cancelled, GpluError::Cancelled);
        assert_ne!(
            GpluError::QueueFull { depth: 1, cap: 2 },
            GpluError::QueueFull { depth: 2, cap: 2 }
        );
    }
}
