//! Pipeline error type.

use gplu_sim::SimError;
use gplu_sparse::SparseError;
use std::fmt;

/// Errors from the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum GpluError {
    /// A matrix-side failure (singular, malformed, zero pivot, …).
    Sparse(SparseError),
    /// A device-side failure (out of memory, bad launch, …).
    Sim(SimError),
    /// The input violates a pipeline precondition.
    Input(String),
}

impl fmt::Display for GpluError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpluError::Sparse(e) => write!(f, "sparse error: {e}"),
            GpluError::Sim(e) => write!(f, "simulator error: {e}"),
            GpluError::Input(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for GpluError {}

impl From<SparseError> for GpluError {
    fn from(e: SparseError) -> Self {
        GpluError::Sparse(e)
    }
}

impl From<SimError> for GpluError {
    fn from(e: SimError) -> Self {
        GpluError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: GpluError = SparseError::ZeroPivot { col: 2 }.into();
        assert!(e.to_string().contains("column 2"));
        let e: GpluError = SimError::InvalidHandle(7).into();
        assert!(e.to_string().contains("7"));
        let e = GpluError::Input("empty matrix".into());
        assert!(e.to_string().contains("empty matrix"));
    }
}
