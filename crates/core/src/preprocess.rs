//! Host-side pre-processing (the first box of the paper's Figure 2):
//! "row and column permutations ... performed in order to improve
//! numerical stability and reduce the number of fill-ins".

use crate::error::GpluError;
use gplu_sim::{CostModel, SimTime};
use gplu_sparse::ordering::{order, OrderingKind};
use gplu_sparse::perm::permute_csr;
use gplu_sparse::pivot::{max_transversal, repair_diagonal};
use gplu_sparse::{Csr, Permutation};

/// Pre-processing configuration.
#[derive(Debug, Clone)]
pub struct PreprocessOptions {
    /// Fill-reducing ordering applied symmetrically.
    pub ordering: OrderingKind,
    /// Row permutation bringing nonzeros onto the diagonal before
    /// ordering (the MC64-style static pivoting of production solvers).
    /// When `false` (or when the matching fails), missing diagonals are
    /// handled by `repair_value` instead.
    pub static_pivot: bool,
    /// Value written into structurally/numerically zero diagonals — the
    /// paper's Table 4 treatment ("replaced their 0 diagonal elements
    /// with a non-zero number (1000)").
    pub repair_value: f64,
    /// When the numeric phase hits a pivot that cancelled to zero *during*
    /// elimination (pre-processing only repairs diagonals that start out
    /// zero), patch that diagonal with `repair_value` and retry the
    /// numeric phase once instead of failing with `SingularPivot`.
    pub repair_singular: bool,
}

impl Default for PreprocessOptions {
    fn default() -> Self {
        PreprocessOptions {
            // Minimum degree keeps fill manageable on the circuit-style
            // matrices that motivate the paper; RCM remains available for
            // banded/mesh problems.
            ordering: OrderingKind::MinDegree,
            static_pivot: false,
            repair_value: 1000.0,
            repair_singular: false,
        }
    }
}

/// Result of pre-processing.
#[derive(Debug, Clone)]
pub struct PreprocessOutcome {
    /// The permuted, diagonal-complete matrix handed to symbolic
    /// factorization.
    pub matrix: Csr,
    /// Row permutation (old → new): `matrix[p_row(i), p_col(j)] = A[i,j]`.
    pub p_row: Permutation,
    /// Column permutation (old → new).
    pub p_col: Permutation,
    /// Diagonal entries inserted or replaced.
    pub repaired: usize,
    /// Simulated host time.
    pub time: SimTime,
}

/// Runs pre-processing on the host.
pub fn preprocess(
    a: &Csr,
    opts: &PreprocessOptions,
    cost: &CostModel,
) -> Result<PreprocessOutcome, GpluError> {
    let n = a.n_rows();
    if n == 0 {
        return Err(GpluError::Input("empty matrix".into()));
    }
    if n != a.n_cols() {
        return Err(GpluError::Input(format!(
            "matrix must be square, got {n}x{}",
            a.n_cols()
        )));
    }

    // Optional static pivoting: a row permutation completing the
    // structural diagonal (falls back to diagonal repair when the matrix
    // is structurally singular).
    let (matched, p_static) = if opts.static_pivot {
        match max_transversal(a) {
            Ok(p) => {
                let m = permute_csr(a, &p, &Permutation::identity(n));
                (m, Some(p))
            }
            Err(_) => (a.clone(), None),
        }
    } else {
        (a.clone(), None)
    };

    // Symmetric fill-reducing ordering.
    let ord = order(&matched, opts.ordering);
    let p_sym = Permutation::from_order(&ord)?;
    let permuted = permute_csr(&matched, &p_sym, &p_sym);

    // Diagonal completion: structural repair + replacement of numerically
    // zero diagonals, both with the paper's constant.
    let (mut fixed, inserted) = repair_diagonal(&permuted, opts.repair_value);
    let replaced = gplu_sparse::pivot::replace_zero_diagonal(&mut fixed, opts.repair_value);

    // Host cost: the orderings and matching are a small number of passes
    // over the edges.
    let passes = 4 + u64::from(opts.static_pivot) * 2;
    let time = SimTime::from_ns(cost.cpu_parallel_ns(passes * a.nnz() as u64));

    let p_row = match p_static {
        Some(p) => p.then(&p_sym),
        None => p_sym.clone(),
    };
    Ok(PreprocessOutcome {
        matrix: fixed,
        p_row,
        p_col: p_sym,
        repaired: inserted + replaced,
        time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sparse::convert::csr_to_dense;
    use gplu_sparse::gen::planar::{planar, PlanarParams};
    use gplu_sparse::gen::random::random_dominant;

    #[test]
    fn output_has_full_diagonal() {
        let a = planar(&PlanarParams {
            side: 12,
            tri_prob: 0.4,
            missing_diag_fraction: 0.5,
            seed: 2,
        });
        let out = preprocess(&a, &PreprocessOptions::default(), &CostModel::default())
            .expect("preprocesses");
        assert!(out.matrix.has_full_diagonal());
        assert!(out.repaired > 0);
    }

    #[test]
    fn permutation_is_consistent() {
        let a = random_dominant(30, 4.0, 91);
        let out = preprocess(&a, &PreprocessOptions::default(), &CostModel::default())
            .expect("preprocesses");
        let ad = csr_to_dense(&a);
        let bd = csr_to_dense(&out.matrix);
        for i in 0..30 {
            for j in 0..30 {
                if ad[(i, j)] != 0.0 {
                    assert_eq!(bd[(out.p_row.apply(i), out.p_col.apply(j))], ad[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn static_pivot_completes_antidiagonal() {
        let mut coo = gplu_sparse::Coo::new(4, 4);
        for i in 0..4 {
            coo.push(i, 3 - i, 1.0);
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let opts = PreprocessOptions {
            static_pivot: true,
            ..Default::default()
        };
        let out = preprocess(&a, &opts, &CostModel::default()).expect("preprocesses");
        assert!(out.matrix.has_full_diagonal());
        assert_eq!(
            out.repaired, 0,
            "matching should complete the diagonal without repair"
        );
    }

    #[test]
    fn rejects_non_square_and_empty() {
        let empty = Csr::identity(0);
        assert!(matches!(
            preprocess(&empty, &PreprocessOptions::default(), &CostModel::default()),
            Err(GpluError::Input(_))
        ));
    }

    #[test]
    fn natural_ordering_keeps_structure() {
        let a = random_dominant(20, 3.0, 92);
        let opts = PreprocessOptions {
            ordering: OrderingKind::Natural,
            ..Default::default()
        };
        let out = preprocess(&a, &opts, &CostModel::default()).expect("preprocesses");
        assert_eq!(
            out.matrix, a,
            "natural ordering of a diagonal-complete matrix is a no-op"
        );
    }
}
