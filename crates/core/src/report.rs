//! Per-phase timing and accounting — what the paper's Figures 4–6 break
//! their bars into.

use crate::recovery::RecoveryLog;
use gplu_sim::{GpuStatsSnapshot, SimTime};

/// Per-phase GPU statistics deltas: each field is the difference of the
/// snapshots taken at that phase's boundaries. This is the single source
/// of truth for per-phase device accounting (kernel counts, transfer
/// bytes, unified-memory fault groups).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Host pre-processing (typically only advances the clock).
    pub preprocess: GpuStatsSnapshot,
    /// Symbolic factorization (across every ladder attempt).
    pub symbolic: GpuStatsSnapshot,
    /// Levelization.
    pub levelize: GpuStatsSnapshot,
    /// Numeric factorization (across every ladder attempt).
    pub numeric: GpuStatsSnapshot,
}

/// Fleet accounting for a multi-device run: who did the work, who died,
/// and what the interconnect charged. `None` on single-[`gplu_sim::Gpu`]
/// runs.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Devices the fleet was built with.
    pub devices: usize,
    /// Devices that died during the run (injected faults); their shards
    /// were re-run on the survivors.
    pub dead: Vec<usize>,
    /// Per-device busy time across the whole run, nanoseconds, indexed by
    /// device ordinal.
    pub per_device_ns: Vec<f64>,
    /// Symbolic source rows re-run on survivors after device deaths.
    pub resharded_rows: usize,
    /// Numeric columns re-run on survivors after device deaths.
    pub resharded_cols: usize,
    /// Cross-device exchange legs priced on the interconnect.
    pub exchanges: u64,
    /// Bytes moved across the interconnect.
    pub exchange_bytes: u64,
    /// Simulated time charged to the interconnect (summed over devices).
    pub exchange_ns: f64,
}

/// Timing and accounting of one end-to-end factorization.
#[derive(Debug, Clone, Default)]
pub struct PhaseReport {
    /// Host-side pre-processing (ordering + diagonal repair).
    pub preprocess: SimTime,
    /// Symbolic factorization phase.
    pub symbolic: SimTime,
    /// Levelization (scheduling) phase.
    pub levelize: SimTime,
    /// Numeric factorization phase.
    pub numeric: SimTime,

    /// Fill-ins discovered (new nonzeros beyond the input pattern).
    pub new_fill_ins: usize,
    /// Nonzeros of the filled matrix.
    pub fill_nnz: usize,
    /// Out-of-core chunk size used by symbolic (0 when not chunked).
    pub chunk_size: usize,
    /// Out-of-core iterations run by symbolic.
    pub symbolic_iterations: usize,
    /// Levels in the schedule.
    pub n_levels: usize,
    /// Widest level.
    pub max_level_width: usize,
    /// Numeric kernel mode mix (levels typed A/B/C).
    pub mode_mix: (usize, usize, usize),
    /// Dense-format concurrency limit `M`, when the dense engine ran.
    pub m_limit: Option<usize>,
    /// Binary-search probes, when the binary-search engine ran.
    pub probes: u64,
    /// Merge-join destination-cursor advances, when the merge engine ran.
    pub merge_steps: u64,
    /// BLAS-3 update tiles, when the supernode-blocked engine ran.
    pub gemm_tiles: u64,
    /// Diagonal entries repaired during pre-processing.
    pub repaired_diagonals: usize,
    /// Columns whose pivot row deviates from the natural diagonal
    /// (threshold pivoting only; 0 on the no-swap fast path).
    pub pivot_swaps: usize,
    /// Structural entries added by dynamic symbolic expansion after a
    /// pivot permutation.
    pub pattern_expanded: usize,
    /// Relative residual measured by the acceptance gate, when it ran.
    pub residual: Option<f64>,
    /// Per-phase GPU statistics deltas (snapshot differences taken at the
    /// phase boundaries by the pipeline).
    pub phase_stats: PhaseStats,
    /// Every corrective action taken to keep the run alive (OOM backoff,
    /// engine/format degradation, late pivot repair). Empty on a clean
    /// run.
    pub recovery: RecoveryLog,
    /// Multi-device accounting, set only by the fleet pipeline.
    pub fleet: Option<FleetReport>,
}

impl PhaseReport {
    /// Total factorization time (the end-to-end bar of Figure 4).
    pub fn total(&self) -> SimTime {
        self.preprocess + self.symbolic + self.levelize + self.numeric
    }

    /// GPU-side total (symbolic + levelize + numeric), the quantity the
    /// normalized figures compare.
    pub fn gpu_total(&self) -> SimTime {
        self.symbolic + self.levelize + self.numeric
    }

    /// Unified-memory fault groups raised during symbolic (Table 3's
    /// count) — derived from the symbolic-phase snapshot delta rather than
    /// tracked separately, so there is exactly one source of truth.
    pub fn fault_groups(&self) -> u64 {
        self.phase_stats.symbolic.fault_groups
    }

    /// One-line human-readable summary. Engine-specific counters (probes,
    /// merge steps) and recovery actions are appended only when present.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "pre {} | sym {} ({} iters, chunk {}) | lvl {} ({} levels) | num {} | fill {} (+{})",
            self.preprocess,
            self.symbolic,
            self.symbolic_iterations,
            self.chunk_size,
            self.levelize,
            self.n_levels,
            self.numeric,
            self.fill_nnz,
            self.new_fill_ins,
        );
        if self.probes > 0 {
            s.push_str(&format!(" | probes {}", self.probes));
        }
        if self.merge_steps > 0 {
            s.push_str(&format!(" | merge {}", self.merge_steps));
        }
        if self.gemm_tiles > 0 {
            s.push_str(&format!(" | gemm tiles {}", self.gemm_tiles));
        }
        if self.pivot_swaps > 0 {
            s.push_str(&format!(" | pivot swaps {}", self.pivot_swaps));
        }
        if self.pattern_expanded > 0 {
            s.push_str(&format!(" | pattern +{}", self.pattern_expanded));
        }
        if let Some(r) = self.residual {
            s.push_str(&format!(" | residual {r:.2e}"));
        }
        let repaired = self.recovery.repaired_pivots();
        if repaired > 0 {
            s.push_str(&format!(" | repaired pivots {repaired}"));
        }
        if !self.recovery.is_empty() {
            s.push_str(&format!(" | recovery: {}", self.recovery.summary()));
        }
        if let Some(fl) = &self.fleet {
            s.push_str(&format!(
                " | fleet {}x ({} dead, {} exchange legs)",
                fl.devices,
                fl.dead.len(),
                fl.exchanges
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{Phase, RecoveryAction};

    #[test]
    fn totals_add_up() {
        let r = PhaseReport {
            preprocess: SimTime::from_us(1.0),
            symbolic: SimTime::from_us(2.0),
            levelize: SimTime::from_us(3.0),
            numeric: SimTime::from_us(4.0),
            ..Default::default()
        };
        assert!((r.total().as_ns() - 10_000.0).abs() < 1e-9);
        assert!((r.gpu_total().as_ns() - 9_000.0).abs() < 1e-9);
    }

    #[test]
    fn summary_mentions_phases() {
        let r = PhaseReport {
            fill_nnz: 42,
            ..Default::default()
        };
        let s = r.summary();
        assert!(s.contains("sym") && s.contains("num") && s.contains("42"));
        // A clean run with no engine counters stays terse.
        assert!(!s.contains("probes") && !s.contains("merge") && !s.contains("recovery"));
        assert!(!s.contains("pivot") && !s.contains("residual"));

        // Engine counters and recovery show up exactly when present.
        let mut busy = PhaseReport {
            probes: 7,
            merge_steps: 9,
            pivot_swaps: 3,
            pattern_expanded: 11,
            residual: Some(2.5e-12),
            ..Default::default()
        };
        busy.recovery.record(
            Phase::Numeric,
            RecoveryAction::FormatDegraded {
                from: "Dense".into(),
                to: "SparseMerge".into(),
            },
        );
        busy.recovery.record(
            Phase::Numeric,
            RecoveryAction::PivotRepaired {
                col: 0,
                value: 1.0,
                magnitude: 1.0,
            },
        );
        let s = busy.summary();
        assert!(s.contains("probes 7"), "{s}");
        assert!(s.contains("merge 9"), "{s}");
        assert!(s.contains("pivot swaps 3"), "{s}");
        assert!(s.contains("pattern +11"), "{s}");
        assert!(s.contains("residual 2.50e-12"), "{s}");
        assert!(s.contains("repaired pivots 1"), "{s}");
        assert!(
            s.contains("recovery:") && s.contains("Dense -> SparseMerge"),
            "{s}"
        );
    }

    #[test]
    fn fault_groups_come_from_symbolic_phase_stats() {
        let mut r = PhaseReport::default();
        assert_eq!(r.fault_groups(), 0);
        r.phase_stats.symbolic.fault_groups = 17;
        r.phase_stats.numeric.fault_groups = 99; // not symbolic: ignored
        assert_eq!(r.fault_groups(), 17);
    }
}
