//! The end-to-end pipeline.
//!
//! [`LuFactorization::compute`] is self-healing: device OOM in the
//! symbolic phase first backs off chunk sizes (inside the engines), then
//! degrades the engine Ooc → UM; the numeric phase degrades
//! Dense → SparseMerge; a pivot that cancels to zero can be repaired and
//! retried once. Every corrective step lands in
//! [`PhaseReport::recovery`], and every terminal failure is a structured
//! [`GpluError`] — the pipeline never panics on a well-formed input.

use crate::checkpoint::{self, CheckpointOptions, CheckpointSession, PhaseMark, PreState};
use crate::error::GpluError;
use crate::preprocess::{preprocess, PreprocessOptions, PreprocessOutcome};
use crate::recovery::{Phase, RecoveryAction, RecoveryLog};
use crate::report::PhaseReport;
use gplu_numeric::{
    discover_pivots, factorize_gpu_blocked_run_cached, factorize_gpu_dense_run_cached,
    factorize_gpu_merge_run_cached, factorize_gpu_sparse_run_cached, BlockPlan, LevelHook,
    LevelProgress, NumericError, NumericResume, PivotCache, PivotPolicy, PivotRule,
    DEFAULT_BLOCK_THRESHOLD, DEFAULT_PIVOT_TAU,
};
use gplu_schedule::{levelize_gpu_traced, DepGraph, Levels};
use gplu_sim::{Gpu, SimError, SimTime};
use gplu_sparse::convert::csr_to_csc;
use gplu_sparse::ordering::OrderingKind;
use gplu_sparse::perm::permute_csr;
use gplu_sparse::triangular::solve_lu;
use gplu_sparse::verify::residual_probe;
use gplu_sparse::{Csc, Csr, Permutation, SparseError, Val};
use gplu_symbolic::{
    expand_fill, symbolic_ooc_dynamic_run, symbolic_ooc_run, symbolic_um_traced, ChunkHook,
    ChunkProgress, SymbolicResult, SymbolicResume, UmMode,
};
use gplu_trace::{AttrValue, TraceSink, NOOP};
use std::cell::RefCell;

/// Which symbolic engine the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SymbolicEngine {
    /// Out-of-core GPU, naive chunking (Algorithm 3).
    Ooc,
    /// Out-of-core GPU with dynamic parallelism assignment (Algorithm 4).
    #[default]
    OocDynamic,
    /// Unified memory, on-demand paging.
    UmNoPrefetch,
    /// Unified memory with batched prefetching.
    UmPrefetch,
}

/// Numeric-format selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumericFormat {
    /// Two chained criteria decide the format. The paper's switch
    /// criterion decides *when* to leave the dense format
    /// (`n > L/(TB_max · sizeof(dtype))`); once it fires, the cost
    /// model's BLAS-3 crossover ([`gplu_sim::CostModel::blocked_crossover`])
    /// decides *which* CSC kernel runs: when the filled pattern is dense
    /// enough (fill density and mean supernode width both above the
    /// crossover), the supernode-blocked kernel; otherwise the plain
    /// merge-join kernel — the streaming refinement of Algorithm 6 (use
    /// [`NumericFormat::Sparse`] to force the paper's binary-search
    /// access verbatim).
    #[default]
    Auto,
    /// Force the dense-column format (the GLU 3.0 discipline).
    Dense,
    /// Force the sorted-CSC binary-search format (Algorithm 6).
    Sparse,
    /// Force the sorted-CSC merge-join format (`O(nnz)` access).
    SparseMerge,
    /// Force the supernode-blocked merge format: adjacent columns with
    /// near-identical filled patterns are grouped into irregular blocks
    /// whose updates are priced as tiled BLAS-3 traffic. Degrades to
    /// [`NumericFormat::SparseMerge`] on device failure.
    SparseBlocked,
}

/// Residual-based acceptance gate: after factorization the pipeline
/// solves against probe right-hand sides and accepts only when the
/// relative residual clears `threshold`. A failing gate either escalates
/// the pivoting policy (when [`ResidualGate::escalate`] is set) or
/// rejects with [`GpluError::NumericallySingular`] — the pipeline never
/// silently returns garbage factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualGate {
    /// Run the gate at all. Off, the pipeline accepts whatever the
    /// numeric phase produced (the historical behavior).
    pub enabled: bool,
    /// Largest acceptable relative residual.
    pub threshold: f64,
    /// Probe right-hand sides (the max residual across them is gated).
    pub probes: usize,
    /// On gate failure, retry under progressively stronger pivoting
    /// (threshold pivoting at the default tau, then full partial
    /// pivoting, then a static perturbation floor) instead of rejecting
    /// immediately. Every escalation lands in the recovery log.
    pub escalate: bool,
}

impl Default for ResidualGate {
    fn default() -> Self {
        ResidualGate {
            enabled: true,
            threshold: 1e-6,
            probes: 2,
            escalate: false,
        }
    }
}

/// End-to-end pipeline options.
#[derive(Debug, Clone)]
pub struct LuOptions {
    /// Pre-processing configuration.
    pub preprocess: PreprocessOptions,
    /// Symbolic engine.
    pub symbolic: SymbolicEngine,
    /// Numeric format.
    pub format: NumericFormat,
    /// Minimum adjacent-column pattern similarity (Jaccard, in `[0, 1]`)
    /// for the supernode blocking pass to chain two columns into one
    /// block. Used by [`NumericFormat::SparseBlocked`] and the
    /// [`NumericFormat::Auto`] crossover probe.
    pub block_threshold: f64,
    /// How small and zero pivots are handled (none / static perturbation
    /// / threshold pivoting with a host discovery pre-pass).
    pub pivot: PivotPolicy,
    /// Post-factorization residual acceptance gate.
    pub gate: ResidualGate,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions {
            preprocess: PreprocessOptions::default(),
            symbolic: SymbolicEngine::default(),
            format: NumericFormat::default(),
            block_threshold: DEFAULT_BLOCK_THRESHOLD,
            pivot: PivotPolicy::default(),
            gate: ResidualGate::default(),
        }
    }
}

impl LuOptions {
    /// Options with a specific ordering (convenience).
    pub fn with_ordering(mut self, kind: OrderingKind) -> Self {
        self.preprocess.ordering = kind;
        self
    }

    /// Options with a specific pivoting policy (convenience).
    pub fn with_pivot(mut self, pivot: PivotPolicy) -> Self {
        self.pivot = pivot;
        self
    }
}

/// Human-readable pivot policy description for recovery events and trace
/// attributes.
pub(crate) fn policy_desc(p: PivotPolicy) -> String {
    match p {
        PivotPolicy::NoPivot => "none".into(),
        PivotPolicy::Static { threshold } => format!("static({threshold:.1e})"),
        PivotPolicy::Threshold { tau } => format!("threshold(tau={tau})"),
    }
}

/// A completed factorization: `P_row · A · P_colᵀ = L · U` on the repaired,
/// permuted matrix.
#[derive(Debug, Clone)]
pub struct LuFactorization {
    /// Combined factor (unit-diagonal `L` strictly below, `U` on/above).
    pub lu: Csc,
    /// The pre-processed matrix that was factorized (post permutation and
    /// diagonal repair) — residuals are measured against this.
    pub preprocessed: Csr,
    /// Row permutation old → new.
    pub p_row: Permutation,
    /// Column permutation old → new.
    pub p_col: Permutation,
    /// Level schedule used by the numeric phase.
    pub levels: Levels,
    /// Per-phase timings and accounting.
    pub report: PhaseReport,
}

/// Maps a ladder's terminal failure onto the structured error surface:
/// a single-rung OOM becomes [`GpluError::DeviceOom`]; a multi-rung
/// exhaustion becomes [`GpluError::RecoveryExhausted`].
pub(crate) fn ladder_exhausted(phase: Phase, attempts: usize, last: SimError) -> GpluError {
    if attempts > 1 {
        GpluError::RecoveryExhausted {
            phase,
            attempts,
            last: last.to_string(),
        }
    } else if matches!(last, SimError::OutOfMemory { .. }) {
        GpluError::DeviceOom { phase, attempts }
    } else {
        GpluError::Sim(last)
    }
}

/// Static display name for the symbolic engine (an allocation-free
/// [`AttrValue::Sym`] on the phase spans).
fn engine_name(engine: SymbolicEngine) -> &'static str {
    match engine {
        SymbolicEngine::Ooc => "Ooc",
        SymbolicEngine::OocDynamic => "OocDynamic",
        SymbolicEngine::UmNoPrefetch => "UmNoPrefetch",
        SymbolicEngine::UmPrefetch => "UmPrefetch",
    }
}

/// Static display name for the numeric format.
pub(crate) fn format_name(format: NumericFormat) -> &'static str {
    match format {
        NumericFormat::Auto => "Auto",
        NumericFormat::Dense => "Dense",
        NumericFormat::Sparse => "Sparse",
        NumericFormat::SparseMerge => "SparseMerge",
        NumericFormat::SparseBlocked => "SparseBlocked",
    }
}

/// Runs the supernode blocking pass over the filled pattern: one
/// structural sweep comparing adjacent columns' sub-diagonal row sets
/// (host-side, like levelization's dependency-graph build), traced as its
/// own `phase.block_detect` span so warm paths can prove they skipped it.
pub(crate) fn detect_block_plan(
    gpu: &Gpu,
    pattern: &Csc,
    threshold: f64,
    trace: &dyn TraceSink,
) -> BlockPlan {
    trace.span_begin(
        "phase.block_detect",
        "phase",
        gpu.now().as_ns(),
        &[("threshold", threshold.into())],
    );
    let cache = PivotCache::build(pattern);
    let plan = BlockPlan::detect(pattern, &cache, threshold);
    // The pivot-cache build and the similarity walk each touch every
    // stored row index once.
    gpu.advance(SimTime::from_ns(gpu.cost().cpu_parallel_ns(
        2 * pattern.nnz() as u64 + pattern.n_cols() as u64,
    )));
    trace.span_end(
        "phase.block_detect",
        "phase",
        gpu.now().as_ns(),
        &[
            ("blocks", (plan.n_blocks() as u64).into()),
            ("blocked_cols", (plan.blocked_cols() as u64).into()),
            ("mean_block_width", plan.mean_width().into()),
        ],
    );
    plan
}

/// Emits a `recovery` instant alongside a [`RecoveryLog::record`] call.
/// The owned attribute strings are only built when the sink is live.
pub(crate) fn trace_recovery(
    trace: &dyn TraceSink,
    ts_ns: f64,
    phase: Phase,
    action: &RecoveryAction,
) {
    if trace.enabled() {
        trace.instant(
            "recovery",
            "recovery",
            ts_ns,
            &[
                ("phase", AttrValue::Str(phase.to_string())),
                ("action", AttrValue::Str(action.to_string())),
            ],
        );
    }
}

/// Runs one symbolic engine, filling the report and recording any
/// in-engine recovery (chunk backoff, fault-forced streaming). The
/// out-of-core engines take the optional chunk-watermark resume state
/// and per-chunk checkpoint hook; unified memory runs are a single
/// indivisible pass with no durability points.
#[allow(clippy::too_many_arguments)]
fn run_symbolic(
    gpu: &Gpu,
    matrix: &Csr,
    engine: SymbolicEngine,
    report: &mut PhaseReport,
    recovery: &mut RecoveryLog,
    trace: &dyn TraceSink,
    resume: Option<&SymbolicResume>,
    hook: Option<&mut ChunkHook<'_>>,
) -> Result<SymbolicResult, SimError> {
    let faults_before = gpu.stats().injected_faults();
    let (result, backoffs, streamed) = match engine {
        SymbolicEngine::Ooc => {
            let out = symbolic_ooc_run(gpu, matrix, trace, resume, hook)?;
            report.symbolic = out.time;
            report.chunk_size = out.chunk_size;
            report.symbolic_iterations = out.num_iterations;
            (out.result, out.oom_backoffs, out.streamed_output)
        }
        SymbolicEngine::OocDynamic => {
            let out = symbolic_ooc_dynamic_run(gpu, matrix, trace, resume, hook)?;
            report.symbolic = out.time;
            report.chunk_size = out.split.chunk2;
            report.symbolic_iterations = out.num_iterations;
            (out.result, out.oom_backoffs, out.streamed_output)
        }
        SymbolicEngine::UmNoPrefetch | SymbolicEngine::UmPrefetch => {
            let _ = (resume, hook);
            let mode = if engine == SymbolicEngine::UmPrefetch {
                UmMode::Prefetch
            } else {
                UmMode::NoPrefetch
            };
            let out = symbolic_um_traced(gpu, matrix, mode, trace)?;
            report.symbolic = out.time;
            (out.result, 0, false)
        }
    };
    if backoffs > 0 {
        let action = RecoveryAction::ChunkBackoff {
            backoffs,
            final_chunk: report.chunk_size,
        };
        trace_recovery(trace, gpu.now().as_ns(), Phase::Symbolic, &action);
        recovery.record(Phase::Symbolic, action);
    }
    // Streaming is the designed out-of-core response to a genuinely small
    // device; it only counts as *recovery* when injected faults forced it.
    if streamed && gpu.stats().injected_faults() > faults_before {
        let action = RecoveryAction::StreamedOutput;
        trace_recovery(trace, gpu.now().as_ns(), Phase::Symbolic, &action);
        recovery.record(Phase::Symbolic, action);
    }
    Ok(result)
}

/// Cuts an in-kernel snapshot from an engine hook. Injected crashes
/// pass through untouched (they must abort the whole pipeline), while
/// checkpoint I/O failures are stashed in `slot` and replaced with a
/// sentinel device error: the engine aborts, and the ladder rethrows
/// the stored error instead of degrading around a broken disk.
fn hooked_cut(
    sess: &mut CheckpointSession,
    gpu: &Gpu,
    trace: &dyn TraceSink,
    slot: &RefCell<Option<GpluError>>,
    mark: PhaseMark,
    payload: (u32, Vec<u8>),
) -> Result<(), SimError> {
    match sess.cut_in_kernel(gpu, trace, mark, Some(payload)) {
        Ok(()) => Ok(()),
        Err(e @ SimError::Crashed { .. }) => Err(e),
        Err(SimError::BadLaunch(msg)) => {
            *slot.borrow_mut() = Some(GpluError::Checkpoint(msg));
            Err(SimError::BadLaunch("checkpoint write failed".into()))
        }
        Err(other) => Err(other),
    }
}

/// Overwrites the diagonal value of column `col` in both the factorized
/// pattern (CSC) and the pre-processed matrix (CSR) — the late analogue
/// of pre-processing's `repair_diagonal`, applied when a pivot cancels
/// to zero during elimination. Returns the previous matrix diagonal so
/// the caller can record the perturbation magnitude.
pub(crate) fn bump_diag(
    matrix: &mut Csr,
    pattern: &mut Csc,
    col: usize,
    value: f64,
) -> Option<f64> {
    let (pos, _) = pattern.find_in_col(col, col);
    let pos = pos?;
    pattern.vals[pos] = value;
    for k in matrix.row_ptr[col]..matrix.row_ptr[col + 1] {
        if matrix.col_idx[k] as usize == col {
            let old = matrix.vals[k];
            matrix.vals[k] = value;
            return Some(old);
        }
    }
    // The pre-processed matrix always carries a full diagonal; reaching
    // here means the inputs are inconsistent.
    None
}

/// Adds `delta` onto the stored diagonal of row `col` — mirroring an
/// engine-level static pivot clamp into the input so the matrix and its
/// factors agree exactly.
pub(crate) fn add_to_diag(matrix: &mut Csr, col: usize, delta: f64) -> bool {
    for k in matrix.row_ptr[col]..matrix.row_ptr[col + 1] {
        if matrix.col_idx[k] as usize == col {
            matrix.vals[k] += delta;
            return true;
        }
    }
    false
}

impl LuFactorization {
    /// Runs the full pipeline on `gpu`.
    ///
    /// Returns a verified-recoverable factorization or a structured
    /// [`GpluError`]; corrective actions taken along the way are listed
    /// in `report.recovery`.
    pub fn compute(gpu: &Gpu, a: &Csr, opts: &LuOptions) -> Result<Self, GpluError> {
        Self::compute_traced(gpu, a, opts, &NOOP)
    }

    /// [`LuFactorization::compute`] with telemetry: one `phase.*` span per
    /// pipeline phase, the engines' per-chunk/per-level spans, and a
    /// `recovery` instant per corrective action land in `trace`; per-phase
    /// GPU statistics deltas land in [`PhaseReport::phase_stats`] either
    /// way.
    pub fn compute_traced(
        gpu: &Gpu,
        a: &Csr,
        opts: &LuOptions,
        trace: &dyn TraceSink,
    ) -> Result<Self, GpluError> {
        Self::compute_inner(gpu, a, opts, None, trace)
    }

    /// [`LuFactorization::compute_traced`] with crash-consistent
    /// checkpointing: a durable snapshot is cut at every phase boundary
    /// and every [`CheckpointOptions::every`] completed numeric levels /
    /// symbolic chunks. With [`CheckpointOptions::resume`] the latest
    /// valid snapshot in the directory is verified against the input
    /// matrix ([`GpluError::CheckpointMismatch`] when it belongs to a
    /// different one) and replayed; the resumed run produces factors
    /// bit-identical to an uninterrupted run. An empty or absent
    /// checkpoint directory under `resume` simply starts fresh.
    pub fn compute_checkpointed(
        gpu: &Gpu,
        a: &Csr,
        opts: &LuOptions,
        ckpt: &CheckpointOptions,
        trace: &dyn TraceSink,
    ) -> Result<Self, GpluError> {
        let mut session = CheckpointSession::open(ckpt, a, opts, gpu, trace)?;
        Self::compute_inner(gpu, a, opts, Some(&mut session), trace)
    }

    /// The residual-gated escalation loop around [`Self::compute_once`]:
    /// runs the user's pivoting policy, measures the factors against the
    /// acceptance gate, and — when [`ResidualGate::escalate`] is set —
    /// climbs the ladder (threshold pivoting at the default tau → full
    /// partial pivoting → static perturbation floor) until a rung passes
    /// or every rung is spent, in which case the typed
    /// [`GpluError::NumericallySingular`] rejection is returned. Never a
    /// silently wrong answer.
    fn compute_inner(
        gpu: &Gpu,
        a: &Csr,
        opts: &LuOptions,
        mut session: Option<&mut CheckpointSession>,
        trace: &dyn TraceSink,
    ) -> Result<Self, GpluError> {
        let mut rungs: Vec<PivotPolicy> = vec![opts.pivot];
        if opts.gate.enabled && opts.gate.escalate {
            match opts.pivot {
                PivotPolicy::NoPivot | PivotPolicy::Static { .. } => {
                    rungs.push(PivotPolicy::Threshold {
                        tau: DEFAULT_PIVOT_TAU,
                    });
                    rungs.push(PivotPolicy::Threshold { tau: 1.0 });
                }
                PivotPolicy::Threshold { tau } if tau < 1.0 => {
                    rungs.push(PivotPolicy::Threshold { tau: 1.0 });
                }
                PivotPolicy::Threshold { .. } => {}
            }
            // Last constructive rung: clamp every surviving small pivot
            // to a floor scaled by the matrix norm. The factors then
            // exactly factor the correspondingly bumped matrix, with the
            // deltas mirrored into it and logged.
            let floor = (a.frobenius_norm() * 1e-8).max(f64::MIN_POSITIVE);
            rungs.push(PivotPolicy::Static { threshold: floor });
        }

        let total = rungs.len();
        let mut best_residual = f64::INFINITY;
        for (i, &policy) in rungs.iter().enumerate() {
            let mut seed = RecoveryLog::default();
            if i > 0 {
                let action = RecoveryAction::PivotEscalated {
                    from: policy_desc(rungs[i - 1]),
                    to: policy_desc(policy),
                };
                trace_recovery(trace, gpu.now().as_ns(), Phase::Numeric, &action);
                seed.record(Phase::Numeric, action);
            }
            // Durability covers only the first attempt: an escalated
            // retry runs under a different policy, so a partial snapshot
            // from the failed rung must not replay into it.
            let sess = if i == 0 { session.take() } else { None };
            match Self::compute_once(gpu, a, opts, policy, sess, trace, seed) {
                Ok(mut f) => {
                    if !opts.gate.enabled {
                        return Ok(f);
                    }
                    let r = residual_probe(&f.preprocessed, &f.lu, opts.gate.probes.max(1));
                    f.report.residual = Some(r);
                    let pass = r.is_finite() && r <= opts.gate.threshold;
                    if trace.enabled() {
                        trace.instant(
                            "numeric.residual_gate",
                            "verify",
                            gpu.now().as_ns(),
                            &[
                                ("residual", r.into()),
                                ("threshold", opts.gate.threshold.into()),
                                ("pass", pass.into()),
                                ("policy", AttrValue::Str(policy_desc(policy))),
                            ],
                        );
                    }
                    if pass {
                        return Ok(f);
                    }
                    best_residual = best_residual.min(r);
                }
                Err(e @ GpluError::Crashed { .. }) => return Err(e),
                Err(e) => {
                    // Only pivot-class failures are worth escalating;
                    // device and input failures have their own ladders
                    // and their own types.
                    let escalatable = matches!(
                        e,
                        GpluError::SingularPivot { .. }
                            | GpluError::Sparse(SparseError::ZeroPivot { .. })
                            | GpluError::Sparse(SparseError::ZeroDiagonal { .. })
                    );
                    if !escalatable || i + 1 == total {
                        return Err(e);
                    }
                }
            }
        }
        Err(GpluError::NumericallySingular {
            residual: best_residual,
            threshold: opts.gate.threshold,
            attempts: total,
        })
    }

    /// One full pipeline pass under a fixed pivoting policy. The caller
    /// ([`Self::compute_inner`]) owns gating and escalation;
    /// `seed_recovery` carries any escalation events that led here.
    fn compute_once(
        gpu: &Gpu,
        a: &Csr,
        opts: &LuOptions,
        policy: PivotPolicy,
        mut session: Option<&mut CheckpointSession>,
        trace: &dyn TraceSink,
        seed_recovery: RecoveryLog,
    ) -> Result<Self, GpluError> {
        let mut report = PhaseReport::default();
        let mut recovery = seed_recovery;
        let every = session.as_ref().map_or(usize::MAX, |s| s.every());
        // Checkpoint I/O failures inside engine hooks land here (see
        // `hooked_cut`); the ladders rethrow them instead of degrading.
        let ckpt_err: RefCell<Option<GpluError>> = RefCell::new(None);
        let resume_state = session.as_mut().and_then(|s| s.resume.take());
        if let Some(r) = &resume_state {
            // Continue the interrupted run's clock so simulated timings
            // accumulate across the restart rather than starting over.
            let now = gpu.now().as_ns();
            if r.clock_ns > now {
                gpu.advance(SimTime::from_ns(r.clock_ns - now));
            }
            recovery = r.recovery.clone();
        }

        // 1. Pre-processing (host) — replayed from the snapshot on
        // resume (every snapshot carries it, including any later
        // diagonal repairs).
        let (mut matrix, mut p_row, p_col) = if let Some(r) = &resume_state {
            let pre = &r.pre;
            report.preprocess = SimTime::from_ns(pre.time_ns);
            report.repaired_diagonals = pre.repaired;
            (pre.matrix.clone(), pre.p_row.clone(), pre.p_col.clone())
        } else {
            let pre_before = gpu.stats();
            trace.span_begin("phase.preprocess", "phase", gpu.now().as_ns(), &[]);
            let PreprocessOutcome {
                matrix,
                p_row,
                p_col,
                repaired,
                time,
            } = preprocess(a, &opts.preprocess, gpu.cost())?;
            gpu.advance(time);
            report.preprocess = time;
            report.repaired_diagonals = repaired;
            trace.span_end(
                "phase.preprocess",
                "phase",
                gpu.now().as_ns(),
                &[("repaired_diagonals", repaired.into())],
            );
            report.phase_stats.preprocess = gpu.stats().since(&pre_before);
            if let Some(sess) = session.as_deref_mut() {
                sess.set_preprocess(&PreState {
                    matrix: matrix.clone(),
                    p_row: p_row.clone(),
                    p_col: p_col.clone(),
                    repaired,
                    time_ns: time.as_ns(),
                });
                sess.cut(gpu, trace, PhaseMark::Preprocessed, None)?;
            }
            (matrix, p_row, p_col)
        };

        // 2. Symbolic factorization (GPU), with engine degradation: the
        // out-of-core engines already back off their chunk sizes under
        // OOM; if one still fails, fall back to unified memory, whose
        // on-demand paging cannot run out of device capacity. A snapshot
        // past this phase replays the filled pattern instead; a partial
        // snapshot replays the chunk watermark on the engine that cut it.
        let mut symbolic = if let Some(done) =
            resume_state.as_ref().and_then(|r| r.symbolic.as_ref())
        {
            report.chunk_size = done.chunk_size;
            report.symbolic_iterations = done.iterations;
            done.result.clone()
        } else {
            let sym_partial = resume_state.as_ref().and_then(|r| r.sym_partial.as_ref());
            let engine_ladder: &[SymbolicEngine] = match opts.symbolic {
                SymbolicEngine::Ooc => &[SymbolicEngine::Ooc, SymbolicEngine::UmPrefetch],
                SymbolicEngine::OocDynamic => {
                    &[SymbolicEngine::OocDynamic, SymbolicEngine::UmPrefetch]
                }
                SymbolicEngine::UmNoPrefetch => &[SymbolicEngine::UmNoPrefetch],
                SymbolicEngine::UmPrefetch => &[SymbolicEngine::UmPrefetch],
            };
            let sym_before = gpu.stats();
            trace.span_begin(
                "phase.symbolic",
                "phase",
                gpu.now().as_ns(),
                &[("engine", engine_name(opts.symbolic).into())],
            );
            let mut symbolic: Option<SymbolicResult> = None;
            let mut last_err: Option<SimError> = None;
            let mut attempts = 0usize;
            let mut used_engine = opts.symbolic;
            for (i, &engine) in engine_ladder.iter().enumerate() {
                if i > 0 {
                    // The failed attempt left its allocations behind; clear
                    // the device before the fallback engine runs.
                    gpu.mem.reset();
                    let action = RecoveryAction::EngineDegraded {
                        from: engine_name(engine_ladder[i - 1]).to_string(),
                        to: engine_name(engine).to_string(),
                    };
                    trace_recovery(trace, gpu.now().as_ns(), Phase::Symbolic, &action);
                    recovery.record(Phase::Symbolic, action);
                }
                attempts += 1;
                // Partial state only replays on the rung that cut it.
                let rung_resume = sym_partial
                    .filter(|(tag, _)| *tag == checkpoint::engine_tag(engine))
                    .map(|(_, r)| r);
                let mut hook_storage;
                let hook: Option<&mut ChunkHook<'_>> = match session.as_deref_mut() {
                    Some(sess) => {
                        let slot = &ckpt_err;
                        hook_storage = move |p: &ChunkProgress| -> Result<(), SimError> {
                            if !p.iters_done.is_multiple_of(every) {
                                return Ok(());
                            }
                            let payload =
                                CheckpointSession::symbolic_partial_payload(engine, &p.to_resume());
                            hooked_cut(sess, gpu, trace, slot, PhaseMark::SymbolicPartial, payload)
                        };
                        Some(&mut hook_storage)
                    }
                    None => None,
                };
                match run_symbolic(
                    gpu,
                    &matrix,
                    engine,
                    &mut report,
                    &mut recovery,
                    trace,
                    rung_resume,
                    hook,
                ) {
                    Ok(result) => {
                        symbolic = Some(result);
                        used_engine = engine;
                        break;
                    }
                    Err(e) => {
                        if let Some(ce) = ckpt_err.borrow_mut().take() {
                            return Err(ce);
                        }
                        if matches!(e, SimError::Crashed { .. }) {
                            // An injected kill is terminal by design: no
                            // ladder degrades around it — a later run
                            // resumes from the last durable snapshot.
                            return Err(e.into());
                        }
                        last_err = Some(e);
                    }
                }
            }
            report.phase_stats.symbolic = gpu.stats().since(&sym_before);
            trace.span_end(
                "phase.symbolic",
                "phase",
                gpu.now().as_ns(),
                &[
                    ("engine", engine_name(used_engine).into()),
                    ("attempts", attempts.into()),
                    ("ok", symbolic.is_some().into()),
                ],
            );
            let Some(symbolic) = symbolic else {
                let last = last_err.unwrap_or(SimError::BadLaunch("no symbolic engine ran".into()));
                return Err(ladder_exhausted(Phase::Symbolic, attempts, last));
            };
            if let Some(sess) = session.as_deref_mut() {
                sess.set_symbolic(&symbolic, report.chunk_size, report.symbolic_iterations);
                sess.note_recovery(&recovery);
                sess.cut(gpu, trace, PhaseMark::Symbolic, None)?;
            }
            symbolic
        };

        // 2b. Threshold-pivot discovery (host pre-pass): the
        // level-scheduled engines cannot pivot at runtime, so under the
        // threshold policy a sequential Gilbert–Peierls sweep picks the
        // row permutation *before* levelization. On dominant traffic the
        // diagonal clears tau everywhere, swaps == 0, and every
        // downstream artifact is untouched (the fast path the pivoting
        // benchmark measures).
        if let PivotPolicy::Threshold { tau } = policy {
            trace.span_begin(
                "phase.pivot_discovery",
                "phase",
                gpu.now().as_ns(),
                &[("tau", tau.into())],
            );
            let disc = discover_pivots(&matrix, tau).map_err(|e| match e {
                SparseError::ZeroPivot { col } => GpluError::SingularPivot {
                    col,
                    level: usize::MAX,
                },
                other => GpluError::Sparse(other),
            });
            if let Ok(d) = &disc {
                gpu.advance(SimTime::from_ns(gpu.cost().pivot_discovery_ns(d.flops)));
            }
            trace.span_end(
                "phase.pivot_discovery",
                "phase",
                gpu.now().as_ns(),
                &[
                    (
                        "swaps",
                        (disc.as_ref().map_or(0, |d| d.swaps) as u64).into(),
                    ),
                    ("ok", disc.is_ok().into()),
                ],
            );
            let disc = disc?;
            report.pivot_swaps = disc.swaps;
            if disc.swaps > 0 {
                let p_pivot = Permutation::from_forward(disc.pinv).map_err(|e| {
                    GpluError::Input(format!("pivot discovery produced a non-bijective map: {e}"))
                })?;
                let id = Permutation::identity(matrix.n_cols());
                matrix = permute_csr(&matrix, &p_pivot, &id);
                p_row = p_row.then(&p_pivot);
                // The predicted fill no longer covers the permuted rows;
                // grow it in place (bounded), or re-run symbolic from
                // scratch when the in-place closure blows its budget.
                let filled_perm = permute_csr(&symbolic.filled, &p_pivot, &id);
                trace.span_begin("numeric.pattern_expand", "phase", gpu.now().as_ns(), &[]);
                let budget = 4 * filled_perm.nnz() + 256;
                let expansion = expand_fill(&filled_perm, budget);
                gpu.advance(SimTime::from_ns(
                    gpu.cost()
                        .pattern_expand_ns((filled_perm.nnz() + expansion.added) as u64),
                ));
                trace.span_end(
                    "numeric.pattern_expand",
                    "phase",
                    gpu.now().as_ns(),
                    &[
                        ("added", (expansion.added as u64).into()),
                        ("rounds", (expansion.rounds as u64).into()),
                        ("closed", expansion.closed.into()),
                    ],
                );
                if expansion.closed {
                    report.pattern_expanded = expansion.added;
                    let action = RecoveryAction::PatternExpanded {
                        added: expansion.added,
                        rounds: expansion.rounds,
                    };
                    trace_recovery(trace, gpu.now().as_ns(), Phase::Symbolic, &action);
                    recovery.record(Phase::Symbolic, action);
                    symbolic.filled = expansion.filled;
                } else {
                    let action = RecoveryAction::Resymbolic {
                        abandoned: expansion.added,
                    };
                    trace_recovery(trace, gpu.now().as_ns(), Phase::Symbolic, &action);
                    recovery.record(Phase::Symbolic, action);
                    // Unified memory cannot run out of device capacity,
                    // making it the safe engine for the fallback pass.
                    let prev = report.symbolic;
                    symbolic = run_symbolic(
                        gpu,
                        &matrix,
                        SymbolicEngine::UmPrefetch,
                        &mut report,
                        &mut recovery,
                        trace,
                        None,
                        None,
                    )?;
                    report.symbolic = prev + report.symbolic;
                }
            }
        }
        report.fill_nnz = symbolic.fill_nnz();
        report.new_fill_ins = symbolic.new_fill_ins(&matrix);

        // 3. Levelization (GPU, dynamic parallelism) — replayed from the
        // snapshot when available ([`Levels::from_level_of`] rebuilds the
        // groups deterministically).
        let levels: Levels = if let Some(lv) = resume_state.as_ref().and_then(|r| r.levels()) {
            report.n_levels = lv.n_levels();
            report.max_level_width = lv.max_width();
            lv
        } else {
            let lvl_before = gpu.stats();
            trace.span_begin("phase.levelize", "phase", gpu.now().as_ns(), &[]);
            let dep = DepGraph::build(&symbolic.filled);
            let lvl = levelize_gpu_traced(gpu, &dep, trace).map_err(|e| match e {
                SimError::OutOfMemory { .. } => GpluError::DeviceOom {
                    phase: Phase::Levelize,
                    attempts: 1,
                },
                other => GpluError::from(other),
            })?;
            report.levelize = lvl.time;
            report.n_levels = lvl.levels.n_levels();
            report.max_level_width = lvl.levels.max_width();
            trace.span_end(
                "phase.levelize",
                "phase",
                gpu.now().as_ns(),
                &[
                    ("levels", report.n_levels.into()),
                    ("max_width", report.max_level_width.into()),
                ],
            );
            report.phase_stats.levelize = gpu.stats().since(&lvl_before);
            if let Some(sess) = session.as_deref_mut() {
                sess.set_levels(&lvl.levels.level_of);
                sess.note_recovery(&recovery);
                sess.cut(gpu, trace, PhaseMark::Levelized, None)?;
            }
            lvl.levels
        };

        // 4. Numeric factorization (GPU), format per the paper's
        // criterion unless forced, with format degradation: the dense
        // engine's O(n) column buffers are the memory-hungry rung; on
        // device failure fall back to the buffer-free merge-join CSC
        // kernel. (Forced Sparse/SparseMerge are already the conservative
        // formats and run as requested.) A partial snapshot replays the
        // completed-level watermark and value store on the format that
        // cut it.
        let mut pattern = csr_to_csc(&symbolic.filled);
        // Auto follows the paper's *switch* criterion to CSC residency,
        // then the cost model's BLAS-3 crossover picks between the plain
        // merge-join kernel and the supernode-blocked variant: blocking
        // only pays when the filled pattern is dense enough that adjacent
        // columns share their row sets (mesh/Delaunay-class fill), so the
        // crossover gates on measured fill density and the detected mean
        // supernode width.
        let mut block_plan: Option<BlockPlan> = None;
        let format_ladder: &[NumericFormat] = match opts.format {
            NumericFormat::Auto => {
                if gpu.config().should_use_sparse_format(matrix.n_rows()) {
                    let plan = detect_block_plan(gpu, &pattern, opts.block_threshold, trace);
                    let fill_density = pattern.nnz() as f64 / pattern.n_cols().max(1) as f64;
                    if gpu
                        .cost()
                        .blocked_crossover(fill_density, plan.mean_width())
                    {
                        block_plan = Some(plan);
                        &[NumericFormat::SparseBlocked, NumericFormat::SparseMerge]
                    } else {
                        &[NumericFormat::SparseMerge]
                    }
                } else {
                    &[NumericFormat::Dense, NumericFormat::SparseMerge]
                }
            }
            NumericFormat::Dense => &[NumericFormat::Dense, NumericFormat::SparseMerge],
            NumericFormat::Sparse => &[NumericFormat::Sparse],
            NumericFormat::SparseMerge => &[NumericFormat::SparseMerge],
            NumericFormat::SparseBlocked => {
                block_plan = Some(detect_block_plan(
                    gpu,
                    &pattern,
                    opts.block_threshold,
                    trace,
                ));
                &[NumericFormat::SparseBlocked, NumericFormat::SparseMerge]
            }
        };
        let num_before = gpu.stats();
        trace.span_begin(
            "phase.numeric",
            "phase",
            gpu.now().as_ns(),
            &[("format", format_name(opts.format).into())],
        );
        let mut num_partial = resume_state.as_ref().and_then(|r| r.numeric.clone());
        let mut repair_attempted = false;
        // Static perturbation acts inside the engines at division time;
        // every other policy factorizes exactly (threshold pivoting
        // already moved its swaps into the row permutation above).
        let rule = match policy {
            PivotPolicy::Static { threshold } => PivotRule::Perturb { threshold },
            _ => PivotRule::Exact,
        };
        let (numeric, used_format) = 'numeric: loop {
            let mut last_err: Option<SimError> = None;
            let mut attempts = 0usize;
            for (i, &format) in format_ladder.iter().enumerate() {
                if i > 0 {
                    gpu.mem.reset();
                    let action = RecoveryAction::FormatDegraded {
                        from: format_name(format_ladder[i - 1]).to_string(),
                        to: format_name(format).to_string(),
                    };
                    trace_recovery(trace, gpu.now().as_ns(), Phase::Numeric, &action);
                    recovery.record(Phase::Numeric, action);
                }
                attempts += 1;
                let rung_resume = num_partial
                    .as_ref()
                    .filter(|(tag, _)| *tag == checkpoint::format_tag(format))
                    .map(|(_, r)| r);
                let mut hook_storage;
                let hook: Option<&mut LevelHook<'_>> = match session.as_deref_mut() {
                    Some(sess) => {
                        let slot = &ckpt_err;
                        hook_storage = move |p: &LevelProgress<'_>| -> Result<(), SimError> {
                            let done = p.level + 1;
                            if !done.is_multiple_of(every) && done != p.n_levels {
                                return Ok(());
                            }
                            let vals: Vec<f64> = (0..p.vals.len()).map(|k| p.vals.get(k)).collect();
                            let state = NumericResume {
                                start_level: done,
                                vals,
                                mode_mix: p.mode_mix,
                                probes: p.probes,
                                merge_steps: p.merge_steps,
                                batches: p.batches,
                                gemm_tiles: p.gemm_tiles,
                            };
                            let payload =
                                CheckpointSession::numeric_partial_payload(format, &state);
                            hooked_cut(sess, gpu, trace, slot, PhaseMark::NumericPartial, payload)
                        };
                        Some(&mut hook_storage)
                    }
                    None => None,
                };
                let run = match format {
                    NumericFormat::Dense => factorize_gpu_dense_run_cached(
                        gpu,
                        &pattern,
                        &levels,
                        trace,
                        rung_resume,
                        hook,
                        None,
                        rule,
                    ),
                    NumericFormat::Sparse => factorize_gpu_sparse_run_cached(
                        gpu,
                        &pattern,
                        &levels,
                        None,
                        trace,
                        rung_resume,
                        hook,
                        None,
                        rule,
                    ),
                    NumericFormat::SparseBlocked => factorize_gpu_blocked_run_cached(
                        gpu,
                        &pattern,
                        &levels,
                        block_plan.as_ref().expect("blocked rung carries a plan"),
                        trace,
                        rung_resume,
                        hook,
                        None,
                        rule,
                    ),
                    NumericFormat::Auto | NumericFormat::SparseMerge => {
                        factorize_gpu_merge_run_cached(
                            gpu,
                            &pattern,
                            &levels,
                            trace,
                            rung_resume,
                            hook,
                            None,
                            rule,
                        )
                    }
                };
                match run {
                    Ok(out) => break 'numeric (out, format),
                    Err(NumericError::Sim(e)) => {
                        if let Some(ce) = ckpt_err.borrow_mut().take() {
                            return Err(ce);
                        }
                        if matches!(e, SimError::Crashed { .. }) {
                            return Err(e.into());
                        }
                        last_err = Some(e);
                    }
                    Err(NumericError::SingularPivot { col, level }) => {
                        // A pivot cancelled to zero mid-elimination. The
                        // structure is unchanged, so the symbolic result
                        // and schedule stay valid: patch the diagonal
                        // (the paper's Table 4 constant) and retry the
                        // numeric ladder once.
                        let value = opts.preprocess.repair_value;
                        let old = if opts.preprocess.repair_singular && !repair_attempted {
                            bump_diag(&mut matrix, &mut pattern, col, value)
                        } else {
                            None
                        };
                        if let Some(old) = old {
                            repair_attempted = true;
                            gpu.mem.reset();
                            let action = RecoveryAction::PivotRepaired {
                                col,
                                value,
                                magnitude: (value - old).abs(),
                            };
                            trace_recovery(trace, gpu.now().as_ns(), Phase::Numeric, &action);
                            recovery.record(Phase::Numeric, action);
                            report.repaired_diagonals += 1;
                            // Any mid-level snapshot predates the repair;
                            // restart the numeric phase fresh and make the
                            // repaired matrix the durable one.
                            num_partial = None;
                            if let Some(sess) = session.as_deref_mut() {
                                sess.set_preprocess(&PreState {
                                    matrix: matrix.clone(),
                                    p_row: p_row.clone(),
                                    p_col: p_col.clone(),
                                    repaired: report.repaired_diagonals,
                                    time_ns: report.preprocess.as_ns(),
                                });
                                sess.note_recovery(&recovery);
                                sess.cut(gpu, trace, PhaseMark::Levelized, None)?;
                            }
                            continue 'numeric;
                        }
                        return Err(GpluError::SingularPivot { col, level });
                    }
                    Err(NumericError::Input(msg)) => return Err(GpluError::Input(msg)),
                }
            }
            let last = last_err.unwrap_or(SimError::BadLaunch("no numeric format ran".into()));
            return Err(ladder_exhausted(Phase::Numeric, attempts, last));
        };
        report.numeric = numeric.time;
        report.mode_mix = (numeric.mode_mix.a, numeric.mode_mix.b, numeric.mode_mix.c);
        report.m_limit = numeric.m_limit;
        report.probes = numeric.probes;
        report.merge_steps = numeric.merge_steps;
        report.gemm_tiles = numeric.gemm_tiles;
        trace.span_end(
            "phase.numeric",
            "phase",
            gpu.now().as_ns(),
            &[
                ("format", format_name(used_format).into()),
                ("mode_a", numeric.mode_mix.a.into()),
                ("mode_b", numeric.mode_mix.b.into()),
                ("mode_c", numeric.mode_mix.c.into()),
            ],
        );
        report.phase_stats.numeric = gpu.stats().since(&num_before);
        if !numeric.perturbations.is_empty() {
            // The factors exactly factor the bumped matrix; mirror the
            // clamp deltas into the preprocessed diagonal so residuals
            // and solves target the system the factors represent.
            let mut max_delta = 0.0f64;
            for &(col, delta) in &numeric.perturbations {
                add_to_diag(&mut matrix, col, delta);
                max_delta = max_delta.max(delta.abs());
            }
            let action = RecoveryAction::PivotPerturbed {
                cols: numeric.perturbations.len(),
                max_delta,
            };
            trace_recovery(trace, gpu.now().as_ns(), Phase::Numeric, &action);
            recovery.record(Phase::Numeric, action);
        }
        report.recovery = recovery;

        Ok(LuFactorization {
            lu: numeric.lu,
            preprocessed: matrix,
            p_row,
            p_col,
            levels,
            report,
        })
    }

    /// Permutes a right-hand side into factor ordering (`P_row · b`).
    pub fn permute_rhs(&self, b: &[Val]) -> Vec<Val> {
        self.p_row.permute_vec(b)
    }

    /// Builds the level schedules for GPU triangular solves (reusable
    /// across right-hand sides — the circuit-simulation pattern).
    pub fn solve_plan(&self) -> gplu_numeric::TriSolvePlan {
        gplu_numeric::TriSolvePlan::new(&self.lu)
    }

    /// Solves `A x = b` with the level-scheduled triangular solve on the
    /// simulated GPU (the end-to-end completion of the paper's pipeline:
    /// the factors never leave the device). Returns the solution and the
    /// simulated solve time.
    pub fn solve_on_gpu(
        &self,
        gpu: &Gpu,
        plan: &gplu_numeric::TriSolvePlan,
        b: &[Val],
    ) -> Result<(Vec<Val>, gplu_sim::SimTime), GpluError> {
        self.solve_on_gpu_traced(gpu, plan, b, &NOOP)
    }

    /// [`LuFactorization::solve_on_gpu`] with telemetry (`trisolve` drift
    /// samples for the cost-model profiler).
    pub fn solve_on_gpu_traced(
        &self,
        gpu: &Gpu,
        plan: &gplu_numeric::TriSolvePlan,
        b: &[Val],
        trace: &dyn TraceSink,
    ) -> Result<(Vec<Val>, gplu_sim::SimTime), GpluError> {
        if b.len() != self.preprocessed.n_rows() {
            return Err(GpluError::Input(format!(
                "rhs length {} != n {}",
                b.len(),
                self.preprocessed.n_rows()
            )));
        }
        let out =
            gplu_numeric::solve_gpu_traced(gpu, &self.lu, plan, &self.p_row.permute_vec(b), trace)?;
        let x = (0..out.x.len())
            .map(|i| out.x[self.p_col.apply(i)])
            .collect();
        Ok((x, out.time))
    }

    /// Solves `A X = B` for many right-hand sides with one batched
    /// level-scheduled launch sequence per sweep — the amortized variant
    /// of [`LuFactorization::solve_on_gpu`] for transient simulation and
    /// multi-source analyses. Returns one solution per input plus the
    /// simulated time of the whole batch (strictly less than the sum of
    /// per-RHS solves: launch latency is paid once per level, not once
    /// per level per RHS).
    pub fn solve_many_on_gpu(
        &self,
        gpu: &Gpu,
        plan: &gplu_numeric::TriSolvePlan,
        bs: &[Vec<Val>],
    ) -> Result<(Vec<Vec<Val>>, gplu_sim::SimTime), GpluError> {
        self.solve_many_on_gpu_traced(gpu, plan, bs, &NOOP)
    }

    /// [`LuFactorization::solve_many_on_gpu`] with telemetry (`trisolve`
    /// drift samples for the cost-model profiler).
    pub fn solve_many_on_gpu_traced(
        &self,
        gpu: &Gpu,
        plan: &gplu_numeric::TriSolvePlan,
        bs: &[Vec<Val>],
        trace: &dyn TraceSink,
    ) -> Result<(Vec<Vec<Val>>, gplu_sim::SimTime), GpluError> {
        let n = self.preprocessed.n_rows();
        for b in bs {
            if b.len() != n {
                return Err(GpluError::Input(format!(
                    "rhs length {} != n {}",
                    b.len(),
                    n
                )));
            }
        }
        let permuted: Vec<Vec<Val>> = bs.iter().map(|b| self.p_row.permute_vec(b)).collect();
        let out = gplu_numeric::solve_gpu_batch_traced(gpu, &self.lu, plan, &permuted, trace)?;
        let xs = out
            .xs
            .iter()
            .map(|y| (0..y.len()).map(|i| y[self.p_col.apply(i)]).collect())
            .collect();
        Ok((xs, out.time))
    }

    /// Solves `A x = b` with `steps` rounds of iterative refinement:
    /// `x ← x + A⁻¹(b − A·x)` through the existing factors. Because the
    /// pipeline factorizes without pivoting (stability handled by
    /// pre-processing, the GLU-family convention), refinement recovers the
    /// last digits on marginally conditioned systems at the cost of one
    /// extra triangular-solve pair per round.
    pub fn solve_refined(&self, b: &[Val], steps: usize) -> Result<Vec<Val>, GpluError> {
        let mut x = self.solve(b)?;
        // Refinement must target the matrix the factors represent; if
        // diagonal repair changed values, that is the repaired system.
        // Residuals are computed against `preprocessed` in factor ordering.
        for _ in 0..steps {
            let ax = {
                // A x in original ordering.
                let mut full = vec![0.0; x.len()];
                let x_perm: Vec<Val> = (0..x.len()).map(|i| x[i]).collect();
                let pre_x = self.p_col.permute_vec(&x_perm);
                let ax_pre = self.preprocessed.spmv(&pre_x);
                // back to original row ordering
                let inv = self.p_row.inverse();
                for (new, v) in ax_pre.into_iter().enumerate() {
                    full[inv.apply(new)] = v;
                }
                full
            };
            let r: Vec<Val> = b.iter().zip(&ax).map(|(p, q)| p - q).collect();
            let dx = self.solve(&r)?;
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += di;
            }
        }
        Ok(x)
    }

    /// Solves `A x = b` through the factors (for the repaired matrix when
    /// diagonal repair was needed — see [`PhaseReport::repaired_diagonals`]).
    pub fn solve(&self, b: &[Val]) -> Result<Vec<Val>, GpluError> {
        if b.len() != self.preprocessed.n_rows() {
            return Err(GpluError::Input(format!(
                "rhs length {} != n {}",
                b.len(),
                self.preprocessed.n_rows()
            )));
        }
        // P_row A P_colᵀ = LU  ⇒  A x = b  ⇔  (LU)(P_col x) = P_row b.
        let y = solve_lu(&self.lu, &self.p_row.permute_vec(b))?;
        // x = P_colᵀ y, i.e. x[i] = y[p_col(i)].
        let x = (0..y.len()).map(|i| y[self.p_col.apply(i)]).collect();
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sim::{CostModel, FaultPlan, GpuConfig};
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::verify::{check_solution, residual_probe};

    fn gpu_for(a: &Csr) -> Gpu {
        Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
    }

    fn faulted_gpu_for(a: &Csr, plan: FaultPlan) -> Gpu {
        Gpu::with_fault_plan(
            GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()),
            CostModel::default(),
            plan,
        )
    }

    #[test]
    fn end_to_end_factors_and_solves() {
        let a = random_dominant(300, 4.0, 101);
        let gpu = gpu_for(&a);
        let f = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("pipeline ok");
        assert!(
            residual_probe(&f.preprocessed, &f.lu, 4) < 1e-9,
            "factors must reconstruct"
        );

        let x_true = vec![1.0; 300];
        let b = a.spmv(&x_true);
        let x = f.solve(&b).expect("solve ok");
        assert!(
            check_solution(&a, &x, &b, 1e-8),
            "A x = b must hold in original ordering"
        );
    }

    #[test]
    fn all_symbolic_engines_agree() {
        let a = random_dominant(200, 4.0, 102);
        let mut factors = Vec::new();
        for engine in [
            SymbolicEngine::Ooc,
            SymbolicEngine::OocDynamic,
            SymbolicEngine::UmNoPrefetch,
            SymbolicEngine::UmPrefetch,
        ] {
            let gpu = gpu_for(&a);
            let opts = LuOptions {
                symbolic: engine,
                ..Default::default()
            };
            let f = LuFactorization::compute(&gpu, &a, &opts).expect("pipeline ok");
            factors.push(f.lu);
        }
        for other in &factors[1..] {
            assert_eq!(factors[0].vals, other.vals, "engines must agree bitwise");
        }
    }

    #[test]
    fn dense_and_sparse_formats_agree() {
        let a = banded_dominant(250, 4, 103);
        let mut results = Vec::new();
        for format in [
            NumericFormat::Dense,
            NumericFormat::Sparse,
            NumericFormat::SparseMerge,
        ] {
            let gpu = gpu_for(&a);
            let opts = LuOptions {
                format,
                ..Default::default()
            };
            let f = LuFactorization::compute(&gpu, &a, &opts).expect("pipeline ok");
            results.push(f);
        }
        assert_eq!(results[0].lu.vals, results[1].lu.vals);
        assert_eq!(results[0].lu.vals, results[2].lu.vals);
        assert!(results[0].report.m_limit.is_some());
        assert!(results[1].report.m_limit.is_none());
        assert!(results[1].report.probes > 0);
        assert_eq!(results[1].report.merge_steps, 0);
        assert!(results[2].report.merge_steps > 0);
        assert_eq!(results[2].report.probes, 0);
    }

    #[test]
    fn auto_selects_merge_exactly_when_format_switch_fires() {
        // Criterion: sparse iff n > L/(TB_max·sizeof). With TB_max = 160
        // and 4-byte data, L = 160·4·n sits exactly at the boundary (not
        // sparse); one byte less flips it.
        let boundary = 160u64 * 4 * 300;
        assert!(!GpuConfig::v100()
            .with_memory(boundary)
            .should_use_sparse_format(300));
        assert!(GpuConfig::v100()
            .with_memory(boundary - 1)
            .should_use_sparse_format(300));

        // When the switch fires, Auto must run the merge kernel
        // (merge_steps counted, no probes, no M limit)…
        let a = banded_dominant(300, 4, 108);
        let tight = Gpu::new(GpuConfig::v100().with_memory(150_000));
        assert!(tight.config().should_use_sparse_format(300));
        let f = LuFactorization::compute(&tight, &a, &LuOptions::default()).expect("ok");
        assert!(
            f.report.merge_steps > 0,
            "Auto must pick merge when the switch fires"
        );
        assert_eq!(f.report.probes, 0);
        assert!(f.report.m_limit.is_none());

        // …and stay dense otherwise.
        let roomy = Gpu::new(GpuConfig::v100());
        assert!(!roomy.config().should_use_sparse_format(300));
        let f = LuFactorization::compute(&roomy, &a, &LuOptions::default()).expect("ok");
        assert!(f.report.m_limit.is_some(), "Auto must stay dense otherwise");
        assert_eq!(f.report.merge_steps, 0);
    }

    #[test]
    fn report_is_populated() {
        let a = random_dominant(400, 4.0, 104);
        let gpu = gpu_for(&a);
        let f = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("ok");
        let r = &f.report;
        assert!(r.symbolic.as_ns() > 0.0);
        assert!(r.levelize.as_ns() > 0.0);
        assert!(r.numeric.as_ns() > 0.0);
        assert!(r.fill_nnz >= a.nnz());
        assert!(r.n_levels >= 1);
        assert!(r.symbolic_iterations >= 1);
        assert!(r.total() >= r.gpu_total());
    }

    #[test]
    fn refinement_tightens_the_residual() {
        let a = random_dominant(300, 4.0, 107);
        let gpu = gpu_for(&a);
        let f = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("ok");
        let x_true: Vec<f64> = (0..300).map(|i| ((i * 7919) % 13) as f64 - 6.0).collect();
        let b = a.spmv(&x_true);
        let plain = f.solve(&b).expect("solve");
        let refined = f.solve_refined(&b, 2).expect("refined");
        let resid = |x: &[f64]| {
            a.spmv(x)
                .iter()
                .zip(&b)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(
            resid(&refined) <= resid(&plain) * 1.0001,
            "refinement must not worsen the residual"
        );
        assert!(check_solution(&a, &refined, &b, 1e-10));
    }

    #[test]
    fn gpu_solve_matches_host_solve() {
        let a = random_dominant(250, 4.0, 106);
        let gpu = gpu_for(&a);
        let f = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("ok");
        let b = a.spmv(&vec![2.0; 250]);
        let host = f.solve(&b).expect("host solve");
        let plan = f.solve_plan();
        let (x, t) = f.solve_on_gpu(&gpu, &plan, &b).expect("gpu solve");
        assert!(t.as_ns() > 0.0);
        for (k, (h, g)) in host.iter().zip(&x).enumerate() {
            assert!((h - g).abs() < 1e-9, "x[{k}]: {h} vs {g}");
        }
        assert!(check_solution(&a, &x, &b, 1e-8));
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let a = random_dominant(50, 3.0, 105);
        let gpu = gpu_for(&a);
        let f = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("ok");
        assert!(matches!(f.solve(&vec![0.0; 49]), Err(GpluError::Input(_))));
    }

    #[test]
    fn clean_run_has_empty_recovery_log() {
        let a = random_dominant(200, 4.0, 120);
        let gpu = gpu_for(&a);
        let f = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("ok");
        assert!(
            f.report.recovery.is_empty(),
            "clean run must not report recovery: {}",
            f.report.recovery.summary()
        );
    }

    #[test]
    fn transient_oom_backs_off_and_matches_clean_factors() {
        let a = random_dominant(200, 4.0, 121);
        let opts = LuOptions {
            symbolic: SymbolicEngine::Ooc,
            ..Default::default()
        };
        let clean = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("clean ok");

        // Ordinal 3 is the stage-1 state chunk: the engine must halve its
        // chunk and carry on.
        let gpu = faulted_gpu_for(&a, FaultPlan::new().oom_on_alloc(3));
        let f = LuFactorization::compute(&gpu, &a, &opts).expect("recovers");
        assert_eq!(f.lu.vals, clean.lu.vals, "recovery must not change bits");
        assert!(
            f.report
                .recovery
                .events()
                .iter()
                .any(|e| matches!(e.action, RecoveryAction::ChunkBackoff { .. })),
            "backoff must be recorded: {}",
            f.report.recovery.summary()
        );
        assert!(!f.report.recovery.degraded());
    }

    #[test]
    fn symbolic_engine_degrades_ooc_to_um() {
        let a = random_dominant(150, 4.0, 122);
        let opts = LuOptions {
            symbolic: SymbolicEngine::Ooc,
            ..Default::default()
        };
        let clean = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("clean ok");

        // Every out-of-core stage-1 launch is rejected; UM runs different
        // kernels and must take over.
        let gpu = faulted_gpu_for(&a, FaultPlan::new().persistent_bad_launch("symbolic_1", 1));
        let f = LuFactorization::compute(&gpu, &a, &opts).expect("degrades to UM");
        assert_eq!(f.lu.vals, clean.lu.vals, "engines agree bitwise");
        let degraded = f.report.recovery.events().iter().any(|e| {
            matches!(
                &e.action,
                RecoveryAction::EngineDegraded { from, to }
                    if from == "Ooc" && to == "UmPrefetch"
            )
        });
        assert!(
            degraded,
            "Ooc -> UmPrefetch must be recorded: {}",
            f.report.recovery.summary()
        );
    }

    #[test]
    fn numeric_format_degrades_dense_to_merge() {
        let a = banded_dominant(200, 4, 123);
        let opts = LuOptions {
            format: NumericFormat::Dense,
            ..Default::default()
        };
        let clean = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("clean ok");

        let gpu = faulted_gpu_for(
            &a,
            FaultPlan::new().persistent_bad_launch("numeric_dense", 1),
        );
        let f = LuFactorization::compute(&gpu, &a, &opts).expect("degrades to merge");
        assert_eq!(f.lu.vals, clean.lu.vals, "formats agree bitwise");
        let degraded = f.report.recovery.events().iter().any(|e| {
            matches!(
                &e.action,
                RecoveryAction::FormatDegraded { from, to }
                    if from == "Dense" && to == "SparseMerge"
            )
        });
        assert!(
            degraded,
            "Dense -> SparseMerge must be recorded: {}",
            f.report.recovery.summary()
        );
        assert!(f.report.m_limit.is_none(), "merge engine reports no M");
        assert!(f.report.merge_steps > 0);
    }

    #[test]
    fn recovery_exhaustion_is_a_typed_error_not_a_panic() {
        let a = random_dominant(100, 4.0, 124);
        // Reject every kernel on the device: both symbolic rungs fail.
        let gpu = faulted_gpu_for(&a, FaultPlan::new().persistent_bad_launch("*", 1));
        let err = LuFactorization::compute(&gpu, &a, &LuOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                GpluError::RecoveryExhausted {
                    phase: Phase::Symbolic,
                    attempts: 2,
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn singular_pivot_without_repair_is_typed() {
        // Rank-deficient 2x2 of ones: the second pivot cancels to zero
        // during elimination (pre-processing sees nonzero diagonals, so it
        // repairs nothing up front).
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let gpu = gpu_for(&a);
        let err = LuFactorization::compute(&gpu, &a, &LuOptions::default()).unwrap_err();
        assert!(
            matches!(err, GpluError::SingularPivot { col: 1, .. }),
            "got {err}"
        );
    }

    #[test]
    fn singular_pivot_with_repair_retries_and_records() {
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let gpu = gpu_for(&a);
        let opts = LuOptions {
            preprocess: PreprocessOptions {
                repair_singular: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let f = LuFactorization::compute(&gpu, &a, &opts).expect("repairs and retries");
        let repaired = f
            .report
            .recovery
            .events()
            .iter()
            .any(|e| matches!(e.action, RecoveryAction::PivotRepaired { col: 1, .. }));
        assert!(
            repaired,
            "repair must be recorded: {}",
            f.report.recovery.summary()
        );
        assert!(f.report.repaired_diagonals >= 1);
        // The factors reconstruct the *repaired* matrix.
        assert!(residual_probe(&f.preprocessed, &f.lu, 2) < 1e-9);
    }

    fn ckpt_tempdir() -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "gplu-pipeline-ckpt-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn checkpointed_run_matches_plain_run_bitwise() {
        let a = random_dominant(200, 4.0, 110);
        let gpu = gpu_for(&a);
        let plain = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("plain ok");

        let dir = ckpt_tempdir();
        let gpu2 = gpu_for(&a);
        let ckpt = CheckpointOptions::new(&dir).every(2);
        let f =
            LuFactorization::compute_checkpointed(&gpu2, &a, &LuOptions::default(), &ckpt, &NOOP)
                .expect("checkpointed ok");
        assert_eq!(
            plain.lu.vals, f.lu.vals,
            "checkpointing must not perturb values"
        );
        assert_eq!(plain.lu.row_idx, f.lu.row_idx);
        assert!(
            gpu2.stats().crash_points > 0,
            "checkpointed runs must expose crash points"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_then_resume_is_bit_identical() {
        let a = random_dominant(200, 4.0, 111);
        let gpu = gpu_for(&a);
        let reference = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("ref ok");

        let dir = ckpt_tempdir();
        let opts = LuOptions::default();
        let ckpt = CheckpointOptions::new(&dir).every(2);
        // Kill the run at its third crash point (mid-pipeline) ...
        let gpu_crash = faulted_gpu_for(&a, FaultPlan::new().crash_at(3));
        let err =
            LuFactorization::compute_checkpointed(&gpu_crash, &a, &opts, &ckpt, &NOOP).unwrap_err();
        assert!(matches!(err, GpluError::Crashed { ordinal: 3 }), "{err:?}");

        // ... then resume on a fresh device and finish.
        let gpu_resume = gpu_for(&a);
        let resumed = LuFactorization::compute_checkpointed(
            &gpu_resume,
            &a,
            &opts,
            &ckpt.clone().resume(true),
            &NOOP,
        )
        .expect("resume ok");
        assert_eq!(
            reference.lu.vals, resumed.lu.vals,
            "bit-identical after resume"
        );
        assert_eq!(reference.lu.row_idx, resumed.lu.row_idx);
        assert_eq!(reference.lu.col_ptr, resumed.lu.col_ptr);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_against_the_wrong_matrix_is_typed() {
        let a = random_dominant(120, 4.0, 112);
        let dir = ckpt_tempdir();
        let ckpt = CheckpointOptions::new(&dir).every(2);
        let gpu = gpu_for(&a);
        LuFactorization::compute_checkpointed(&gpu, &a, &LuOptions::default(), &ckpt, &NOOP)
            .expect("ok");
        let b = random_dominant(120, 4.0, 113);
        let gpu2 = gpu_for(&b);
        let err = LuFactorization::compute_checkpointed(
            &gpu2,
            &b,
            &LuOptions::default(),
            &ckpt.resume(true),
            &NOOP,
        )
        .unwrap_err();
        assert!(matches!(err, GpluError::CheckpointMismatch(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repaired_planar_matrix_pipeline() {
        use gplu_sparse::gen::planar::{planar, PlanarParams};
        let a = planar(&PlanarParams {
            side: 16,
            tri_prob: 0.4,
            missing_diag_fraction: 0.4,
            seed: 9,
        });
        let gpu = gpu_for(&a);
        let f = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("ok");
        assert!(f.report.repaired_diagonals > 0);
        assert!(residual_probe(&f.preprocessed, &f.lu, 3) < 1e-9);
    }

    #[test]
    fn threshold_pivoting_swaps_rows_and_passes_the_gate() {
        let a = gplu_sparse::gen::hard::near_singular(150, 5);
        let opts = LuOptions::default().with_pivot(PivotPolicy::Threshold {
            tau: DEFAULT_PIVOT_TAU,
        });
        let gpu = gpu_for(&a);
        let f = LuFactorization::compute(&gpu, &a, &opts).expect("threshold survives");
        assert!(f.report.pivot_swaps > 0, "near-singular rows must swap");
        let r = f.report.residual.expect("gate ran");
        assert!(r <= opts.gate.threshold, "gate must pass: {r:e}");
        // Factors solve the *original* system through the composed p_row.
        let x_true = vec![1.0; 150];
        let b = a.spmv(&x_true);
        let x = f.solve(&b).expect("solve ok");
        assert!(check_solution(&a, &x, &b, 1e-6));
    }

    #[test]
    fn nopivot_on_adversarial_values_is_rejected_not_wrong() {
        // Without pivoting the tiny diagonals blow up element growth; the
        // gate must convert that into a typed rejection, never a silently
        // garbage factorization.
        let a = gplu_sparse::gen::hard::near_singular(150, 6);
        let opts = LuOptions::default(); // NoPivot, gate on, no escalation
        let gpu = gpu_for(&a);
        match LuFactorization::compute(&gpu, &a, &opts) {
            Ok(f) => {
                let r = f.report.residual.expect("gate ran");
                assert!(r <= opts.gate.threshold, "accepted factors must verify");
            }
            Err(GpluError::NumericallySingular {
                residual,
                threshold,
                attempts,
            }) => {
                assert!(residual > threshold);
                assert_eq!(attempts, 1, "no escalation requested");
            }
            Err(GpluError::SingularPivot { .. }) => {}
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }

    #[test]
    fn escalation_ladder_recovers_nopivot_traffic() {
        let a = gplu_sparse::gen::hard::near_singular(150, 6);
        let mut opts = LuOptions::default();
        opts.gate.escalate = true;
        let gpu = gpu_for(&a);
        let f = LuFactorization::compute(&gpu, &a, &opts).expect("ladder recovers");
        let r = f.report.residual.expect("gate ran");
        assert!(
            r <= opts.gate.threshold,
            "accepted factors must verify: {r:e}"
        );
        assert!(
            f.report
                .recovery
                .events()
                .iter()
                .any(|e| matches!(e.action, RecoveryAction::PivotEscalated { .. })),
            "escalation must be logged: {}",
            f.report.recovery.summary()
        );
    }

    #[test]
    fn static_perturbation_mirrors_deltas_and_verifies() {
        // Rank-1 matrix: the second pivot cancels to exactly zero. Static
        // pivoting clamps it, mirrors the delta into the preprocessed
        // diagonal, and the gate accepts the bumped system.
        let mut coo = gplu_sparse::Coo::new(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                coo.push(i, j, 1.0);
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let opts = LuOptions::default().with_pivot(PivotPolicy::Static { threshold: 1e-8 });
        let gpu = gpu_for(&a);
        let f = LuFactorization::compute(&gpu, &a, &opts).expect("static pivoting survives");
        assert!(
            f.report
                .recovery
                .events()
                .iter()
                .any(|e| matches!(e.action, RecoveryAction::PivotPerturbed { .. })),
            "clamps must be logged: {}",
            f.report.recovery.summary()
        );
        // The mirrored matrix and the factors agree exactly.
        assert!(residual_probe(&f.preprocessed, &f.lu, 3) <= opts.gate.threshold);
    }

    #[test]
    fn all_formats_agree_bitwise_under_each_policy() {
        let a = gplu_sparse::gen::hard::graded(120, 8, 7);
        for policy in [
            PivotPolicy::NoPivot,
            PivotPolicy::Static { threshold: 1e-10 },
            PivotPolicy::Threshold {
                tau: DEFAULT_PIVOT_TAU,
            },
        ] {
            let mut factors = Vec::new();
            for format in [
                NumericFormat::Dense,
                NumericFormat::Sparse,
                NumericFormat::SparseMerge,
                NumericFormat::SparseBlocked,
            ] {
                let opts = LuOptions {
                    format,
                    pivot: policy,
                    ..Default::default()
                };
                let f = LuFactorization::compute(&gpu_for(&a), &a, &opts)
                    .unwrap_or_else(|e| panic!("{format:?}/{policy:?}: {e}"));
                factors.push(f.lu);
            }
            for other in &factors[1..] {
                assert_eq!(
                    factors[0].vals, other.vals,
                    "formats must agree bitwise under {policy:?}"
                );
                assert_eq!(factors[0].row_idx, other.row_idx);
            }
        }
    }

    #[test]
    fn zero_diag_family_recovers_via_structural_repair() {
        // Structurally missing diagonals are repaired by preprocessing
        // (planar-style), then threshold pivoting handles the values.
        let a = gplu_sparse::gen::hard::zero_diag(150, 8);
        let opts = LuOptions::default().with_pivot(PivotPolicy::Threshold {
            tau: DEFAULT_PIVOT_TAU,
        });
        let f = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("recovers");
        assert!(f.report.repaired_diagonals > 0, "repair must fire");
        assert!(f.report.residual.expect("gate ran") <= opts.gate.threshold);
    }
}
