//! [`RefactorPlan`] ↔ checkpoint-snapshot round-trip — the disk tier's
//! wire format.
//!
//! The factor cache's persistent tier stores whole refactorization plans
//! so a restarted service can serve warm traffic without re-running any
//! symbolic work. A plan snapshot carries two sections:
//!
//! * [`section::PLAN_META`] — plan schema version, pattern fingerprint,
//!   numeric-format tag. Checked *first* on decode so a cross-version or
//!   cross-pattern entry is rejected with a typed error before any body
//!   bytes are trusted.
//! * [`section::PLAN_BODY`] — permutations, the pre-processed CSR
//!   template, the filled CSC pattern, the level schedule, the scatter
//!   maps, and the numeric policies (pivoting, residual gate, repair).
//!
//! Derivable artifacts are **rebuilt, not serialized**: the
//! [`PivotCache`] and the supernode [`BlockPlan`] are pure functions of
//! the decoded pattern, so re-deriving them keeps the format small and
//! makes it impossible for a checksum-passing-but-forged body to pair a
//! pattern with someone else's positions (the classic desync that turns
//! a cache hit into wrong factors).
//!
//! Decoding treats the snapshot as untrusted input even though every
//! section already passed its XXH64 checksum: all vector lengths and
//! scatter indices are re-validated against the decoded structures, and
//! every failure is a typed [`GpluError`] — the caller falls back to a
//! cold factorization, never panics, never serves a questionable plan.

use crate::checkpoint::pattern_fingerprint;
use crate::error::GpluError;
use crate::pipeline::{NumericFormat, ResidualGate};
use crate::refactor::RefactorPlan;
use gplu_checkpoint::{
    decode_csc, decode_csr, decode_perm, encode_csc, encode_csr, encode_perm, section, Dec, Enc,
    Snapshot,
};
use gplu_numeric::{BlockPlan, PivotCache, PivotPolicy};
use gplu_schedule::Levels;

/// Version of the plan sections' layout. Bumped on any incompatible
/// change; decoders reject other versions rather than guessing.
pub const PLAN_SCHEMA_VERSION: u32 = 1;

fn corrupt(msg: String) -> GpluError {
    GpluError::CheckpointCorrupt(msg)
}

fn corrupt_ck(e: gplu_checkpoint::CheckpointError) -> GpluError {
    GpluError::from(e)
}

fn expect_drained(d: &Dec<'_>, what: &str) -> Result<(), GpluError> {
    if d.remaining() != 0 {
        return Err(corrupt(format!(
            "{what} section has {} trailing byte(s)",
            d.remaining()
        )));
    }
    Ok(())
}

fn format_tag(f: NumericFormat) -> u8 {
    match f {
        NumericFormat::Dense => 0,
        NumericFormat::Sparse => 1,
        NumericFormat::SparseMerge => 2,
        NumericFormat::SparseBlocked => 3,
        NumericFormat::Auto => 255,
    }
}

fn format_from_tag(t: u8) -> Result<NumericFormat, GpluError> {
    match t {
        0 => Ok(NumericFormat::Dense),
        1 => Ok(NumericFormat::Sparse),
        2 => Ok(NumericFormat::SparseMerge),
        3 => Ok(NumericFormat::SparseBlocked),
        // Unlike partial numeric snapshots, Auto is a valid *plan*
        // format: the warm path carries its own replay ladder for it.
        255 => Ok(NumericFormat::Auto),
        other => Err(corrupt(format!("unknown numeric format tag {other}"))),
    }
}

fn policy_tag(p: PivotPolicy) -> (u8, f64) {
    match p {
        PivotPolicy::NoPivot => (0, 0.0),
        PivotPolicy::Static { threshold } => (1, threshold),
        PivotPolicy::Threshold { tau } => (2, tau),
    }
}

fn policy_from_tag(tag: u8, param: f64) -> Result<PivotPolicy, GpluError> {
    match tag {
        0 => Ok(PivotPolicy::NoPivot),
        1 => Ok(PivotPolicy::Static { threshold: param }),
        2 => Ok(PivotPolicy::Threshold { tau: param }),
        other => Err(corrupt(format!("unknown pivot policy tag {other}"))),
    }
}

/// Serializes `plan` into a two-section snapshot keyed by its pattern
/// fingerprint.
pub fn encode_plan(plan: &RefactorPlan) -> Snapshot {
    let mut meta = Enc::new();
    meta.u32(PLAN_SCHEMA_VERSION);
    meta.u64(plan.pattern_fp);
    meta.u8(format_tag(plan.format));

    let mut body = Enc::new();
    encode_perm(&mut body, &plan.p_row);
    encode_perm(&mut body, &plan.p_col);
    encode_csr(&mut body, &plan.pre);
    encode_csc(&mut body, &plan.lu_pattern);
    body.vec_u32(&plan.levels.level_of);
    body.vec_usize(&plan.scatter_pre);
    body.vec_usize(&plan.pre_diag);
    body.vec_usize(&plan.pre_to_csc);
    match &plan.block_plan {
        Some(bp) => {
            body.u8(1);
            body.f64(bp.threshold);
        }
        None => {
            body.u8(0);
            body.f64(0.0);
        }
    }
    body.f64(plan.repair_value);
    body.u8(u8::from(plan.repair_singular));
    let (ptag, pparam) = policy_tag(plan.pivot_policy);
    body.u8(ptag);
    body.f64(pparam);
    body.u8(u8::from(plan.gate.enabled));
    body.f64(plan.gate.threshold);
    body.usize(plan.gate.probes);
    body.u8(u8::from(plan.gate.escalate));

    let mut snap = Snapshot::new();
    snap.add_section(section::PLAN_META, meta.into_bytes());
    snap.add_section(section::PLAN_BODY, body.into_bytes());
    snap
}

/// Decodes and fully re-validates a plan snapshot.
///
/// `expected_fp` is the fingerprint the caller indexed the entry under;
/// a mismatch (an entry filed under the wrong key, or a schema drift) is
/// [`GpluError::CheckpointMismatch`], structural damage is
/// [`GpluError::CheckpointCorrupt`]. Either way the caller treats the
/// entry as unusable and falls back to a cold factorization.
pub fn decode_plan(snap: &Snapshot, expected_fp: u64) -> Result<RefactorPlan, GpluError> {
    let meta = snap
        .section(section::PLAN_META)
        .ok_or_else(|| corrupt("plan snapshot lacks PLAN_META section".into()))?;
    let mut d = Dec::new(meta);
    let version = d.u32("plan.schema_version").map_err(corrupt_ck)?;
    if version != PLAN_SCHEMA_VERSION {
        return Err(GpluError::CheckpointMismatch(format!(
            "plan schema version {version} (this build reads {PLAN_SCHEMA_VERSION})"
        )));
    }
    let pattern_fp = d.u64("plan.pattern_fp").map_err(corrupt_ck)?;
    if pattern_fp != expected_fp {
        return Err(GpluError::CheckpointMismatch(format!(
            "plan fingerprint {pattern_fp:016x} does not match expected {expected_fp:016x}"
        )));
    }
    let format = format_from_tag(d.u8("plan.format").map_err(corrupt_ck)?)?;
    expect_drained(&d, "PLAN_META")?;

    let body = snap
        .section(section::PLAN_BODY)
        .ok_or_else(|| corrupt("plan snapshot lacks PLAN_BODY section".into()))?;
    let mut d = Dec::new(body);
    let p_row = decode_perm(&mut d).map_err(corrupt_ck)?;
    let p_col = decode_perm(&mut d).map_err(corrupt_ck)?;
    let pre = decode_csr(&mut d).map_err(corrupt_ck)?;
    let lu_pattern = decode_csc(&mut d).map_err(corrupt_ck)?;
    let level_of = d.vec_u32("plan.level_of").map_err(corrupt_ck)?;
    let scatter_pre = d.vec_usize("plan.scatter_pre").map_err(corrupt_ck)?;
    let pre_diag = d.vec_usize("plan.pre_diag").map_err(corrupt_ck)?;
    let pre_to_csc = d.vec_usize("plan.pre_to_csc").map_err(corrupt_ck)?;
    let has_block = d.u8("plan.has_block").map_err(corrupt_ck)?;
    let block_threshold = d.f64("plan.block_threshold").map_err(corrupt_ck)?;
    let repair_value = d.f64("plan.repair_value").map_err(corrupt_ck)?;
    let repair_singular = d.u8("plan.repair_singular").map_err(corrupt_ck)? != 0;
    let ptag = d.u8("plan.pivot_policy").map_err(corrupt_ck)?;
    let pparam = d.f64("plan.pivot_param").map_err(corrupt_ck)?;
    let pivot_policy = policy_from_tag(ptag, pparam)?;
    let gate = ResidualGate {
        enabled: d.u8("plan.gate_enabled").map_err(corrupt_ck)? != 0,
        threshold: d.f64("plan.gate_threshold").map_err(corrupt_ck)?,
        probes: d.usize("plan.gate_probes").map_err(corrupt_ck)?,
        escalate: d.u8("plan.gate_escalate").map_err(corrupt_ck)? != 0,
    };
    expect_drained(&d, "PLAN_BODY")?;

    // Cross-structure consistency: all the invariants `refactor_plan`
    // guarantees by construction must be re-proven here, because the
    // warm path indexes these vectors without bounds checks.
    let n = pre.n_rows();
    if pre.n_cols() != n || lu_pattern.n_rows() != n || lu_pattern.n_cols() != n {
        return Err(corrupt(format!(
            "plan structures disagree on dimension: pre {}x{}, lu {}x{}",
            pre.n_rows(),
            pre.n_cols(),
            lu_pattern.n_rows(),
            lu_pattern.n_cols()
        )));
    }
    if p_row.len() != n || p_col.len() != n {
        return Err(corrupt("plan permutations do not match dimension".into()));
    }
    if level_of.len() != n {
        return Err(corrupt(format!(
            "plan level schedule covers {} of {n} columns",
            level_of.len()
        )));
    }
    if pre_diag.len() != n {
        return Err(corrupt(format!(
            "plan diagonal map covers {} of {n} rows",
            pre_diag.len()
        )));
    }
    if pre_to_csc.len() != pre.nnz() {
        return Err(corrupt(format!(
            "plan pre_to_csc maps {} of {} template entries",
            pre_to_csc.len(),
            pre.nnz()
        )));
    }
    let pre_nnz = pre.nnz();
    let lu_nnz = lu_pattern.nnz();
    if scatter_pre.iter().any(|&p| p >= pre_nnz) || pre_diag.iter().any(|&p| p >= pre_nnz) {
        return Err(corrupt("plan scatter index out of bounds".into()));
    }
    if pre_to_csc.iter().any(|&p| p >= lu_nnz) {
        return Err(corrupt("plan pre_to_csc index out of bounds".into()));
    }
    // The fingerprint in META must actually describe the *permuted input
    // structure* this plan replays: recompute it from the template the
    // way `refactor_plan` derived it (unpermute `pre`'s pattern through
    // the captured permutations) is not possible without the original
    // matrix, but the scatter map length pins the original nnz and the
    // permutations pin the dimension — enough that a forged body cannot
    // serve a differently-shaped matrix.

    // Derivable artifacts are rebuilt from the validated pattern.
    let pivot = PivotCache::build(&lu_pattern);
    let block_plan =
        (has_block != 0).then(|| BlockPlan::detect(&lu_pattern, &pivot, block_threshold));
    let levels = Levels::from_level_of(level_of);

    Ok(RefactorPlan {
        pattern_fp,
        p_row,
        p_col,
        pre,
        lu_pattern,
        levels,
        pivot,
        scatter_pre,
        pre_diag,
        pre_to_csc,
        block_plan,
        format,
        repair_value,
        repair_singular,
        pivot_policy,
        gate,
    })
}

/// Convenience: does this snapshot carry a plan for `fp` that this build
/// can read? Used by rewarm scans to skip foreign entries cheaply.
pub fn plan_matches(snap: &Snapshot, fp: u64) -> bool {
    let Some(meta) = snap.section(section::PLAN_META) else {
        return false;
    };
    let mut d = Dec::new(meta);
    matches!(d.u32("v"), Ok(PLAN_SCHEMA_VERSION)) && matches!(d.u64("fp"), Ok(got) if got == fp)
}

/// Recomputes the pattern fingerprint of an input matrix — re-exported
/// here so the server's disk tier can key entries without reaching into
/// `checkpoint` internals.
pub fn plan_key(a: &gplu_sparse::Csr) -> u64 {
    pattern_fingerprint(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{LuFactorization, LuOptions};
    use gplu_sim::{Gpu, GpuConfig};
    use gplu_sparse::gen::circuit::{circuit, CircuitParams};

    fn build_plan(opts: &LuOptions) -> (RefactorPlan, gplu_sparse::Csr) {
        let a = circuit(&CircuitParams {
            n: 120,
            nnz_per_row: 5.0,
            seed: 7,
            ..Default::default()
        });
        let gpu = Gpu::new(GpuConfig::default());
        let f = LuFactorization::compute(&gpu, &a, opts).expect("cold factorization");
        let plan = f.refactor_plan(&a, opts).expect("plan");
        (plan, a)
    }

    #[test]
    fn plan_round_trips_bit_identically() {
        let opts = LuOptions::default();
        let (plan, a) = build_plan(&opts);
        let snap = encode_plan(&plan);
        // Through bytes, as the disk tier would.
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("container ok");
        let decoded = decode_plan(&back, plan.pattern_fp()).expect("decodes");

        assert_eq!(decoded.pattern_fp(), plan.pattern_fp());
        assert_eq!(decoded.n(), plan.n());
        assert_eq!(decoded.approx_bytes(), plan.approx_bytes());
        assert!(plan_matches(&back, plan.pattern_fp()));
        assert!(!plan_matches(&back, plan.pattern_fp() ^ 1));

        // The decoded plan factorizes to the same bits as the original.
        let gpu1 = Gpu::new(GpuConfig::default());
        let gpu2 = Gpu::new(GpuConfig::default());
        let f1 = plan.refactorize(&gpu1, &a).expect("warm original");
        let f2 = decoded.refactorize(&gpu2, &a).expect("warm decoded");
        assert_eq!(f1.lu.vals.len(), f2.lu.vals.len());
        for (x, y) in f1.lu.vals.iter().zip(&f2.lu.vals) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn blocked_plan_rebuilds_its_block_plan() {
        let opts = LuOptions {
            format: NumericFormat::SparseBlocked,
            ..LuOptions::default()
        };
        let (plan, a) = build_plan(&opts);
        let snap = encode_plan(&plan);
        let decoded = decode_plan(&snap, plan.pattern_fp()).expect("decodes");
        let gpu1 = Gpu::new(GpuConfig::default());
        let gpu2 = Gpu::new(GpuConfig::default());
        let f1 = plan.refactorize(&gpu1, &a).expect("warm original");
        let f2 = decoded.refactorize(&gpu2, &a).expect("warm decoded");
        for (x, y) in f1.lu.vals.iter().zip(&f2.lu.vals) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn wrong_fingerprint_is_a_typed_mismatch() {
        let (plan, _) = build_plan(&LuOptions::default());
        let snap = encode_plan(&plan);
        let err = decode_plan(&snap, plan.pattern_fp() ^ 0xDEAD).unwrap_err();
        assert!(matches!(err, GpluError::CheckpointMismatch(_)), "{err:?}");
    }

    #[test]
    fn future_schema_version_is_rejected() {
        let (plan, _) = build_plan(&LuOptions::default());
        let snap = encode_plan(&plan);
        let mut meta = Enc::new();
        meta.u32(PLAN_SCHEMA_VERSION + 1);
        meta.u64(plan.pattern_fp());
        meta.u8(2);
        let mut forged = snap.clone();
        forged.add_section(section::PLAN_META, meta.into_bytes());
        let err = decode_plan(&forged, plan.pattern_fp()).unwrap_err();
        assert!(matches!(err, GpluError::CheckpointMismatch(_)), "{err:?}");
        assert!(!plan_matches(&forged, plan.pattern_fp()));
    }

    #[test]
    fn every_truncation_of_the_body_is_typed_not_a_panic() {
        let (plan, _) = build_plan(&LuOptions::default());
        let snap = encode_plan(&plan);
        let body = snap.section(section::PLAN_BODY).unwrap().to_vec();
        // Stride through prefixes (full per-byte is O(n^2) on a big body).
        for cut in (0..body.len()).step_by(97) {
            let mut t = Snapshot::new();
            t.add_section(
                section::PLAN_META,
                snap.section(section::PLAN_META).unwrap().to_vec(),
            );
            t.add_section(section::PLAN_BODY, body[..cut].to_vec());
            assert!(
                decode_plan(&t, plan.pattern_fp()).is_err(),
                "cut at {cut} must fail, not panic"
            );
        }
    }

    #[test]
    fn out_of_bounds_scatter_indices_are_rejected() {
        // A forged body with a checksum-valid container but a scatter
        // index past the template must be rejected by re-validation.
        let (plan, _) = build_plan(&LuOptions::default());
        let mut hacked = plan.clone();
        hacked.scatter_pre[0] = usize::MAX;
        let snap = encode_plan(&hacked);
        let err = decode_plan(&snap, plan.pattern_fp()).unwrap_err();
        assert!(matches!(err, GpluError::CheckpointCorrupt(_)), "{err:?}");
    }
}
