//! Recovery accounting for the self-healing pipeline.
//!
//! Every phase of [`crate::LuFactorization::compute`] is allowed to fail
//! transiently — device allocations can be denied, kernels can be
//! rejected, pivots can cancel to zero — and the pipeline responds by
//! backing off, degrading to a more conservative engine, or repairing the
//! matrix. None of that may happen silently: each action is recorded as a
//! [`RecoveryEvent`] in the [`RecoveryLog`] attached to
//! [`crate::PhaseReport`], so callers (and the chaos suite) can audit
//! exactly how a factorization survived.

use std::fmt;

/// The pipeline phase in which an event or failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Host-side pre-processing (ordering, diagonal repair).
    Preprocess,
    /// GPU symbolic factorization.
    Symbolic,
    /// GPU levelization.
    Levelize,
    /// GPU numeric factorization.
    Numeric,
    /// Triangular solve.
    Solve,
    /// Factor-cache tier management (disk-tier loads and rewarm).
    Cache,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Preprocess => "preprocess",
            Phase::Symbolic => "symbolic",
            Phase::Levelize => "levelize",
            Phase::Numeric => "numeric",
            Phase::Solve => "solve",
            Phase::Cache => "cache",
        };
        f.write_str(s)
    }
}

/// One corrective action the pipeline took to keep a factorization alive.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryAction {
    /// An out-of-core engine hit device OOM and geometrically shrank its
    /// chunk until the allocation fit.
    ChunkBackoff {
        /// Number of halvings performed across the phase.
        backoffs: usize,
        /// The chunk size (source rows) that finally fit.
        final_chunk: usize,
    },
    /// The symbolic output could not stay device-resident and was
    /// streamed back to the host per batch instead.
    StreamedOutput,
    /// A symbolic engine failed outright and the pipeline fell back to a
    /// more conservative one.
    EngineDegraded {
        /// Engine that failed (debug-formatted `SymbolicEngine`).
        from: String,
        /// Engine that ran instead.
        to: String,
    },
    /// A numeric format failed outright and the pipeline fell back to a
    /// less memory-hungry one.
    FormatDegraded {
        /// Format that failed (debug-formatted `NumericFormat`).
        from: String,
        /// Format that ran instead.
        to: String,
    },
    /// A singular pivot was patched with the repair value and the numeric
    /// phase was retried (the paper's Table 4 treatment, applied late).
    PivotRepaired {
        /// Column whose pivot was repaired.
        col: usize,
        /// Value written onto the diagonal.
        value: f64,
        /// Magnitude of the perturbation: `|value - old_diagonal|` (the
        /// full `|value|` when the diagonal was structurally absent).
        magnitude: f64,
    },
    /// The residual gate (or a singular pivot) rejected an attempt and
    /// the pivoting policy was escalated to the next ladder rung.
    PivotEscalated {
        /// Policy that produced the rejected attempt.
        from: String,
        /// Policy the retry runs under.
        to: String,
    },
    /// Static pivot perturbation clamped small pivots at division time;
    /// the factors exactly factor the correspondingly bumped matrix.
    PivotPerturbed {
        /// Number of columns whose pivot was clamped.
        cols: usize,
        /// Largest clamp delta applied.
        max_delta: f64,
    },
    /// Threshold pivoting permuted rows and the predicted fill pattern
    /// was grown in place to cover the new row order.
    PatternExpanded {
        /// Structural entries inserted.
        added: usize,
        /// Deepest per-column repair cascade.
        rounds: usize,
    },
    /// In-place expansion blew its budget and the symbolic phase was
    /// re-run from scratch on the permuted matrix — the last rung before
    /// rejection.
    Resymbolic {
        /// Entries the abandoned in-place expansion had inserted.
        abandoned: usize,
    },
    /// A fleet device died mid-phase (injected OOM or launch fault) and
    /// its shard of the work was re-run on the surviving devices. The
    /// result is still bit-identical; only the makespan degrades.
    DeviceLost {
        /// Ordinal of the device that died.
        device: usize,
        /// Work units (rows or columns) resharded onto survivors.
        resharded: usize,
    },
    /// A persisted factor-cache entry failed its checksum, schema-version
    /// or fingerprint validation on load and was rejected; the job fell
    /// back to a cold factorization (never a wrong answer).
    DiskEntryRejected {
        /// Pattern fingerprint the rejected entry was stored under.
        key: u64,
        /// Why the entry was refused.
        reason: String,
    },
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::ChunkBackoff {
                backoffs,
                final_chunk,
            } => write!(f, "chunk backoff x{backoffs} to {final_chunk} rows"),
            RecoveryAction::StreamedOutput => f.write_str("streamed output to host"),
            RecoveryAction::EngineDegraded { from, to } => {
                write!(f, "engine degraded {from} -> {to}")
            }
            RecoveryAction::FormatDegraded { from, to } => {
                write!(f, "format degraded {from} -> {to}")
            }
            RecoveryAction::PivotRepaired {
                col,
                value,
                magnitude,
            } => {
                write!(
                    f,
                    "pivot repaired at column {col} (value {value}, perturbation {magnitude:.3e})"
                )
            }
            RecoveryAction::PivotEscalated { from, to } => {
                write!(f, "pivoting escalated {from} -> {to}")
            }
            RecoveryAction::PivotPerturbed { cols, max_delta } => {
                write!(
                    f,
                    "static perturbation clamped {cols} pivot(s) (max delta {max_delta:.3e})"
                )
            }
            RecoveryAction::PatternExpanded { added, rounds } => {
                write!(
                    f,
                    "pattern expanded in place: +{added} entries in {rounds} round(s)"
                )
            }
            RecoveryAction::Resymbolic { abandoned } => {
                write!(
                    f,
                    "full re-symbolic pass (in-place expansion abandoned after +{abandoned})"
                )
            }
            RecoveryAction::DeviceLost { device, resharded } => {
                write!(
                    f,
                    "device {device} lost; {resharded} work unit(s) resharded onto survivors"
                )
            }
            RecoveryAction::DiskEntryRejected { key, reason } => {
                write!(
                    f,
                    "disk cache entry {key:#018x} rejected ({reason}); cold fallback"
                )
            }
        }
    }
}

/// A recovery action tagged with the phase it rescued.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Phase in which the action was taken.
    pub phase: Phase,
    /// What was done.
    pub action: RecoveryAction,
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.phase, self.action)
    }
}

/// Ordered record of every corrective action taken during one
/// factorization. Empty when nothing went wrong.
#[must_use = "a recovery log documents degraded results; inspect or attach it"]
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    events: Vec<RecoveryEvent>,
}

impl RecoveryLog {
    /// Appends an event.
    pub fn record(&mut self, phase: Phase, action: RecoveryAction) {
        self.events.push(RecoveryEvent { phase, action });
    }

    /// All events, in the order they were taken.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// True when no recovery was needed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if any recorded event degraded an engine or format — the
    /// result is correct but was produced by a non-requested path.
    pub fn degraded(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e.action,
                RecoveryAction::EngineDegraded { .. } | RecoveryAction::FormatDegraded { .. }
            )
        })
    }

    /// Number of diagonals patched by singular-pivot repair — each one a
    /// deliberate perturbation of the input whose magnitude is recorded
    /// on the event.
    pub fn repaired_pivots(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, RecoveryAction::PivotRepaired { .. }))
            .count()
    }

    /// One-line summary for logs and the CLI.
    pub fn summary(&self) -> String {
        if self.events.is_empty() {
            return "no recovery needed".into();
        }
        let parts: Vec<String> = self.events.iter().map(|e| e.to_string()).collect();
        parts.join("; ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_in_order_and_summarizes() {
        let mut log = RecoveryLog::default();
        assert!(log.is_empty());
        assert_eq!(log.summary(), "no recovery needed");

        log.record(
            Phase::Symbolic,
            RecoveryAction::ChunkBackoff {
                backoffs: 3,
                final_chunk: 8,
            },
        );
        log.record(
            Phase::Numeric,
            RecoveryAction::FormatDegraded {
                from: "Dense".into(),
                to: "SparseMerge".into(),
            },
        );
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        assert!(log.degraded());
        assert_eq!(log.events()[0].phase, Phase::Symbolic);
        let s = log.summary();
        assert!(s.contains("chunk backoff x3"));
        assert!(s.contains("Dense -> SparseMerge"));
    }

    #[test]
    fn backoff_alone_is_not_degradation() {
        let mut log = RecoveryLog::default();
        log.record(
            Phase::Symbolic,
            RecoveryAction::ChunkBackoff {
                backoffs: 1,
                final_chunk: 64,
            },
        );
        log.record(Phase::Symbolic, RecoveryAction::StreamedOutput);
        assert!(!log.degraded());
    }

    #[test]
    fn robustness_actions_display_and_count() {
        let mut log = RecoveryLog::default();
        log.record(
            Phase::Numeric,
            RecoveryAction::PivotRepaired {
                col: 3,
                value: 1.0,
                magnitude: 1.0,
            },
        );
        log.record(
            Phase::Numeric,
            RecoveryAction::PivotEscalated {
                from: "none".into(),
                to: "threshold(tau=0.1)".into(),
            },
        );
        log.record(
            Phase::Numeric,
            RecoveryAction::PivotPerturbed {
                cols: 2,
                max_delta: 1e-8,
            },
        );
        log.record(
            Phase::Symbolic,
            RecoveryAction::PatternExpanded {
                added: 40,
                rounds: 2,
            },
        );
        log.record(
            Phase::Symbolic,
            RecoveryAction::Resymbolic { abandoned: 900 },
        );
        assert_eq!(log.repaired_pivots(), 1);
        assert!(!log.degraded(), "robustness actions are not degradations");
        let s = log.summary();
        assert!(s.contains("perturbation 1.000e0"));
        assert!(s.contains("escalated none -> threshold(tau=0.1)"));
        assert!(s.contains("clamped 2 pivot(s)"));
        assert!(s.contains("+40 entries in 2 round(s)"));
        assert!(s.contains("re-symbolic"));
    }

    #[test]
    fn phases_display_lowercase() {
        assert_eq!(Phase::Symbolic.to_string(), "symbolic");
        assert_eq!(Phase::Numeric.to_string(), "numeric");
    }
}
