//! The machine-readable run report.
//!
//! [`RunReport`] is the versioned JSON superset of [`PhaseReport`]: phase
//! timings, per-phase GPU statistics deltas, per-level numeric records
//! (extracted from the `numeric.level` spans a [`gplu_trace::Recorder`]
//! captured), and the recovery log. The schema:
//!
//! ```text
//! {
//!   "schema_version": 2,
//!   "matrix":  { "n": u64, "nnz": u64 },
//!   "phases":  { "preprocess_ns": f64, "symbolic_ns": f64,
//!                "levelize_ns": f64, "numeric_ns": f64,
//!                "total_ns": f64, "gpu_total_ns": f64 },
//!   "symbolic": { "iterations": u64, "chunk_size": u64,
//!                 "fault_groups": u64 },
//!   "schedule": { "n_levels": u64, "max_level_width": u64 },
//!   "numeric":  { "mode_a": u64, "mode_b": u64, "mode_c": u64,
//!                 "m_limit": u64|null, "probes": u64,
//!                 "merge_steps": u64, "gemm_tiles": u64 },
//!   "fill":     { "nnz": u64, "new_fill_ins": u64,
//!                 "repaired_diagonals": u64 },
//!   "gpu": { "<phase>": { "kernels_host": u64, "kernels_device": u64,
//!                         "kernel_time_ns": f64, "fault_time_ns": f64,
//!                         "fault_groups": u64, "h2d_bytes": u64,
//!                         "d2h_bytes": u64, "xfer_time_ns": f64,
//!                         "prefetch_time_ns": f64 }, ... },
//!   "levels": [ { "level": u64, "width": u64, "mode": "A"|"B"|"C",
//!                 "duration_ns": f64, "probes": u64?, "merge_steps": u64?,
//!                 "batches": u64?, "blocks": u64?,
//!                 "mean_block_width": f64?, "gemm_tiles": u64? }, ... ],
//!   "recovery": [ { "phase": str, "action": str }, ... ],
//!   "fleet":   { "devices": u64, "dead": [u64...],
//!                "per_device_ns": [f64...], "resharded_rows": u64,
//!                "resharded_cols": u64, "exchanges": u64,
//!                "exchange_bytes": u64, "exchange_ns": f64 }?   // fleet runs only
//! }
//! ```
//!
//! `phases.total_ns` always equals the sum of the four phase fields (it is
//! written from [`PhaseReport::total`]), so consumers can cross-check a
//! report against the in-process numbers.

use crate::report::PhaseReport;
use gplu_sim::GpuStatsSnapshot;
use gplu_trace::{AttrValue, EventKind, JsonValue, TraceEvent};

/// Version stamp written into every report; bump on breaking layout
/// changes. Version 2 added the blocked-engine counters
/// (`numeric.gemm_tiles` plus the per-level `blocks`,
/// `mean_block_width` and `gemm_tiles` fields).
pub const SCHEMA_VERSION: u64 = 2;

/// One schedule level as the numeric engine ran it, reconstructed from a
/// `numeric.level` Begin/End span pair.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelRecord {
    /// Level index in schedule order.
    pub level: u64,
    /// Columns factorized concurrently in this level.
    pub width: u64,
    /// Kernel mode letter (`A`/`B`/`C`).
    pub mode: String,
    /// Simulated wall time the level took.
    pub duration_ns: f64,
    /// Binary-search probes this level issued (binary-search engine only).
    pub probes: Option<u64>,
    /// Merge-cursor advances this level issued (merge and blocked
    /// engines).
    pub merge_steps: Option<u64>,
    /// Dense-format launch batches (dense engine only).
    pub batches: Option<u64>,
    /// Distinct supernode blocks touched (blocked engine only).
    pub blocks: Option<u64>,
    /// Mean supernode width across the level's columns (blocked engine
    /// only).
    pub mean_block_width: Option<f64>,
    /// BLAS-3 update tiles this level executed (blocked engine only).
    pub gemm_tiles: Option<u64>,
}

/// Extracts per-level records from recorded events by pairing each
/// `numeric.level` End with the innermost open Begin. When a numeric
/// ladder ran more than one engine, only the last (successful) attempt's
/// levels are kept — an End for level 0 resets the accumulation.
pub fn extract_levels(events: &[TraceEvent]) -> Vec<LevelRecord> {
    let mut open: Vec<f64> = Vec::new();
    let mut out: Vec<LevelRecord> = Vec::new();
    for e in events {
        if e.name != "numeric.level" {
            continue;
        }
        match e.kind {
            EventKind::Begin => open.push(e.ts_ns),
            EventKind::End => {
                let Some(begin_ts) = open.pop() else { continue };
                let attr_u64 = |key: &str| e.attr(key).and_then(AttrValue::as_u64);
                let level = attr_u64("level").unwrap_or(0);
                if level == 0 {
                    // A fresh engine attempt restarts at level 0; discard
                    // the aborted attempt's records.
                    out.clear();
                }
                out.push(LevelRecord {
                    level,
                    width: attr_u64("width").unwrap_or(0),
                    mode: e
                        .attr("mode")
                        .and_then(AttrValue::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    duration_ns: e.ts_ns - begin_ts,
                    probes: attr_u64("probes"),
                    merge_steps: attr_u64("merge_steps"),
                    batches: attr_u64("batches"),
                    blocks: attr_u64("blocks"),
                    mean_block_width: e.attr("mean_block_width").and_then(AttrValue::as_f64),
                    gemm_tiles: attr_u64("gemm_tiles"),
                });
            }
            _ => {}
        }
    }
    out
}

/// A complete, exportable description of one factorization run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Matrix dimension.
    pub n: usize,
    /// Matrix nonzeros (input pattern, before fill).
    pub nnz: usize,
    /// The pipeline's phase accounting.
    pub report: PhaseReport,
    /// Per-level numeric records, from the trace.
    pub levels: Vec<LevelRecord>,
}

impl RunReport {
    /// Builds the report from the pipeline output and the recorded trace.
    /// `events` may be empty (report without per-level detail).
    pub fn new(n: usize, nnz: usize, report: PhaseReport, events: &[TraceEvent]) -> Self {
        RunReport {
            n,
            nnz,
            report,
            levels: extract_levels(events),
        }
    }

    /// The report as a JSON value (schema documented at module level).
    pub fn to_json(&self) -> JsonValue {
        let r = &self.report;
        let phases = JsonValue::obj()
            .set("preprocess_ns", r.preprocess.as_ns())
            .set("symbolic_ns", r.symbolic.as_ns())
            .set("levelize_ns", r.levelize.as_ns())
            .set("numeric_ns", r.numeric.as_ns())
            .set("total_ns", r.total().as_ns())
            .set("gpu_total_ns", r.gpu_total().as_ns());

        let gpu = JsonValue::obj()
            .set("preprocess", snapshot_json(&r.phase_stats.preprocess))
            .set("symbolic", snapshot_json(&r.phase_stats.symbolic))
            .set("levelize", snapshot_json(&r.phase_stats.levelize))
            .set("numeric", snapshot_json(&r.phase_stats.numeric));

        let levels: Vec<JsonValue> = self.levels.iter().map(level_json).collect();
        let recovery: Vec<JsonValue> = r
            .recovery
            .events()
            .iter()
            .map(|e| {
                JsonValue::obj()
                    .set("phase", e.phase.to_string())
                    .set("action", e.action.to_string())
            })
            .collect();

        let mut out = JsonValue::obj()
            .set("schema_version", SCHEMA_VERSION)
            .set(
                "matrix",
                JsonValue::obj().set("n", self.n).set("nnz", self.nnz),
            )
            .set("phases", phases)
            .set(
                "symbolic",
                JsonValue::obj()
                    .set("iterations", r.symbolic_iterations)
                    .set("chunk_size", r.chunk_size)
                    .set("fault_groups", r.fault_groups()),
            )
            .set(
                "schedule",
                JsonValue::obj()
                    .set("n_levels", r.n_levels)
                    .set("max_level_width", r.max_level_width),
            )
            .set(
                "numeric",
                JsonValue::obj()
                    .set("mode_a", r.mode_mix.0)
                    .set("mode_b", r.mode_mix.1)
                    .set("mode_c", r.mode_mix.2)
                    .set("m_limit", r.m_limit)
                    .set("probes", r.probes)
                    .set("merge_steps", r.merge_steps)
                    .set("gemm_tiles", r.gemm_tiles),
            )
            .set(
                "fill",
                JsonValue::obj()
                    .set("nnz", r.fill_nnz)
                    .set("new_fill_ins", r.new_fill_ins)
                    .set("repaired_diagonals", r.repaired_diagonals),
            )
            .set("gpu", gpu)
            .set("levels", levels)
            .set("recovery", recovery);
        if let Some(fl) = &r.fleet {
            let per_device: Vec<JsonValue> = fl
                .per_device_ns
                .iter()
                .map(|&ns| JsonValue::from(ns))
                .collect();
            let dead: Vec<JsonValue> = fl.dead.iter().map(|&d| JsonValue::from(d)).collect();
            out = out.set(
                "fleet",
                JsonValue::obj()
                    .set("devices", fl.devices)
                    .set("dead", dead)
                    .set("per_device_ns", per_device)
                    .set("resharded_rows", fl.resharded_rows)
                    .set("resharded_cols", fl.resharded_cols)
                    .set("exchanges", fl.exchanges)
                    .set("exchange_bytes", fl.exchange_bytes)
                    .set("exchange_ns", fl.exchange_ns),
            );
        }
        out
    }

    /// The report as pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }
}

fn snapshot_json(s: &GpuStatsSnapshot) -> JsonValue {
    JsonValue::obj()
        .set("kernels_host", s.kernels_host)
        .set("kernels_device", s.kernels_device)
        .set("kernel_time_ns", s.kernel_time.as_ns())
        .set("fault_time_ns", s.fault_time.as_ns())
        .set("fault_groups", s.fault_groups)
        .set("h2d_bytes", s.h2d_bytes)
        .set("d2h_bytes", s.d2h_bytes)
        .set("xfer_time_ns", s.xfer_time.as_ns())
        .set("prefetch_time_ns", s.prefetch_time.as_ns())
}

fn level_json(l: &LevelRecord) -> JsonValue {
    let mut out = JsonValue::obj()
        .set("level", l.level)
        .set("width", l.width)
        .set("mode", l.mode.clone())
        .set("duration_ns", l.duration_ns);
    if let Some(p) = l.probes {
        out = out.set("probes", p);
    }
    if let Some(m) = l.merge_steps {
        out = out.set("merge_steps", m);
    }
    if let Some(b) = l.batches {
        out = out.set("batches", b);
    }
    if let Some(b) = l.blocks {
        out = out.set("blocks", b);
    }
    if let Some(w) = l.mean_block_width {
        out = out.set("mean_block_width", w);
    }
    if let Some(g) = l.gemm_tiles {
        out = out.set("gemm_tiles", g);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sim::SimTime;

    fn level_span(
        level: u64,
        begin: f64,
        end: f64,
        extra: &'static str,
        v: u64,
    ) -> [TraceEvent; 2] {
        [
            TraceEvent {
                name: "numeric.level",
                cat: "level",
                kind: EventKind::Begin,
                ts_ns: begin,
                attrs: vec![("level", level.into()), ("width", 2u64.into())],
            },
            TraceEvent {
                name: "numeric.level",
                cat: "level",
                kind: EventKind::End,
                ts_ns: end,
                attrs: vec![
                    ("level", level.into()),
                    ("width", 2u64.into()),
                    ("mode", "A".into()),
                    (extra, v.into()),
                ],
            },
        ]
    }

    #[test]
    fn extracts_levels_with_durations() {
        let mut events = Vec::new();
        events.extend(level_span(0, 10.0, 25.0, "probes", 3));
        events.extend(level_span(1, 25.0, 40.0, "probes", 5));
        let levels = extract_levels(&events);
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].level, 0);
        assert!((levels[0].duration_ns - 15.0).abs() < 1e-12);
        assert_eq!(levels[0].probes, Some(3));
        assert_eq!(levels[0].merge_steps, None);
        assert_eq!(levels[1].probes, Some(5));
    }

    #[test]
    fn ladder_retry_keeps_only_last_attempt() {
        let mut events = Vec::new();
        // A dense attempt that got through two levels before failing…
        events.extend(level_span(0, 0.0, 5.0, "batches", 1));
        events.extend(level_span(1, 5.0, 9.0, "batches", 1));
        // …then the merge retry from level 0.
        events.extend(level_span(0, 20.0, 26.0, "merge_steps", 7));
        events.extend(level_span(1, 26.0, 31.0, "merge_steps", 9));
        let levels = extract_levels(&events);
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].merge_steps, Some(7));
        assert_eq!(levels[0].batches, None);
    }

    #[test]
    fn empty_run_produces_a_valid_report() {
        // A run that failed before the first span — or one traced through
        // the no-op sink — still exports a well-formed report: schema
        // stamp, zeroed phases, empty levels/recovery arrays.
        let run = RunReport::new(0, 0, PhaseReport::default(), &[]);
        assert!(run.levels.is_empty());
        let doc = gplu_trace::json::parse(&run.to_json_string()).expect("valid json");
        assert_eq!(
            doc.get("schema_version").and_then(JsonValue::as_u64),
            Some(SCHEMA_VERSION)
        );
        let levels = doc
            .get("levels")
            .and_then(JsonValue::as_arr)
            .expect("levels array");
        assert!(levels.is_empty());
        let recovery = doc
            .get("recovery")
            .and_then(JsonValue::as_arr)
            .expect("recovery array");
        assert!(recovery.is_empty());
        assert_eq!(
            doc.get("phases")
                .and_then(|p| p.get("total_ns"))
                .and_then(JsonValue::as_f64),
            Some(0.0)
        );

        // Dangling Begin spans (aborted numeric phase) never produce
        // phantom level records.
        let dangling = [TraceEvent {
            name: "numeric.level",
            cat: "level",
            kind: EventKind::Begin,
            ts_ns: 4.0,
            attrs: vec![("level", 0u64.into())],
        }];
        assert!(extract_levels(&dangling).is_empty());
    }

    #[test]
    fn json_totals_match_phase_report() {
        let report = PhaseReport {
            preprocess: SimTime::from_us(1.0),
            symbolic: SimTime::from_us(2.5),
            levelize: SimTime::from_us(0.5),
            numeric: SimTime::from_us(4.0),
            ..Default::default()
        };
        let total = report.total().as_ns();
        let run = RunReport::new(100, 500, report, &[]);
        let doc = gplu_trace::json::parse(&run.to_json_string()).expect("valid json");
        assert_eq!(
            doc.get("schema_version").and_then(JsonValue::as_u64),
            Some(SCHEMA_VERSION)
        );
        let phases = doc.get("phases").expect("phases");
        let total_json = phases
            .get("total_ns")
            .and_then(JsonValue::as_f64)
            .expect("total_ns");
        assert!((total_json - total).abs() < 1e-9);
        let sum: f64 = ["preprocess_ns", "symbolic_ns", "levelize_ns", "numeric_ns"]
            .iter()
            .map(|k| phases.get(k).and_then(JsonValue::as_f64).expect("phase"))
            .sum();
        assert!((sum - total).abs() < 1e-9);
        assert_eq!(
            doc.get("matrix")
                .and_then(|m| m.get("n"))
                .and_then(JsonValue::as_u64),
            Some(100)
        );
        // m_limit: None serializes as null.
        assert!(matches!(
            doc.get("numeric").and_then(|n| n.get("m_limit")),
            Some(JsonValue::Null)
        ));
    }
}
