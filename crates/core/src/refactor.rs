//! The refactorization fast path — the circuit-simulation workload the
//! paper (and GLU 3.0 before it) is built around.
//!
//! In SPICE-style transient analysis the same sparsity pattern is
//! factorized thousands of times with drifting values. Pre-processing,
//! symbolic factorization and levelization are *pattern-only* work:
//! [`RefactorPlan`] captures their outputs once — permutations, the
//! filled CSC pattern, the level schedule, the numeric phase's
//! [`PivotCache`], and the value-scatter maps that replay pre-processing's
//! diagonal repair — so every later timestep runs only a host value
//! scatter plus the numeric kernels. [`RefactorPlan::refactorize`] is
//! bit-identical to a cold [`LuFactorization::compute`] of the same
//! `(pattern, values)` pair — every engine applies the same arithmetic in
//! the same order — but it is *not* priced like one: the warm path runs
//! the merge engine directly on the plan's sorted-CSC artifacts and
//! tail-launches the captured level schedule device-side (the paper's
//! Algorithm 5), the specialization real refactorization engines
//! (cuSOLVER/cuDSS) apply after analysis. Late singular-pivot repair is
//! replayed exactly as on the cold path.

use crate::checkpoint::pattern_fingerprint;
use crate::error::GpluError;
use crate::pipeline::{
    add_to_diag, bump_diag, format_name, ladder_exhausted, trace_recovery, LuFactorization,
    LuOptions, NumericFormat, ResidualGate,
};
use crate::recovery::{Phase, RecoveryAction, RecoveryLog};
use crate::report::PhaseReport;
use gplu_numeric::{
    discover_pivots, factorize_gpu_blocked_run_cached, factorize_gpu_dense_run_cached,
    factorize_gpu_merge_run_cached, factorize_gpu_sparse_run_cached, BlockPlan, NumericError,
    PivotCache, PivotPolicy, PivotRule,
};
use gplu_schedule::Levels;
use gplu_sim::{Gpu, SimError, SimTime};
use gplu_sparse::verify::residual_probe;
use gplu_sparse::{Csc, Csr, Permutation, SparseError};
use gplu_trace::{TraceSink, NOOP};

/// Everything pattern-only that a repeat factorization can reuse.
///
/// Built once from a completed [`LuFactorization`] (plus the original
/// *unpermuted* input it came from) by [`LuFactorization::refactor_plan`];
/// afterwards [`RefactorPlan::refactorize`] accepts any matrix with the
/// same sparsity pattern and produces its factors without re-running
/// pre-processing, symbolic factorization or levelization.
#[derive(Debug, Clone)]
pub struct RefactorPlan {
    /// Structure-only fingerprint of the input pattern; every
    /// `refactorize` call is checked against it.
    pub(crate) pattern_fp: u64,
    pub(crate) p_row: Permutation,
    pub(crate) p_col: Permutation,
    /// Pre-processed matrix template: structure reused, values rewritten
    /// per refactorization.
    pub(crate) pre: Csr,
    /// Filled (post-symbolic) CSC pattern template.
    pub(crate) lu_pattern: Csc,
    pub(crate) levels: Levels,
    pub(crate) pivot: PivotCache,
    /// Input entry `k` → its position in `pre.vals` (after permutation).
    pub(crate) scatter_pre: Vec<usize>,
    /// Row `i` → position of the diagonal entry in `pre.vals` (always
    /// present: pre-processing completes the diagonal).
    pub(crate) pre_diag: Vec<usize>,
    /// `pre.vals` position → position in `lu_pattern.vals` (the filled
    /// pattern is a superset; fill-in slots start at 0.0).
    pub(crate) pre_to_csc: Vec<usize>,
    /// Supernode blocking plan, captured when the plan's format is
    /// [`NumericFormat::SparseBlocked`] — warm refactorizations replay it
    /// without re-scanning the pattern (the blocking pass is
    /// pattern-only, exactly like the pivot cache).
    pub(crate) block_plan: Option<BlockPlan>,
    pub(crate) format: NumericFormat,
    pub(crate) repair_value: f64,
    pub(crate) repair_singular: bool,
    /// Pivoting policy the cold factorization ran with. A `Threshold`
    /// plan's permutations already bake in the discovered row order, so
    /// every warm call re-validates that order against the new values and
    /// rejects with [`GpluError::StalePivotOrder`] on drift — the warm
    /// path never escalates and never replays a stale pivot sequence.
    pub(crate) pivot_policy: PivotPolicy,
    /// Residual acceptance gate replayed on every warm factorization.
    pub(crate) gate: ResidualGate,
}

impl RefactorPlan {
    /// The pattern key this plan serves (the factor-cache key).
    pub fn pattern_fp(&self) -> u64 {
        self.pattern_fp
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.pre.n_rows()
    }

    /// Level schedule reused by every refactorization.
    pub fn levels(&self) -> &Levels {
        &self.levels
    }

    /// The filled (post-symbolic) CSC pattern template. A rewarmed plan
    /// rebuilds its triangular-solve schedule from this structure.
    pub fn lu_pattern(&self) -> &Csc {
        &self.lu_pattern
    }

    /// Approximate host-memory footprint of the plan (the quantity a
    /// factor cache budgets against): the CSC/CSR structure clones, the
    /// schedule, the pivot cache and the scatter maps.
    pub fn approx_bytes(&self) -> u64 {
        let n = self.pre.n_rows() as u64;
        let pre_nnz = self.pre.nnz() as u64;
        let lu_nnz = self.lu_pattern.nnz() as u64;
        // CSR template (ptr 8B, idx 4B, val 8B) + CSC template + levels
        // (level_of u32 + grouped u32) + pivot cache (2 usize per column)
        // + scatter maps (usize each).
        (n + 1) * 8
            + pre_nnz * 12
            + (n + 1) * 8
            + lu_nnz * 12
            + n * 8
            + n * 16
            + (self.scatter_pre.len() as u64 + n + pre_nnz) * 8
            + self.block_plan.as_ref().map_or(0, BlockPlan::approx_bytes)
    }

    /// Factorizes `a` — same pattern, new values — reusing every
    /// pattern-only artifact in the plan. See [`RefactorPlan::refactorize_traced`].
    pub fn refactorize(&self, gpu: &Gpu, a: &Csr) -> Result<LuFactorization, GpluError> {
        self.refactorize_traced(gpu, a, &NOOP)
    }

    /// [`RefactorPlan::refactorize`] with telemetry. Only a
    /// `phase.numeric` span is emitted — there *is* no symbolic or
    /// levelize phase on the warm path, and traces are the observable
    /// proof of that (see `examples/circuit_transient.rs`).
    pub fn refactorize_traced(
        &self,
        gpu: &Gpu,
        a: &Csr,
        trace: &dyn TraceSink,
    ) -> Result<LuFactorization, GpluError> {
        if pattern_fingerprint(a) != self.pattern_fp {
            return Err(GpluError::Input(format!(
                "refactorize pattern mismatch: plan was built for pattern {:#018x}, \
                 input hashes to {:#018x} — run a cold factorization instead",
                self.pattern_fp,
                pattern_fingerprint(a)
            )));
        }
        let mut report = PhaseReport::default();
        let mut recovery = RecoveryLog::default();

        // 1. Host value scatter — the only pre-processing the warm path
        // does. Replays permutation and both diagonal-repair rules
        // (structural completion and zero replacement) through the
        // precomputed maps, so the result is exactly what `preprocess`
        // would have produced for these values.
        let mut matrix = self.pre.clone();
        matrix.vals.iter_mut().for_each(|v| *v = 0.0);
        for (k, &pos) in self.scatter_pre.iter().enumerate() {
            matrix.vals[pos] = a.vals[k];
        }
        let mut repaired = 0usize;
        for &dpos in &self.pre_diag {
            if matrix.vals[dpos] == 0.0 {
                matrix.vals[dpos] = self.repair_value;
                repaired += 1;
            }
        }
        let mut pattern = self.lu_pattern.clone();
        pattern.vals.iter_mut().for_each(|v| *v = 0.0);
        for (k, &pos) in self.pre_to_csc.iter().enumerate() {
            pattern.vals[pos] = matrix.vals[k];
        }
        // Two passes over the input entries plus the diagonal sweep.
        let scatter_time = SimTime::from_ns(
            gpu.cost()
                .cpu_parallel_ns(2 * a.nnz() as u64 + a.n_rows() as u64),
        );
        gpu.advance(scatter_time);
        report.preprocess = scatter_time;
        report.repaired_diagonals = repaired;
        report.fill_nnz = self.lu_pattern.nnz();
        report.new_fill_ins = self.lu_pattern.nnz() - self.pre.nnz();
        report.n_levels = self.levels.n_levels();
        report.max_level_width = self.levels.max_width();

        // 1b. Threshold plans captured a value-dependent row order (it is
        // baked into `p_row` and every pattern artifact). Re-run the host
        // discovery pre-pass on the scattered matrix: if the new values
        // still elect the same pivots the discovery returns the identity
        // (zero swaps) and the plan replays bit-identically; if they
        // elect different pivots the plan is stale and replaying it would
        // silently factor with the wrong rows on the diagonal — reject
        // with a typed error instead.
        if let PivotPolicy::Threshold { tau } = self.pivot_policy {
            let disc = discover_pivots(&matrix, tau).map_err(|e| match e {
                SparseError::ZeroPivot { col } => GpluError::SingularPivot {
                    col,
                    level: usize::MAX,
                },
                other => GpluError::Sparse(other),
            })?;
            let disc_time = SimTime::from_ns(gpu.cost().pivot_discovery_ns(disc.flops));
            gpu.advance(disc_time);
            report.preprocess += disc_time;
            if disc.swaps > 0 {
                let col = disc
                    .pinv
                    .iter()
                    .enumerate()
                    .find(|&(i, &p)| p as usize != i)
                    .map_or(0, |(i, _)| i);
                return Err(GpluError::StalePivotOrder { col, tau });
            }
        }

        // 2. Numeric factorization with the plan's PivotCache passed
        // through so no structural pass repeats. Under `Auto`, the warm
        // path does NOT replay the cold pipeline's format heuristic: the
        // plan already holds the merge engine's entire working set (the
        // sorted filled CSC pattern plus the pivot index), so it runs the
        // merge engine directly and tail-launches the captured level
        // schedule device-side (Algorithm 5) — the same specialization
        // real refactorization engines apply (cuSOLVER/cuDSS refactor
        // through a fixed path captured at analysis time, skipping the
        // cold path's per-column dense buffers). All engines apply
        // bit-identical arithmetic — the formats differ only in access
        // cost — so the bit-for-bit contract with the cold pipeline is
        // unaffected. Explicitly forced formats are replayed as forced
        // (degradation and late pivot repair included).
        let format_ladder: &[NumericFormat] = match self.format {
            NumericFormat::Auto => &[NumericFormat::SparseMerge],
            NumericFormat::Dense => &[NumericFormat::Dense, NumericFormat::SparseMerge],
            NumericFormat::Sparse => &[NumericFormat::Sparse],
            NumericFormat::SparseMerge => &[NumericFormat::SparseMerge],
            NumericFormat::SparseBlocked => {
                &[NumericFormat::SparseBlocked, NumericFormat::SparseMerge]
            }
        };
        let rule = match self.pivot_policy {
            PivotPolicy::Static { threshold } => PivotRule::Perturb { threshold },
            _ => PivotRule::Exact,
        };
        let num_before = gpu.stats();
        trace.span_begin(
            "phase.numeric",
            "phase",
            gpu.now().as_ns(),
            &[
                ("format", format_name(self.format).into()),
                ("refactorize", true.into()),
            ],
        );
        let mut repair_attempted = false;
        let (numeric, used_format) = 'numeric: loop {
            let mut last_err: Option<SimError> = None;
            let mut attempts = 0usize;
            for (i, &format) in format_ladder.iter().enumerate() {
                if i > 0 {
                    gpu.mem.reset();
                    let action = RecoveryAction::FormatDegraded {
                        from: format_name(format_ladder[i - 1]).to_string(),
                        to: format_name(format).to_string(),
                    };
                    trace_recovery(trace, gpu.now().as_ns(), Phase::Numeric, &action);
                    recovery.record(Phase::Numeric, action);
                }
                attempts += 1;
                let run = match format {
                    NumericFormat::Dense => factorize_gpu_dense_run_cached(
                        gpu,
                        &pattern,
                        &self.levels,
                        trace,
                        None,
                        None,
                        Some(&self.pivot),
                        rule,
                    ),
                    NumericFormat::Sparse => factorize_gpu_sparse_run_cached(
                        gpu,
                        &pattern,
                        &self.levels,
                        None,
                        trace,
                        None,
                        None,
                        Some(&self.pivot),
                        rule,
                    ),
                    NumericFormat::SparseBlocked => factorize_gpu_blocked_run_cached(
                        gpu,
                        &pattern,
                        &self.levels,
                        self.block_plan
                            .as_ref()
                            .expect("SparseBlocked plan captures its blocking pass"),
                        trace,
                        None,
                        None,
                        Some(&self.pivot),
                        rule,
                    ),
                    NumericFormat::Auto | NumericFormat::SparseMerge => {
                        factorize_gpu_merge_run_cached(
                            gpu,
                            &pattern,
                            &self.levels,
                            trace,
                            None,
                            None,
                            Some(&self.pivot),
                            rule,
                        )
                    }
                };
                match run {
                    Ok(out) => break 'numeric (out, format),
                    Err(NumericError::Sim(e)) => {
                        if matches!(e, SimError::Crashed { .. }) {
                            return Err(e.into());
                        }
                        last_err = Some(e);
                    }
                    Err(NumericError::SingularPivot { col, level }) => {
                        let value = self.repair_value;
                        let old = if self.repair_singular && !repair_attempted {
                            bump_diag(&mut matrix, &mut pattern, col, value)
                        } else {
                            None
                        };
                        if let Some(old) = old {
                            repair_attempted = true;
                            gpu.mem.reset();
                            let action = RecoveryAction::PivotRepaired {
                                col,
                                value,
                                magnitude: (value - old).abs(),
                            };
                            trace_recovery(trace, gpu.now().as_ns(), Phase::Numeric, &action);
                            recovery.record(Phase::Numeric, action);
                            report.repaired_diagonals += 1;
                            continue 'numeric;
                        }
                        return Err(GpluError::SingularPivot { col, level });
                    }
                    Err(NumericError::Input(msg)) => return Err(GpluError::Input(msg)),
                }
            }
            let last = last_err.unwrap_or(SimError::BadLaunch("no numeric format ran".into()));
            return Err(ladder_exhausted(Phase::Numeric, attempts, last));
        };
        report.numeric = numeric.time;
        report.mode_mix = (numeric.mode_mix.a, numeric.mode_mix.b, numeric.mode_mix.c);
        report.m_limit = numeric.m_limit;
        report.probes = numeric.probes;
        report.merge_steps = numeric.merge_steps;
        report.gemm_tiles = numeric.gemm_tiles;
        trace.span_end(
            "phase.numeric",
            "phase",
            gpu.now().as_ns(),
            &[
                ("format", format_name(used_format).into()),
                ("mode_a", numeric.mode_mix.a.into()),
                ("mode_b", numeric.mode_mix.b.into()),
                ("mode_c", numeric.mode_mix.c.into()),
            ],
        );
        report.phase_stats.numeric = gpu.stats().since(&num_before);
        if !numeric.perturbations.is_empty() {
            // Mirror engine-level static clamps into the scattered matrix
            // so the factors exactly factor what residuals are measured
            // against (same contract as the cold path).
            let mut max_delta = 0.0f64;
            for &(col, delta) in &numeric.perturbations {
                add_to_diag(&mut matrix, col, delta);
                max_delta = max_delta.max(delta.abs());
            }
            let action = RecoveryAction::PivotPerturbed {
                cols: numeric.perturbations.len(),
                max_delta,
            };
            trace_recovery(trace, gpu.now().as_ns(), Phase::Numeric, &action);
            recovery.record(Phase::Numeric, action);
        }
        report.recovery = recovery;

        let f = LuFactorization {
            lu: numeric.lu,
            preprocessed: matrix,
            p_row: self.p_row.clone(),
            p_col: self.p_col.clone(),
            levels: self.levels.clone(),
            report,
        };

        // 3. Residual acceptance gate — the warm path runs the same gate
        // as the cold pipeline but never escalates: a failing warm
        // factorization is rejected typed (the caller falls back to a
        // cold factorization, which owns the ladder).
        if self.gate.enabled {
            let r = residual_probe(&f.preprocessed, &f.lu, self.gate.probes.max(1));
            let pass = r.is_finite() && r <= self.gate.threshold;
            if trace.enabled() {
                trace.instant(
                    "numeric.residual_gate",
                    "verify",
                    gpu.now().as_ns(),
                    &[
                        ("residual", r.into()),
                        ("threshold", self.gate.threshold.into()),
                        ("pass", pass.into()),
                        ("refactorize", true.into()),
                    ],
                );
            }
            if !pass {
                return Err(GpluError::NumericallySingular {
                    residual: r,
                    threshold: self.gate.threshold,
                    attempts: 1,
                });
            }
            let mut f = f;
            f.report.residual = Some(r);
            return Ok(f);
        }

        Ok(f)
    }
}

impl LuFactorization {
    /// Captures this factorization's pattern-only artifacts into a
    /// [`RefactorPlan`] for the matrix `a` it was computed from.
    ///
    /// `a` must be the *original, unpermuted* input and `opts` the options
    /// the factorization ran with: the plan records where each input entry
    /// lands after permutation and diagonal repair, and which numeric
    /// format ladder to replay. Returns [`GpluError::Input`] if `a` is
    /// inconsistent with the factorization (wrong shape, or an entry that
    /// does not map into the pre-processed pattern).
    pub fn refactor_plan(&self, a: &Csr, opts: &LuOptions) -> Result<RefactorPlan, GpluError> {
        let n = self.preprocessed.n_rows();
        if a.n_rows() != n || a.n_cols() != n {
            return Err(GpluError::Input(format!(
                "refactor_plan input is {}x{}, factorization is {n}x{n}",
                a.n_rows(),
                a.n_cols()
            )));
        }
        let pre = &self.preprocessed;

        // Input entry k → its slot in the pre-processed matrix.
        let mut scatter_pre = Vec::with_capacity(a.nnz());
        for i in 0..n {
            let ni = self.p_row.apply(i);
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                let nj = self.p_col.apply(a.col_idx[k] as usize) as u32;
                let row = &pre.col_idx[pre.row_ptr[ni]..pre.row_ptr[ni + 1]];
                let pos = row.binary_search(&nj).map_err(|_| {
                    GpluError::Input(format!(
                        "entry ({i},{}) of the input has no slot in the \
                         pre-processed pattern — not the matrix this \
                         factorization came from",
                        a.col_idx[k]
                    ))
                })?;
                scatter_pre.push(pre.row_ptr[ni] + pos);
            }
        }

        // Diagonal slot per row (pre-processing completes the diagonal).
        let mut pre_diag = Vec::with_capacity(n);
        for i in 0..n {
            let row = &pre.col_idx[pre.row_ptr[i]..pre.row_ptr[i + 1]];
            let pos = row.binary_search(&(i as u32)).map_err(|_| {
                GpluError::Input(format!("pre-processed matrix is missing diagonal {i}"))
            })?;
            pre_diag.push(pre.row_ptr[i] + pos);
        }

        // Pre-processed entry → filled-CSC slot (fill-in slots stay 0.0,
        // exactly as the symbolic phase leaves them).
        let mut pre_to_csc = Vec::with_capacity(pre.nnz());
        for i in 0..n {
            for k in pre.row_ptr[i]..pre.row_ptr[i + 1] {
                let j = pre.col_idx[k] as usize;
                let (pos, _) = self.lu.find_in_col(i, j);
                let pos = pos.ok_or_else(|| {
                    GpluError::Input(format!(
                        "pre-processed entry ({i},{j}) is missing from the filled pattern"
                    ))
                })?;
                pre_to_csc.push(pos);
            }
        }

        let pivot = PivotCache::build(&self.lu);
        // The blocking pass is pattern-only, so a forced-blocked plan
        // captures it here once; every warm refactorization replays it.
        let block_plan = (opts.format == NumericFormat::SparseBlocked)
            .then(|| BlockPlan::detect(&self.lu, &pivot, opts.block_threshold));
        Ok(RefactorPlan {
            pattern_fp: pattern_fingerprint(a),
            p_row: self.p_row.clone(),
            p_col: self.p_col.clone(),
            pre: self.preprocessed.clone(),
            lu_pattern: self.lu.clone(),
            levels: self.levels.clone(),
            pivot,
            scatter_pre,
            pre_diag,
            pre_to_csc,
            block_plan,
            format: opts.format,
            repair_value: opts.preprocess.repair_value,
            repair_singular: opts.preprocess.repair_singular,
            pivot_policy: opts.pivot,
            gate: opts.gate,
        })
    }

    /// One-shot refactorization: build the plan and run it. Callers with
    /// repeat traffic should hold the [`RefactorPlan`] (or use
    /// `gplu-server`'s factor cache) so plan construction is amortized.
    pub fn refactorize(&self, gpu: &Gpu, a: &Csr) -> Result<LuFactorization, GpluError> {
        // The plan's option-dependent knobs (format ladder, repair) are
        // re-derived from defaults here; use `refactor_plan` to carry
        // non-default options.
        self.refactor_plan(a, &LuOptions::default())?
            .refactorize(gpu, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::PreprocessOptions;
    use gplu_sim::GpuConfig;
    use gplu_sparse::gen::circuit::{circuit, CircuitParams};
    use gplu_sparse::gen::random::{banded_dominant, random_dominant};
    use gplu_sparse::verify::check_solution;
    use gplu_trace::Recorder;

    fn gpu_for(a: &Csr) -> Gpu {
        Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
    }

    /// Same pattern, new values, deterministic drift.
    fn drift(a: &Csr, round: u64) -> Csr {
        let mut b = a.clone();
        for (k, v) in b.vals.iter_mut().enumerate() {
            let wob = ((k as u64)
                .wrapping_mul(0x9e37_79b9)
                .wrapping_add(round * 7919)
                % 97) as f64;
            *v *= 1.0 + wob / 1000.0;
        }
        b
    }

    #[test]
    fn warm_refactorize_is_bit_identical_to_cold() {
        let a = circuit(&CircuitParams {
            n: 400,
            seed: 31,
            ..Default::default()
        });
        let opts = LuOptions::default();
        let gpu = gpu_for(&a);
        let f0 = LuFactorization::compute(&gpu, &a, &opts).expect("cold ok");
        let plan = f0.refactor_plan(&a, &opts).expect("plan ok");
        for round in 1..4 {
            let a2 = drift(&a, round);
            let cold = LuFactorization::compute(&gpu_for(&a2), &a2, &opts).expect("cold ok");
            let warm = plan.refactorize(&gpu_for(&a2), &a2).expect("warm ok");
            assert_eq!(cold.lu.vals, warm.lu.vals, "round {round}: bits must match");
            assert_eq!(cold.lu.row_idx, warm.lu.row_idx);
            assert_eq!(
                cold.preprocessed.vals, warm.preprocessed.vals,
                "scatter must replay pre-processing exactly"
            );
        }
    }

    #[test]
    fn refactorize_skips_symbolic_and_levelize() {
        let a = random_dominant(200, 4.0, 32);
        let gpu = gpu_for(&a);
        let f0 = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("cold ok");
        let plan = f0
            .refactor_plan(&a, &LuOptions::default())
            .expect("plan ok");
        let rec = Recorder::new();
        let a2 = drift(&a, 1);
        let warm = plan
            .refactorize_traced(&gpu_for(&a2), &a2, &rec)
            .expect("warm ok");
        let events = rec.into_events();
        assert!(
            events
                .iter()
                .all(|e| e.name != "phase.symbolic" && e.name != "phase.levelize"),
            "warm path must not run pattern phases"
        );
        assert!(events.iter().any(|e| e.name == "phase.numeric"));
        assert_eq!(warm.report.symbolic, SimTime::ZERO);
        assert_eq!(warm.report.levelize, SimTime::ZERO);
        assert!(warm.report.numeric.as_ns() > 0.0);
        // The whole point: warm total strictly under cold total.
        assert!(warm.report.total() < f0.report.total());
    }

    #[test]
    fn refactorize_replays_diagonal_repair() {
        use gplu_sparse::gen::planar::{planar, PlanarParams};
        let a = planar(&PlanarParams {
            side: 12,
            tri_prob: 0.4,
            missing_diag_fraction: 0.4,
            seed: 33,
        });
        let opts = LuOptions::default();
        let f0 = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("cold ok");
        assert!(f0.report.repaired_diagonals > 0, "test needs repairs");
        let plan = f0.refactor_plan(&a, &opts).expect("plan ok");
        let a2 = drift(&a, 2);
        let cold = LuFactorization::compute(&gpu_for(&a2), &a2, &opts).expect("cold ok");
        let warm = plan.refactorize(&gpu_for(&a2), &a2).expect("warm ok");
        assert_eq!(cold.lu.vals, warm.lu.vals);
        assert_eq!(
            cold.report.repaired_diagonals,
            warm.report.repaired_diagonals
        );
    }

    #[test]
    fn refactorize_repairs_singular_pivots_like_the_cold_path() {
        // Factorize a well-conditioned matrix, then refactorize with
        // values that cancel a pivot mid-elimination.
        let mut coo = gplu_sparse::Coo::new(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                coo.push(i, j, if i == j { 2.0 } else { 1.0 });
            }
        }
        let a = gplu_sparse::convert::coo_to_csr(&coo);
        let opts = LuOptions {
            preprocess: PreprocessOptions {
                repair_singular: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let f0 = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("cold ok");
        let plan = f0.refactor_plan(&a, &opts).expect("plan ok");

        let mut sing = a.clone();
        sing.vals.iter_mut().for_each(|v| *v = 1.0); // rank-1: pivot 1 cancels
        let cold = LuFactorization::compute(&gpu_for(&sing), &sing, &opts).expect("cold repairs");
        let warm = plan
            .refactorize(&gpu_for(&sing), &sing)
            .expect("warm repairs");
        assert_eq!(cold.lu.vals, warm.lu.vals);
        assert!(warm
            .report
            .recovery
            .events()
            .iter()
            .any(|e| matches!(e.action, RecoveryAction::PivotRepaired { .. })));
    }

    #[test]
    fn pattern_mismatch_is_a_typed_error() {
        let a = random_dominant(100, 4.0, 34);
        let f0 = LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("ok");
        let plan = f0
            .refactor_plan(&a, &LuOptions::default())
            .expect("plan ok");
        let other = random_dominant(100, 4.0, 35);
        let err = plan.refactorize(&gpu_for(&other), &other).unwrap_err();
        assert!(
            matches!(err, GpluError::Input(ref m) if m.contains("pattern mismatch")),
            "got {err}"
        );
    }

    #[test]
    fn refactorized_factors_solve_the_new_system() {
        let a = banded_dominant(300, 5, 36);
        let gpu = gpu_for(&a);
        let f0 = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("cold ok");
        let plan = f0
            .refactor_plan(&a, &LuOptions::default())
            .expect("plan ok");
        let a2 = drift(&a, 3);
        let warm = plan.refactorize(&gpu_for(&a2), &a2).expect("warm ok");
        let x_true = vec![1.5; 300];
        let b = a2.spmv(&x_true);
        let x = warm.solve(&b).expect("solve ok");
        assert!(check_solution(&a2, &x, &b, 1e-8));
    }

    #[test]
    fn warm_gate_rejects_adversarial_values_typed() {
        let a = random_dominant(150, 4.0, 40);
        let opts = LuOptions::default();
        let f0 = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("cold ok");
        let plan = f0.refactor_plan(&a, &opts).expect("plan ok");

        // Same pattern, crushed diagonal: catastrophic growth under the
        // plan's NoPivot replay. The warm path must reject typed or
        // return factors that verify — never silent garbage.
        let mut evil = a.clone();
        for i in 0..evil.n_rows() {
            for k in evil.row_ptr[i]..evil.row_ptr[i + 1] {
                if evil.col_idx[k] as usize == i {
                    evil.vals[k] = 1e-14;
                }
            }
        }
        match plan.refactorize(&gpu_for(&evil), &evil) {
            Ok(f) => {
                let r = f.report.residual.expect("gate ran");
                assert!(r <= plan.gate.threshold, "accepted factors must verify");
            }
            Err(GpluError::NumericallySingular {
                residual,
                threshold,
                attempts,
            }) => {
                assert!(residual > threshold);
                assert_eq!(attempts, 1, "warm path never escalates");
            }
            Err(GpluError::SingularPivot { .. }) => {}
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }

    #[test]
    fn threshold_plan_replays_same_order_and_rejects_drift() {
        use gplu_numeric::{PivotPolicy, DEFAULT_PIVOT_TAU};
        // Full 3x3 pattern whose column-0 pivot choice is value-driven:
        // a00 = 0.01 fails the threshold test against a10 = 1.0, so the
        // cold factorization swaps rows 0 and 1.
        let build = |a00: f64, a10: f64| {
            let vals = [[a00, 1.0, 2.0], [a10, 1.0, 1.0], [0.5, 2.0, 1.0]];
            let mut coo = gplu_sparse::Coo::new(3, 3);
            for (i, row) in vals.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    coo.push(i, j, v);
                }
            }
            gplu_sparse::convert::coo_to_csr(&coo)
        };
        let a = build(0.01, 1.0);
        let opts = LuOptions::default().with_pivot(PivotPolicy::Threshold {
            tau: DEFAULT_PIVOT_TAU,
        });
        let f0 = LuFactorization::compute(&gpu_for(&a), &a, &opts).expect("cold ok");
        assert!(f0.report.pivot_swaps > 0, "test needs a value-driven swap");
        let plan = f0.refactor_plan(&a, &opts).expect("plan ok");

        // Unchanged values: the captured order re-validates and the warm
        // path replays bit-identically.
        let warm = plan.refactorize(&gpu_for(&a), &a).expect("warm ok");
        assert_eq!(warm.lu.vals, f0.lu.vals);

        // Values that elect the *other* pivot row: typed rejection, never
        // a replay under the stale order.
        let flipped = build(1.0, 0.01);
        let err = plan.refactorize(&gpu_for(&flipped), &flipped).unwrap_err();
        assert!(
            matches!(err, GpluError::StalePivotOrder { .. }),
            "got {err}"
        );
    }

    #[test]
    fn plan_reports_a_plausible_memory_footprint() {
        let a = random_dominant(150, 4.0, 37);
        let f0 = LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("ok");
        let plan = f0
            .refactor_plan(&a, &LuOptions::default())
            .expect("plan ok");
        let bytes = plan.approx_bytes();
        assert!(bytes > (a.nnz() * 12) as u64, "must cover the structures");
        assert!(bytes < 100 * 1024 * 1024, "and stay sane: {bytes}");
    }
}
