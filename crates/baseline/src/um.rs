//! Unified-memory baseline pipelines (Figures 5/6, Table 3).
//!
//! Identical to the end-to-end pipeline except the symbolic phase runs
//! through CUDA managed memory instead of explicit out-of-core chunking.
//! This is a thin wrapper over [`gplu_core`] with the UM symbolic engine
//! selected, exposing the fault statistics the paper's Table 3 reports.

use gplu_core::{GpluError, LuFactorization, LuOptions, SymbolicEngine};
use gplu_sim::Gpu;
use gplu_sparse::Csr;

/// Runs the unified-memory pipeline. `prefetch` selects the tuned variant
/// ("wp" in Table 3) versus pure on-demand paging ("wo p").
pub fn factorize_um_pipeline(
    gpu: &Gpu,
    a: &Csr,
    prefetch: bool,
    base: &LuOptions,
) -> Result<LuFactorization, GpluError> {
    let opts = LuOptions {
        symbolic: if prefetch {
            SymbolicEngine::UmPrefetch
        } else {
            SymbolicEngine::UmNoPrefetch
        },
        ..base.clone()
    };
    LuFactorization::compute(gpu, a, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::gen::random::random_dominant;

    fn gpu_for(a: &Csr) -> Gpu {
        let cfg = GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz());
        let cost = CostModel::default()
            .scaled_latencies(64)
            .with_um_page_bytes(32 * 1024);
        Gpu::with_cost(cfg, cost)
    }

    #[test]
    fn prefetch_beats_on_demand_paging() {
        let a = random_dominant(500, 4.0, 121);
        let base = LuOptions::default();
        let wo = factorize_um_pipeline(&gpu_for(&a), &a, false, &base).expect("ok");
        let wp = factorize_um_pipeline(&gpu_for(&a), &a, true, &base).expect("ok");
        assert!(
            wp.report.symbolic < wo.report.symbolic,
            "prefetching must help symbolic"
        );
        assert!(wp.report.fault_groups() < wo.report.fault_groups());
        assert_eq!(wp.lu.vals, wo.lu.vals);
    }

    #[test]
    fn ooc_beats_both_um_variants() {
        // The paper's headline Figure 5/6 shape.
        let a = random_dominant(600, 4.0, 122);
        let base = LuOptions::default();
        let ooc = LuFactorization::compute(&gpu_for(&a), &a, &base).expect("ok");
        let wp = factorize_um_pipeline(&gpu_for(&a), &a, true, &base).expect("ok");
        assert!(
            ooc.report.symbolic < wp.report.symbolic,
            "out-of-core {} must beat prefetched UM {}",
            ooc.report.symbolic,
            wp.report.symbolic
        );
    }
}
