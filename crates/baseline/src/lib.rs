//! # gplu-baseline
//!
//! The baseline pipelines the paper compares against:
//!
//! * [`glu30`] — the "modified GLU 3.0" configuration of Figure 4:
//!   symbolic factorization and levelization on the 28-thread host CPU,
//!   numeric factorization on the GPU in the dense-column format (GLU's
//!   own discipline),
//! * [`um`] — the unified-memory configurations of Figures 5/6 and
//!   Table 3: symbolic factorization through CUDA managed memory (with or
//!   without prefetching), the rest of the pipeline as in the paper's
//!   out-of-core version.
//!
//! All baselines produce bit-identical factors to `gplu-core`'s pipeline
//! (asserted in the integration tests) — only *where* and *how fast* each
//! phase runs differs, which is exactly what the paper's figures compare.

pub mod glu30;
pub mod um;

pub use glu30::factorize_glu30;
pub use um::factorize_um_pipeline;
