//! The "modified GLU 3.0" baseline (Figure 4's comparator).
//!
//! GLU 3.0 accelerates only numeric factorization on the GPU; symbolic
//! factorization and levelization stay on the multi-core host (the
//! paper's §4.1: "a parallel implementation modified from GLU3.0 … the
//! CPU contains 14 physical cores and provides hyper-threading with 2
//! threads for each core, which is used for our baseline implementation").

use gplu_core::{preprocess, GpluError, LuFactorization, PhaseReport, PreprocessOptions};
use gplu_numeric::factorize_gpu_dense;
use gplu_schedule::{levelize_cpu, DepGraph};
use gplu_sim::Gpu;
use gplu_sparse::convert::csr_to_csc;
use gplu_sparse::Csr;
use gplu_symbolic::symbolic_cpu;

/// Runs the GLU 3.0-style baseline pipeline: CPU symbolic + CPU
/// levelization + GPU dense-format numeric.
pub fn factorize_glu30(
    gpu: &Gpu,
    a: &Csr,
    pre: &PreprocessOptions,
) -> Result<LuFactorization, GpluError> {
    let mut report = PhaseReport::default();

    let p = preprocess(a, pre, gpu.cost())?;
    gpu.advance(p.time);
    report.preprocess = p.time;
    report.repaired_diagonals = p.repaired;

    // Symbolic on the 28-thread host.
    let sym = symbolic_cpu(&p.matrix, gpu.cost());
    gpu.advance(sym.time);
    report.symbolic = sym.time;
    report.fill_nnz = sym.result.fill_nnz();
    report.new_fill_ins = sym.result.new_fill_ins(&p.matrix);

    // Levelization on the host (serial, as in all prior work).
    let dep = DepGraph::build(&sym.result.filled);
    let lvl = levelize_cpu(&dep, gpu.cost());
    gpu.advance(lvl.time);
    report.levelize = lvl.time;
    report.n_levels = lvl.levels.n_levels();
    report.max_level_width = lvl.levels.max_width();

    // Numeric on the GPU, dense format (GLU's discipline). The filled
    // matrix crosses the PCIe bus here — in the end-to-end version it is
    // already on the device.
    let pattern = csr_to_csc(&sym.result.filled);
    let numeric = factorize_gpu_dense(gpu, &pattern, &lvl.levels)?;
    report.numeric = numeric.time;
    report.mode_mix = (numeric.mode_mix.a, numeric.mode_mix.b, numeric.mode_mix.c);
    report.m_limit = numeric.m_limit;

    Ok(LuFactorization {
        lu: numeric.lu,
        preprocessed: p.matrix,
        p_row: p.p_row,
        p_col: p.p_col,
        levels: lvl.levels,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplu_core::LuOptions;
    use gplu_sim::{CostModel, GpuConfig};
    use gplu_sparse::gen::random::random_dominant;
    use gplu_sparse::verify::residual_probe;

    fn gpu_for(a: &Csr) -> Gpu {
        Gpu::new(GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz()))
    }

    #[test]
    fn produces_identical_factors_to_end_to_end() {
        let a = random_dominant(250, 4.0, 111);
        let baseline =
            factorize_glu30(&gpu_for(&a), &a, &PreprocessOptions::default()).expect("ok");
        let ours = LuFactorization::compute(&gpu_for(&a), &a, &LuOptions::default()).expect("ok");
        assert_eq!(
            baseline.lu.vals, ours.lu.vals,
            "same factors, different engines"
        );
        assert!(residual_probe(&baseline.preprocessed, &baseline.lu, 3) < 1e-9);
    }

    #[test]
    fn cpu_phases_are_charged() {
        // Both host phases must carry simulated cost; serial levelization
        // in particular is expensive (the paper's motivation for moving
        // it to the GPU).
        // Large enough that edge work (CPU's serial cost, growing with
        // fill) outpaces the per-level constants of the GPU sort.
        let a = random_dominant(1000, 5.0, 112);
        let out = factorize_glu30(&gpu_for(&a), &a, &PreprocessOptions::default()).expect("ok");
        assert!(out.report.symbolic.as_ns() > 0.0);
        assert!(out.report.levelize.as_ns() > 0.0);

        // And the serial CPU levelization must lose to the GPU Kahn sort
        // of the end-to-end pipeline — at the experiments' scaled
        // latencies (the default latencies model a full-size V100, whose
        // fixed launch overheads rightly dominate a 400-row toy graph).
        let cfg = GpuConfig::v100_symbolic_profile(a.n_rows(), a.nnz());
        let gpu = Gpu::with_cost(cfg, CostModel::default().scaled_latencies(128));
        let ours = LuFactorization::compute(&gpu, &a, &LuOptions::default()).expect("ok");
        assert!(
            ours.report.levelize < out.report.levelize,
            "GPU levelization {} must beat serial CPU {}",
            ours.report.levelize,
            out.report.levelize
        );
    }

    #[test]
    fn solve_works_through_baseline() {
        let a = random_dominant(150, 4.0, 113);
        let f = factorize_glu30(&gpu_for(&a), &a, &PreprocessOptions::default()).expect("ok");
        let x_true: Vec<f64> = (0..150).map(|i| (i % 5) as f64 - 2.0).collect();
        let b = a.spmv(&x_true);
        let x = f.solve(&b).expect("solve ok");
        assert!(gplu_sparse::verify::check_solution(&a, &x, &b, 1e-8));
    }
}
