//! Deterministic fault injection for the simulated GPU.
//!
//! Real out-of-core solvers live next to failure: `cudaMalloc` returns
//! `cudaErrorMemoryAllocation` under fragmentation or external pressure,
//! kernels fail to launch, and the free-memory headroom a chunk size was
//! computed from can evaporate mid-run. A [`FaultPlan`] scripts those
//! events **deterministically** — by allocation ordinal and by per-kernel
//! launch ordinal — so recovery paths (chunk backoff, engine degradation)
//! can be driven and asserted on in ordinary unit tests, and a chaos suite
//! can replay hundreds of schedules from fixed seeds.
//!
//! Three fault kinds are modelled:
//!
//! * **OOM** — the Nth call to [`DeviceMemory::alloc`] fails with
//!   [`SimError::OutOfMemory`]. *Transient* faults fire exactly once (the
//!   retry succeeds); *persistent* faults fire on every allocation from
//!   the Nth onward (the device never recovers).
//! * **Capacity squeeze** — at the Nth allocation the device capacity
//!   shrinks to `keep_percent` of its current value (floored at the bytes
//!   already live). Models external memory pressure; the squeeze itself
//!   does not fail the allocation, but later requests see less headroom.
//! * **BadLaunch** — the Nth launch of a *named* kernel fails with
//!   [`SimError::BadLaunch`] before any block runs (`"*"` matches every
//!   kernel). Transient or persistent, as above.
//! * **Crash** — the Nth *crash point* kills the run with
//!   [`SimError::Crashed`]. Crash points are passed by the pipeline at
//!   checkpoint sites (immediately before and after each durable write),
//!   so `crash:at=N` models process death at every possible durability
//!   boundary. Crashes are terminal: recovery ladders do not degrade
//!   around them — a later run resumes from the last valid checkpoint.
//!
//! Plans come from the builder API, from a compact spec string
//! (`FaultPlan::parse("oom:alloc=3,badlaunch:numeric_dense=1")`, also read
//! from the `GPLU_FAULT_PLAN` environment variable), or from a seed
//! ([`FaultPlan::from_seed`]) that expands to a small random schedule via
//! SplitMix64 — same seed, same schedule, forever.
//!
//! [`DeviceMemory::alloc`]: crate::DeviceMemory::alloc

use crate::error::SimError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable holding a fault-plan spec string.
pub const FAULT_PLAN_ENV: &str = "GPLU_FAULT_PLAN";

/// An OOM fault scheduled by allocation ordinal (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OomFault {
    /// Allocation ordinal the fault fires on.
    pub nth: u64,
    /// Transient (fires once) vs persistent (fires from `nth` onward).
    pub persistent: bool,
}

/// A capacity squeeze scheduled by allocation ordinal (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SqueezeFault {
    /// Allocation ordinal the squeeze is applied at.
    pub nth: u64,
    /// New capacity as a percentage of the current capacity (clamped to
    /// the bytes currently live, so existing allocations survive).
    pub keep_percent: u64,
}

/// A launch failure scheduled by per-kernel launch ordinal (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchFault {
    /// Kernel name to match (`"*"` matches every kernel).
    pub kernel: String,
    /// Launch ordinal (per kernel name) the fault fires on.
    pub nth: u64,
    /// Transient vs persistent, as for [`OomFault`].
    pub persistent: bool,
}

/// Which side of a disk operation a [`DiskFault`] targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// Loading a persisted entry.
    Read,
    /// Persisting or removing an entry.
    Write,
}

/// A disk-tier I/O failure scheduled by per-op ordinal (1-based).
///
/// Read and write ordinals count independently: `diskfault:read=2` fires
/// on the second disk *read*, however many writes happen in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFault {
    /// Which operation stream the fault is scheduled on.
    pub op: DiskOp,
    /// Operation ordinal (per stream) the fault fires on.
    pub nth: u64,
    /// Transient vs persistent, as for [`OomFault`].
    pub persistent: bool,
}

/// A deterministic schedule of injected device faults.
///
/// Immutable once built; attach it to a GPU with
/// [`Gpu::with_fault_plan`](crate::Gpu::with_fault_plan).
#[derive(Debug, Clone, Default, PartialEq)]
#[must_use = "a fault plan does nothing until attached to a Gpu"]
pub struct FaultPlan {
    oom: Vec<OomFault>,
    squeezes: Vec<SqueezeFault>,
    launches: Vec<LaunchFault>,
    crashes: Vec<u64>,
    disk: Vec<DiskFault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.oom.is_empty()
            && self.squeezes.is_empty()
            && self.launches.is_empty()
            && self.crashes.is_empty()
            && self.disk.is_empty()
    }

    /// Fails the `nth` allocation (1-based) once; the retry succeeds.
    pub fn oom_on_alloc(mut self, nth: u64) -> Self {
        self.oom.push(OomFault {
            nth,
            persistent: false,
        });
        self
    }

    /// Fails every allocation from the `nth` onward.
    pub fn persistent_oom_from(mut self, nth: u64) -> Self {
        self.oom.push(OomFault {
            nth,
            persistent: true,
        });
        self
    }

    /// Shrinks device capacity to `keep_percent`% at the `nth` allocation.
    pub fn squeeze_at(mut self, nth: u64, keep_percent: u64) -> Self {
        self.squeezes.push(SqueezeFault {
            nth,
            keep_percent: keep_percent.min(100),
        });
        self
    }

    /// Fails the `nth` launch of `kernel` once (`"*"` = any kernel).
    pub fn bad_launch(mut self, kernel: &str, nth: u64) -> Self {
        self.launches.push(LaunchFault {
            kernel: kernel.to_string(),
            nth,
            persistent: false,
        });
        self
    }

    /// Fails every launch of `kernel` from the `nth` onward.
    pub fn persistent_bad_launch(mut self, kernel: &str, nth: u64) -> Self {
        self.launches.push(LaunchFault {
            kernel: kernel.to_string(),
            nth,
            persistent: true,
        });
        self
    }

    /// Kills the run at the `nth` crash point (1-based).
    pub fn crash_at(mut self, nth: u64) -> Self {
        self.crashes.push(nth);
        self
    }

    /// Fails the `nth` disk operation of the given kind once.
    pub fn disk_fault(mut self, op: DiskOp, nth: u64) -> Self {
        self.disk.push(DiskFault {
            op,
            nth,
            persistent: false,
        });
        self
    }

    /// Fails every disk operation of the given kind from the `nth` onward
    /// (the disk tier never recovers — degraded-mode territory).
    pub fn persistent_disk_fault(mut self, op: DiskOp, nth: u64) -> Self {
        self.disk.push(DiskFault {
            op,
            nth,
            persistent: true,
        });
        self
    }

    /// Scheduled OOM faults.
    pub fn oom_faults(&self) -> &[OomFault] {
        &self.oom
    }

    /// Scheduled crash-point ordinals.
    pub fn crash_faults(&self) -> &[u64] {
        &self.crashes
    }

    /// Scheduled capacity squeezes.
    pub fn squeeze_faults(&self) -> &[SqueezeFault] {
        &self.squeezes
    }

    /// Scheduled launch faults.
    pub fn launch_faults(&self) -> &[LaunchFault] {
        &self.launches
    }

    /// Scheduled disk-tier faults.
    pub fn disk_faults(&self) -> &[DiskFault] {
        &self.disk
    }

    /// Parses a comma-separated spec string:
    ///
    /// * `oom:alloc=N[:persistent]` — OOM on the Nth allocation,
    /// * `squeeze:alloc=N:K` — shrink capacity to K% at the Nth allocation,
    /// * `badlaunch:KERNEL=N[:persistent]` — fail the Nth launch of KERNEL,
    /// * `crash:at=N` — kill the run at the Nth checkpoint crash point,
    /// * `diskfault:read=N[:persistent]` / `diskfault:write=N[:persistent]`
    ///   — fail the Nth disk-tier read/write,
    /// * `seed:S` — expand a seeded schedule (see [`FaultPlan::from_seed`]).
    ///
    /// Example: `oom:alloc=3,badlaunch:numeric_dense=1,squeeze:alloc=4:50`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for raw in spec.split(',') {
            let item = raw.trim();
            if item.is_empty() {
                continue;
            }
            let mut parts = item.split(':');
            let kind = parts.next().unwrap_or_default();
            match kind {
                "oom" => {
                    let nth = parse_alloc_ordinal(parts.next(), item)?;
                    match parts.next() {
                        None => plan = plan.oom_on_alloc(nth),
                        Some("persistent") => plan = plan.persistent_oom_from(nth),
                        Some(other) => {
                            return Err(format!("'{item}': unknown modifier '{other}'"));
                        }
                    }
                }
                "squeeze" => {
                    let nth = parse_alloc_ordinal(parts.next(), item)?;
                    let keep = parts
                        .next()
                        .ok_or_else(|| format!("'{item}': squeeze needs a keep percentage"))?
                        .parse::<u64>()
                        .map_err(|_| format!("'{item}': keep percentage must be an integer"))?;
                    if keep > 100 {
                        return Err(format!("'{item}': keep percentage must be <= 100"));
                    }
                    plan = plan.squeeze_at(nth, keep);
                }
                "badlaunch" => {
                    let body = parts
                        .next()
                        .ok_or_else(|| format!("'{item}': badlaunch needs KERNEL=N"))?;
                    let (kernel, nth) = body
                        .split_once('=')
                        .ok_or_else(|| format!("'{item}': badlaunch needs KERNEL=N"))?;
                    if kernel.is_empty() {
                        return Err(format!("'{item}': empty kernel name"));
                    }
                    let nth = parse_positive(nth, item)?;
                    match parts.next() {
                        None => plan = plan.bad_launch(kernel, nth),
                        Some("persistent") => plan = plan.persistent_bad_launch(kernel, nth),
                        Some(other) => {
                            return Err(format!("'{item}': unknown modifier '{other}'"));
                        }
                    }
                }
                "crash" => {
                    let body = parts
                        .next()
                        .ok_or_else(|| format!("'{item}': expected at=N"))?;
                    let (key, nth) = body
                        .split_once('=')
                        .ok_or_else(|| format!("'{item}': expected at=N"))?;
                    if key != "at" {
                        return Err(format!("'{item}': unknown trigger '{key}' (expected at)"));
                    }
                    let nth = parse_positive(nth, item)?;
                    if parts.next().is_some() {
                        return Err(format!("'{item}': crash takes no modifier"));
                    }
                    plan = plan.crash_at(nth);
                }
                "diskfault" => {
                    let body = parts
                        .next()
                        .ok_or_else(|| format!("'{item}': expected read=N or write=N"))?;
                    let (key, nth) = body
                        .split_once('=')
                        .ok_or_else(|| format!("'{item}': expected read=N or write=N"))?;
                    let op = match key {
                        "read" => DiskOp::Read,
                        "write" => DiskOp::Write,
                        other => {
                            return Err(format!(
                                "'{item}': unknown trigger '{other}' (expected read or write)"
                            ));
                        }
                    };
                    let nth = parse_positive(nth, item)?;
                    match parts.next() {
                        None => plan = plan.disk_fault(op, nth),
                        Some("persistent") => plan = plan.persistent_disk_fault(op, nth),
                        Some(other) => {
                            return Err(format!("'{item}': unknown modifier '{other}'"));
                        }
                    }
                }
                "seed" => {
                    let seed = parts
                        .next()
                        .ok_or_else(|| format!("'{item}': seed needs a value"))?
                        .parse::<u64>()
                        .map_err(|_| format!("'{item}': seed must be an integer"))?;
                    let seeded = FaultPlan::from_seed(seed);
                    plan.oom.extend(seeded.oom);
                    plan.squeezes.extend(seeded.squeezes);
                    plan.launches.extend(seeded.launches);
                    plan.crashes.extend(seeded.crashes);
                    plan.disk.extend(seeded.disk);
                }
                other => {
                    return Err(format!(
                        "'{item}': unknown fault kind '{other}' \
                         (expected oom, squeeze, badlaunch, crash, diskfault or seed)"
                    ));
                }
            }
        }
        Ok(plan)
    }

    /// Parses a fleet spec: one plan per device of an `devices`-wide
    /// fleet. Items prefixed `dev=K:` target device `K` only (e.g.
    /// `dev=2:oom:alloc=3` — kill the third allocation *on device 2*);
    /// unprefixed items broadcast to every device. Everything after the
    /// selector uses the ordinary [`FaultPlan::parse`] grammar.
    ///
    /// Example: `dev=1:badlaunch:*=1:persistent,squeeze:alloc=2:50` gives
    /// device 1 a dead launch path while every device (1 included) sees
    /// the capacity squeeze.
    pub fn parse_fleet(spec: &str, devices: usize) -> Result<Vec<Self>, String> {
        let devices = devices.max(1);
        let mut per: Vec<Vec<&str>> = vec![Vec::new(); devices];
        for raw in spec.split(',') {
            let item = raw.trim();
            if item.is_empty() {
                continue;
            }
            if let Some(rest) = item.strip_prefix("dev=") {
                let (idx, body) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("'{item}': device selector needs dev=K:FAULT"))?;
                let d = idx
                    .parse::<usize>()
                    .map_err(|_| format!("'{item}': device index must be an integer"))?;
                if d >= devices {
                    return Err(format!(
                        "'{item}': device {d} outside fleet of {devices} devices"
                    ));
                }
                if body.trim().is_empty() {
                    return Err(format!("'{item}': device selector needs dev=K:FAULT"));
                }
                per[d].push(body);
            } else {
                for dev_items in per.iter_mut() {
                    dev_items.push(item);
                }
            }
        }
        per.into_iter()
            .map(|items| FaultPlan::parse(&items.join(",")))
            .collect()
    }

    /// Reads a plan from the `GPLU_FAULT_PLAN` environment variable.
    /// `Ok(None)` when the variable is unset or empty.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(s) if !s.trim().is_empty() => FaultPlan::parse(&s).map(Some),
            _ => Ok(None),
        }
    }

    /// Expands `seed` into a small random fault schedule (1–3 faults) via
    /// SplitMix64. Deterministic: the same seed always yields the same
    /// plan, which is what lets a chaos suite replay failures by seed.
    pub fn from_seed(seed: u64) -> Self {
        // Kernel names the pipeline actually launches, so seeded launch
        // faults land on real code paths.
        const KERNELS: &[&str] = &[
            "symbolic_1",
            "symbolic_2",
            "symbolic_retry",
            "prefix_sum",
            "numeric_dense",
            "numeric_sparse",
            "numeric_merge",
            "trisolve_l",
            "trisolve_u",
            "um_symbolic_1",
            "um_symbolic_2",
        ];
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || splitmix64(&mut state);
        let mut plan = FaultPlan::new();
        let count = 1 + (next() % 3);
        for _ in 0..count {
            match next() % 100 {
                // Transient OOM dominates: it is the recoverable case the
                // backoff and degradation machinery exists for.
                0..=44 => plan = plan.oom_on_alloc(1 + next() % 24),
                45..=59 => plan = plan.persistent_oom_from(2 + next() % 40),
                60..=74 => plan = plan.squeeze_at(2 + next() % 16, 35 + next() % 55),
                75..=89 => {
                    let kernel = KERNELS[(next() % KERNELS.len() as u64) as usize];
                    plan = plan.bad_launch(kernel, 1 + next() % 3);
                }
                _ => {
                    let kernel = KERNELS[(next() % KERNELS.len() as u64) as usize];
                    plan = plan.persistent_bad_launch(kernel, 1 + next() % 2);
                }
            }
        }
        plan
    }
}

fn parse_alloc_ordinal(part: Option<&str>, item: &str) -> Result<u64, String> {
    let body = part.ok_or_else(|| format!("'{item}': expected alloc=N"))?;
    let (key, nth) = body
        .split_once('=')
        .ok_or_else(|| format!("'{item}': expected alloc=N"))?;
    if key != "alloc" {
        return Err(format!(
            "'{item}': unknown trigger '{key}' (expected alloc)"
        ));
    }
    parse_positive(nth, item)
}

fn parse_positive(s: &str, item: &str) -> Result<u64, String> {
    match s.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("'{item}': ordinal must be a positive integer")),
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What [`FaultInjector::on_alloc`] decided for one allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AllocVerdict {
    /// Apply a capacity squeeze to this percentage before the allocation.
    pub squeeze_keep_percent: Option<u64>,
    /// Fail this allocation with an injected OOM.
    pub inject_oom: bool,
}

/// Runtime state of a [`FaultPlan`]: monotone ordinals plus fired-fault
/// counters. Shared (`Arc`) between the allocator and the launch path.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    allocs: AtomicU64,
    launch_counts: Mutex<HashMap<String, u64>>,
    disk_reads: AtomicU64,
    disk_writes: AtomicU64,
    injected_oom: AtomicU64,
    injected_launches: AtomicU64,
    injected_squeezes: AtomicU64,
    injected_crashes: AtomicU64,
    injected_disk: AtomicU64,
}

impl FaultInjector {
    /// Wraps a plan with fresh counters.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            allocs: AtomicU64::new(0),
            launch_counts: Mutex::new(HashMap::new()),
            disk_reads: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            injected_oom: AtomicU64::new(0),
            injected_launches: AtomicU64::new(0),
            injected_squeezes: AtomicU64::new(0),
            injected_crashes: AtomicU64::new(0),
            injected_disk: AtomicU64::new(0),
        }
    }

    /// The schedule this injector replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advances the allocation ordinal and returns the verdict for this
    /// allocation. Called exactly once per [`DeviceMemory::alloc`]
    /// request, successful or not.
    ///
    /// [`DeviceMemory::alloc`]: crate::DeviceMemory::alloc
    pub(crate) fn on_alloc(&self) -> AllocVerdict {
        let nth = self.allocs.fetch_add(1, Ordering::Relaxed) + 1;
        let squeeze_keep_percent = self
            .plan
            .squeezes
            .iter()
            .find(|s| s.nth == nth)
            .map(|s| s.keep_percent);
        if squeeze_keep_percent.is_some() {
            self.injected_squeezes.fetch_add(1, Ordering::Relaxed);
        }
        let inject_oom = self.plan.oom.iter().any(|f| {
            if f.persistent {
                nth >= f.nth
            } else {
                nth == f.nth
            }
        });
        if inject_oom {
            self.injected_oom.fetch_add(1, Ordering::Relaxed);
        }
        AllocVerdict {
            squeeze_keep_percent,
            inject_oom,
        }
    }

    /// Advances the per-kernel launch ordinal for `name` and returns the
    /// injected error when a scheduled launch fault fires.
    pub(crate) fn on_launch(&self, name: &str) -> Option<SimError> {
        if self.plan.launches.is_empty() {
            return None;
        }
        let nth = {
            let mut counts = self.launch_counts.lock();
            let c = counts.entry(name.to_string()).or_insert(0);
            *c += 1;
            *c
        };
        let hit = self.plan.launches.iter().any(|f| {
            (f.kernel == "*" || f.kernel == name)
                && if f.persistent {
                    nth >= f.nth
                } else {
                    nth == f.nth
                }
        });
        if hit {
            self.injected_launches.fetch_add(1, Ordering::Relaxed);
            Some(SimError::BadLaunch(format!(
                "injected fault: kernel '{name}' launch #{nth}"
            )))
        } else {
            None
        }
    }

    /// Decides whether the crash point with the given (1-based) ordinal
    /// kills the run. The ordinal itself is counted by the GPU so that
    /// runs without an injector still number their crash points.
    pub(crate) fn on_crash_point(&self, ordinal: u64) -> bool {
        let hit = self.plan.crashes.contains(&ordinal);
        if hit {
            self.injected_crashes.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Advances the disk-op ordinal for `op` and reports whether a
    /// scheduled disk fault fires there. Called by the service's
    /// disk-tier adapter around every plan-store read/write.
    pub fn on_disk_op(&self, op: DiskOp) -> bool {
        if self.plan.disk.is_empty() {
            return false;
        }
        let counter = match op {
            DiskOp::Read => &self.disk_reads,
            DiskOp::Write => &self.disk_writes,
        };
        let nth = counter.fetch_add(1, Ordering::Relaxed) + 1;
        let hit = self.plan.disk.iter().any(|f| {
            f.op == op
                && if f.persistent {
                    nth >= f.nth
                } else {
                    nth == f.nth
                }
        });
        if hit {
            self.injected_disk.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Injected OOM failures so far.
    pub fn injected_oom(&self) -> u64 {
        self.injected_oom.load(Ordering::Relaxed)
    }

    /// Injected launch failures so far.
    pub fn injected_launches(&self) -> u64 {
        self.injected_launches.load(Ordering::Relaxed)
    }

    /// Capacity squeezes applied so far.
    pub fn injected_squeezes(&self) -> u64 {
        self.injected_squeezes.load(Ordering::Relaxed)
    }

    /// Injected crashes so far (0 or 1 per run in practice).
    pub fn injected_crashes(&self) -> u64 {
        self.injected_crashes.load(Ordering::Relaxed)
    }

    /// Injected disk-tier faults so far.
    pub fn injected_disk(&self) -> u64 {
        self.injected_disk.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_faults() {
        let p = FaultPlan::new()
            .oom_on_alloc(3)
            .persistent_oom_from(10)
            .squeeze_at(4, 50)
            .bad_launch("numeric_dense", 1)
            .persistent_bad_launch("prefix_sum", 2);
        assert_eq!(p.oom_faults().len(), 2);
        assert_eq!(p.squeeze_faults().len(), 1);
        assert_eq!(p.launch_faults().len(), 2);
        assert!(!p.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn parse_round_trips_the_builder() {
        let parsed =
            FaultPlan::parse("oom:alloc=3, oom:alloc=10:persistent, squeeze:alloc=4:50, badlaunch:numeric_dense=1, badlaunch:prefix_sum=2:persistent")
                .expect("valid spec");
        let built = FaultPlan::new()
            .oom_on_alloc(3)
            .persistent_oom_from(10)
            .squeeze_at(4, 50)
            .bad_launch("numeric_dense", 1)
            .persistent_bad_launch("prefix_sum", 2);
        assert_eq!(parsed, built);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "oom",
            "oom:alloc",
            "oom:alloc=0",
            "oom:alloc=x",
            "oom:alloc=3:sometimes",
            "oom:launch=3",
            "squeeze:alloc=4",
            "squeeze:alloc=4:101",
            "badlaunch:=1",
            "badlaunch:k",
            "seed:x",
            "quux:alloc=1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should be rejected");
        }
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        assert!(FaultPlan::parse("").expect("ok").is_empty());
        assert!(FaultPlan::parse(" , ").expect("ok").is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_vary_by_seed() {
        for seed in 0..200u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b, "seed {seed} must be reproducible");
            assert!(!a.is_empty(), "seeded plans always schedule something");
        }
        let distinct = (0..50u64)
            .map(FaultPlan::from_seed)
            .collect::<Vec<_>>()
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count();
        assert!(distinct > 30, "seeds must actually vary the schedule");
    }

    #[test]
    fn seed_spec_matches_from_seed() {
        assert_eq!(
            FaultPlan::parse("seed:42").expect("ok"),
            FaultPlan::from_seed(42)
        );
    }

    #[test]
    fn crash_parse_builder_and_injector_agree() {
        let parsed = FaultPlan::parse("crash:at=3, oom:alloc=1").expect("valid spec");
        let built = FaultPlan::new().crash_at(3).oom_on_alloc(1);
        assert_eq!(parsed, built);
        assert_eq!(built.crash_faults(), &[3]);
        assert!(!FaultPlan::new().crash_at(1).is_empty());

        let inj = FaultInjector::new(FaultPlan::new().crash_at(2));
        assert!(!inj.on_crash_point(1));
        assert!(inj.on_crash_point(2));
        assert!(!inj.on_crash_point(3));
        assert_eq!(inj.injected_crashes(), 1);

        for bad in [
            "crash",
            "crash:at",
            "crash:at=0",
            "crash:alloc=1",
            "crash:at=1:persistent",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should be rejected");
        }
    }

    #[test]
    fn diskfault_parse_builder_and_injector_agree() {
        let parsed =
            FaultPlan::parse("diskfault:read=2, diskfault:write=1:persistent").expect("valid");
        let built = FaultPlan::new()
            .disk_fault(DiskOp::Read, 2)
            .persistent_disk_fault(DiskOp::Write, 1);
        assert_eq!(parsed, built);
        assert_eq!(built.disk_faults().len(), 2);
        assert!(!FaultPlan::new().disk_fault(DiskOp::Read, 1).is_empty());

        let inj = FaultInjector::new(built);
        // Read and write ordinals count independently.
        assert!(!inj.on_disk_op(DiskOp::Read), "first read is clean");
        assert!(inj.on_disk_op(DiskOp::Write), "persistent from write #1");
        assert!(inj.on_disk_op(DiskOp::Read), "second read fires");
        assert!(!inj.on_disk_op(DiskOp::Read), "transient: third is clean");
        assert!(inj.on_disk_op(DiskOp::Write), "persistent keeps firing");
        assert_eq!(inj.injected_disk(), 3);

        for bad in [
            "diskfault",
            "diskfault:read",
            "diskfault:read=0",
            "diskfault:seek=1",
            "diskfault:read=1:sometimes",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should be rejected");
        }
    }

    #[test]
    fn fleet_parse_routes_selectors_and_broadcasts() {
        let plans = FaultPlan::parse_fleet(
            "dev=2:oom:alloc=3, badlaunch:numeric_merge=1, dev=0:crash:at=1",
            4,
        )
        .expect("valid fleet spec");
        assert_eq!(plans.len(), 4);
        // The broadcast launch fault lands everywhere.
        for p in &plans {
            assert_eq!(p.launch_faults().len(), 1);
        }
        // Selector-targeted faults land only on their device.
        assert_eq!(plans[0].crash_faults(), &[1]);
        assert!(plans[1].crash_faults().is_empty());
        assert_eq!(plans[2].oom_faults().len(), 1);
        assert!(plans[0].oom_faults().is_empty());
        assert!(plans[3].oom_faults().is_empty() && plans[3].crash_faults().is_empty());
    }

    #[test]
    fn fleet_parse_rejects_bad_selectors() {
        for bad in [
            "dev=4:oom:alloc=1", // outside a 4-device fleet
            "dev=x:oom:alloc=1",
            "dev=1:",
            "dev=1",
            "dev=1:quux:alloc=1",
        ] {
            assert!(
                FaultPlan::parse_fleet(bad, 4).is_err(),
                "'{bad}' should be rejected"
            );
        }
        // An ordinary single-device spec is a valid broadcast.
        let plans = FaultPlan::parse_fleet("oom:alloc=2", 2).expect("ok");
        assert!(plans.iter().all(|p| p.oom_faults().len() == 1));
        // Empty spec: every device fault-free.
        let plans = FaultPlan::parse_fleet("", 3).expect("ok");
        assert!(plans.iter().all(FaultPlan::is_empty));
    }

    #[test]
    fn transient_oom_fires_exactly_once() {
        let inj = FaultInjector::new(FaultPlan::new().oom_on_alloc(2));
        assert!(!inj.on_alloc().inject_oom);
        assert!(inj.on_alloc().inject_oom);
        assert!(!inj.on_alloc().inject_oom);
        assert_eq!(inj.injected_oom(), 1);
    }

    #[test]
    fn persistent_oom_fires_from_nth_onward() {
        let inj = FaultInjector::new(FaultPlan::new().persistent_oom_from(2));
        assert!(!inj.on_alloc().inject_oom);
        assert!(inj.on_alloc().inject_oom);
        assert!(inj.on_alloc().inject_oom);
        assert_eq!(inj.injected_oom(), 2);
    }

    #[test]
    fn launch_ordinals_are_per_kernel() {
        let inj = FaultInjector::new(FaultPlan::new().bad_launch("b", 2));
        assert!(inj.on_launch("a").is_none());
        assert!(inj.on_launch("b").is_none());
        assert!(inj.on_launch("a").is_none());
        assert!(inj.on_launch("b").is_some(), "second launch of b");
        assert!(inj.on_launch("b").is_none(), "transient: third is clean");
        assert_eq!(inj.injected_launches(), 1);
    }

    #[test]
    fn wildcard_kernel_matches_everything() {
        let inj = FaultInjector::new(FaultPlan::new().persistent_bad_launch("*", 1));
        assert!(inj.on_launch("anything").is_some());
        assert!(inj.on_launch("else").is_some());
        assert_eq!(inj.injected_launches(), 2);
    }
}
