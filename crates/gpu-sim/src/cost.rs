//! The frozen cost-model constants.
//!
//! Each constant carries its provenance. They were chosen from published
//! V100/Xeon characteristics, then frozen; DESIGN.md §6 explains the
//! calibration policy (tune once so relative results land in the paper's
//! bands, then never touch again per-experiment).

/// Cost constants for pricing simulated execution.
#[derive(Debug, Clone)]
pub struct CostModel {
    // ---- kernel launches -------------------------------------------------
    /// Host-side kernel launch + sync overhead. CUDA launch latency is
    /// ~3–10 µs through the runtime API; the paper's out-of-core loop pays
    /// this once per chunk iteration.
    pub host_launch_ns: f64,
    /// Device-side (dynamic parallelism) launch overhead, the advantage the
    /// paper's Algorithm 5 exploits; measured at a few hundred ns on Volta.
    pub device_launch_ns: f64,

    // ---- on-device execution --------------------------------------------
    /// Per-item cost of a block-parallel step once the block's threads are
    /// saturated (irregular, memory-latency-amortised work like adjacency
    /// scans): ~0.25 ns/edge for an SM-resident block.
    pub block_item_ns: f64,
    /// Per-item cost of *structured* numeric work (the multiply–add
    /// streams of the factorization kernels): coalesced and
    /// pipeline-saturated, an order of magnitude cheaper than the
    /// irregular traversal items above.
    pub flop_item_ns: f64,
    /// Per-item cost of a multiply–add inside a *tiled dense block
    /// update* (BLAS-3). A `TILE_WIDTH`-tiled GEMM keeps its operands in
    /// shared memory/registers across the whole tile, so the FMA pipeline
    /// runs without the per-element load/issue slack the streaming
    /// `flop_item_ns` rate still pays: V100 sustains ~7 TFLOP/s fp64 GEMM
    /// vs ~2–2.5 TFLOP/s on streamed sparse updates, a ~3× rate gap. The
    /// blocked numeric engine charges supernode-member columns at this
    /// rate.
    pub gemm_flop_ns: f64,
    /// Fixed cost of one intra-block step (barrier + frontier bookkeeping);
    /// dominates when frontiers are tiny, which is what makes sparse
    /// matrices GPU-unfriendly (paper §4.2).
    pub block_step_ns: f64,
    /// Device-memory bandwidth: V100 HBM2 ≈ 900 GB/s ⇒ 0.00111 ns/byte.
    pub hbm_ns_per_byte: f64,

    // ---- host <-> device ------------------------------------------------
    /// PCIe 3.0 x16 effective bandwidth ≈ 12 GB/s ⇒ 0.0833 ns/byte.
    pub pcie_ns_per_byte: f64,
    /// Fixed per-transfer latency (driver + DMA setup), ~10 µs.
    pub pcie_latency_ns: f64,

    // ---- device <-> device (fleet interconnect) --------------------------
    /// NVLink 2.0 effective per-direction bandwidth between two V100s:
    /// 6 bricks × 25 GB/s ≈ 150 GB/s ⇒ 0.00667 ns/byte. Slower than HBM
    /// (the exchange is still a real cost at level barriers) but an order
    /// of magnitude faster than staging through PCIe and the host.
    pub nvlink_ns_per_byte: f64,
    /// Fixed per-exchange latency on the peer link (doorbell + DMA setup);
    /// published V100 peer-copy latencies sit around 2 µs, well under the
    /// host-mediated PCIe setup cost.
    pub nvlink_latency_ns: f64,

    // ---- unified memory ---------------------------------------------------
    /// Fault-group migration block of the UM manager. Volta's UVM tree
    /// prefetcher escalates per-fault migration up to 2 MiB, and the
    /// paper's Table 3 group counts divide its intermediate-state
    /// footprint at almost exactly that granularity (≈1.8 MiB/group).
    pub um_page_bytes: u64,
    /// Service time per GPU page-fault *group* (fault handling +
    /// population of one block): 20–45 µs in published UVM studies; we
    /// price 25 µs per 2 MiB block.
    pub um_fault_group_ns: f64,
    /// Pages (blocks) per counted fault group; 1 — the block *is* the
    /// group.
    pub um_fault_group_pages: u64,

    // ---- numeric access pricing ------------------------------------------
    /// Fractional item-cost of one binary-search probe in the Algorithm 6
    /// numeric kernel. Each located update target pays `log2(nnz_col)`
    /// probes, and a probe (one dependent load + compare inside an
    /// otherwise coalesced stream) is cheaper than a full multiply–add
    /// item but far from free. The merge-join discipline streams both
    /// columns in lockstep and pays **no** probe surcharge — that
    /// difference is exactly the O(nnz·log nnz) → O(nnz) win.
    pub probe_weight: f64,

    // ---- CPU baseline -----------------------------------------------------
    /// Per-item cost of irregular pointer-chasing work on one Xeon core
    /// (cache-missing adjacency scans on a 2013 Ivy Bridge): ~7 ns.
    pub cpu_item_ns: f64,
    /// Threads of the baseline host (paper: 14 cores × 2 HT = 28).
    pub cpu_threads: usize,
    /// Parallel efficiency of the CPU baseline (memory-bandwidth ceiling
    /// keeps 28 threads from scaling linearly).
    pub cpu_efficiency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            host_launch_ns: 5_000.0,
            device_launch_ns: 600.0,
            block_item_ns: 0.25,
            flop_item_ns: 0.15,
            gemm_flop_ns: 0.05,
            block_step_ns: 50.0,
            hbm_ns_per_byte: 1.0 / 900.0e9 * 1e9,
            pcie_ns_per_byte: 1.0 / 12.0e9 * 1e9,
            pcie_latency_ns: 10_000.0,
            nvlink_ns_per_byte: 1.0 / 150.0e9 * 1e9,
            nvlink_latency_ns: 2_000.0,
            um_page_bytes: 2 * 1024 * 1024,
            um_fault_group_ns: 25_000.0,
            um_fault_group_pages: 1,
            probe_weight: 0.12,
            cpu_item_ns: 7.0,
            cpu_threads: 28,
            cpu_efficiency: 0.42,
        }
    }
}

impl CostModel {
    /// Effective CPU parallel throughput divisor: `threads × efficiency`.
    pub fn cpu_parallel_speedup(&self) -> f64 {
        self.cpu_threads as f64 * self.cpu_efficiency
    }

    /// Time for `items` of irregular work on the parallel CPU baseline.
    pub fn cpu_parallel_ns(&self, items: u64) -> f64 {
        items as f64 * self.cpu_item_ns / self.cpu_parallel_speedup()
    }

    /// Time for an explicit PCIe transfer of `bytes`.
    pub fn pcie_transfer_ns(&self, bytes: u64) -> f64 {
        self.pcie_latency_ns + bytes as f64 * self.pcie_ns_per_byte
    }

    /// Time for a peer-to-peer NVLink exchange of `bytes` between two
    /// devices of a fleet. Every cross-device exchange (symbolic shard
    /// merges, numeric boundary-column all-gathers) is charged through
    /// this helper so the fleet's scaling curves price communication,
    /// not just compute.
    pub fn nvlink_transfer_ns(&self, bytes: u64) -> f64 {
        self.nvlink_latency_ns + bytes as f64 * self.nvlink_ns_per_byte
    }

    /// Time for the host-side threshold-pivot discovery pre-pass: a
    /// *sequential* Gilbert–Peierls sweep, so it pays the single-thread
    /// item rate — the price of pivoting the level-scheduled engines
    /// cannot pay themselves.
    pub fn pivot_discovery_ns(&self, flops: u64) -> f64 {
        flops as f64 * self.cpu_item_ns
    }

    /// Time for dynamic symbolic expansion: `items` structural
    /// insert-or-probe operations on the host, priced at the parallel CPU
    /// rate (column repairs are independent across the dependency
    /// frontier, like the CPU symbolic baseline).
    pub fn pattern_expand_ns(&self, items: u64) -> f64 {
        self.cpu_parallel_ns(items)
    }

    /// Flop-equivalent surcharge for locating `items` update targets by
    /// per-element binary search in a destination column of `nnz_col`
    /// stored entries (Algorithm 6): `items · ⌈log2(nnz_col)⌉ ·
    /// probe_weight`. Charge this *in addition to* the `items` themselves.
    ///
    /// The merge-join discipline has no analog of this function: its
    /// two-pointer walk is priced as the item stream alone (plus the
    /// bytes it touches), which is what makes it O(nnz).
    pub fn probe_flop_items(&self, items: u64, nnz_col: u64) -> u64 {
        let log_nnz = 64 - u64::leading_zeros(nnz_col.max(1)) as u64;
        (items as f64 * log_nnz as f64 * self.probe_weight) as u64
    }

    /// Device-memory traffic of `items` update entries applied through a
    /// width-`width` supernode block's tiled kernel, in bytes.
    ///
    /// A streaming column update re-reads its source segment per column:
    /// `items · 8` bytes. A supernode of `width` adjacent columns shares
    /// (by construction — their filled patterns match) one source tile
    /// across all members, so the tile load is amortized: each member's
    /// share is `⌈items·8 / width⌉`. The destination writes stay (they are
    /// distinct entries), but tiles make them coalesced store bursts, which
    /// the HBM bound already prices per byte — so the amortized figure is
    /// the whole story.
    pub fn tiled_mem_bytes(&self, items: u64, width: u64) -> u64 {
        (items * 8).div_ceil(width.max(1))
    }

    /// The Auto-format crossover between the merge and blocked engines.
    ///
    /// The blocked engine wins when enough columns sit inside supernode
    /// blocks for the gemm-rate flops and the width-amortized tile bytes
    /// to outweigh the `block_detect` scan: empirically (see
    /// BENCH_blocked_numeric.json) that happens once the mean supernode
    /// width clears ~1.8 columns *and* the fill is dense enough
    /// (≥ 20 nnz/col after fill) for the update streams — not launch
    /// overhead — to dominate the numeric phase. Planar/delaunay-class
    /// fill patterns clear both bars (density ≥ 200, width ~1.9, a
    /// 1.8× replay-path win at n=8000); circuit and mesh fill fails the
    /// width bar, and banded patterns (width ~32 but density ~16) sit
    /// under the density floor — their deep level chains are launch-bound,
    /// so blocked pricing gains nothing there.
    pub fn blocked_crossover(&self, fill_density: f64, mean_block_width: f64) -> bool {
        mean_block_width >= 1.8 && fill_density >= 20.0
    }

    /// Scales the *fixed latencies* (kernel-launch overheads and the PCIe
    /// setup latency) down by `scale`, for experiments on matrices scaled
    /// down by the same factor.
    ///
    /// Rationale: per-item (throughput) costs shrink automatically with
    /// problem size, but launch counts are scale-invariant by design (the
    /// out-of-core profile preserves the iteration count, levelization
    /// preserves the level count). Left unscaled, fixed latencies would
    /// dominate the scaled runs and invert every GPU-vs-CPU comparison
    /// that holds at paper scale. Dividing them by the matrix scale
    /// restores the paper's fixed-to-throughput cost ratio (DESIGN.md §6).
    pub fn scaled_latencies(mut self, scale: usize) -> Self {
        let s = scale.max(1) as f64;
        self.host_launch_ns /= s;
        self.device_launch_ns /= s;
        self.pcie_latency_ns /= s;
        self.nvlink_latency_ns /= s;
        self
    }

    /// Switches the unified-memory page granularity while keeping the
    /// fault-service cost *per byte* invariant (the service time scales
    /// with the page size). Scaled-down experiments use finer pages so the
    /// paging behaviour keeps its resolution at small footprints; because
    /// per-byte overhead is preserved, fault-time *fractions* (Table 3's
    /// metric) are unaffected by the choice.
    pub fn with_um_page_bytes(mut self, bytes: u64) -> Self {
        let bytes = bytes.max(256);
        self.um_fault_group_ns *= bytes as f64 / self.um_page_bytes as f64;
        self.um_page_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_physical() {
        let c = CostModel::default();
        // HBM must be far faster than PCIe.
        assert!(c.hbm_ns_per_byte < c.pcie_ns_per_byte / 10.0);
        // Dynamic parallelism must beat host launches (the Alg. 5 premise).
        assert!(c.device_launch_ns < c.host_launch_ns / 2.0);
        // Tiled GEMM must beat the streamed flop rate (the BLAS-3 premise)
        // but stay above the theoretical peak-fp64 floor (~0.01 ns/FMA).
        assert!(c.gemm_flop_ns < c.flop_item_ns / 2.0);
        assert!(c.gemm_flop_ns > 0.01);
        // Fault service per byte sits below PCIe per byte (populating a
        // block is cheaper than transferring it) but is far from free —
        // the Table 3 tax on on-demand paging of device-created scratch.
        let service_per_byte = c.um_fault_group_ns / c.um_page_bytes as f64;
        assert!(service_per_byte < c.pcie_ns_per_byte);
        assert!(service_per_byte > c.pcie_ns_per_byte / 20.0);
        // The fleet interconnect sits strictly between HBM and PCIe: a
        // peer exchange is slower than local memory but much faster than
        // bouncing through the host.
        assert!(c.nvlink_ns_per_byte > c.hbm_ns_per_byte);
        assert!(c.nvlink_ns_per_byte < c.pcie_ns_per_byte / 5.0);
        assert!(c.nvlink_latency_ns < c.pcie_latency_ns / 2.0);
        assert!(c.nvlink_latency_ns > c.device_launch_ns);
    }

    #[test]
    fn cpu_parallel_math() {
        let c = CostModel::default();
        let single = 1_000_000.0 * c.cpu_item_ns;
        let par = c.cpu_parallel_ns(1_000_000);
        assert!(par < single / 10.0, "28 threads must give >10x");
        assert!(par > single / 28.0, "but not superlinear");
    }

    #[test]
    fn probe_surcharge_scales_with_column_size() {
        let c = CostModel::default();
        // log2(1024) = 11 significant bits ⇒ 1000 · 11 · 0.12 = 1320.
        assert_eq!(c.probe_flop_items(1000, 1024), 1320);
        // Deeper columns cost more probes per located item…
        assert!(c.probe_flop_items(1000, 1 << 20) > c.probe_flop_items(1000, 1 << 10));
        // …and an empty column is clamped, not a panic.
        assert_eq!(c.probe_flop_items(0, 0), 0);
    }

    #[test]
    fn tiled_bytes_amortize_by_width() {
        let c = CostModel::default();
        // A singleton "block" is plain streaming traffic.
        assert_eq!(c.tiled_mem_bytes(1000, 1), 8000);
        // Width-8 supernode: the shared source tile divides the bytes.
        assert_eq!(c.tiled_mem_bytes(1000, 8), 1000);
        // Rounds up, never to zero while items remain; width 0 is clamped.
        assert_eq!(c.tiled_mem_bytes(3, 8), 3);
        assert_eq!(c.tiled_mem_bytes(5, 0), 40);
    }

    #[test]
    fn blocked_crossover_needs_width_and_density() {
        let c = CostModel::default();
        // Dense fill + wide supernodes: blocked wins.
        assert!(c.blocked_crossover(25.0, 3.0));
        // Circuit-like: sparse fill, near-singleton blocks.
        assert!(!c.blocked_crossover(6.0, 1.1));
        // Width without density (tiny banded) or density without width
        // (random fill with unaligned patterns) both stay on merge.
        assert!(!c.blocked_crossover(4.0, 4.0));
        assert!(!c.blocked_crossover(30.0, 1.2));
        // Band-8 fill: full-width supernodes, but the launch-bound level
        // chain keeps it under the density floor.
        assert!(!c.blocked_crossover(16.5, 31.8));
    }

    #[test]
    fn pcie_transfer_includes_latency() {
        let c = CostModel::default();
        assert!(c.pcie_transfer_ns(0) == c.pcie_latency_ns);
        let big = c.pcie_transfer_ns(12_000_000_000);
        assert!(
            (big - (c.pcie_latency_ns + 1e9)).abs() / big < 1e-6,
            "12 GB ≈ 1 s"
        );
    }

    #[test]
    fn nvlink_transfer_includes_latency_and_beats_pcie() {
        let c = CostModel::default();
        assert!(c.nvlink_transfer_ns(0) == c.nvlink_latency_ns);
        let big = c.nvlink_transfer_ns(150_000_000_000);
        assert!(
            (big - (c.nvlink_latency_ns + 1e9)).abs() / big < 1e-6,
            "150 GB ≈ 1 s"
        );
        // For any bulk exchange the peer link must beat the host path.
        assert!(c.nvlink_transfer_ns(1 << 20) < c.pcie_transfer_ns(1 << 20));
    }
}
