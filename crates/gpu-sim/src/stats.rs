//! Aggregate GPU statistics.

use crate::clock::SimTime;

/// Snapshot of everything the simulated GPU has done so far. Experiments
/// take snapshots at phase boundaries and difference them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuStatsSnapshot {
    /// Current simulated clock.
    pub now: SimTime,
    /// Host-side kernel launches.
    pub kernels_host: u64,
    /// Device-side (dynamic parallelism) kernel launches.
    pub kernels_device: u64,
    /// Total time inside kernels.
    pub kernel_time: SimTime,
    /// Of which: serialized unified-memory fault service.
    pub fault_time: SimTime,
    /// Unified-memory fault groups (Table 3's count).
    pub fault_groups: u64,
    /// Host→device bytes moved explicitly.
    pub h2d_bytes: u64,
    /// Device→host bytes moved explicitly.
    pub d2h_bytes: u64,
    /// Time spent in explicit transfers.
    pub xfer_time: SimTime,
    /// Time spent in explicit UM prefetches.
    pub prefetch_time: SimTime,
    /// Injected allocation failures (fault plan).
    pub injected_oom: u64,
    /// Injected kernel-launch failures (fault plan).
    pub injected_launch_faults: u64,
    /// Injected capacity squeezes applied (fault plan).
    pub injected_squeezes: u64,
    /// Injected crashes fired (fault plan `crash:at=N`).
    pub injected_crashes: u64,
    /// Crash points passed so far — the number of sites an injected crash
    /// could have fired at. A chaos suite reads this off a clean run to
    /// enumerate every ordinal worth targeting.
    pub crash_points: u64,
}

impl GpuStatsSnapshot {
    /// Component-wise difference `self - earlier` (for phase accounting).
    ///
    /// Saturating on every field: an out-of-order pair (snapshots from
    /// different phases, or swapped arguments) yields zeros instead of a
    /// debug-build overflow panic.
    pub fn since(&self, earlier: &GpuStatsSnapshot) -> GpuStatsSnapshot {
        GpuStatsSnapshot {
            now: self.now.saturating_sub(earlier.now),
            kernels_host: self.kernels_host.saturating_sub(earlier.kernels_host),
            kernels_device: self.kernels_device.saturating_sub(earlier.kernels_device),
            kernel_time: self.kernel_time.saturating_sub(earlier.kernel_time),
            fault_time: self.fault_time.saturating_sub(earlier.fault_time),
            fault_groups: self.fault_groups.saturating_sub(earlier.fault_groups),
            h2d_bytes: self.h2d_bytes.saturating_sub(earlier.h2d_bytes),
            d2h_bytes: self.d2h_bytes.saturating_sub(earlier.d2h_bytes),
            xfer_time: self.xfer_time.saturating_sub(earlier.xfer_time),
            prefetch_time: self.prefetch_time.saturating_sub(earlier.prefetch_time),
            injected_oom: self.injected_oom.saturating_sub(earlier.injected_oom),
            injected_launch_faults: self
                .injected_launch_faults
                .saturating_sub(earlier.injected_launch_faults),
            injected_squeezes: self
                .injected_squeezes
                .saturating_sub(earlier.injected_squeezes),
            injected_crashes: self
                .injected_crashes
                .saturating_sub(earlier.injected_crashes),
            crash_points: self.crash_points.saturating_sub(earlier.crash_points),
        }
    }

    /// Total injected faults of every kind (fault plan).
    pub fn injected_faults(&self) -> u64 {
        self.injected_oom + self.injected_launch_faults + self.injected_squeezes
    }

    /// Fraction of elapsed time spent servicing page faults — the metric of
    /// the paper's Table 3 ("pc." columns).
    pub fn fault_time_fraction(&self) -> f64 {
        if self.now.as_ns() == 0.0 {
            0.0
        } else {
            self.fault_time.as_ns() / self.now.as_ns()
        }
    }

    /// Fraction of elapsed time spent on explicit data movement (the
    /// out-of-core implementation's analog of fault overhead; Table 3's
    /// "pc. ooc" column).
    pub fn xfer_time_fraction(&self) -> f64 {
        if self.now.as_ns() == 0.0 {
            0.0
        } else {
            self.xfer_time.as_ns() / self.now.as_ns()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_componentwise() {
        let early = GpuStatsSnapshot {
            now: SimTime::from_ns(100.0),
            kernels_host: 2,
            fault_groups: 5,
            ..Default::default()
        };
        let late = GpuStatsSnapshot {
            now: SimTime::from_ns(350.0),
            kernels_host: 7,
            fault_groups: 11,
            ..Default::default()
        };
        let d = late.since(&early);
        assert_eq!(d.now.as_ns(), 250.0);
        assert_eq!(d.kernels_host, 5);
        assert_eq!(d.fault_groups, 6);
    }

    #[test]
    fn since_saturates_on_out_of_order_pairs() {
        let early = GpuStatsSnapshot {
            now: SimTime::from_ns(100.0),
            kernels_host: 2,
            fault_groups: 5,
            h2d_bytes: 64,
            ..Default::default()
        };
        let late = GpuStatsSnapshot {
            now: SimTime::from_ns(350.0),
            kernels_host: 7,
            fault_groups: 11,
            h2d_bytes: 512,
            ..Default::default()
        };
        // Swapped arguments: every field clamps to zero, no panic.
        let d = early.since(&late);
        assert_eq!(d, GpuStatsSnapshot::default());
        assert_eq!(d.now.as_ns(), 0.0);
    }

    #[test]
    fn fractions_guard_zero_elapsed() {
        let z = GpuStatsSnapshot::default();
        assert_eq!(z.fault_time_fraction(), 0.0);
        assert_eq!(z.xfer_time_fraction(), 0.0);
    }

    #[test]
    fn fault_fraction_math() {
        let s = GpuStatsSnapshot {
            now: SimTime::from_us(10.0),
            fault_time: SimTime::from_us(4.0),
            ..Default::default()
        };
        assert!((s.fault_time_fraction() - 0.4).abs() < 1e-12);
    }
}
