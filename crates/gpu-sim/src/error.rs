//! Simulator error type.

use std::fmt;

/// Errors raised by the GPU simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A device allocation did not fit. This is the signal that drives
    /// out-of-core execution: callers catch it (or pre-check with
    /// [`crate::DeviceMemory::free_bytes`]) and fall back to chunking.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
        /// Total device capacity.
        capacity: u64,
    },
    /// A freed or otherwise invalid allocation handle was used.
    InvalidHandle(u64),
    /// An access fell outside its allocation.
    AccessOutOfBounds {
        /// Handle of the allocation.
        handle: u64,
        /// Offending byte offset.
        offset: u64,
        /// Allocation length in bytes.
        len: u64,
    },
    /// Kernel grid configuration violates device limits.
    BadLaunch(String),
    /// The process was killed at an injected crash point (fault plan
    /// `crash:at=N`). Unlike every other fault this one is terminal:
    /// recovery ladders must not degrade around it — the pipeline dies
    /// and a later run resumes from the last durable checkpoint.
    Crashed {
        /// Crash-point ordinal (1-based) the kill fired on.
        ordinal: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                requested,
                free,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B, free {free} B of {capacity} B"
            ),
            SimError::InvalidHandle(h) => write!(f, "invalid device allocation handle {h}"),
            SimError::AccessOutOfBounds {
                handle,
                offset,
                len,
            } => {
                write!(
                    f,
                    "access at offset {offset} outside allocation {handle} of {len} B"
                )
            }
            SimError::BadLaunch(msg) => write!(f, "bad kernel launch: {msg}"),
            SimError::Crashed { ordinal } => {
                write!(f, "process killed at injected crash point #{ordinal}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_contain_numbers() {
        let e = SimError::OutOfMemory {
            requested: 100,
            free: 10,
            capacity: 50,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10") && s.contains("50"));
    }
}
