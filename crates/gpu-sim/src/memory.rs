//! Device-memory allocator.
//!
//! Capacity is the whole point: the paper's out-of-core design exists
//! because the symbolic phase's intermediate state (`c·n` words per
//! in-flight source row, `c = 6`) does not fit. [`DeviceMemory`] tracks
//! usage against the configured capacity and **fails allocations that do
//! not fit**, which is the signal the out-of-core drivers react to. It
//! also records the high-water mark so experiments can report peak usage.

use crate::error::SimError;
use crate::fault::FaultInjector;
use parking_lot::Mutex;
use std::sync::Arc;

/// Handle to a live device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceAlloc {
    id: u64,
    bytes: u64,
}

impl DeviceAlloc {
    /// Size of this allocation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Opaque id (for diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }
}

#[derive(Debug, Default)]
struct MemState {
    // Capacity lives under the lock so an injected squeeze can shrink it
    // mid-run without racing in-flight allocations.
    capacity: u64,
    in_use: u64,
    peak: u64,
    next_id: u64,
    live: std::collections::HashMap<u64, u64>,
}

/// A capacity-tracked device-memory allocator.
///
/// Only sizes are tracked — payload data lives in ordinary host `Vec`s held
/// by the algorithm implementations; see the crate docs for the functional
/// vs priced split.
#[derive(Debug)]
pub struct DeviceMemory {
    state: Mutex<MemState>,
    faults: Option<Arc<FaultInjector>>,
}

impl DeviceMemory {
    /// Creates an allocator with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory::with_faults(capacity, None)
    }

    /// Creates an allocator whose requests pass through a fault injector.
    pub fn with_faults(capacity: u64, faults: Option<Arc<FaultInjector>>) -> Self {
        DeviceMemory {
            state: Mutex::new(MemState {
                capacity,
                ..MemState::default()
            }),
            faults,
        }
    }

    /// Total capacity in bytes (may shrink under an injected squeeze).
    pub fn capacity(&self) -> u64 {
        self.state.lock().capacity
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        let s = self.state.lock();
        s.capacity - s.in_use
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.state.lock().in_use
    }

    /// High-water mark over the allocator's lifetime.
    pub fn peak_bytes(&self) -> u64 {
        self.state.lock().peak
    }

    /// Allocates `bytes`, failing with [`SimError::OutOfMemory`] when the
    /// request does not fit — the trigger for out-of-core fallback.
    pub fn alloc(&self, bytes: u64) -> Result<DeviceAlloc, SimError> {
        let mut s = self.state.lock();
        if let Some(inj) = &self.faults {
            let verdict = inj.on_alloc();
            if let Some(keep) = verdict.squeeze_keep_percent {
                // External memory pressure: live allocations survive, but
                // the headroom above them shrinks — and stays shrunk.
                s.capacity = (s.capacity * keep / 100).max(s.in_use);
            }
            if verdict.inject_oom {
                return Err(SimError::OutOfMemory {
                    requested: bytes,
                    free: s.capacity - s.in_use,
                    capacity: s.capacity,
                });
            }
        }
        if s.in_use + bytes > s.capacity {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                free: s.capacity - s.in_use,
                capacity: s.capacity,
            });
        }
        s.in_use += bytes;
        s.peak = s.peak.max(s.in_use);
        let id = s.next_id;
        s.next_id += 1;
        s.live.insert(id, bytes);
        Ok(DeviceAlloc { id, bytes })
    }

    /// Frees an allocation. Double frees return [`SimError::InvalidHandle`].
    pub fn free(&self, alloc: DeviceAlloc) -> Result<(), SimError> {
        let mut s = self.state.lock();
        match s.live.remove(&alloc.id) {
            Some(bytes) => {
                s.in_use -= bytes;
                Ok(())
            }
            None => Err(SimError::InvalidHandle(alloc.id)),
        }
    }

    /// Frees every live allocation (end-of-phase cleanup).
    pub fn reset(&self) {
        let mut s = self.state.lock();
        s.live.clear();
        s.in_use = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let m = DeviceMemory::new(1000);
        let a = m.alloc(400).expect("fits");
        let b = m.alloc(600).expect("fits exactly");
        assert_eq!(m.free_bytes(), 0);
        assert!(matches!(m.alloc(1), Err(SimError::OutOfMemory { .. })));
        m.free(a).expect("live");
        assert_eq!(m.free_bytes(), 400);
        m.free(b).expect("live");
        assert_eq!(m.used_bytes(), 0);
        assert_eq!(m.peak_bytes(), 1000);
    }

    #[test]
    fn double_free_rejected() {
        let m = DeviceMemory::new(100);
        let a = m.alloc(10).expect("fits");
        m.free(a).expect("first free ok");
        assert!(matches!(m.free(a), Err(SimError::InvalidHandle(_))));
    }

    #[test]
    fn oom_reports_sizes() {
        let m = DeviceMemory::new(100);
        let _a = m.alloc(90).expect("fits");
        match m.alloc(20) {
            Err(SimError::OutOfMemory {
                requested,
                free,
                capacity,
            }) => {
                assert_eq!((requested, free, capacity), (20, 10, 100));
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn reset_clears_everything() {
        let m = DeviceMemory::new(100);
        let _ = m.alloc(50).expect("fits");
        m.reset();
        assert_eq!(m.used_bytes(), 0);
        assert!(m.alloc(100).is_ok());
    }

    mod injection {
        use super::*;
        use crate::fault::{FaultInjector, FaultPlan};

        fn mem_with(plan: FaultPlan, capacity: u64) -> DeviceMemory {
            DeviceMemory::with_faults(capacity, Some(Arc::new(FaultInjector::new(plan))))
        }

        #[test]
        fn transient_oom_fails_nth_alloc_only() {
            let m = mem_with(FaultPlan::new().oom_on_alloc(2), 1000);
            assert!(m.alloc(10).is_ok());
            assert!(matches!(m.alloc(10), Err(SimError::OutOfMemory { .. })));
            assert!(m.alloc(10).is_ok(), "transient fault clears on retry");
        }

        #[test]
        fn persistent_oom_never_recovers() {
            let m = mem_with(FaultPlan::new().persistent_oom_from(2), 1000);
            assert!(m.alloc(10).is_ok());
            for _ in 0..5 {
                assert!(matches!(m.alloc(1), Err(SimError::OutOfMemory { .. })));
            }
        }

        #[test]
        fn squeeze_shrinks_capacity_but_keeps_live_allocations() {
            let m = mem_with(FaultPlan::new().squeeze_at(2, 50), 1000);
            let a = m.alloc(700).expect("fits before squeeze");
            // The squeeze wants 500 but 700 bytes are live: floor at in-use.
            assert!(matches!(m.alloc(200), Err(SimError::OutOfMemory { .. })));
            assert_eq!(m.capacity(), 700);
            assert_eq!(m.free_bytes(), 0);
            m.free(a).expect("live");
            assert!(m.alloc(700).is_ok(), "squeezed capacity is reusable");
        }

        #[test]
        fn squeeze_persists_across_reset() {
            let m = mem_with(FaultPlan::new().squeeze_at(1, 40), 1000);
            let _ = m.alloc(10);
            assert_eq!(m.capacity(), 400);
            m.reset();
            assert_eq!(m.capacity(), 400, "external pressure outlives a phase");
        }
    }
}
