//! The simulated GPU and its launch machinery.

use crate::clock::SimTime;
use crate::config::GpuConfig;
use crate::cost::CostModel;
use crate::error::SimError;
use crate::fault::{FaultInjector, FaultPlan};
use crate::kernel::{BlockCtx, Kernel};
use crate::memory::DeviceMemory;
use crate::stats::GpuStatsSnapshot;
use crate::unified::UmSpace;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Where a launch originates: from the host (CUDA runtime API) or from
/// device code via *dynamic parallelism* (the paper's Algorithm 5). The
/// only difference is the launch overhead — exactly the saving the paper
/// claims for its GPU topological sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchKind {
    /// Host-side launch (runtime-API latency).
    Host,
    /// Device-side child launch (dynamic parallelism).
    Device,
}

/// How to *functionally* execute the blocks of a kernel.
///
/// Pricing is identical either way; `Seq` exists so kernels whose
/// unified-memory paging behaviour must be deterministic (the UM baselines
/// feeding Table 3) replay blocks in a fixed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exec {
    /// Blocks run on the rayon pool (fast wall-clock, default).
    Par,
    /// Blocks run sequentially in block-id order (deterministic paging).
    Seq,
}

/// Outcome of one kernel launch.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Kernel name (diagnostics).
    pub name: String,
    /// Number of blocks launched.
    pub grid: usize,
    /// Simulated end-to-end kernel time (incl. launch overhead).
    pub time: SimTime,
    /// Wave-scheduled compute makespan.
    pub compute: SimTime,
    /// HBM bandwidth bound over the kernel's total traffic.
    pub bandwidth: SimTime,
    /// Serialized unified-memory fault service time.
    pub fault: SimTime,
    /// Unified-memory fault groups raised.
    pub fault_groups: u64,
    /// Concurrency the wave scheduler used.
    pub concurrency: usize,
}

#[derive(Debug, Default)]
struct GpuState {
    now_ns: f64,
    /// The analytic ("roofline") clock: what the cost model *predicts*
    /// each operation should take, accumulated alongside the scheduled
    /// clock. Exact-cost operations (transfers, prefetches, `advance`,
    /// empty launches) charge identically to `now_ns`; kernel launches
    /// charge the ideal-packing bound instead of the greedy
    /// list-scheduling makespan. The gap between the two clocks over a
    /// span is the *cost-model drift* the profiler in `gplu-core` tracks.
    analytic_ns: f64,
    kernels_host: u64,
    kernels_device: u64,
    kernel_time_ns: f64,
    fault_time_ns: f64,
    fault_groups: u64,
    h2d_bytes: u64,
    d2h_bytes: u64,
    xfer_time_ns: f64,
    prefetch_time_ns: f64,
    crash_points: u64,
}

/// A simulated GPU: configuration, cost model, device memory, unified
/// memory and a monotone clock.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    cost: CostModel,
    /// Device-memory allocator (out-of-core decisions key off this).
    pub mem: DeviceMemory,
    /// Unified-memory space.
    pub um: UmSpace,
    state: Mutex<GpuState>,
    faults: Option<Arc<FaultInjector>>,
}

impl Gpu {
    /// Creates a GPU from a configuration with the default cost model.
    pub fn new(cfg: GpuConfig) -> Self {
        Gpu::with_cost(cfg, CostModel::default())
    }

    /// Creates a GPU with an explicit cost model.
    pub fn with_cost(cfg: GpuConfig, cost: CostModel) -> Self {
        Gpu::build(cfg, cost, None)
    }

    /// Creates a GPU that replays a deterministic [`FaultPlan`]: scheduled
    /// allocation failures, capacity squeezes and kernel-launch failures
    /// fire at their exact ordinals. An empty plan behaves like
    /// [`Gpu::with_cost`].
    pub fn with_fault_plan(cfg: GpuConfig, cost: CostModel, plan: FaultPlan) -> Self {
        let injector = (!plan.is_empty()).then(|| Arc::new(FaultInjector::new(plan)));
        Gpu::build(cfg, cost, injector)
    }

    fn build(cfg: GpuConfig, cost: CostModel, faults: Option<Arc<FaultInjector>>) -> Self {
        let mem = DeviceMemory::with_faults(cfg.device_memory, faults.clone());
        let um = UmSpace::new(&cost, cfg.device_memory);
        Gpu {
            cfg,
            cost,
            mem,
            um,
            state: Mutex::new(GpuState::default()),
            faults,
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The fault injector attached to this GPU, when a plan is active.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_deref()
    }

    /// Cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime::from_ns(self.state.lock().now_ns)
    }

    /// One consistent reading of both clocks, `(scheduled_ns,
    /// analytic_ns)`: the scheduled clock (what [`Gpu::now`] reports) and
    /// the analytic roofline clock the cost model predicts. Span-level
    /// deltas of the pair feed the drift profiler; taking both under one
    /// lock keeps a delta self-consistent even with concurrent callers.
    pub fn clocks(&self) -> (f64, f64) {
        let s = self.state.lock();
        (s.now_ns, s.analytic_ns)
    }

    /// Advances the clock by host-side work priced externally (e.g. the
    /// CPU share of a hybrid phase).
    pub fn advance(&self, t: SimTime) {
        let mut s = self.state.lock();
        s.now_ns += t.as_ns();
        s.analytic_ns += t.as_ns();
    }

    /// Explicit host→device transfer of `bytes`.
    pub fn h2d(&self, bytes: u64) -> SimTime {
        let t = SimTime::from_ns(self.cost.pcie_transfer_ns(bytes));
        let mut s = self.state.lock();
        s.h2d_bytes += bytes;
        s.xfer_time_ns += t.as_ns();
        s.now_ns += t.as_ns();
        s.analytic_ns += t.as_ns();
        t
    }

    /// Explicit device→host transfer of `bytes`.
    pub fn d2h(&self, bytes: u64) -> SimTime {
        let t = SimTime::from_ns(self.cost.pcie_transfer_ns(bytes));
        let mut s = self.state.lock();
        s.d2h_bytes += bytes;
        s.xfer_time_ns += t.as_ns();
        s.now_ns += t.as_ns();
        s.analytic_ns += t.as_ns();
        t
    }

    /// Unified-memory prefetch of a byte range (bulk PCIe move, no fault
    /// penalty) — `cudaMemPrefetchAsync`. Host-backed and materialised
    /// pages are charged at PCIe rate; populating fresh device scratch is
    /// free.
    pub fn um_prefetch(&self, alloc: &crate::unified::UmAlloc, offset: u64, len: u64) -> SimTime {
        let bytes = self.um.prefetch(alloc, offset, len);
        let t = if bytes == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_ns(self.cost.pcie_transfer_ns(bytes))
        };
        let mut s = self.state.lock();
        s.prefetch_time_ns += t.as_ns();
        s.now_ns += t.as_ns();
        s.analytic_ns += t.as_ns();
        t
    }

    /// Launches a kernel from the host. See [`Gpu::launch_with`].
    pub fn launch<K: Kernel>(
        &self,
        name: &str,
        grid: usize,
        threads_per_block: usize,
        kernel: &K,
    ) -> Result<KernelReport, SimError> {
        self.launch_with(
            name,
            grid,
            threads_per_block,
            LaunchKind::Host,
            Exec::Par,
            kernel,
        )
    }

    /// Launches a child kernel from device code (dynamic parallelism).
    pub fn launch_device<K: Kernel>(
        &self,
        name: &str,
        grid: usize,
        threads_per_block: usize,
        kernel: &K,
    ) -> Result<KernelReport, SimError> {
        self.launch_with(
            name,
            grid,
            threads_per_block,
            LaunchKind::Device,
            Exec::Par,
            kernel,
        )
    }

    /// Launches a kernel whose concurrency is additionally capped at `cap`
    /// blocks — the dense-format numeric kernel's `M = L/(n·sizeof)` limit
    /// from the paper's Section 3.4 (each concurrent block owns an `O(n)`
    /// dense column buffer, so fewer than `TB_max` blocks can be resident).
    pub fn launch_capped<K: Kernel>(
        &self,
        name: &str,
        grid: usize,
        threads_per_block: usize,
        cap: usize,
        kernel: &K,
    ) -> Result<KernelReport, SimError> {
        self.launch_inner(
            name,
            grid,
            threads_per_block,
            LaunchKind::Host,
            Exec::Par,
            Some(cap),
            kernel,
        )
    }

    /// Full-control launch.
    ///
    /// Functionally executes `kernel` for every block id in `0..grid`
    /// (in parallel unless `exec` is [`Exec::Seq`]), then prices it:
    ///
    /// * per-block compute times are wave-scheduled onto
    ///   `min(grid, TB_max)` concurrent block slots (greedy list
    ///   scheduling, the standard Graham bound),
    /// * the kernel cannot beat the HBM bandwidth bound over its total
    ///   memory traffic,
    /// * unified-memory fault service is **serialized** across blocks
    ///   (the GPU fault handler is a global bottleneck — this is what makes
    ///   on-demand paging slow in the paper's Table 3),
    /// * plus the launch overhead of `kind`.
    pub fn launch_with<K: Kernel>(
        &self,
        name: &str,
        grid: usize,
        threads_per_block: usize,
        kind: LaunchKind,
        exec: Exec,
        kernel: &K,
    ) -> Result<KernelReport, SimError> {
        self.launch_inner(name, grid, threads_per_block, kind, exec, None, kernel)
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_inner<K: Kernel>(
        &self,
        name: &str,
        grid: usize,
        threads_per_block: usize,
        kind: LaunchKind,
        exec: Exec,
        cap: Option<usize>,
        kernel: &K,
    ) -> Result<KernelReport, SimError> {
        if threads_per_block == 0 || threads_per_block > self.cfg.max_threads_per_block {
            return Err(SimError::BadLaunch(format!(
                "threads_per_block {threads_per_block} outside 1..={}",
                self.cfg.max_threads_per_block
            )));
        }
        if let Some(inj) = &self.faults {
            // Injected launch failure: the kernel never starts, no blocks
            // run, no time passes (the runtime rejects it up front).
            if let Some(err) = inj.on_launch(name) {
                return Err(err);
            }
        }
        let launch_ns = match kind {
            LaunchKind::Host => self.cost.host_launch_ns,
            LaunchKind::Device => self.cost.device_launch_ns,
        };
        if grid == 0 {
            // Empty launch still pays the overhead (matches CUDA).
            let t = SimTime::from_ns(launch_ns);
            let mut s = self.state.lock();
            match kind {
                LaunchKind::Host => s.kernels_host += 1,
                LaunchKind::Device => s.kernels_device += 1,
            }
            s.now_ns += launch_ns;
            s.analytic_ns += launch_ns;
            s.kernel_time_ns += launch_ns;
            return Ok(KernelReport {
                name: name.into(),
                grid: 0,
                time: t,
                compute: SimTime::ZERO,
                bandwidth: SimTime::ZERO,
                fault: SimTime::ZERO,
                fault_groups: 0,
                concurrency: 0,
            });
        }

        // Functional execution with per-block accounting.
        let run_one = |b: usize| {
            let mut ctx = BlockCtx::new(&self.cost, Some(&self.um), threads_per_block);
            kernel.run_block(b, &mut ctx);
            (
                ctx.compute_ns,
                ctx.mem_bytes,
                ctx.fault_ns,
                ctx.fault_groups,
            )
        };
        let per_block: Vec<(f64, u64, f64, u64)> = match exec {
            Exec::Par => (0..grid).into_par_iter().map(run_one).collect(),
            Exec::Seq => (0..grid).map(run_one).collect(),
        };

        let concurrency = grid
            .min(self.cfg.tb_max)
            .min(cap.unwrap_or(usize::MAX))
            .max(1);
        let compute_ns = makespan(per_block.iter().map(|p| p.0), concurrency);
        let total_bytes: u64 = per_block.iter().map(|p| p.1).sum();
        let bw_ns = total_bytes as f64 * self.cost.hbm_ns_per_byte;
        let fault_ns: f64 = per_block.iter().map(|p| p.2).sum();
        let fault_groups: u64 = per_block.iter().map(|p| p.3).sum();

        let total_ns = launch_ns + compute_ns.max(bw_ns) + fault_ns;
        // The analytic clock charges the roofline bound the cost model
        // predicts without running the list scheduler: perfect packing of
        // the per-block times onto `concurrency` slots (the critical
        // block or the work/width bound, whichever dominates), under the
        // same launch + bandwidth + fault terms. Divergence between this
        // and `total_ns` is scheduling/quantization drift.
        let max_block_ns = per_block.iter().map(|p| p.0).fold(0.0, f64::max);
        let sum_block_ns: f64 = per_block.iter().map(|p| p.0).sum();
        let ideal_ns = max_block_ns.max(sum_block_ns / concurrency as f64);
        let analytic_ns = launch_ns + ideal_ns.max(bw_ns) + fault_ns;
        let mut s = self.state.lock();
        match kind {
            LaunchKind::Host => s.kernels_host += 1,
            LaunchKind::Device => s.kernels_device += 1,
        }
        s.now_ns += total_ns;
        s.analytic_ns += analytic_ns;
        s.kernel_time_ns += total_ns;
        s.fault_time_ns += fault_ns;
        s.fault_groups += fault_groups;

        Ok(KernelReport {
            name: name.into(),
            grid,
            time: SimTime::from_ns(total_ns),
            compute: SimTime::from_ns(compute_ns),
            bandwidth: SimTime::from_ns(bw_ns),
            fault: SimTime::from_ns(fault_ns),
            fault_groups,
            concurrency,
        })
    }

    /// Passes a *crash point*: a numbered site where an injected
    /// `crash:at=N` fault may kill the run with [`SimError::Crashed`].
    /// The pipeline places crash points around durable checkpoint writes;
    /// ordinals are counted even without a fault plan, so a clean run's
    /// [`GpuStatsSnapshot::crash_points`] enumerates every ordinal a chaos
    /// suite can target.
    pub fn crash_point(&self) -> Result<(), SimError> {
        let ordinal = {
            let mut s = self.state.lock();
            s.crash_points += 1;
            s.crash_points
        };
        if let Some(inj) = &self.faults {
            if inj.on_crash_point(ordinal) {
                return Err(SimError::Crashed { ordinal });
            }
        }
        Ok(())
    }

    /// Statistics snapshot (difference snapshots for phase accounting).
    pub fn stats(&self) -> GpuStatsSnapshot {
        let (injected_oom, injected_launch_faults, injected_squeezes, injected_crashes) =
            match &self.faults {
                Some(f) => (
                    f.injected_oom(),
                    f.injected_launches(),
                    f.injected_squeezes(),
                    f.injected_crashes(),
                ),
                None => (0, 0, 0, 0),
            };
        let s = self.state.lock();
        GpuStatsSnapshot {
            now: SimTime::from_ns(s.now_ns),
            kernels_host: s.kernels_host,
            kernels_device: s.kernels_device,
            kernel_time: SimTime::from_ns(s.kernel_time_ns),
            fault_time: SimTime::from_ns(s.fault_time_ns),
            fault_groups: s.fault_groups,
            h2d_bytes: s.h2d_bytes,
            d2h_bytes: s.d2h_bytes,
            xfer_time: SimTime::from_ns(s.xfer_time_ns),
            prefetch_time: SimTime::from_ns(s.prefetch_time_ns),
            injected_oom,
            injected_launch_faults,
            injected_squeezes,
            injected_crashes,
            crash_points: s.crash_points,
        }
    }
}

/// Greedy list-scheduling makespan of `times` on `slots` identical machines
/// (assign each job in order to the earliest-finishing slot).
fn makespan<I: Iterator<Item = f64>>(times: I, slots: usize) -> f64 {
    let mut heap: BinaryHeap<Reverse<u64>> = (0..slots).map(|_| Reverse(0u64)).collect();
    // f64 times are packed as integer nanoseconds ×1000 for the heap (total
    // times here are ≥ 0 and far below u64 range).
    let mut max_finish = 0u64;
    for t in times {
        let Reverse(earliest) = heap.pop().expect("slots >= 1");
        let finish = earliest + (t * 1000.0).round() as u64;
        max_finish = max_finish.max(finish);
        heap.push(Reverse(finish));
    }
    max_finish as f64 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::v100())
    }

    #[test]
    fn makespan_perfectly_divides_equal_jobs() {
        let times = vec![10.0; 8];
        assert!((makespan(times.into_iter(), 4) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn makespan_bounded_by_longest_job() {
        let times = vec![100.0, 1.0, 1.0, 1.0];
        assert!((makespan(times.into_iter(), 4) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn launch_advances_clock_and_counts() {
        let g = gpu();
        let before = g.now();
        let rep = g
            .launch("noop", 320, 1024, &|_b: usize, ctx: &mut BlockCtx| {
                ctx.step(100);
            })
            .expect("launch ok");
        assert!(g.now() > before);
        assert_eq!(rep.grid, 320);
        assert_eq!(rep.concurrency, 160, "tb_max caps concurrency");
        // 320 equal blocks on 160 slots = 2 waves.
        let one_block = g.cost().block_step_ns + 100.0 * g.cost().block_item_ns;
        assert!((rep.compute.as_ns() - 2.0 * one_block).abs() < 1.0);
        assert_eq!(g.stats().kernels_host, 1);
    }

    #[test]
    fn device_launch_is_cheaper() {
        let g = gpu();
        let h = g
            .launch("h", 1, 32, &|_b: usize, ctx: &mut BlockCtx| ctx.step(1))
            .expect("ok");
        let d = g
            .launch_device("d", 1, 32, &|_b: usize, ctx: &mut BlockCtx| ctx.step(1))
            .expect("ok");
        assert!(d.time < h.time);
        let s = g.stats();
        assert_eq!((s.kernels_host, s.kernels_device), (1, 1));
    }

    #[test]
    fn empty_launch_still_costs_overhead() {
        let g = gpu();
        let rep = g
            .launch("empty", 0, 32, &|_b: usize, _ctx: &mut BlockCtx| {})
            .expect("ok");
        assert!((rep.time.as_ns() - g.cost().host_launch_ns).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_bound_kicks_in() {
        let g = gpu();
        // One block moving 1 GB: bandwidth time ~1.1 ms dwarfs compute.
        let rep = g
            .launch("bw", 1, 1024, &|_b: usize, ctx: &mut BlockCtx| {
                ctx.mem(1 << 30);
                ctx.step(1);
            })
            .expect("ok");
        assert!(rep.bandwidth > rep.compute);
        assert!(rep.time >= rep.bandwidth);
    }

    #[test]
    fn rejects_oversized_blocks() {
        let g = gpu();
        let err = g.launch("bad", 1, 2048, &|_b: usize, _ctx: &mut BlockCtx| {});
        assert!(matches!(err, Err(SimError::BadLaunch(_))));
    }

    #[test]
    fn um_faults_serialize_into_kernel_time() {
        let cfg = GpuConfig::v100().with_memory(1 << 20);
        let cost = crate::CostModel {
            um_page_bytes: 64 * 1024,
            ..Default::default()
        };
        let g = Gpu::with_cost(cfg, cost);
        let a = g.um.alloc(512 * 1024);
        let page = g.um.page_bytes();
        let rep = g
            .launch_with(
                "um",
                4,
                1024,
                LaunchKind::Host,
                Exec::Seq,
                &|b: usize, ctx: &mut BlockCtx| {
                    ctx.um_read(&a, b as u64 * page, page);
                },
            )
            .expect("ok");
        assert!(rep.fault_groups > 0);
        assert!(rep.fault.as_ns() > 0.0);
        assert_eq!(g.stats().fault_groups, rep.fault_groups);
        g.um.free(a);
    }

    #[test]
    fn transfers_accumulate() {
        let g = gpu();
        g.h2d(1 << 20);
        g.d2h(1 << 10);
        let s = g.stats();
        assert_eq!(s.h2d_bytes, 1 << 20);
        assert_eq!(s.d2h_bytes, 1 << 10);
        assert!(s.xfer_time.as_ns() > 2.0 * g.cost().pcie_latency_ns - 1.0);
    }

    mod props {
        use super::super::makespan;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Greedy list scheduling respects the classic bounds:
            /// max(longest job, total/slots) <= makespan <= total/slots + longest.
            #[test]
            fn prop_makespan_bounds(
                times in proptest::collection::vec(0.0f64..10_000.0, 1..64),
                slots in 1usize..32,
            ) {
                let total: f64 = times.iter().sum();
                let longest = times.iter().copied().fold(0.0, f64::max);
                let m = makespan(times.iter().copied(), slots);
                let lower = longest.max(total / slots as f64);
                // Quantisation in the heap packs times at 1/1000 ns.
                prop_assert!(m + 0.01 * times.len() as f64 >= lower - 1e-6);
                prop_assert!(m <= total / slots as f64 + longest + 0.01 * times.len() as f64);
            }

            /// One slot serializes exactly.
            #[test]
            fn prop_single_slot_is_sum(
                times in proptest::collection::vec(0.0f64..1_000.0, 1..32),
            ) {
                let total: f64 = times.iter().sum();
                let m = makespan(times.iter().copied(), 1);
                prop_assert!((m - total).abs() <= 0.001 * times.len() as f64 + 1e-6);
            }
        }
    }

    #[test]
    fn injected_bad_launch_fires_on_exact_ordinal() {
        let g = Gpu::with_fault_plan(
            GpuConfig::v100(),
            CostModel::default(),
            FaultPlan::new().bad_launch("victim", 2),
        );
        let k = |_b: usize, ctx: &mut BlockCtx| ctx.step(1);
        assert!(g.launch("victim", 1, 32, &k).is_ok());
        let t_before = g.now();
        let err = g.launch("victim", 1, 32, &k);
        assert!(matches!(err, Err(SimError::BadLaunch(_))));
        assert_eq!(g.now(), t_before, "a rejected launch costs no time");
        assert!(g.launch("victim", 1, 32, &k).is_ok(), "transient");
        assert!(g.launch("bystander", 1, 32, &k).is_ok());
        let s = g.stats();
        assert_eq!(s.injected_launch_faults, 1);
        assert_eq!(s.kernels_host, 3, "the rejected launch is not counted");
    }

    #[test]
    fn injected_counters_flow_into_stats_and_since() {
        let g = Gpu::with_fault_plan(
            GpuConfig::v100(),
            CostModel::default(),
            FaultPlan::new().oom_on_alloc(1).squeeze_at(2, 90),
        );
        assert!(g.mem.alloc(16).is_err());
        let mid = g.stats();
        assert_eq!((mid.injected_oom, mid.injected_squeezes), (1, 0));
        let _ = g.mem.alloc(16).expect("squeeze does not fail the alloc");
        let s = g.stats();
        assert_eq!((s.injected_oom, s.injected_squeezes), (1, 1));
        assert_eq!(s.injected_faults(), 2);
        let d = s.since(&mid);
        assert_eq!((d.injected_oom, d.injected_squeezes), (0, 1));
    }

    #[test]
    fn crash_points_count_and_fire_on_ordinal() {
        // Without a plan: crash points are numbered but never fire.
        let clean = gpu();
        for _ in 0..3 {
            clean.crash_point().expect("no plan, no crash");
        }
        assert_eq!(clean.stats().crash_points, 3);
        assert_eq!(clean.stats().injected_crashes, 0);

        // With crash:at=2: the second crash point kills the run.
        let g = Gpu::with_fault_plan(
            GpuConfig::v100(),
            CostModel::default(),
            FaultPlan::new().crash_at(2),
        );
        assert!(g.crash_point().is_ok());
        assert_eq!(
            g.crash_point(),
            Err(SimError::Crashed { ordinal: 2 }),
            "second crash point fires"
        );
        assert!(g.crash_point().is_ok(), "exact ordinal only");
        let s = g.stats();
        assert_eq!((s.crash_points, s.injected_crashes), (3, 1));
    }

    #[test]
    fn empty_fault_plan_is_inert() {
        let g = Gpu::with_fault_plan(GpuConfig::v100(), CostModel::default(), FaultPlan::new());
        assert!(g.fault_injector().is_none());
        assert_eq!(g.stats().injected_faults(), 0);
    }

    #[test]
    fn seq_and_par_price_identically() {
        // Same kernel priced under both execution modes (no UM involved).
        let k = |b: usize, ctx: &mut BlockCtx| {
            ctx.step((b as u64 % 7) * 100);
        };
        let g1 = gpu();
        let g2 = gpu();
        let r1 = g1
            .launch_with("k", 64, 256, LaunchKind::Host, Exec::Par, &k)
            .expect("ok");
        let r2 = g2
            .launch_with("k", 64, 256, LaunchKind::Host, Exec::Seq, &k)
            .expect("ok");
        assert!((r1.time.as_ns() - r2.time.as_ns()).abs() < 1e-6);
    }
}
