//! Kernel abstraction and per-block cost accounting.
//!
//! A simulated kernel is ordinary Rust executed once per block id. While it
//! runs it reports what it does to a [`BlockCtx`] — parallel steps, serial
//! work, memory traffic, unified-memory touches — and the launch machinery
//! in [`crate::launch`] turns those counters into simulated time.

use crate::cost::CostModel;
use crate::unified::{TouchOutcome, UmAlloc, UmSpace};

/// A simulated GPU kernel: a function of the block id.
///
/// Implemented for closures, so call sites can write
/// `gpu.launch("name", grid, threads, Exec::Par, &|b, ctx| { ... })`.
pub trait Kernel: Sync {
    /// Executes block `block_id`, reporting costs to `ctx`.
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_>);
}

impl<F> Kernel for F
where
    F: Fn(usize, &mut BlockCtx<'_>) + Sync,
{
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_>) {
        self(block_id, ctx)
    }
}

/// Per-block cost accumulator handed to kernel bodies.
///
/// The pricing model (constants in [`CostModel`]):
/// * [`BlockCtx::step`] — one block-wide parallel step over `items` work
///   items: a fixed step latency (barrier + frontier bookkeeping) plus a
///   per-item cost scaled by how many threads the block has. Blocks
///   narrower than a full 1024-thread block process proportionally fewer
///   items per cycle (floored at one warp).
/// * [`BlockCtx::serial`] — single-thread work (no latency hiding): ~8× the
///   saturated per-item cost.
/// * [`BlockCtx::mem`] — device-memory traffic; it does not slow the block
///   directly but feeds the kernel-wide HBM bandwidth bound.
/// * [`BlockCtx::um_read`] / [`BlockCtx::um_write`] — unified-memory
///   touches; non-resident pages fault, and fault service time is charged
///   **globally** (serialized across blocks) by the launcher, matching the
///   fault-handler bottleneck the paper's Table 3 measures.
#[derive(Debug)]
pub struct BlockCtx<'a> {
    cost: &'a CostModel,
    um: Option<&'a UmSpace>,
    threads: usize,
    /// Accumulated in-block compute time (ns).
    pub(crate) compute_ns: f64,
    /// Device memory traffic (bytes).
    pub(crate) mem_bytes: u64,
    /// Unified-memory fault service time attributed to this block (ns).
    pub(crate) fault_ns: f64,
    /// Unified-memory fault groups raised by this block.
    pub(crate) fault_groups: u64,
    /// Parallel steps executed (diagnostics).
    pub(crate) steps: u64,
    /// Work items processed (diagnostics).
    pub(crate) items: u64,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(cost: &'a CostModel, um: Option<&'a UmSpace>, threads: usize) -> Self {
        BlockCtx {
            cost,
            um,
            threads: threads.max(1),
            compute_ns: 0.0,
            mem_bytes: 0,
            fault_ns: 0.0,
            fault_groups: 0,
            steps: 0,
            items: 0,
        }
    }

    /// Number of threads in this block.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Width factor: fraction of full-block throughput this block gets.
    #[inline]
    fn width_factor(&self) -> f64 {
        (self.threads as f64 / 1024.0).clamp(1.0 / 32.0, 1.0)
    }

    /// One block-wide parallel step over `items` work items.
    #[inline]
    pub fn step(&mut self, items: u64) {
        self.steps += 1;
        self.items += items;
        self.compute_ns +=
            self.cost.block_step_ns + items as f64 * self.cost.block_item_ns / self.width_factor();
    }

    /// `n` items of work with no step latency (tight inner loops that are
    /// part of an enclosing step, e.g. per-element FMAs of a column
    /// update).
    #[inline]
    pub fn work(&mut self, items: u64) {
        self.items += items;
        self.compute_ns += items as f64 * self.cost.block_item_ns / self.width_factor();
    }

    /// Bulk-charges `steps` parallel steps spanning `items` total work
    /// items — equivalent to the corresponding sequence of [`BlockCtx::step`]
    /// calls. Kernels that compute their traversal metrics in one shot
    /// (e.g. a whole fill2 row) report them through this.
    #[inline]
    pub fn bulk_steps(&mut self, steps: u64, items: u64) {
        self.steps += steps;
        self.items += items;
        self.compute_ns += steps as f64 * self.cost.block_step_ns
            + items as f64 * self.cost.block_item_ns / self.width_factor();
    }

    /// Bulk-charges `steps` parallel steps spanning `items` of *structured
    /// numeric* work (coalesced multiply–add streams), priced at the flop
    /// rate rather than the irregular-traversal rate. The numeric
    /// factorization kernels report through this.
    #[inline]
    pub fn bulk_flops(&mut self, steps: u64, items: u64) {
        self.steps += steps;
        self.items += items;
        self.compute_ns += steps as f64 * self.cost.block_step_ns
            + items as f64 * self.cost.flop_item_ns / self.width_factor();
    }

    /// Bulk-charges `steps` parallel steps spanning `items` of *tiled
    /// dense block-update* work (BLAS-3 multiply–add tiles), priced at the
    /// pipelined GEMM rate — cheaper still than the streamed
    /// [`BlockCtx::bulk_flops`] rate. The blocked numeric engine reports
    /// supernode-member columns through this.
    #[inline]
    pub fn bulk_gemm(&mut self, steps: u64, items: u64) {
        self.steps += steps;
        self.items += items;
        self.compute_ns += steps as f64 * self.cost.block_step_ns
            + items as f64 * self.cost.gemm_flop_ns / self.width_factor();
    }

    /// `ops` of strictly serial (single-thread) work.
    #[inline]
    pub fn serial(&mut self, ops: u64) {
        self.compute_ns += ops as f64 * self.cost.block_item_ns * 8.0;
    }

    /// Records `bytes` of device-memory traffic (feeds the kernel-wide
    /// bandwidth bound).
    #[inline]
    pub fn mem(&mut self, bytes: u64) {
        self.mem_bytes += bytes;
    }

    /// Touches `len` bytes of a unified-memory allocation for reading.
    /// Panics if the kernel was launched without a UM space.
    pub fn um_read(&mut self, alloc: &UmAlloc, offset: u64, len: u64) {
        self.um_touch(alloc, offset, len);
        self.mem(len);
    }

    /// Touches `len` bytes of a unified-memory allocation for writing.
    pub fn um_write(&mut self, alloc: &UmAlloc, offset: u64, len: u64) {
        self.um_touch(alloc, offset, len);
        self.mem(len);
    }

    fn um_touch(&mut self, alloc: &UmAlloc, offset: u64, len: u64) {
        let um = self
            .um
            .expect("kernel touched unified memory but was launched without a UM space");
        let TouchOutcome {
            faulted_pages,
            fault_groups,
            migrated_bytes,
        } = um.touch(alloc, offset, len);
        if faulted_pages > 0 {
            self.fault_groups += fault_groups;
            self.fault_ns += fault_groups as f64 * self.cost.um_fault_group_ns
                + migrated_bytes as f64 * self.cost.pcie_ns_per_byte;
        }
    }

    /// Compute time accumulated so far (ns) — exposed for tests.
    pub fn compute_ns(&self) -> f64 {
        self.compute_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_charges_latency_plus_items() {
        let cost = CostModel::default();
        let mut ctx = BlockCtx::new(&cost, None, 1024);
        ctx.step(1000);
        let want = cost.block_step_ns + 1000.0 * cost.block_item_ns;
        assert!((ctx.compute_ns - want).abs() < 1e-9);
        assert_eq!((ctx.steps, ctx.items), (1, 1000));
    }

    #[test]
    fn narrow_blocks_are_slower_per_item() {
        let cost = CostModel::default();
        let mut wide = BlockCtx::new(&cost, None, 1024);
        let mut warp = BlockCtx::new(&cost, None, 32);
        wide.work(1024);
        warp.work(1024);
        assert!((warp.compute_ns / wide.compute_ns - 32.0).abs() < 1e-6);
    }

    #[test]
    fn width_factor_floors_at_one_warp() {
        let cost = CostModel::default();
        let mut tiny = BlockCtx::new(&cost, None, 1);
        let mut warp = BlockCtx::new(&cost, None, 32);
        tiny.work(100);
        warp.work(100);
        assert!((tiny.compute_ns - warp.compute_ns).abs() < 1e-9);
    }

    #[test]
    fn serial_is_much_slower_than_parallel() {
        let cost = CostModel::default();
        let mut a = BlockCtx::new(&cost, None, 1024);
        let mut b = BlockCtx::new(&cost, None, 1024);
        a.work(1000);
        b.serial(1000);
        assert!(b.compute_ns > 5.0 * a.compute_ns);
    }

    #[test]
    fn gemm_rate_undercuts_flop_rate() {
        let cost = CostModel::default();
        let mut flops = BlockCtx::new(&cost, None, 1024);
        let mut gemm = BlockCtx::new(&cost, None, 1024);
        flops.bulk_flops(3, 10_000);
        gemm.bulk_gemm(3, 10_000);
        assert!(gemm.compute_ns < flops.compute_ns);
        // Same step latency: the gap is purely the per-item rate.
        let gap = (flops.compute_ns - gemm.compute_ns)
            - 10_000.0 * (cost.flop_item_ns - cost.gemm_flop_ns);
        assert!(gap.abs() < 1e-9);
    }

    #[test]
    fn mem_only_counts_bytes() {
        let cost = CostModel::default();
        let mut ctx = BlockCtx::new(&cost, None, 1024);
        ctx.mem(4096);
        assert_eq!(ctx.mem_bytes, 4096);
        assert_eq!(ctx.compute_ns, 0.0);
    }
}
