//! Unified-memory page manager.
//!
//! Models CUDA unified (managed) memory as the paper's baselines use it:
//! allocations may **oversubscribe** the device; pages migrate to the
//! device on first touch (a GPU page fault), get evicted LRU when the
//! device fills, and can be moved in bulk ahead of time with
//! [`UmSpace::prefetch`] (`cudaMemPrefetchAsync`), which is exactly the
//! optimization distinguishing the paper's two UM baselines (Figure 6,
//! Table 3).
//!
//! Pages here are the UVM *fault-group migration blocks*: on Volta the
//! driver's tree prefetcher escalates per-fault migration up to 2 MiB, and
//! the paper's Table 3 fault-group counts divide out to exactly that
//! granularity (≈1.8 MiB of intermediate state per reported group). Each
//! non-resident page touched costs one fault-group service.
//!
//! Two kinds of allocation, priced differently:
//! * **host-backed** ([`UmSpace::alloc`]) — faults migrate real bytes over
//!   PCIe (the input matrix, host-initialised data),
//! * **device scratch** ([`UmSpace::alloc_scratch`]) — the traversal
//!   state the symbolic kernels create *on* the GPU: first-touch faults
//!   pay the handler/population service but move nothing. Once a scratch
//!   page is **evicted** it has real content on the host ("materialised"),
//!   and re-touching it pays full migration — the thrashing tax of
//!   oversubscription.

use crate::cost::CostModel;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// Handle to a unified-memory allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UmAlloc {
    id: u64,
    bytes: u64,
    scratch: bool,
}

impl UmAlloc {
    /// Allocation size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// True for device-scratch allocations.
    pub fn is_scratch(&self) -> bool {
        self.scratch
    }
}

/// Result of touching a byte range: what faulted and migrated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TouchOutcome {
    /// Pages that were not resident and faulted in.
    pub faulted_pages: u64,
    /// Fault groups those pages were serviced in.
    pub fault_groups: u64,
    /// Bytes migrated host → device for the faulting pages.
    pub migrated_bytes: u64,
}

/// Aggregate unified-memory statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UmStatsSnapshot {
    /// Total pages faulted in on demand.
    pub faulted_pages: u64,
    /// Total fault groups (the Table 3 count).
    pub fault_groups: u64,
    /// Pages evicted to make room.
    pub evicted_pages: u64,
    /// Pages moved by explicit prefetch.
    pub prefetched_pages: u64,
    /// Bytes migrated on demand (fault path).
    pub fault_migrated_bytes: u64,
}

#[derive(Debug, Default)]
struct UmState {
    next_id: u64,
    allocs: HashMap<u64, u64>,
    /// Resident pages: (alloc id, page index) → LRU stamp.
    resident: HashMap<(u64, u64), u64>,
    /// Scratch pages that were evicted with live content: re-touching
    /// them migrates real bytes.
    materialized: HashSet<(u64, u64)>,
    tick: u64,
    stats: UmStatsSnapshot,
}

/// The unified-memory space of one simulated GPU.
#[derive(Debug)]
pub struct UmSpace {
    page_bytes: u64,
    capacity_pages: u64,
    group_pages: u64,
    state: Mutex<UmState>,
}

impl UmSpace {
    /// Creates a UM space backed by `device_bytes` of device memory.
    pub fn new(cost: &CostModel, device_bytes: u64) -> Self {
        let page_bytes = cost.um_page_bytes.max(1);
        UmSpace {
            page_bytes,
            capacity_pages: (device_bytes / page_bytes).max(1),
            group_pages: cost.um_fault_group_pages.max(1),
            state: Mutex::new(UmState::default()),
        }
    }

    /// Page (fault-group block) size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Device residency capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Allocates host-backed managed memory. Oversubscription is allowed —
    /// that is the feature's purpose.
    pub fn alloc(&self, bytes: u64) -> UmAlloc {
        self.alloc_inner(bytes, false)
    }

    /// Allocates device-created scratch (first touch populates on the
    /// GPU; no PCIe migration until a page has been evicted).
    pub fn alloc_scratch(&self, bytes: u64) -> UmAlloc {
        self.alloc_inner(bytes, true)
    }

    fn alloc_inner(&self, bytes: u64, scratch: bool) -> UmAlloc {
        let mut s = self.state.lock();
        let id = s.next_id;
        s.next_id += 1;
        s.allocs.insert(id, bytes);
        UmAlloc { id, bytes, scratch }
    }

    /// Frees a managed allocation and drops its resident pages and
    /// materialisation records.
    pub fn free(&self, alloc: UmAlloc) {
        let mut s = self.state.lock();
        s.allocs.remove(&alloc.id);
        s.resident.retain(|&(aid, _), _| aid != alloc.id);
        s.materialized.retain(|&(aid, _)| aid != alloc.id);
    }

    /// Touches `[offset, offset+len)` of `alloc` from device code. Returns
    /// what faulted; the caller (a [`crate::BlockCtx`]) prices it.
    pub fn touch(&self, alloc: &UmAlloc, offset: u64, len: u64) -> TouchOutcome {
        if len == 0 {
            return TouchOutcome::default();
        }
        debug_assert!(
            offset + len <= alloc.bytes,
            "UM touch beyond allocation: {}+{} > {}",
            offset,
            len,
            alloc.bytes
        );
        let first = offset / self.page_bytes;
        let last = (offset + len - 1) / self.page_bytes;
        let mut s = self.state.lock();
        let mut out = TouchOutcome::default();
        for page in first..=last {
            s.tick += 1;
            let tick = s.tick;
            let key = (alloc.id, page);
            if let std::collections::hash_map::Entry::Occupied(mut e) = s.resident.entry(key) {
                e.insert(tick); // refresh LRU
                continue;
            }
            self.make_room(&mut s);
            s.resident.insert(key, tick);
            s.stats.faulted_pages += 1;
            out.faulted_pages += 1;
            // Migration only when the page has host-side content.
            if !alloc.scratch || s.materialized.contains(&key) {
                s.stats.fault_migrated_bytes += self.page_bytes;
                out.migrated_bytes += self.page_bytes;
            }
        }
        out.fault_groups = out.faulted_pages.div_ceil(self.group_pages);
        s.stats.fault_groups += out.fault_groups;
        out
    }

    /// Prefetches `[offset, offset+len)` to the device in bulk (the
    /// `cudaMemPrefetchAsync` analog). Returns the bytes the caller must
    /// charge at PCIe rate: host-backed and materialised pages move real
    /// data; untouched scratch pages are populated for free.
    pub fn prefetch(&self, alloc: &UmAlloc, offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        debug_assert!(offset + len <= alloc.bytes, "UM prefetch beyond allocation");
        let first = offset / self.page_bytes;
        let last = (offset + len - 1) / self.page_bytes;
        let mut s = self.state.lock();
        let mut moved = 0u64;
        let mut chargeable = 0u64;
        for page in first..=last {
            s.tick += 1;
            let tick = s.tick;
            let key = (alloc.id, page);
            if let std::collections::hash_map::Entry::Occupied(mut e) = s.resident.entry(key) {
                e.insert(tick);
                continue;
            }
            self.make_room(&mut s);
            s.resident.insert(key, tick);
            moved += 1;
            if !alloc.scratch || s.materialized.contains(&key) {
                chargeable += self.page_bytes;
            }
        }
        s.stats.prefetched_pages += moved;
        chargeable
    }

    /// Evicts the least-recently-used page if the device is full. Evicted
    /// pages become materialised (their content now lives on the host).
    fn make_room(&self, s: &mut UmState) {
        while s.resident.len() as u64 >= self.capacity_pages {
            let victim = s
                .resident
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(&k, _)| k)
                .expect("resident non-empty when at capacity");
            s.resident.remove(&victim);
            s.materialized.insert(victim);
            s.stats.evicted_pages += 1;
        }
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.state.lock().resident.len() as u64
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> UmStatsSnapshot {
        self.state.lock().stats
    }

    /// Clears residency and statistics (between experiments).
    pub fn reset(&self) {
        let mut s = self.state.lock();
        s.resident.clear();
        s.materialized.clear();
        s.stats = UmStatsSnapshot::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(pages: u64) -> UmSpace {
        let cost = CostModel {
            um_page_bytes: 1024,
            um_fault_group_pages: 4,
            ..Default::default()
        };
        UmSpace::new(&cost, pages * 1024)
    }

    #[test]
    fn first_touch_faults_second_hits() {
        let um = space(16);
        let a = um.alloc(8 * 1024);
        let t1 = um.touch(&a, 0, 1024);
        assert_eq!(t1.faulted_pages, 1);
        assert_eq!(t1.fault_groups, 1);
        assert_eq!(t1.migrated_bytes, 1024, "host-backed pages migrate");
        let t2 = um.touch(&a, 0, 1024);
        assert_eq!(t2.faulted_pages, 0);
    }

    #[test]
    fn scratch_first_touch_moves_nothing() {
        let um = space(16);
        let a = um.alloc_scratch(8 * 1024);
        let t = um.touch(&a, 0, 4 * 1024);
        assert_eq!(t.faulted_pages, 4);
        assert!(t.fault_groups >= 1);
        assert_eq!(t.migrated_bytes, 0, "scratch is populated on device");
    }

    #[test]
    fn evicted_scratch_migrates_on_retouch() {
        let um = space(2);
        let a = um.alloc_scratch(4 * 1024);
        um.touch(&a, 0, 1024); // page 0
        um.touch(&a, 1024, 1024); // page 1 (device full)
        um.touch(&a, 2048, 2048); // pages 2,3 -> evict 0,1 (materialised)
        let t = um.touch(&a, 0, 1024); // re-touch page 0
        assert_eq!(t.faulted_pages, 1);
        assert_eq!(
            t.migrated_bytes, 1024,
            "materialised scratch pays migration"
        );
    }

    #[test]
    fn spanning_touch_groups_pages() {
        let um = space(16);
        let a = um.alloc(16 * 1024);
        // 8 pages, group size 4 -> 2 groups.
        let t = um.touch(&a, 0, 8 * 1024);
        assert_eq!(t.faulted_pages, 8);
        assert_eq!(t.fault_groups, 2);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let um = space(2);
        let a = um.alloc(4 * 1024);
        um.touch(&a, 0, 1024); // page 0
        um.touch(&a, 1024, 1024); // page 1 (fills device)
        um.touch(&a, 0, 1024); // refresh page 0
        um.touch(&a, 2048, 1024); // page 2 -> evicts page 1 (LRU)
        assert_eq!(um.touch(&a, 0, 1024).faulted_pages, 0);
        assert_eq!(um.touch(&a, 1024, 1024).faulted_pages, 1);
        assert!(um.stats().evicted_pages >= 2);
    }

    #[test]
    fn prefetch_prevents_faults_and_prices_correctly() {
        let um = space(16);
        let host = um.alloc(4 * 1024);
        let scratch = um.alloc_scratch(4 * 1024);
        assert_eq!(
            um.prefetch(&host, 0, 4 * 1024),
            4 * 1024,
            "host pages cost PCIe"
        );
        assert_eq!(
            um.prefetch(&scratch, 0, 4 * 1024),
            0,
            "fresh scratch is free"
        );
        assert_eq!(um.touch(&host, 0, 4 * 1024).faulted_pages, 0);
        assert_eq!(um.touch(&scratch, 0, 4 * 1024).faulted_pages, 0);
        assert_eq!(um.stats().fault_groups, 0);
    }

    #[test]
    fn oversubscription_thrashes_but_works() {
        let um = space(4);
        let a = um.alloc(64 * 1024); // 64 pages on a 4-page device
        let t = um.touch(&a, 0, 64 * 1024);
        assert_eq!(t.faulted_pages, 64);
        assert!(um.stats().evicted_pages >= 60);
        assert_eq!(um.resident_pages(), 4);
    }

    #[test]
    fn free_drops_residency_and_materialisation() {
        let um = space(2);
        let a = um.alloc_scratch(4 * 1024);
        um.touch(&a, 0, 4 * 1024); // forces evictions -> materialised pages
        um.free(a);
        let b = um.alloc_scratch(4 * 1024);
        // Fresh allocation must not inherit materialisation.
        let t = um.touch(&b, 0, 1024);
        assert_eq!(t.migrated_bytes, 0);
    }

    #[test]
    fn reset_clears_stats() {
        let um = space(4);
        let a = um.alloc(1024);
        um.touch(&a, 0, 1024);
        assert!(um.stats().faulted_pages > 0);
        um.reset();
        assert_eq!(um.stats(), UmStatsSnapshot::default());
    }
}
