//! A fleet of independent simulated devices plus the interconnect that
//! joins them.
//!
//! Every device of a [`DeviceFleet`] owns its *own* memory arena, clock,
//! statistics and (optionally) fault injector — exactly the isolation a
//! real multi-GPU node provides. What the fleet adds on top is the part a
//! single [`Gpu`] cannot model:
//!
//! * **cross-device exchange** priced through the NVLink terms of
//!   [`CostModel`](crate::CostModel) ([`DeviceFleet::exchange`],
//!   [`DeviceFleet::all_gather`]),
//! * **barriers** that advance every live clock to the fleet-wide maximum
//!   (a sharded phase cannot finish before its slowest shard),
//! * **liveness tracking** ([`DeviceFleet::mark_dead`]) so chaos suites
//!   can kill one device and callers can reshard onto the survivors.
//!
//! Sharded drivers (`gplu-symbolic`'s fleet fill counting, `gplu-numeric`'s
//! level-partitioned engines) compute values in exactly the same
//! deterministic host-side code as their single-device counterparts; the
//! fleet only changes *pricing* — which is what keeps sharded results
//! bit-identical at every device count.

use crate::clock::SimTime;
use crate::config::GpuConfig;
use crate::cost::CostModel;
use crate::fault::FaultPlan;
use crate::launch::Gpu;
use crate::stats::GpuStatsSnapshot;
use parking_lot::Mutex;

/// Interconnect accounting accumulated across the fleet's lifetime.
#[derive(Debug, Default, Clone)]
pub struct InterconnectStats {
    /// Number of priced cross-device exchanges (point-to-point legs; an
    /// all-gather over `k` devices counts `k` legs).
    pub exchanges: u64,
    /// Total bytes moved across the interconnect.
    pub bytes: u64,
    /// Total simulated time charged to exchanges (summed over devices —
    /// legs on different devices overlap in wall-clock).
    pub time: SimTime,
}

/// One device's slice of a fleet statistics snapshot.
#[derive(Debug, Clone)]
pub struct FleetDeviceStats {
    /// Device ordinal within the fleet.
    pub device: usize,
    /// Whether the device has been marked dead.
    pub dead: bool,
    /// The device's own counters.
    pub stats: GpuStatsSnapshot,
    /// Arena bytes currently allocated.
    pub mem_used: u64,
    /// Arena high-water mark.
    pub mem_peak: u64,
    /// Arena capacity.
    pub mem_capacity: u64,
}

/// A consistent reading of the whole fleet.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Per-device snapshots, indexed by device ordinal.
    pub devices: Vec<FleetDeviceStats>,
    /// Interconnect accounting.
    pub interconnect: InterconnectStats,
}

impl FleetStats {
    /// The fleet-wide makespan: the latest clock among live devices (all
    /// devices when every one is dead).
    pub fn makespan(&self) -> SimTime {
        let fold_max = |iter: &mut dyn Iterator<Item = SimTime>| {
            iter.fold(None, |acc: Option<SimTime>, t| {
                Some(acc.map_or(t, |a| a.max(t)))
            })
        };
        let live = fold_max(&mut self.devices.iter().filter(|d| !d.dead).map(|d| d.stats.now));
        live.or_else(|| fold_max(&mut self.devices.iter().map(|d| d.stats.now)))
            .unwrap_or(SimTime::ZERO)
    }
}

/// `N` independent simulated devices joined by an NVLink-priced
/// interconnect. See the module docs.
#[derive(Debug)]
pub struct DeviceFleet {
    devices: Vec<Gpu>,
    dead: Mutex<Vec<bool>>,
    interconnect: Mutex<InterconnectStats>,
}

impl DeviceFleet {
    /// A fleet of `n` identical devices with the default cost model.
    pub fn new(n: usize, cfg: GpuConfig) -> Self {
        DeviceFleet::with_cost(n, cfg, CostModel::default())
    }

    /// A fleet of `n` identical devices with an explicit cost model.
    pub fn with_cost(n: usize, cfg: GpuConfig, cost: CostModel) -> Self {
        let n = n.max(1);
        let devices = (0..n)
            .map(|_| Gpu::with_cost(cfg.clone(), cost.clone()))
            .collect();
        DeviceFleet::from_devices(devices)
    }

    /// A fleet with one deterministic [`FaultPlan`] per device (see
    /// [`FaultPlan::parse_fleet`] for the `dev=K:` selector grammar).
    /// `plans` shorter than `n` leaves the remaining devices fault-free.
    pub fn with_fault_plans(
        n: usize,
        cfg: GpuConfig,
        cost: CostModel,
        plans: &[FaultPlan],
    ) -> Self {
        let n = n.max(1);
        let devices = (0..n)
            .map(|d| {
                let plan = plans.get(d).cloned().unwrap_or_default();
                Gpu::with_fault_plan(cfg.clone(), cost.clone(), plan)
            })
            .collect();
        DeviceFleet::from_devices(devices)
    }

    /// Wraps pre-built devices (heterogeneous configs allowed).
    pub fn from_devices(devices: Vec<Gpu>) -> Self {
        assert!(!devices.is_empty(), "a fleet needs at least one device");
        let n = devices.len();
        DeviceFleet {
            devices,
            dead: Mutex::new(vec![false; n]),
            interconnect: Mutex::new(InterconnectStats::default()),
        }
    }

    /// Number of devices (dead ones included).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True only for the degenerate case `from_devices` forbids.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device at ordinal `d`.
    pub fn device(&self, d: usize) -> &Gpu {
        &self.devices[d]
    }

    /// All devices, indexed by ordinal.
    pub fn devices(&self) -> &[Gpu] {
        &self.devices
    }

    /// Marks device `d` dead: it keeps its clock and stats (the work it
    /// completed before dying stays priced) but drops out of barriers,
    /// exchanges and [`DeviceFleet::alive`]. Returns `false` if it was
    /// already dead.
    pub fn mark_dead(&self, d: usize) -> bool {
        let mut dead = self.dead.lock();
        let was = dead[d];
        dead[d] = true;
        !was
    }

    /// Whether device `d` has been marked dead.
    pub fn is_dead(&self, d: usize) -> bool {
        self.dead.lock()[d]
    }

    /// Ordinals of live devices, ascending.
    pub fn alive(&self) -> Vec<usize> {
        let dead = self.dead.lock();
        (0..self.devices.len()).filter(|&d| !dead[d]).collect()
    }

    /// Number of live devices.
    pub fn n_alive(&self) -> usize {
        self.dead.lock().iter().filter(|&&d| !d).count()
    }

    /// True once any device has been marked dead — the fleet analogue of
    /// the cache's disk-down degradation signal, feeding admission
    /// decisions upstream.
    pub fn degraded(&self) -> bool {
        self.dead.lock().iter().any(|&d| d)
    }

    /// Prices one point-to-point exchange of `bytes` from device `from`
    /// to device `to` over the peer link. Both endpoints' clocks advance
    /// by the transfer time (the DMA occupies source and destination
    /// engines alike). A self-exchange is free — the data never leaves
    /// the arena.
    pub fn exchange(&self, from: usize, to: usize, bytes: u64) -> SimTime {
        if from == to {
            return SimTime::ZERO;
        }
        let t = SimTime::from_ns(self.devices[from].cost().nvlink_transfer_ns(bytes));
        self.devices[from].advance(t);
        self.devices[to].advance(t);
        let mut ic = self.interconnect.lock();
        ic.exchanges += 1;
        ic.bytes += bytes;
        ic.time = ic.time + t + t;
        t
    }

    /// Prices an **all-gather at a level barrier**: every live device `d`
    /// contributed `bytes[d]` and must receive everyone else's
    /// contribution, so it pays one exchange of `total − bytes[d]`; the
    /// fleet then barriers. With one live device (or one total
    /// contributor) nothing moves. Returns the post-barrier makespan.
    pub fn all_gather(&self, bytes: &[u64]) -> SimTime {
        let alive = self.alive();
        let total: u64 = alive
            .iter()
            .map(|&d| bytes.get(d).copied().unwrap_or(0))
            .sum();
        if alive.len() > 1 && total > 0 {
            let mut ic = self.interconnect.lock();
            for &d in &alive {
                let recv = total - bytes.get(d).copied().unwrap_or(0);
                let t = SimTime::from_ns(self.devices[d].cost().nvlink_transfer_ns(recv));
                self.devices[d].advance(t);
                ic.exchanges += 1;
                ic.bytes += recv;
                ic.time += t;
            }
        }
        self.barrier()
    }

    /// Advances every live device's clock to the fleet-wide maximum (a
    /// synchronization point: no shard proceeds before the slowest).
    /// Returns the barrier time.
    pub fn barrier(&self) -> SimTime {
        let alive = self.alive();
        let max = alive
            .iter()
            .map(|&d| self.devices[d].now())
            .fold(SimTime::ZERO, SimTime::max);
        for &d in &alive {
            let now = self.devices[d].now();
            if now < max {
                self.devices[d].advance(SimTime::from_ns(max.as_ns() - now.as_ns()));
            }
        }
        max
    }

    /// The latest clock among live devices.
    pub fn makespan(&self) -> SimTime {
        self.stats().makespan()
    }

    /// A consistent snapshot of every device plus the interconnect.
    pub fn stats(&self) -> FleetStats {
        let dead = self.dead.lock().clone();
        let devices = self
            .devices
            .iter()
            .enumerate()
            .map(|(d, gpu)| FleetDeviceStats {
                device: d,
                dead: dead[d],
                stats: gpu.stats(),
                mem_used: gpu.mem.used_bytes(),
                mem_peak: gpu.mem.peak_bytes(),
                mem_capacity: gpu.mem.capacity(),
            })
            .collect();
        FleetStats {
            devices,
            interconnect: self.interconnect.lock().clone(),
        }
    }
}

/// Splits `0..n_items` into `parts` contiguous ranges whose lengths differ
/// by at most one (the first `n_items % parts` ranges get the extra item).
/// Trailing ranges are empty when `parts > n_items`.
pub fn split_even(n_items: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let base = n_items / parts;
    let extra = n_items % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> DeviceFleet {
        DeviceFleet::new(n, GpuConfig::v100())
    }

    #[test]
    fn devices_have_independent_clocks_and_arenas() {
        let f = fleet(3);
        f.device(0).advance(SimTime::from_ns(1000.0));
        let a = f.device(1).mem.alloc(4096).expect("alloc ok");
        assert_eq!(f.device(0).now(), SimTime::from_ns(1000.0));
        assert_eq!(f.device(1).now(), SimTime::ZERO);
        assert_eq!(f.device(1).mem.used_bytes(), 4096);
        assert_eq!(f.device(0).mem.used_bytes(), 0);
        f.device(1).mem.free(a).expect("free ok");
    }

    #[test]
    fn exchange_charges_both_endpoints() {
        let f = fleet(2);
        let t = f.exchange(0, 1, 1 << 20);
        let expect = f.device(0).cost().nvlink_transfer_ns(1 << 20);
        assert!((t.as_ns() - expect).abs() < 1e-9);
        assert_eq!(f.device(0).now(), t);
        assert_eq!(f.device(1).now(), t);
        let ic = f.stats().interconnect;
        assert_eq!(ic.exchanges, 1);
        assert_eq!(ic.bytes, 1 << 20);
    }

    #[test]
    fn self_exchange_is_free() {
        let f = fleet(2);
        assert_eq!(f.exchange(1, 1, 1 << 30), SimTime::ZERO);
        assert_eq!(f.stats().interconnect.exchanges, 0);
    }

    #[test]
    fn barrier_advances_laggards_to_max() {
        let f = fleet(3);
        f.device(2).advance(SimTime::from_ns(5000.0));
        let m = f.barrier();
        assert_eq!(m, SimTime::from_ns(5000.0));
        for d in 0..3 {
            assert_eq!(f.device(d).now(), m);
        }
    }

    #[test]
    fn all_gather_charges_receives_and_barriers() {
        let f = fleet(2);
        let m = f.all_gather(&[1000, 3000]);
        // Device 0 receives 3000 bytes, device 1 receives 1000; the
        // barrier pulls both to the slower (device 0) finish.
        let t0 = f.device(0).cost().nvlink_transfer_ns(3000);
        assert!((m.as_ns() - t0).abs() < 1e-9);
        assert_eq!(f.device(0).now(), f.device(1).now());
        let ic = f.stats().interconnect;
        assert_eq!(ic.exchanges, 2);
        assert_eq!(ic.bytes, 4000);
    }

    #[test]
    fn single_device_all_gather_moves_nothing() {
        let f = fleet(1);
        assert_eq!(f.all_gather(&[1 << 20]), SimTime::ZERO);
        assert_eq!(f.stats().interconnect.exchanges, 0);
    }

    #[test]
    fn dead_devices_drop_out_of_barriers_and_exchange() {
        let f = fleet(3);
        f.device(1).advance(SimTime::from_ns(9000.0));
        assert!(f.mark_dead(1));
        assert!(!f.mark_dead(1), "second kill is a no-op");
        assert!(f.degraded());
        assert_eq!(f.alive(), vec![0, 2]);
        assert_eq!(f.n_alive(), 2);
        // The dead device's clock no longer drags the barrier.
        let m = f.barrier();
        assert_eq!(m, SimTime::ZERO);
        // all_gather only prices the survivors.
        f.all_gather(&[100, 100, 100]);
        assert_eq!(f.stats().interconnect.exchanges, 2);
        // Makespan ignores the dead clock too.
        assert!(f.makespan() < SimTime::from_ns(9000.0));
    }

    #[test]
    fn fleet_stats_expose_arena_occupancy() {
        let f = fleet(2);
        let a = f.device(1).mem.alloc(1 << 16).expect("alloc ok");
        let s = f.stats();
        assert_eq!(s.devices.len(), 2);
        assert_eq!(s.devices[1].mem_used, 1 << 16);
        assert_eq!(s.devices[0].mem_used, 0);
        assert_eq!(s.devices[1].device, 1);
        f.device(1).mem.free(a).expect("free ok");
        assert_eq!(f.stats().devices[1].mem_peak, 1 << 16);
    }

    #[test]
    fn split_even_covers_and_balances() {
        let parts = split_even(10, 4);
        assert_eq!(parts, vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(split_even(2, 4), vec![0..1, 1..2, 2..2, 2..2]);
        assert_eq!(split_even(0, 3), vec![0..0, 0..0, 0..0]);
        // Every item lands in exactly one range.
        let mut seen = [false; 10];
        for r in split_even(10, 3) {
            for i in r {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn per_device_fault_plans_are_isolated() {
        let plans = FaultPlan::parse_fleet("dev=1:oom:alloc=1", 2).expect("parse ok");
        let f = DeviceFleet::with_fault_plans(2, GpuConfig::v100(), CostModel::default(), &plans);
        assert!(f.device(0).mem.alloc(16).is_ok(), "device 0 untouched");
        assert!(f.device(1).mem.alloc(16).is_err(), "device 1 injected");
    }
}
