//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span (or instant on the monotone clock) of simulated time, in
/// nanoseconds. `f64` keeps arithmetic simple; at nanosecond granularity it
/// stays exact far beyond any experiment length in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// From nanoseconds.
    #[inline]
    pub fn from_ns(ns: f64) -> SimTime {
        debug_assert!(
            ns >= 0.0 && ns.is_finite(),
            "negative or non-finite time: {ns}"
        );
        SimTime(ns)
    }

    /// From microseconds.
    #[inline]
    pub fn from_us(us: f64) -> SimTime {
        SimTime::from_ns(us * 1e3)
    }

    /// From milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> SimTime {
        SimTime::from_ns(ms * 1e6)
    }

    /// As nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0
    }

    /// As milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 / 1e6
    }

    /// As seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1e9
    }

    /// Elementwise maximum.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Ratio of two spans (`self / other`), for normalized-time figures.
    #[inline]
    pub fn ratio(self, other: SimTime) -> f64 {
        self.0 / other.0
    }

    /// Difference clamped at zero. Unlike `Sub`, makes no monotonicity
    /// claim — for differencing snapshot pairs whose order the caller does
    /// not control.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for SimTime {
    /// Pretty-prints with an auto-selected unit (`ns`, `µs`, `ms`, `s`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1e3 {
            write!(f, "{ns:.0}ns")
        } else if ns < 1e6 {
            write!(f, "{:.2}µs", ns / 1e3)
        } else if ns < 1e9 {
            write!(f, "{:.3}ms", ns / 1e6)
        } else {
            write!(f, "{:.4}s", ns / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_conversions() {
        let t = SimTime::from_us(2.0) + SimTime::from_ns(500.0);
        assert!((t.as_ns() - 2500.0).abs() < 1e-9);
        assert!((t.as_ms() - 0.0025).abs() < 1e-12);
        let d = SimTime::from_ms(3.0) - SimTime::from_ms(1.0);
        assert!((d.as_ms() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimTime::from_ns(12.0).to_string(), "12ns");
        assert_eq!(SimTime::from_us(3.5).to_string(), "3.50µs");
        assert_eq!(SimTime::from_ms(7.25).to_string(), "7.250ms");
        assert_eq!(SimTime::from_ns(2.5e9).to_string(), "2.5000s");
    }

    #[test]
    fn sum_and_ratio() {
        let total: SimTime = [SimTime::from_ns(1.0), SimTime::from_ns(2.0)]
            .into_iter()
            .sum();
        assert_eq!(total.as_ns(), 3.0);
        assert!((SimTime::from_us(2.0).ratio(SimTime::from_us(1.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_picks_larger() {
        assert_eq!(
            SimTime::from_ns(5.0).max(SimTime::from_ns(3.0)).as_ns(),
            5.0
        );
    }
}
