//! # gplu-sim
//!
//! A discrete-cost **GPU execution simulator**: the substitute substrate for
//! the NVIDIA Tesla V100 + CUDA 11.2 environment of *"End-to-End LU
//! Factorization of Large Matrices on GPUs"* (Xia et al., PPoPP 2023).
//!
//! ## Why a simulator
//!
//! Every decision in the paper is driven by a small set of device-level
//! quantities: device-memory capacity (out-of-core chunk sizing, the
//! dense-vs-CSC format switch), kernel-launch overhead (host launches vs
//! CUDA *dynamic parallelism*), PCIe transfer cost (explicit out-of-core
//! movement), unified-memory page-fault service time (the UM baselines of
//! Figures 5/6 and Table 3), and the concurrent thread-block limit
//! (`TB_max`, the parallelism ceiling of Table 4). This crate models
//! exactly those quantities and nothing speculative:
//!
//! * [`GpuConfig`] — the Table 1 V100 specification plus scaled profiles,
//! * [`DeviceMemory`] — a capacity-tracked allocator; allocations *fail*
//!   when the device is full, which is what forces out-of-core execution,
//! * [`Gpu::launch`] — kernels execute **functionally** (real Rust closures
//!   over block ids, optionally parallelised with rayon) while a
//!   [`BlockCtx`] counts the operations each block performs; simulated time
//!   is the wave-scheduled makespan of the per-block costs under the
//!   concurrency limit, plus launch overhead,
//! * [`Gpu::launch_device`] — the same with the (much smaller)
//!   device-side launch overhead of dynamic parallelism,
//! * [`UmSpace`] — a unified-memory page manager with residency tracking,
//!   LRU eviction, fault-group accounting and bulk prefetch,
//! * [`CostModel`] — the frozen constants, each documented with its
//!   provenance.
//!
//! Simulated time is kept on a monotone clock ([`SimTime`]); callers read
//! phase boundaries with [`Gpu::now`]. All functional results (the actual
//! factors) are real and are verified against CPU oracles in the
//! workspace's test suites — the simulator only *prices* the execution.

pub mod clock;
pub mod config;
pub mod cost;
pub mod error;
pub mod fault;
pub mod fleet;
pub mod kernel;
pub mod launch;
pub mod memory;
pub mod stats;
pub mod unified;

pub use clock::SimTime;
pub use config::GpuConfig;
pub use cost::CostModel;
pub use error::SimError;
pub use fault::{
    DiskFault, DiskOp, FaultInjector, FaultPlan, LaunchFault, OomFault, SqueezeFault,
    FAULT_PLAN_ENV,
};
pub use fleet::{split_even, DeviceFleet, FleetDeviceStats, FleetStats, InterconnectStats};
pub use kernel::{BlockCtx, Kernel};
pub use launch::{Exec, Gpu, KernelReport, LaunchKind};
pub use memory::{DeviceAlloc, DeviceMemory};
pub use stats::GpuStatsSnapshot;
pub use unified::{UmAlloc, UmSpace, UmStatsSnapshot};
