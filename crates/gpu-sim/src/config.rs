//! GPU configuration — the paper's Table 1, plus scaled profiles.

/// Static device specification. Defaults reproduce the paper's Table 1
/// (Tesla V100) plus the two quantities the paper uses implicitly: device
/// memory capacity and the maximal number of concurrently resident thread
/// blocks `TB_max` (the paper states "the maximal number of thread blocks
/// of our GPU is 160", i.e. two blocks per SM at full occupancy).
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Human-readable name for reports.
    pub name: String,
    /// Number of streaming multiprocessors (Table 1: 80).
    pub sm_count: usize,
    /// FP32 CUDA cores in total (Table 1: 5120).
    pub fp32_cores: usize,
    /// Maximum threads per block (Table 1: 1024).
    pub max_threads_per_block: usize,
    /// Warp size (32 on every NVIDIA architecture).
    pub warp_size: usize,
    /// Maximum concurrently resident thread blocks, `TB_max` in the paper's
    /// Section 3.4 (160 on their V100).
    pub tb_max: usize,
    /// Device memory capacity `L`, in bytes.
    pub device_memory: u64,
    /// Bytes per matrix value in capacity arithmetic. The paper uses
    /// `float` (4); values themselves are computed in `f64` (DESIGN.md §2).
    pub data_bytes: u64,
}

impl GpuConfig {
    /// The paper's Tesla V100 (Table 1) with 16 GiB of device memory.
    pub fn v100() -> GpuConfig {
        GpuConfig {
            name: "Tesla V100 (simulated)".into(),
            sm_count: 80,
            fp32_cores: 5120,
            max_threads_per_block: 1024,
            warp_size: 32,
            tb_max: 160,
            device_memory: 16 * (1 << 30),
            data_bytes: 4,
        }
    }

    /// Same device with a different memory capacity.
    pub fn with_memory(mut self, bytes: u64) -> GpuConfig {
        self.device_memory = bytes;
        self
    }

    /// Profile for the **symbolic out-of-core** experiments on matrices
    /// scaled down by `scale`: memory shrinks by `scale²` so the
    /// out-of-core iteration count `num_iter = n / (L / (c·4·n)) ∝ n²/L`
    /// is preserved (DESIGN.md §2/§6).
    pub fn v100_symbolic_scaled(scale: usize) -> GpuConfig {
        let base = GpuConfig::v100();
        let mem = (base.device_memory / (scale as u64).pow(2)).max(64 * 1024);
        base.with_memory(mem)
    }

    /// Per-source-row intermediate-state constant of the symbolic phase:
    /// the paper's `c = 6` words of traversal state per matrix row
    /// (Section 3.2: "each source row requires at most c × n storage …
    /// c turns out to be 6 for this problem").
    pub const SYMBOLIC_ROW_WORDS: u64 = 6;

    /// Profile for the **symbolic out-of-core** experiments on a concrete
    /// (scaled-down) matrix of `n` rows and `nnz` stored entries.
    ///
    /// Pure `scale²` memory shrinking preserves the out-of-core iteration
    /// count but collapses the per-iteration chunk to a handful of blocks,
    /// which would leave the simulated GPU artificially starved (the
    /// paper's chunks hold ~1000 rows, saturating `TB_max = 160`). This
    /// profile instead preserves what the experiments actually exercise:
    /// the intermediate state `c·4·n²` must *not* fit (forcing chunking
    /// and oversubscribing unified memory ~8×), while each chunk holds
    /// `clamp(n/8, 64, 512)` rows, saturating the device like the paper's
    /// chunks do. See DESIGN.md §6.
    pub fn v100_symbolic_profile(n: usize, nnz: usize) -> GpuConfig {
        let chunk_target = (n / 8).clamp(64, 512) as u64;
        let a_bytes = (n as u64 + 1 + nnz as u64) * 4;
        let state_bytes = Self::SYMBOLIC_ROW_WORDS * 4 * n as u64 * chunk_target;
        // Counts, prefix sums and chunk output need a little headroom.
        let slack = 8 * n as u64 + 64 * 1024;
        GpuConfig::v100().with_memory(a_bytes + state_bytes + slack)
    }

    /// The effective numeric-phase working budget on the paper's V100:
    /// Table 4's "max #blocks" column (124/119/109/102) equals
    /// `⌊8·10⁹ / (n·4)⌋` for all four matrices, so their free device
    /// memory during numeric factorization was 8 GB (decimal).
    pub const NUMERIC_BUDGET_BYTES: u64 = 8_000_000_000;

    /// Profile for the **numeric format** experiments (Table 4 / Figure 8)
    /// on matrices scaled down by `scale`: memory shrinks by `scale` so the
    /// dense-format parallel-column limit `M = L/(n·4)` is preserved.
    pub fn v100_numeric_scaled(scale: usize) -> GpuConfig {
        let base = GpuConfig::v100();
        base.with_memory((Self::NUMERIC_BUDGET_BYTES / scale as u64).max(64 * 1024))
    }

    /// The dense-format parallel-column limit of Section 3.4:
    /// `M = L / (n · sizeof(data type))`.
    pub fn max_parallel_columns(&self, n: usize) -> usize {
        (self.device_memory / (n as u64 * self.data_bytes)).max(1) as usize
    }

    /// The paper's CSC-switch criterion (Section 3.4): switch to the sparse
    /// format when `n > L / (TB_max · sizeof(data type))`, i.e. when the
    /// dense format cannot keep `TB_max` blocks busy.
    pub fn should_use_sparse_format(&self, n: usize) -> bool {
        (n as u64) > self.device_memory / (self.tb_max as u64 * self.data_bytes)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_table1() {
        let g = GpuConfig::v100();
        assert_eq!(g.sm_count, 80);
        assert_eq!(g.fp32_cores, 5120);
        assert_eq!(g.max_threads_per_block, 1024);
        assert_eq!(g.tb_max, 160);
    }

    #[test]
    fn table4_block_counts_reproduce_exactly() {
        // Paper Table 4: max #blocks 124/119/109/102 for the four huge
        // matrices — all reproduced by the 8 GB numeric budget.
        let g = GpuConfig::v100().with_memory(GpuConfig::NUMERIC_BUDGET_BYTES);
        assert_eq!(g.max_parallel_columns(16_002_413), 124); // hugetrace-00020
        assert_eq!(g.max_parallel_columns(16_777_216), 119); // delaunay_n24
        assert_eq!(g.max_parallel_columns(18_318_143), 109); // hugebubbles-00000
        assert_eq!(g.max_parallel_columns(19_458_087), 102); // hugebubbles-00010
    }

    #[test]
    fn sparse_switch_criterion() {
        let g = GpuConfig::v100().with_memory(GpuConfig::NUMERIC_BUDGET_BYTES);
        // Table 4 matrices all exceed the threshold…
        assert!(g.should_use_sparse_format(16_002_413));
        // …Table 2 matrices do not.
        assert!(!g.should_use_sparse_format(715_176));
    }

    #[test]
    fn scaled_profiles_preserve_ratios() {
        let sym = GpuConfig::v100_symbolic_scaled(128);
        assert_eq!(sym.device_memory, 16 * (1 << 30) / 128u64.pow(2));

        let scale = 1024;

        // Numeric profile: M for a scaled Table 4 matrix matches M for the
        // full-size matrix under the 8 GB budget.
        let num = GpuConfig::v100_numeric_scaled(scale);
        let full = GpuConfig::v100().with_memory(GpuConfig::NUMERIC_BUDGET_BYTES);
        let n_full = 16_002_413;
        let n_scaled = n_full / scale;
        let m_full = full.max_parallel_columns(n_full);
        let m_scaled = num.max_parallel_columns(n_scaled);
        assert!(
            (m_full as i64 - m_scaled as i64).abs() <= 1,
            "M drifted: full {m_full}, scaled {m_scaled}"
        );
        assert!(num.should_use_sparse_format(n_scaled));
    }

    #[test]
    fn memory_floor_is_enforced() {
        let g = GpuConfig::v100_symbolic_scaled(1 << 20);
        assert!(g.device_memory >= 64 * 1024);
    }
}
