//! Matrix Market I/O.
//!
//! The paper evaluates on SuiteSparse matrices, which are distributed in the
//! Matrix Market exchange format. This reader/writer supports the subset the
//! collection uses for LU-factorizable inputs: `matrix coordinate
//! real|integer|pattern general|symmetric`.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{error::SparseError, Coo};

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; the reader mirrors it.
    Symmetric,
}

/// Reads a Matrix Market `coordinate` file into COO form.
///
/// Pattern matrices get value `1.0` for every entry. Symmetric matrices are
/// expanded to general storage (off-diagonal entries mirrored).
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Coo, SparseError> {
    let mut lines = BufReader::new(reader).lines();

    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => return Err(SparseError::Parse("empty file".into())),
        }
    };
    let head: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if head.len() < 4 || head[0] != "%%matrixmarket" || head[1] != "matrix" {
        return Err(SparseError::Parse(format!("bad header line: {header}")));
    }
    if head[2] != "coordinate" {
        return Err(SparseError::Parse(format!(
            "only coordinate format supported, got {}",
            head[2]
        )));
    }
    let field = head[3].as_str();
    let pattern = match field {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(SparseError::Parse(format!(
                "unsupported field type {other}"
            )));
        }
    };
    let symmetry = match head.get(4).map(String::as_str) {
        None | Some("general") => Symmetry::General,
        Some("symmetric") => Symmetry::Symmetric,
        Some(other) => {
            return Err(SparseError::Parse(format!("unsupported symmetry {other}")));
        }
    };

    // Skip comments, find the size line.
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break line;
            }
            None => return Err(SparseError::Parse("missing size line".into())),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| SparseError::Parse(format!("bad size line '{size_line}': {e}")))?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!(
            "size line needs 3 fields: {size_line}"
        )));
    }
    let (n_rows, n_cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::with_capacity(n_rows, n_cols, nnz);
    let mut read = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse(format!("short entry line: {t}")))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad row in '{t}': {e}")))?;
        let j: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse(format!("short entry line: {t}")))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad col in '{t}': {e}")))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| SparseError::Parse(format!("missing value in '{t}'")))?
                .parse()
                .map_err(|e| SparseError::Parse(format!("bad value in '{t}': {e}")))?
        };
        if i == 0 || j == 0 || i > n_rows || j > n_cols {
            return Err(SparseError::IndexOutOfBounds {
                row: i.wrapping_sub(1),
                col: j.wrapping_sub(1),
                n_rows,
                n_cols,
            });
        }
        if !v.is_finite() {
            return Err(SparseError::NonFiniteValue {
                row: i - 1,
                col: j - 1,
            });
        }
        coo.push(i - 1, j - 1, v);
        if symmetry == Symmetry::Symmetric && i != j {
            coo.push(j - 1, i - 1, v);
        }
        read += 1;
    }
    if read != nnz {
        return Err(SparseError::Parse(format!(
            "header declared {nnz} entries, found {read}"
        )));
    }
    Ok(coo)
}

/// Reads a Matrix Market file from a path.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<Coo, SparseError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes a COO matrix as `matrix coordinate real general`.
pub fn write_matrix_market<W: Write>(writer: W, a: &Coo) -> Result<(), SparseError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by gplu-sparse")?;
    writeln!(w, "{} {} {}", a.n_rows(), a.n_cols(), a.nnz())?;
    for (i, j, v) in a.iter() {
        writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a COO matrix to a path.
pub fn write_matrix_market_file<P: AsRef<Path>>(path: P, a: &Coo) -> Result<(), SparseError> {
    write_matrix_market(std::fs::File::create(path)?, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_general_real() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n% comment\n3 3 2\n1 1 1.5\n3 2 -2.0\n";
        let a = read_matrix_market(text.as_bytes()).expect("parses");
        assert_eq!(a.n_rows(), 3);
        assert_eq!(a.nnz(), 2);
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1.5), (2, 1, -2.0)]);
    }

    #[test]
    fn parses_symmetric_and_mirrors() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 4.0\n2 1 1.0\n";
        let a = read_matrix_market(text.as_bytes()).expect("parses");
        // Diagonal not mirrored, off-diagonal mirrored.
        assert_eq!(a.nnz(), 3);
        let entries: Vec<_> = a.iter().collect();
        assert!(entries.contains(&(0, 1, 1.0)));
        assert!(entries.contains(&(1, 0, 1.0)));
    }

    #[test]
    fn parses_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 2\n";
        let a = read_matrix_market(text.as_bytes()).expect("parses");
        assert_eq!(a.iter().next(), Some((1, 1, 1.0)));
    }

    #[test]
    fn rejects_entry_count_mismatch() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::Parse(_))
        ));
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in ["nan", "inf", "-inf", "NaN", "Infinity"] {
            let text = format!("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 {bad}\n");
            assert!(
                matches!(
                    read_matrix_market(text.as_bytes()),
                    Err(SparseError::NonFiniteValue { row: 0, col: 1 })
                ),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_one_based_overflow() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn round_trips_through_writer() {
        let mut a = Coo::new(3, 3);
        a.push(0, 0, 1.25);
        a.push(2, 1, -7.5);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).expect("writes");
        let b = read_matrix_market(&buf[..]).expect("parses");
        assert_eq!(a, b);
    }
}
