//! Conversions between matrix formats.
//!
//! The end-to-end pipeline moves through formats: assembly in [`Coo`],
//! symbolic factorization over [`Csr`], levelization over the column graph,
//! and numeric factorization over sorted [`Csc`] (or dense column chunks).
//! Conversions here are all O(nnz) counting-sort style.

use crate::{Coo, Csc, Csr, Dense, Idx, Val};

/// COO → CSR. Duplicate coordinates are summed.
pub fn coo_to_csr(a: &Coo) -> Csr {
    let mut sorted = a.clone();
    sorted.sum_duplicates();
    let n_rows = sorted.n_rows();
    let mut row_ptr = vec![0usize; n_rows + 1];
    for &r in &sorted.rows {
        row_ptr[r as usize + 1] += 1;
    }
    for i in 0..n_rows {
        row_ptr[i + 1] += row_ptr[i];
    }
    Csr::from_parts_unchecked(n_rows, sorted.n_cols(), row_ptr, sorted.cols, sorted.vals)
}

/// COO → CSC. Duplicate coordinates are summed.
pub fn coo_to_csc(a: &Coo) -> Csc {
    csr_to_csc(&coo_to_csr(a))
}

/// CSR → CSC transposition-style conversion; preserves sortedness because
/// rows are scanned in ascending order.
pub fn csr_to_csc(a: &Csr) -> Csc {
    let (n_rows, n_cols, nnz) = (a.n_rows(), a.n_cols(), a.nnz());
    let mut col_ptr = vec![0usize; n_cols + 1];
    for &c in &a.col_idx {
        col_ptr[c as usize + 1] += 1;
    }
    for j in 0..n_cols {
        col_ptr[j + 1] += col_ptr[j];
    }
    let mut cursor = col_ptr.clone();
    let mut row_idx = vec![0 as Idx; nnz];
    let mut vals = vec![0.0 as Val; nnz];
    for i in 0..n_rows {
        for (j, v) in a.row_iter(i) {
            let dst = cursor[j];
            row_idx[dst] = i as Idx;
            vals[dst] = v;
            cursor[j] += 1;
        }
    }
    Csc::from_parts_unchecked(n_rows, n_cols, col_ptr, row_idx, vals)
}

/// CSC → CSR, the mirror of [`csr_to_csc`].
pub fn csc_to_csr(a: &Csc) -> Csr {
    let (n_rows, n_cols, nnz) = (a.n_rows(), a.n_cols(), a.nnz());
    let mut row_ptr = vec![0usize; n_rows + 1];
    for &r in &a.row_idx {
        row_ptr[r as usize + 1] += 1;
    }
    for i in 0..n_rows {
        row_ptr[i + 1] += row_ptr[i];
    }
    let mut cursor = row_ptr.clone();
    let mut col_idx = vec![0 as Idx; nnz];
    let mut vals = vec![0.0 as Val; nnz];
    for j in 0..n_cols {
        for (i, v) in a.col_iter(j) {
            let dst = cursor[i];
            col_idx[dst] = j as Idx;
            vals[dst] = v;
            cursor[i] += 1;
        }
    }
    Csr::from_parts_unchecked(n_rows, n_cols, row_ptr, col_idx, vals)
}

/// CSR → dense (test-oracle sizes only).
pub fn csr_to_dense(a: &Csr) -> Dense {
    let mut d = Dense::zeros(a.n_rows(), a.n_cols());
    for i in 0..a.n_rows() {
        for (j, v) in a.row_iter(i) {
            d[(i, j)] = v;
        }
    }
    d
}

/// CSC → dense (test-oracle sizes only).
pub fn csc_to_dense(a: &Csc) -> Dense {
    let mut d = Dense::zeros(a.n_rows(), a.n_cols());
    for j in 0..a.n_cols() {
        for (i, v) in a.col_iter(j) {
            d[(i, j)] = v;
        }
    }
    d
}

/// Dense → CSR, dropping exact zeros.
pub fn dense_to_csr(a: &Dense) -> Csr {
    let mut coo = Coo::new(a.n_rows(), a.n_cols());
    for i in 0..a.n_rows() {
        for j in 0..a.n_cols() {
            let v = a[(i, j)];
            if v != 0.0 {
                coo.push(i, j, v);
            }
        }
    }
    coo_to_csr(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> Coo {
        let mut a = Coo::new(3, 4);
        a.push(0, 0, 1.0);
        a.push(2, 3, 2.0);
        a.push(1, 1, 3.0);
        a.push(0, 2, 4.0);
        a.push(2, 0, 5.0);
        a
    }

    #[test]
    fn coo_to_csr_sorts_rows() {
        let csr = coo_to_csr(&sample_coo());
        assert_eq!(csr.row_cols(0), &[0, 2]);
        assert_eq!(csr.row_cols(2), &[0, 3]);
        assert_eq!(csr.get(1, 1), Some(3.0));
    }

    #[test]
    fn coo_duplicates_summed_in_conversion() {
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 1.0);
        a.push(0, 0, 2.5);
        let csr = coo_to_csr(&a);
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), Some(3.5));
    }

    #[test]
    fn csr_csc_round_trip() {
        let csr = coo_to_csr(&sample_coo());
        let csc = csr_to_csc(&csr);
        let back = csc_to_csr(&csc);
        assert_eq!(csr, back);
    }

    #[test]
    fn csc_columns_are_sorted() {
        let csc = coo_to_csc(&sample_coo());
        assert_eq!(csc.col_rows(0), &[0, 2]);
        assert_eq!(csc.get(2, 0), Some(5.0));
    }

    mod props {
        use super::*;
        use crate::gen::random::random_dominant;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// CSR -> CSC -> CSR is the identity for any generated matrix.
            #[test]
            fn prop_csr_csc_round_trip(
                n in 1usize..60,
                density in 1.0f64..6.0,
                seed in 0u64..1000,
            ) {
                let a = random_dominant(n, density, seed);
                prop_assert_eq!(&a, &csc_to_csr(&csr_to_csc(&a)));
            }

            /// spmv agrees across every representation.
            #[test]
            fn prop_spmv_representation_invariant(
                n in 1usize..40,
                seed in 0u64..1000,
            ) {
                let a = random_dominant(n, 3.0, seed);
                let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
                let via_csr = a.spmv(&x);
                let via_csc = csr_to_csc(&a).spmv(&x);
                let via_dense = csr_to_dense(&a).matvec(&x);
                for ((p, q), r) in via_csr.iter().zip(&via_csc).zip(&via_dense) {
                    prop_assert!((p - q).abs() < 1e-12);
                    prop_assert!((p - r).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn dense_round_trip() {
        let csr = coo_to_csr(&sample_coo());
        let dense = csr_to_dense(&csr);
        let back = dense_to_csr(&dense);
        assert_eq!(csr, back);
        let via_csc = csc_to_dense(&csr_to_csc(&csr));
        assert!(dense.max_abs_diff(&via_csc) == 0.0);
    }
}
