//! # gplu-sparse
//!
//! Sparse-matrix substrate for the `gplu` workspace, the reproduction of
//! *"End-to-End LU Factorization of Large Matrices on GPUs"* (Xia et al.,
//! PPoPP 2023).
//!
//! The paper's pipeline consumes and produces sparse matrices in several
//! formats, and its evaluation runs on a specific set of SuiteSparse
//! matrices. This crate provides everything the rest of the workspace needs:
//!
//! * the three index formats the paper's algorithms use — [`Coo`] (assembly),
//!   [`Csr`] (row-wise symbolic factorization), sorted [`Csc`] (the
//!   binary-search numeric kernel of Algorithm 6) — plus a small [`Dense`]
//!   matrix used as a test oracle,
//! * lossless conversions between them ([`convert`]),
//! * Matrix Market I/O ([`io`]),
//! * synthetic generators reproducing the `n : nnz` shape of every matrix in
//!   the paper's Tables 2 and 4 ([`gen`]),
//! * row/column permutations ([`perm`]) and the pre-processing steps the
//!   paper delegates to prior work: fill-reducing orderings ([`ordering`])
//!   and static pivoting / diagonal repair ([`pivot`]),
//! * sparse triangular solves ([`triangular`]) and factorization residual
//!   checks ([`verify`]).
//!
//! Index type: matrix dimensions in this workspace stay below `u32::MAX`
//! even for the "huge" Table 4 analogs, so indices are [`Idx`] (`u32`) and
//! offset arrays are `usize`.

pub mod convert;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod gen;
pub mod io;
pub mod ordering;
pub mod perm;
pub mod pivot;
pub mod triangular;
pub mod verify;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use error::SparseError;
pub use perm::Permutation;

/// Index type used for row/column ids throughout the workspace.
///
/// `u32` halves index-array memory traffic relative to `usize` (see the
/// workspace performance notes); all generated matrices keep `n < 2^32`.
pub type Idx = u32;

/// Value type for numeric computations.
///
/// The paper computes in `float`; we compute in `f64` so residual checks are
/// meaningful at every scale, while the *cost model* in `gplu-sim` charges
/// the paper's 4 bytes per value.
pub type Val = f64;
