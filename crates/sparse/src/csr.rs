//! Compressed sparse row format — the layout of the symbolic phase.
//!
//! The paper's out-of-core symbolic factorization (Section 3.2) stores the
//! filled matrix in CSR: stage 1 counts fill-ins per row, a prefix sum over
//! the counts produces `row_ptr`, and stage 2 writes the column positions.

use crate::{error::SparseError, Idx, Val};

/// A sparse matrix in compressed sparse row (CSR) format with strictly
/// ascending column indices in every row.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` is the index range of row `i`.
    pub row_ptr: Vec<usize>,
    /// Column index of each stored entry, ascending within each row.
    pub col_idx: Vec<Idx>,
    /// Value of each stored entry.
    pub vals: Vec<Val>,
}

impl Csr {
    /// Builds a CSR matrix from raw arrays, validating the invariants:
    /// offsets monotone and spanning `col_idx`, indices in bounds and
    /// strictly ascending within each row.
    pub fn new(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<Idx>,
        vals: Vec<Val>,
    ) -> Result<Self, SparseError> {
        Csr::check_structure(n_rows, n_cols, &row_ptr, &col_idx, vals.len())?;
        Ok(Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            vals,
        })
    }

    /// The structural invariants of [`Csr::new`], as a standalone check.
    fn check_structure(
        n_rows: usize,
        n_cols: usize,
        row_ptr: &[usize],
        col_idx: &[Idx],
        n_vals: usize,
    ) -> Result<(), SparseError> {
        if row_ptr.len() != n_rows + 1 {
            return Err(SparseError::MalformedOffsets(format!(
                "row_ptr has length {}, expected {}",
                row_ptr.len(),
                n_rows + 1
            )));
        }
        if row_ptr[0] != 0 || *row_ptr.last().expect("len >= 1") != col_idx.len() {
            return Err(SparseError::MalformedOffsets(format!(
                "row_ptr must start at 0 and end at nnz={}, got {}..{}",
                col_idx.len(),
                row_ptr[0],
                row_ptr.last().expect("len >= 1")
            )));
        }
        if col_idx.len() != n_vals {
            return Err(SparseError::MalformedOffsets(format!(
                "col_idx ({}) and vals ({}) lengths differ",
                col_idx.len(),
                n_vals
            )));
        }
        for i in 0..n_rows {
            if row_ptr[i] > row_ptr[i + 1] {
                return Err(SparseError::MalformedOffsets(format!(
                    "row_ptr decreases at row {i}"
                )));
            }
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in row.windows(2) {
                if w[0] == w[1] {
                    return Err(SparseError::DuplicateEntry {
                        row: i,
                        col: w[1] as usize,
                    });
                }
                if w[0] > w[1] {
                    return Err(SparseError::UnsortedIndices { major: i });
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= n_cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: i,
                        col: last as usize,
                        n_rows,
                        n_cols,
                    });
                }
            }
        }
        Ok(())
    }

    /// Full validation for untrusted data (e.g. freshly parsed files):
    /// the structural invariants of [`Csr::new`] plus finiteness of every
    /// stored value. Factors may legitimately hold transient non-finite
    /// values mid-elimination, so finiteness is *not* part of
    /// construction — call this at trust boundaries.
    pub fn validate(&self) -> Result<(), SparseError> {
        Csr::check_structure(
            self.n_rows,
            self.n_cols,
            &self.row_ptr,
            &self.col_idx,
            self.vals.len(),
        )?;
        for i in 0..self.n_rows {
            for (j, v) in self.row_iter(i) {
                if !v.is_finite() {
                    return Err(SparseError::NonFiniteValue { row: i, col: j });
                }
            }
        }
        Ok(())
    }

    /// Builds a CSR matrix without validation. The caller must uphold the
    /// invariants checked by [`Csr::new`]; debug builds re-verify them.
    pub fn from_parts_unchecked(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<Idx>,
        vals: Vec<Val>,
    ) -> Self {
        debug_assert!(
            Csr::new(
                n_rows,
                n_cols,
                row_ptr.clone(),
                col_idx.clone(),
                vals.clone()
            )
            .is_ok(),
            "from_parts_unchecked given invalid CSR"
        );
        Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// An `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Csr {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as Idx).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Average entries per row, the `nnz/n` density measure the paper's
    /// Figure 4 analysis correlates speedups with.
    pub fn density(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.n_rows as f64
        }
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[Idx] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_vals(&self, i: usize) -> &[Val] {
        &self.vals[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Entries `(col, val)` of row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, Val)> + '_ {
        self.row_cols(i)
            .iter()
            .zip(self.row_vals(i))
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Looks up `A[i, j]` by binary search within row `i`.
    pub fn get(&self, i: usize, j: usize) -> Option<Val> {
        let row = self.row_cols(i);
        row.binary_search(&(j as Idx))
            .ok()
            .map(|k| self.vals[self.row_ptr[i] + k])
    }

    /// True if every diagonal entry `(i, i)` is structurally present
    /// (required for LU factorization without pivoting).
    pub fn has_full_diagonal(&self) -> bool {
        (0..self.n_rows.min(self.n_cols)).all(|i| self.get(i, i).is_some())
    }

    /// Sparse matrix–vector product `y = A x`.
    pub fn spmv(&self, x: &[Val]) -> Vec<Val> {
        assert_eq!(x.len(), self.n_cols, "dimension mismatch in spmv");
        (0..self.n_rows)
            .map(|i| self.row_iter(i).map(|(j, v)| v * x[j]).sum())
            .collect()
    }

    /// The pattern-only copy of the matrix: same structure, all values 1.
    pub fn pattern_only(&self) -> Csr {
        Csr {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            vals: vec![1.0; self.nnz()],
        }
    }

    /// Frobenius norm of the stored values.
    pub fn frobenius_norm(&self) -> f64 {
        self.vals.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        Csr::new(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .expect("valid")
    }

    #[test]
    fn construction_and_access() {
        let a = sample();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 2), Some(2.0));
        assert_eq!(a.get(0, 1), None);
        assert_eq!(a.row_cols(2), &[0, 2]);
        assert!((a.density() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_offsets() {
        assert!(matches!(
            Csr::new(2, 2, vec![0, 1], vec![0], vec![1.0]),
            Err(SparseError::MalformedOffsets(_))
        ));
        assert!(matches!(
            Csr::new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]),
            Err(SparseError::MalformedOffsets(_))
        ));
    }

    #[test]
    fn rejects_unsorted_rows() {
        assert!(matches!(
            Csr::new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]),
            Err(SparseError::UnsortedIndices { major: 0 })
        ));
    }

    #[test]
    fn rejects_duplicate_column_in_row() {
        // A repeated column index within a row is a distinct defect from
        // disorder: it would make binary-search access and value updates
        // ambiguous, so it gets its own typed error.
        assert!(matches!(
            Csr::new(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]),
            Err(SparseError::DuplicateEntry { row: 0, col: 1 })
        ));
        assert!(matches!(
            Csr::new(3, 3, vec![0, 1, 4, 4], vec![0, 0, 2, 2], vec![1.0; 4]),
            Err(SparseError::DuplicateEntry { row: 1, col: 2 })
        ));
    }

    #[test]
    fn rejects_out_of_bounds_column() {
        assert!(matches!(
            Csr::new(1, 2, vec![0, 1], vec![5], vec![1.0]),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn validate_accepts_finite_and_rejects_non_finite() {
        let mut a = sample();
        a.validate().expect("sample is clean");
        a.vals[2] = f64::NAN;
        assert_eq!(
            a.validate(),
            Err(SparseError::NonFiniteValue { row: 1, col: 1 })
        );
        a.vals[2] = f64::INFINITY;
        assert!(a.validate().is_err());
    }

    #[test]
    fn validate_recatches_structural_corruption() {
        let mut a = sample();
        a.col_idx[0] = 2; // row 0 becomes [2, 2]: a duplicate entry
        assert!(matches!(
            a.validate(),
            Err(SparseError::DuplicateEntry { row: 0, col: 2 })
        ));
    }

    #[test]
    fn identity_has_full_diagonal() {
        let i = Csr::identity(4);
        assert!(i.has_full_diagonal());
        assert_eq!(i.nnz(), 4);
        assert_eq!(i.get(2, 2), Some(1.0));
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let y = a.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0 + 6.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn missing_diagonal_detected() {
        let a = Csr::new(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0]).expect("valid");
        assert!(!a.has_full_diagonal());
    }

    #[test]
    fn diagonal_detection_full() {
        // sample has diag (0,0)=1, (1,1)=3, (2,2)=5 -> full.
        let a = sample();
        assert_eq!(a.get(1, 1), Some(3.0));
        assert_eq!(a.get(2, 2), Some(5.0));
        assert!(a.has_full_diagonal());
    }
}
