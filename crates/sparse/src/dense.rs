//! Dense matrix — the test oracle for symbolic and numeric factorization,
//! and the per-column dense buffers used by the GLU-style numeric kernel.

use crate::{error::SparseError, Val};

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    n_rows: usize,
    n_cols: usize,
    data: Vec<Val>,
}

impl Dense {
    /// An `n_rows x n_cols` zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Dense {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// An `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Dense::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major data vector.
    pub fn from_row_major(n_rows: usize, n_cols: usize, data: Vec<Val>) -> Self {
        assert_eq!(data.len(), n_rows * n_cols, "data length mismatch");
        Dense {
            n_rows,
            n_cols,
            data,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[Val] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Dense) -> Dense {
        assert_eq!(self.n_cols, other.n_rows, "dimension mismatch in matmul");
        let mut out = Dense::zeros(self.n_rows, other.n_cols);
        for i in 0..self.n_rows {
            for k in 0..self.n_cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.n_cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[Val]) -> Vec<Val> {
        assert_eq!(x.len(), self.n_cols, "dimension mismatch in matvec");
        (0..self.n_rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// In-place LU factorization without pivoting (Doolittle): on return the
    /// strictly lower triangle holds `L` (unit diagonal implied) and the
    /// upper triangle holds `U`. This is the numeric oracle for the sparse
    /// kernels — the paper's matrices are preconditioned so that no pivoting
    /// is needed.
    pub fn lu_no_pivot(&self) -> Result<Dense, SparseError> {
        if self.n_rows != self.n_cols {
            return Err(SparseError::NotSquare {
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        let n = self.n_rows;
        let mut a = self.clone();
        for j in 0..n {
            let pivot = a[(j, j)];
            if pivot == 0.0 || !pivot.is_finite() {
                return Err(SparseError::ZeroPivot { col: j });
            }
            for i in (j + 1)..n {
                let lij = a[(i, j)] / pivot;
                a[(i, j)] = lij;
                if lij == 0.0 {
                    continue;
                }
                for k in (j + 1)..n {
                    let u_jk = a[(j, k)];
                    if u_jk != 0.0 {
                        a[(i, k)] -= lij * u_jk;
                    }
                }
            }
        }
        Ok(a)
    }

    /// Splits an in-place LU result into explicit `(L, U)` factors with
    /// `L` unit-diagonal.
    pub fn split_lu(&self) -> (Dense, Dense) {
        assert_eq!(self.n_rows, self.n_cols, "split_lu requires square");
        let n = self.n_rows;
        let mut l = Dense::identity(n);
        let mut u = Dense::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i > j {
                    l[(i, j)] = self[(i, j)];
                } else {
                    u[(i, j)] = self[(i, j)];
                }
            }
        }
        (l, u)
    }

    /// Max-abs difference between two matrices.
    pub fn max_abs_diff(&self, other: &Dense) -> f64 {
        assert_eq!((self.n_rows, self.n_cols), (other.n_rows, other.n_cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Dense {
    type Output = Val;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Val {
        &self.data[i * self.n_cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Dense {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Val {
        &mut self.data[i * self.n_cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Dense::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Dense::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn lu_reconstructs_matrix() {
        let a = Dense::from_row_major(3, 3, vec![4.0, 1.0, 0.0, 1.0, 5.0, 2.0, 0.0, 2.0, 6.0]);
        let lu = a.lu_no_pivot().expect("factorizable");
        let (l, u) = lu.split_lu();
        let product = l.matmul(&u);
        assert!(product.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn lu_detects_zero_pivot() {
        // Leading entry zero and no pivoting -> fail at column 0.
        let a = Dense::from_row_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        assert!(matches!(
            a.lu_no_pivot(),
            Err(SparseError::ZeroPivot { col: 0 })
        ));
    }

    #[test]
    fn lu_requires_square() {
        let a = Dense::zeros(2, 3);
        assert!(matches!(
            a.lu_no_pivot(),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn matvec_basic() {
        let a = Dense::from_row_major(2, 3, vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
    }
}
