//! Row/column permutations.
//!
//! The paper's pre-processing step (Figure 2) permutes rows and columns "to
//! improve numerical stability and reduce the number of fill-ins". A
//! [`Permutation`] `p` maps *old* index `i` to *new* index `p[i]`; applying
//! `(p_row, p_col)` to `A` produces `B[p_row[i], p_col[j]] = A[i, j]`, i.e.
//! `B = P A Qᵀ` in matrix terms.

use crate::{convert, error::SparseError, Coo, Csr, Idx, Val};

/// A permutation of `0..n`, stored as the forward map old → new.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<Idx>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            forward: (0..n as Idx).collect(),
        }
    }

    /// Builds from a forward map, validating bijectivity.
    pub fn from_forward(forward: Vec<Idx>) -> Result<Self, SparseError> {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &t in &forward {
            let t = t as usize;
            if t >= n {
                return Err(SparseError::InvalidPermutation(format!(
                    "target {t} out of range for n={n}"
                )));
            }
            if seen[t] {
                return Err(SparseError::InvalidPermutation(format!(
                    "target {t} repeated"
                )));
            }
            seen[t] = true;
        }
        Ok(Permutation { forward })
    }

    /// Builds the permutation that maps `order[k] → k`, i.e. the inverse of
    /// an "ordering" vector that lists old indices in their new sequence.
    /// This is the form fill-reducing orderings naturally produce.
    pub fn from_order(order: &[Idx]) -> Result<Self, SparseError> {
        let n = order.len();
        let mut forward = vec![Idx::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            let old = old as usize;
            if old >= n {
                return Err(SparseError::InvalidPermutation(format!(
                    "ordering entry {old} out of range for n={n}"
                )));
            }
            if forward[old] != Idx::MAX {
                return Err(SparseError::InvalidPermutation(format!(
                    "ordering repeats index {old}"
                )));
            }
            forward[old] = new as Idx;
        }
        Ok(Permutation { forward })
    }

    /// Size of the permuted set.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True for the size-0 permutation.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// New position of old index `i`.
    #[inline]
    pub fn apply(&self, i: usize) -> usize {
        self.forward[i] as usize
    }

    /// The inverse permutation (new → old).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0 as Idx; self.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            inv[new as usize] = old as Idx;
        }
        Permutation { forward: inv }
    }

    /// Composition `other ∘ self`: applies `self` first, then `other`.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(
            self.len(),
            other.len(),
            "composing permutations of different sizes"
        );
        Permutation {
            forward: self
                .forward
                .iter()
                .map(|&m| other.forward[m as usize])
                .collect(),
        }
    }

    /// Permutes a vector: `out[p[i]] = v[i]`.
    pub fn permute_vec(&self, v: &[Val]) -> Vec<Val> {
        assert_eq!(v.len(), self.len(), "vector length mismatch");
        let mut out = vec![0.0; v.len()];
        for (i, &x) in v.iter().enumerate() {
            out[self.apply(i)] = x;
        }
        out
    }

    /// The forward map as a slice.
    pub fn as_slice(&self) -> &[Idx] {
        &self.forward
    }
}

/// Applies row and column permutations to a CSR matrix:
/// `B[p_row[i], p_col[j]] = A[i, j]`.
pub fn permute_csr(a: &Csr, p_row: &Permutation, p_col: &Permutation) -> Csr {
    assert_eq!(p_row.len(), a.n_rows(), "row permutation size mismatch");
    assert_eq!(p_col.len(), a.n_cols(), "column permutation size mismatch");
    let mut coo = Coo::with_capacity(a.n_rows(), a.n_cols(), a.nnz());
    for i in 0..a.n_rows() {
        let pi = p_row.apply(i);
        for (j, v) in a.row_iter(i) {
            coo.push(pi, p_col.apply(j), v);
        }
    }
    convert::coo_to_csr(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{coo_to_csr, csr_to_dense};

    #[test]
    fn from_forward_validates() {
        assert!(Permutation::from_forward(vec![1, 0, 2]).is_ok());
        assert!(Permutation::from_forward(vec![1, 1, 2]).is_err());
        assert!(Permutation::from_forward(vec![0, 5]).is_err());
    }

    #[test]
    fn from_order_inverts() {
        // order lists old indices in new sequence: new0=old2, new1=old0, new2=old1
        let p = Permutation::from_order(&[2, 0, 1]).expect("valid");
        assert_eq!(p.apply(2), 0);
        assert_eq!(p.apply(0), 1);
        assert_eq!(p.apply(1), 2);
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::from_forward(vec![2, 0, 3, 1]).expect("valid");
        let composed = p.then(&p.inverse());
        assert_eq!(composed, Permutation::identity(4));
    }

    #[test]
    fn permute_vec_places_by_target() {
        let p = Permutation::from_forward(vec![2, 0, 1]).expect("valid");
        assert_eq!(p.permute_vec(&[10.0, 20.0, 30.0]), vec![20.0, 30.0, 10.0]);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Strategy: a random permutation of 0..n as a forward map.
        fn perm(n: usize) -> impl Strategy<Value = Permutation> {
            Just(()).prop_perturb(move |_, mut rng| {
                let mut fwd: Vec<Idx> = (0..n as Idx).collect();
                for i in (1..n).rev() {
                    let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                    fwd.swap(i, j);
                }
                Permutation::from_forward(fwd).expect("shuffle is a bijection")
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// p ∘ p⁻¹ = id and (p⁻¹)⁻¹ = p.
            #[test]
            fn prop_inverse_laws(n in 1usize..40, p in (1usize..40).prop_flat_map(perm)) {
                let _ = n;
                prop_assert_eq!(p.then(&p.inverse()), Permutation::identity(p.len()));
                prop_assert_eq!(&p.inverse().inverse(), &p);
            }

            /// Vector permutation composes: (q ∘ p) v = q (p v).
            #[test]
            fn prop_permute_vec_composes(
                (p, q) in (2usize..30).prop_flat_map(|n| (perm(n), perm(n))),
            ) {
                let v: Vec<f64> = (0..p.len()).map(|i| i as f64).collect();
                let via_compose = p.then(&q).permute_vec(&v);
                let via_steps = q.permute_vec(&p.permute_vec(&v));
                prop_assert_eq!(via_compose, via_steps);
            }
        }
    }

    #[test]
    fn permute_csr_matches_dense_permutation() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 2.0);
        coo.push(2, 0, 3.0);
        let a = coo_to_csr(&coo);
        let p = Permutation::from_forward(vec![1, 2, 0]).expect("valid");
        let q = Permutation::from_forward(vec![0, 2, 1]).expect("valid");
        let b = permute_csr(&a, &p, &q);
        let ad = csr_to_dense(&a);
        let bd = csr_to_dense(&b);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(bd[(p.apply(i), q.apply(j))], ad[(i, j)]);
            }
        }
    }
}
